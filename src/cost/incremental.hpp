// Incremental cost evaluation: dirty-tracked, scenario-scoped penalty
// recomputation with a zero-allocation steady state.
//
// Every solver probe mutates a small part of the candidate — one app's
// backup chain, one device's extra units, one site's spare — yet the full
// evaluator re-simulates *every* failure scenario. The incremental evaluator
// exploits locality: each scenario's recovery outcome depends only on its
// *contention footprint* — the apps it fails and the devices their recovery
// plans serialize over (plus the spare-array state of their sites). A
// mutation that does not intersect a scenario's footprint cannot change its
// simulation, so the cached per-scenario `AppRecoveryResult`s are reused.
//
// Equivalence with `evaluate_cost` is bit-for-bit, not approximate: cached
// and re-simulated scenario results are accumulated in the exact enumeration
// order `compute_penalties` uses, and the per-device outlay cache is summed
// in the same device-id order as `annual_outlay`. Debug/audit builds
// cross-check every reusing evaluation against a full recompute
// (`Candidate::evaluate`, DEPSTOR_AUDIT).
//
// Threading: the evaluator is thread-confined, not thread-safe. Each
// Candidate owns its evaluator (copies deep-copy it), and the parallel
// refit search (DESIGN.md §9) hands every search node its own Candidate
// copy, so evaluators never cross threads mid-solve and need no locks —
// cross-thread sharing happens one layer up, in the sharded EvalCache.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/breakdown.hpp"
#include "model/recovery_sim.hpp"

namespace depstor {

/// What a sequence of candidate mutations touched since the last evaluation.
/// Marks accumulate (the evaluation-cache layer above may skip evaluations,
/// so several probes' marks can pile up) and are cleared by a successful
/// incremental evaluation. Degenerates to `all` when the set grows past the
/// point where scoped checks beat a full recompute.
struct DirtySet {
  /// Everything is dirty. Fresh candidates start here: the first evaluation
  /// must simulate every scenario to populate the cache.
  bool all = true;
  /// The scenario *structure* may have changed: which apps are assigned, or
  /// an app's primary array/site. Only then can the scenario enumeration or
  /// a scenario's affected-app set differ, so evaluations with this unset
  /// skip re-enumerating scenarios and recomputing affected sets entirely
  /// (the configuration-solver knobs — backup configs, extra units, spares —
  /// never change structure).
  bool structure = true;
  std::vector<int> apps;     ///< app ids whose assignment/allocations changed
  std::vector<int> devices;  ///< device ids whose allocations/units changed
  std::vector<int> sites;    ///< sites whose spare-array state changed

  void mark_app(int id) {
    if (!all) {
      apps.push_back(id);
      coarsen();
    }
  }
  void mark_device(int id) {
    if (!all) {
      devices.push_back(id);
      coarsen();
    }
  }
  void mark_site(int id) {
    if (!all) {
      sites.push_back(id);
      coarsen();
    }
  }
  void mark_structure() { structure = true; }
  void mark_all() {
    all = true;
    structure = true;
    apps.clear();
    devices.clear();
    sites.clear();
  }
  void clear() {
    all = false;
    structure = false;
    apps.clear();
    devices.clear();
    sites.clear();
  }
  bool empty() const {
    return !all && !structure && apps.empty() && devices.empty() &&
           sites.empty();
  }

 private:
  /// Past this many accumulated marks a full recompute is cheaper than
  /// per-scenario intersection tests (and the vectors stop growing).
  static constexpr std::size_t kCoarsenAt = 64;
  void coarsen() {
    if (apps.size() + devices.size() + sites.size() > kCoarsenAt) mark_all();
  }
};

/// Counters of the incremental evaluator, aggregated per solve by
/// ConfigSolver and surfaced through SolveResult / bench / engine metrics.
struct IncrementalStats {
  std::int64_t scenarios_simulated = 0;  ///< scenarios actually re-simulated
  std::int64_t scenarios_reused = 0;     ///< scenarios served from the cache
  std::int64_t full_evaluations = 0;     ///< evaluations with `dirty.all` set
  std::int64_t incremental_evaluations = 0;  ///< evaluations with a scoped set

  IncrementalStats& operator+=(const IncrementalStats& o) {
    scenarios_simulated += o.scenarios_simulated;
    scenarios_reused += o.scenarios_reused;
    full_evaluations += o.full_evaluations;
    incremental_evaluations += o.incremental_evaluations;
    return *this;
  }
};

/// Per-candidate incremental evaluator. Owned (as a value) by `Candidate`,
/// so a candidate copy inherits a valid cache — the refit search copies
/// candidates freely and every lineage keeps its own state.
///
/// All intermediate buffers (scenario list, recovery workspace, per-scenario
/// entries, per-device outlay cache) are reused across evaluations: once
/// capacities are warm, an evaluation that changes no structure performs no
/// heap allocation.
class IncrementalEvaluator {
 public:
  /// Evaluate the candidate state into `out` (reusing its `per_app`
  /// capacity), re-simulating only scenarios whose contention footprint
  /// intersects `dirty`. Produces results bit-identical to `evaluate_cost`.
  /// Clears `dirty` on success. Returns true when at least one scenario was
  /// served from the cache (the audit oracle only cross-checks then — a
  /// fully re-simulated evaluation *is* the full computation).
  bool evaluate(CostBreakdown& out, const ApplicationList& apps,
                const std::vector<AppAssignment>& assignments,
                const ResourcePool& pool, const ScenarioModel& model,
                const ModelParams& params, DirtySet& dirty,
                IncrementalStats* stats = nullptr);

  /// Probe transaction. The solvers' steepest-descent loops mutate, evaluate,
  /// and then revert the mutation exactly; without help the revert would
  /// re-simulate every scenario the probe touched just to restore results the
  /// evaluator already had. Between begin_trial and abort_trial, the first
  /// re-simulation of each scenario stashes its committed results; abort
  /// swaps them back (the caller guarantees the candidate's observable state
  /// is bit-identical to the begin_trial point). commit_trial keeps the trial
  /// results instead. No nesting.
  void begin_trial();
  void abort_trial();
  void commit_trial();
  bool in_trial() const { return trial_; }

  /// Drop all cached state; the next evaluation recomputes everything.
  void invalidate();

  /// Rewrite cached app ids through an old→new id map (-1 = removed) for
  /// warm-start migration across an environment delta. Entries whose
  /// affected set contains a removed app are invalidated — their results
  /// embed that app's recovery contention; every other entry survives with
  /// its scenario key, affected set, and result app ids rewritten (device
  /// and site footprints are id-stable across deltas). The map must be
  /// monotone over surviving ids so sorted app vectors stay sorted. The
  /// scenario list is cleared; the next (structural) evaluation re-enumerates
  /// and re-adopts surviving entries by key. Not allowed during a trial.
  void remap_apps(const std::vector<int>& new_of_old);

 private:
  /// Cached state of one failure scenario, positionally aligned with the
  /// current scenario enumeration. The saved_* slots hold the committed
  /// version while a probe trial has re-simulated the entry; their buffers
  /// are retained across trials, so steady-state probing allocates nothing.
  struct ScenarioEntry {
    std::uint64_t key = 0;  ///< scenario identity (scope + failed entity)
    bool valid = false;
    std::vector<int> affected;           ///< app ids, ascending
    std::vector<int> footprint_devices;  ///< sorted device ids
    std::vector<int> footprint_sites;    ///< sorted site ids
    std::vector<AppRecoveryResult> results;
    bool trial_saved = false;  ///< saved_* holds the committed version
    bool saved_valid = false;
    std::vector<int> saved_affected;
    std::vector<int> saved_footprint_devices;
    std::vector<int> saved_footprint_sites;
    std::vector<AppRecoveryResult> saved_results;
  };

  void align_entries();
  void rebuild_footprint(ScenarioEntry& entry, const ScenarioSpec& scenario,
                         const std::vector<AppAssignment>& assignments);
  bool needs_resim(const ScenarioEntry& entry, const DirtySet& dirty,
                   bool structural) const;
  double site_and_vault_outlay(const ResourcePool& pool,
                               const std::vector<AppAssignment>& assignments,
                               const ModelParams& params);

  std::vector<ScenarioSpec> scenarios_;
  std::vector<ScenarioEntry> entries_;  ///< parallel to scenarios_
  ScenarioScratch scenario_scratch_;
  RecoveryWorkspace ws_;
  std::vector<int> affected_scratch_;
  std::vector<AppPenaltyDetail> details_;
  std::vector<double> device_outlay_;  ///< per-device annualized outlay cache
  std::vector<double> outlay_backup_;  ///< device_outlay_ at begin_trial
  std::vector<char> site_used_;
  bool trial_ = false;
};

/// Process-wide default for `Candidate`'s incremental path: on unless
/// DEPSTOR_INCREMENTAL=0 in the environment (read once, cached).
bool incremental_default_enabled();

}  // namespace depstor
