// Solution cost accounting (paper §2.5).
//
// Overall cost = annualized outlays + expected annual penalties.
// Outlays amortize device purchase prices over their lifetime (3 years) and
// include site facilities; penalties weight each failure scenario's outage
// and recent-data-loss times by its annual likelihood and the application's
// penalty rates.
#pragma once

#include <vector>

#include "model/assignment.hpp"
#include "model/failure.hpp"
#include "model/params.hpp"
#include "model/scenario_model.hpp"
#include "resources/pool.hpp"
#include "workload/application.hpp"

namespace depstor {

struct AppPenaltyDetail {
  int app_id = -1;
  double outage_penalty = 0.0;  ///< expected annual, US$
  double loss_penalty = 0.0;    ///< expected annual, US$
  double expected_outage_hours = 0.0;  ///< rate-weighted annual outage
  double expected_loss_hours = 0.0;    ///< rate-weighted annual loss
};

struct CostBreakdown {
  double outlay = 0.0;          ///< annualized, US$
  double outage_penalty = 0.0;  ///< expected annual, US$
  double loss_penalty = 0.0;    ///< expected annual, US$
  std::vector<AppPenaltyDetail> per_app;

  double penalty() const { return outage_penalty + loss_penalty; }
  double total() const { return outlay + penalty(); }
};

/// Full evaluation of a (possibly partial) candidate: annualized outlays for
/// everything provisioned plus expected penalties for every assigned app,
/// over the scenarios of `model` (tree or legacy flat).
CostBreakdown evaluate_cost(const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool,
                            const ScenarioModel& model,
                            const ModelParams& params);

/// Legacy-flat convenience: wraps `failures` in a flat ScenarioModel.
CostBreakdown evaluate_cost(const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool,
                            const FailureModel& failures,
                            const ModelParams& params);

}  // namespace depstor
