#include "cost/breakdown.hpp"

#include "cost/outlay.hpp"
#include "cost/penalty.hpp"

namespace depstor {

CostBreakdown evaluate_cost(const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool,
                            const ScenarioModel& model,
                            const ModelParams& params) {
  CostBreakdown cost;
  cost.outlay = annual_outlay(pool, assignments, params);
  cost.per_app = compute_penalties(apps, assignments, pool, model, params);
  for (const auto& d : cost.per_app) {
    cost.outage_penalty += d.outage_penalty;
    cost.loss_penalty += d.loss_penalty;
  }
  return cost;
}

CostBreakdown evaluate_cost(const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool,
                            const FailureModel& failures,
                            const ModelParams& params) {
  return evaluate_cost(apps, assignments, pool,
                       ScenarioModel::flat_model(failures), params);
}

}  // namespace depstor
