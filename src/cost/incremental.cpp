#include "cost/incremental.hpp"

#include <algorithm>
#include <cstdlib>

#include "cost/outlay.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace depstor {

namespace {

/// Scenario identity: scope plus the failed entity. Entities are offset by
/// one so a real key is never 0 (0 is the moved-from sentinel inside
/// align_entries).
std::uint64_t key_of(const ScenarioSpec& s) {
  int entity = -1;
  switch (s.scope) {
    case FailureScope::DataObject:
      entity = s.failed_app;
      break;
    case FailureScope::DiskArray:
      entity = s.failed_array;
      break;
    case FailureScope::SiteDisaster:
      entity = s.failed_site;
      break;
    case FailureScope::RegionalDisaster:
      entity = s.failed_region;
      break;
    case FailureScope::Domain:
      // A tree node can emit both a destroy and an outage scenario; the
      // data_intact bit keeps their keys distinct.
      return (static_cast<std::uint64_t>(s.scope) << 32) |
             (static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(s.domain_node + 1))
              << 1) |
             (s.data_intact ? 1u : 0u);
  }
  return (static_cast<std::uint64_t>(s.scope) << 32) |
         static_cast<std::uint32_t>(entity + 1);
}

/// Any element of (small, unsorted) `dirty` present in sorted `footprint`?
bool intersects(const std::vector<int>& dirty,
                const std::vector<int>& footprint) {
  for (int v : dirty) {
    if (std::binary_search(footprint.begin(), footprint.end(), v)) return true;
  }
  return false;
}

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

void IncrementalEvaluator::align_entries() {
  if (entries_.size() == scenarios_.size()) {
    bool match = true;
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      if (entries_[i].key != key_of(scenarios_[i])) {
        match = false;
        break;
      }
    }
    // Steady state of the sweep/increment loops: mutations keep device ids
    // stable, so the scenario set (and its order) does not change between
    // probes and no realignment work happens.
    if (match) return;
  }

  // Structural change (app placed/removed, new primary array/site): rebuild
  // the entry list, carrying over cached entries by scenario identity.
  std::vector<ScenarioEntry> fresh(scenarios_.size());
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const std::uint64_t key = key_of(scenarios_[i]);
    fresh[i].key = key;
    for (auto& old : entries_) {
      if (old.valid && old.key == key) {
        fresh[i] = std::move(old);
        old.valid = false;
        old.key = 0;
        break;
      }
    }
  }
  entries_ = std::move(fresh);
}

void IncrementalEvaluator::rebuild_footprint(
    ScenarioEntry& entry, const ScenarioSpec& scenario,
    const std::vector<AppAssignment>& assignments) {
  entry.footprint_devices.clear();
  entry.footprint_sites.clear();
  auto add_device = [&](int id) {
    if (id >= 0) entry.footprint_devices.push_back(id);
  };
  // The failed array itself: an app moving onto/off it changes who fails.
  add_device(scenario.failed_array);
  // Domain scenarios fail a precomputed set of arrays/sites (a subtree's
  // footprint); survival checks compare copy placement against both lists.
  for (int id : scenario.failed_arrays) add_device(id);
  for (int site : scenario.failed_sites) {
    entry.footprint_sites.push_back(site);
  }
  for (int app_id : entry.affected) {
    const auto& asg = assignments.at(static_cast<std::size_t>(app_id));
    // Every device of an affected app's assignment can influence its
    // recovery: the recovery plan serializes on a subset of them, and the
    // staleness model reads sharer counts on the mirror link and tape
    // library — so the footprint is the full device set, not just the
    // plan's shared_devices.
    add_device(asg.primary_array);
    add_device(asg.mirror_array);
    add_device(asg.mirror_link);
    add_device(asg.tape_library);
    add_device(asg.primary_compute);
    add_device(asg.failover_compute);
    // Spare-array state is keyed by site; plan_recovery reads the primary
    // site's spares (secondary kept too, conservatively cheap).
    entry.footprint_sites.push_back(asg.primary_site);
    if (asg.secondary_site >= 0) {
      entry.footprint_sites.push_back(asg.secondary_site);
    }
  }
  sort_unique(entry.footprint_devices);
  sort_unique(entry.footprint_sites);
}

bool IncrementalEvaluator::needs_resim(const ScenarioEntry& entry,
                                       const DirtySet& dirty,
                                       bool structural) const {
  if (!entry.valid || dirty.all) return true;
  // On structural evaluations the affected set is recomputed (cheap,
  // O(apps)) and compared against the cache: this catches apps moving onto
  // a failed entity even when none of their old resources intersected the
  // footprint. Non-structural mutations cannot change affected sets.
  if (structural && affected_scratch_ != entry.affected) return true;
  if (intersects(dirty.apps, entry.affected)) return true;
  if (intersects(dirty.devices, entry.footprint_devices)) return true;
  if (intersects(dirty.sites, entry.footprint_sites)) return true;
  return false;
}

double IncrementalEvaluator::site_and_vault_outlay(
    const ResourcePool& pool, const std::vector<AppAssignment>& assignments,
    const ModelParams& params) {
  // Same math and accumulation order as annual_site_outlay +
  // annual_vault_outlay, but through a reused site mark buffer instead of
  // the vector sites_in_use() returns.
  const int site_count = pool.topology().site_count();
  site_used_.assign(static_cast<std::size_t>(site_count), 0);
  for (const auto& dev : pool.devices()) {
    if (!pool.in_use(dev.id)) continue;
    site_used_[static_cast<std::size_t>(dev.site_id)] = 1;
    if (dev.site_b_id >= 0) {
      site_used_[static_cast<std::size_t>(dev.site_b_id)] = 1;
    }
  }
  double site_total = 0.0;
  for (int s = 0; s < site_count; ++s) {
    if (site_used_[static_cast<std::size_t>(s)]) {
      site_total +=
          pool.topology().site(s).fixed_cost / params.device_lifetime_years;
    }
  }
  double vault_total = 0.0;
  for (const auto& asg : assignments) {
    if (asg.has_backup()) vault_total += params.vault_annual_fee;
  }
  return site_total + vault_total;
}

bool IncrementalEvaluator::evaluate(CostBreakdown& out,
                                    const ApplicationList& apps,
                                    const std::vector<AppAssignment>& assignments,
                                    const ResourcePool& pool,
                                    const ScenarioModel& model,
                                    const ModelParams& params, DirtySet& dirty,
                                    IncrementalStats* stats) {
  const bool was_full = dirty.all;
  // Scenario enumeration and per-scenario affected sets depend only on
  // which apps are assigned and their primary arrays/sites; skip both when
  // no mutation since the last evaluation could have changed them.
  const bool structural = dirty.all || dirty.structure || scenarios_.empty();
  if (structural) {
    enumerate_scenarios_into(scenarios_, apps, assignments, pool, model,
                             /*with_names=*/false, &scenario_scratch_);
    align_entries();
  }

  // Per-app penalty accumulators, reset in place (same layout as
  // compute_penalties' result).
  if (details_.size() != apps.size()) details_.resize(apps.size());
  for (std::size_t i = 0; i < details_.size(); ++i) {
    details_[i] = AppPenaltyDetail{};
    details_[i].app_id = static_cast<int>(i);
  }

  // One span for the whole scenario pass (per-scenario spans would dominate
  // the ring in incremental mode); the arg reports how many scenarios were
  // actually re-simulated vs served from cache.
  DEPSTOR_TRACE_SPAN_NAMED(sim_span, "scenario_sim");
  std::int64_t simulated_here = 0;
  bool reused_any = false;
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const ScenarioSpec& scenario = scenarios_[i];
    // compute_penalties skips rate-zero scenarios before simulating; mirror
    // that exactly (their entries stay invalid and cost nothing).
    if (scenario.annual_rate <= 0.0) continue;
    ScenarioEntry& entry = entries_[i];
    if (structural) {
      affected_apps_into(affected_scratch_, scenario, assignments,
                         pool.topology());
    }
    if (needs_resim(entry, dirty, structural)) {
      const bool entry_was_valid = entry.valid;
      if (trial_ && !entry.trial_saved) {
        // First trial touch: stash the committed version (buffer swaps, no
        // allocation once the saved_* slots are warm). abort_trial swaps it
        // back when the probe is reverted.
        entry.saved_results.swap(entry.results);
        entry.saved_affected.swap(entry.affected);
        entry.saved_footprint_devices.swap(entry.footprint_devices);
        entry.saved_footprint_sites.swap(entry.footprint_sites);
        entry.saved_valid = entry.valid;
        entry.trial_saved = true;
      }
      simulate_recovery_into(entry.results, scenario, apps, assignments, pool,
                             params, ws_);
      if (structural || !entry_was_valid) {
        // A valid entry in a non-structural evaluation keeps its affected
        // set and footprint — nothing that mutated could have changed them.
        if (!structural) {
          affected_apps_into(affected_scratch_, scenario, assignments,
                             pool.topology());
        }
        entry.affected.assign(affected_scratch_.begin(),
                              affected_scratch_.end());
        rebuild_footprint(entry, scenario, assignments);
      }
      entry.valid = true;
      ++simulated_here;
      if (stats != nullptr) ++stats->scenarios_simulated;
    } else {
      reused_any = true;
      if (stats != nullptr) ++stats->scenarios_reused;
    }
    // Identical accumulation order to compute_penalties: scenario by
    // scenario in enumeration order, result by result in priority order.
    for (const auto& res : entry.results) {
      const auto& app = apps.at(static_cast<std::size_t>(res.app_id));
      auto& d = details_.at(static_cast<std::size_t>(res.app_id));
      d.expected_outage_hours += scenario.annual_rate * res.outage_hours;
      d.expected_loss_hours += scenario.annual_rate * res.loss_hours;
      d.outage_penalty +=
          scenario.annual_rate * res.outage_hours * app.outage_penalty_rate;
      d.loss_penalty +=
          scenario.annual_rate * res.loss_hours * app.loss_penalty_rate;
    }
  }

  sim_span.set_arg(simulated_here);

  // Outlay, scoped to dirty devices. Each cached slot holds exactly
  // annual_device_outlay(pool, id, params); the final sum replicates
  // annual_outlay's order: (sites + vault) then devices in id order.
  params.validate();
  const int device_count = pool.device_count();
  if (was_full || static_cast<int>(device_outlay_.size()) > device_count) {
    device_outlay_.assign(static_cast<std::size_t>(device_count), 0.0);
    for (int id = 0; id < device_count; ++id) {
      device_outlay_[static_cast<std::size_t>(id)] =
          annual_device_outlay(pool, id, params);
    }
  } else {
    // New devices appended since the last evaluation.
    for (int id = static_cast<int>(device_outlay_.size()); id < device_count;
         ++id) {
      device_outlay_.push_back(annual_device_outlay(pool, id, params));
    }
    for (int id : dirty.devices) {
      if (id >= 0 && id < device_count) {
        device_outlay_[static_cast<std::size_t>(id)] =
            annual_device_outlay(pool, id, params);
      }
    }
  }
  double outlay = site_and_vault_outlay(pool, assignments, params);
  for (int id = 0; id < device_count; ++id) {
    outlay += device_outlay_[static_cast<std::size_t>(id)];
  }

  out.outlay = outlay;
  out.outage_penalty = 0.0;
  out.loss_penalty = 0.0;
  out.per_app.assign(details_.begin(), details_.end());
  for (const auto& d : out.per_app) {
    out.outage_penalty += d.outage_penalty;
    out.loss_penalty += d.loss_penalty;
  }

  if (stats != nullptr) {
    if (was_full) {
      ++stats->full_evaluations;
    } else {
      ++stats->incremental_evaluations;
    }
  }
  dirty.clear();
  return reused_any;
}

void IncrementalEvaluator::begin_trial() {
  DEPSTOR_EXPECTS_MSG(!trial_, "probe trials do not nest");
  trial_ = true;
  // The per-device outlay slots the trial's evaluations overwrite are
  // restored wholesale: the full copy is a few hundred bytes, cheaper than
  // tracking individual slots.
  outlay_backup_.assign(device_outlay_.begin(), device_outlay_.end());
}

void IncrementalEvaluator::abort_trial() {
  DEPSTOR_EXPECTS_MSG(trial_, "no probe trial to abort");
  trial_ = false;
  for (auto& entry : entries_) {
    if (!entry.trial_saved) continue;
    entry.results.swap(entry.saved_results);
    entry.affected.swap(entry.saved_affected);
    entry.footprint_devices.swap(entry.saved_footprint_devices);
    entry.footprint_sites.swap(entry.saved_footprint_sites);
    entry.valid = entry.saved_valid;
    entry.trial_saved = false;
  }
  device_outlay_.swap(outlay_backup_);
}

void IncrementalEvaluator::commit_trial() {
  DEPSTOR_EXPECTS_MSG(trial_, "no probe trial to commit");
  trial_ = false;
  for (auto& entry : entries_) entry.trial_saved = false;
}

void IncrementalEvaluator::remap_apps(const std::vector<int>& new_of_old) {
  DEPSTOR_EXPECTS_MSG(!trial_, "cannot remap during a probe trial");
  const int old_count = static_cast<int>(new_of_old.size());
  const auto map_id = [&](int id) {
    return (id >= 0 && id < old_count)
               ? new_of_old[static_cast<std::size_t>(id)]
               : id;
  };
  for (auto& entry : entries_) {
    if (!entry.valid) {
      entry.key = 0;
      continue;
    }
    bool keep = true;
    // Data-object scenarios are keyed by the failed app; rewrite (or drop).
    const auto scope = static_cast<FailureScope>(entry.key >> 32);
    if (scope == FailureScope::DataObject) {
      const int old_app = static_cast<int>(entry.key & 0xffffffffu) - 1;
      const int new_app = map_id(old_app);
      if (new_app < 0) {
        keep = false;
      } else {
        entry.key = (static_cast<std::uint64_t>(scope) << 32) |
                    static_cast<std::uint32_t>(new_app + 1);
      }
    }
    if (keep) {
      for (int& app_id : entry.affected) {
        app_id = map_id(app_id);
        if (app_id < 0) {
          keep = false;
          break;
        }
      }
    }
    if (!keep) {
      entry.valid = false;
      entry.key = 0;
      continue;
    }
    for (auto& res : entry.results) res.app_id = map_id(res.app_id);
  }
  // Force re-enumeration on the next evaluation; align_entries() re-adopts
  // the surviving entries by their rewritten keys.
  scenarios_.clear();
}

void IncrementalEvaluator::invalidate() {
  DEPSTOR_EXPECTS_MSG(!trial_, "cannot invalidate during a probe trial");
  entries_.clear();
  scenarios_.clear();
  device_outlay_.clear();
}

bool incremental_default_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("DEPSTOR_INCREMENTAL");
    if (v == nullptr || *v == '\0') return true;
    return !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace depstor
