// Expected annual penalty computation (paper §2.4, §2.5).
//
// Every concrete failure scenario is simulated (with multi-application
// contention); the resulting outage and recent-data-loss times are weighted
// by the scenario's annual likelihood and the application's penalty rates.
#pragma once

#include <vector>

#include "cost/breakdown.hpp"
#include "model/recovery_sim.hpp"

namespace depstor {

/// Expected annual penalties per assigned application, summed over all
/// concrete failure scenarios of the scenario model (tree or legacy flat).
std::vector<AppPenaltyDetail> compute_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model,
    const ModelParams& params);

/// Legacy-flat convenience: wraps `failures` in a flat ScenarioModel.
std::vector<AppPenaltyDetail> compute_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures,
    const ModelParams& params);

/// Expected annual penalties attributed to one failure scope.
struct ScopePenalty {
  FailureScope scope = FailureScope::DataObject;
  int scenarios = 0;             ///< concrete scenarios of this scope
  double rate_sum = 0.0;         ///< summed annual likelihood of them
  double outage_penalty = 0.0;   ///< expected annual, US$
  double loss_penalty = 0.0;     ///< expected annual, US$
  double total() const { return outage_penalty + loss_penalty; }
};

/// Penalty attribution by failure scope: answers "what threat drives this
/// design's expected cost". Scopes with no scenarios still appear (zeroed)
/// so callers can tabulate uniformly; tree-only events (zone/room destroys,
/// outages) land in the Domain row.
std::vector<ScopePenalty> compute_scope_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model,
    const ModelParams& params);

/// Legacy-flat convenience overload.
std::vector<ScopePenalty> compute_scope_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures,
    const ModelParams& params);

}  // namespace depstor
