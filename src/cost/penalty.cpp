#include "cost/penalty.hpp"

#include "obs/trace.hpp"

namespace depstor {

std::vector<AppPenaltyDetail> compute_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model,
    const ModelParams& params) {
  std::vector<AppPenaltyDetail> details(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    details[i].app_id = static_cast<int>(i);
  }

  // Full (non-incremental) evaluation path: one span for the scenario pass,
  // arg = number of scenarios simulated.
  DEPSTOR_TRACE_SPAN_NAMED(sim_span, "scenario_sim");
  std::int64_t simulated = 0;
  for (const auto& scenario :
       enumerate_scenarios(apps, assignments, pool, model)) {
    if (scenario.annual_rate <= 0.0) continue;
    ++simulated;
    for (const auto& res :
         simulate_recovery(scenario, apps, assignments, pool, params)) {
      const auto& app = apps.at(static_cast<std::size_t>(res.app_id));
      auto& d = details.at(static_cast<std::size_t>(res.app_id));
      d.expected_outage_hours += scenario.annual_rate * res.outage_hours;
      d.expected_loss_hours += scenario.annual_rate * res.loss_hours;
      d.outage_penalty +=
          scenario.annual_rate * res.outage_hours * app.outage_penalty_rate;
      d.loss_penalty +=
          scenario.annual_rate * res.loss_hours * app.loss_penalty_rate;
    }
  }
  sim_span.set_arg(simulated);
  return details;
}

std::vector<AppPenaltyDetail> compute_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures,
    const ModelParams& params) {
  return compute_penalties(apps, assignments, pool,
                           ScenarioModel::flat_model(failures), params);
}

std::vector<ScopePenalty> compute_scope_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model,
    const ModelParams& params) {
  std::vector<ScopePenalty> out;
  for (FailureScope scope :
       {FailureScope::DataObject, FailureScope::DiskArray,
        FailureScope::SiteDisaster, FailureScope::RegionalDisaster,
        FailureScope::Domain}) {
    ScopePenalty sp;
    sp.scope = scope;
    out.push_back(sp);
  }
  for (const auto& scenario :
       enumerate_scenarios(apps, assignments, pool, model)) {
    auto& sp = out.at(static_cast<std::size_t>(scenario.scope));
    ++sp.scenarios;
    sp.rate_sum += scenario.annual_rate;
    if (scenario.annual_rate <= 0.0) continue;
    for (const auto& res :
         simulate_recovery(scenario, apps, assignments, pool, params)) {
      const auto& app = apps.at(static_cast<std::size_t>(res.app_id));
      sp.outage_penalty +=
          scenario.annual_rate * res.outage_hours * app.outage_penalty_rate;
      sp.loss_penalty +=
          scenario.annual_rate * res.loss_hours * app.loss_penalty_rate;
    }
  }
  return out;
}

std::vector<ScopePenalty> compute_scope_penalties(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures,
    const ModelParams& params) {
  return compute_scope_penalties(apps, assignments, pool,
                                 ScenarioModel::flat_model(failures), params);
}

}  // namespace depstor
