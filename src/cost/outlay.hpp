// Annualized infrastructure outlays (paper §2.3, §2.5).
#pragma once

#include <vector>

#include "model/assignment.hpp"
#include "model/params.hpp"
#include "resources/pool.hpp"

namespace depstor {

/// Annualized cost of one provisioned device (purchase price amortized over
/// the device lifetime). Idle devices cost nothing.
double annual_device_outlay(const ResourcePool& pool, int device_id,
                            const ModelParams& params);

/// Annualized facilities cost of every site hosting in-use devices.
double annual_site_outlay(const ResourcePool& pool, const ModelParams& params);

/// Annual vault service fees (one per assigned app whose technique backs up).
double annual_vault_outlay(const std::vector<AppAssignment>& assignments,
                           const ModelParams& params);

/// Total annualized outlay: devices + sites + vault fees.
double annual_outlay(const ResourcePool& pool,
                     const std::vector<AppAssignment>& assignments,
                     const ModelParams& params);

}  // namespace depstor
