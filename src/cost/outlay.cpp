#include "cost/outlay.hpp"

namespace depstor {

double annual_device_outlay(const ResourcePool& pool, int device_id,
                            const ModelParams& params) {
  if (!pool.in_use(device_id)) return 0.0;
  return pool.device(device_id).purchase_cost() / params.device_lifetime_years;
}

double annual_site_outlay(const ResourcePool& pool,
                          const ModelParams& params) {
  double total = 0.0;
  for (int site : pool.sites_in_use()) {
    total += pool.topology().site(site).fixed_cost /
             params.device_lifetime_years;
  }
  return total;
}

double annual_vault_outlay(const std::vector<AppAssignment>& assignments,
                           const ModelParams& params) {
  double total = 0.0;
  for (const auto& asg : assignments) {
    if (asg.has_backup()) total += params.vault_annual_fee;
  }
  return total;
}

double annual_outlay(const ResourcePool& pool,
                     const std::vector<AppAssignment>& assignments,
                     const ModelParams& params) {
  params.validate();
  double total = annual_site_outlay(pool, params) +
                 annual_vault_outlay(assignments, params);
  for (int id = 0; id < pool.device_count(); ++id) {
    total += annual_device_outlay(pool, id, params);
  }
  return total;
}

}  // namespace depstor
