#include "model/recovery_sim.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

std::vector<ScenarioSpec> enumerate_scenarios(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures, bool with_names) {
  failures.validate();
  std::vector<ScenarioSpec> out;

  // One data-object failure per assigned application.
  for (const auto& app : apps) {
    const auto& asg = assignments.at(static_cast<std::size_t>(app.id));
    if (!asg.assigned) continue;
    ScenarioSpec s;
    s.scope = FailureScope::DataObject;
    s.failed_app = app.id;
    s.annual_rate = failures.data_object_rate;
    if (with_names) s.name = "object(" + app.name + ")";
    out.push_back(std::move(s));
  }

  // One array failure per array hosting at least one primary copy.
  std::vector<int> primary_arrays;
  std::vector<int> primary_sites;
  for (const auto& asg : assignments) {
    if (!asg.assigned) continue;
    primary_arrays.push_back(asg.primary_array);
    primary_sites.push_back(asg.primary_site);
  }
  std::sort(primary_arrays.begin(), primary_arrays.end());
  primary_arrays.erase(
      std::unique(primary_arrays.begin(), primary_arrays.end()),
      primary_arrays.end());
  for (int array_id : primary_arrays) {
    ScenarioSpec s;
    s.scope = FailureScope::DiskArray;
    s.failed_array = array_id;
    s.annual_rate = failures.disk_array_rate;
    if (with_names) {
      s.name = "array(" + pool.device(array_id).type.name + "#" +
               std::to_string(array_id) + ")";
    }
    out.push_back(std::move(s));
  }

  // One disaster per site hosting at least one primary copy.
  std::sort(primary_sites.begin(), primary_sites.end());
  primary_sites.erase(std::unique(primary_sites.begin(), primary_sites.end()),
                      primary_sites.end());
  for (int site : primary_sites) {
    ScenarioSpec s;
    s.scope = FailureScope::SiteDisaster;
    s.failed_site = site;
    s.annual_rate = failures.site_disaster_rate;
    if (with_names) s.name = "site(" + pool.topology().site(site).name + ")";
    out.push_back(std::move(s));
  }

  // One regional disaster per region hosting primaries (when enabled).
  if (failures.regional_disaster_rate > 0.0) {
    std::vector<int> regions;
    for (int site : primary_sites) {
      regions.push_back(pool.topology().site(site).region);
    }
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
    for (int region : regions) {
      ScenarioSpec s;
      s.scope = FailureScope::RegionalDisaster;
      s.failed_region = region;
      s.annual_rate = failures.regional_disaster_rate;
      if (with_names) s.name = "region(" + std::to_string(region) + ")";
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<int> affected_apps(const ScenarioSpec& scenario,
                               const std::vector<AppAssignment>& assignments,
                               const Topology& topology) {
  std::vector<int> out;
  for (const auto& asg : assignments) {
    if (!asg.assigned) continue;
    switch (scenario.scope) {
      case FailureScope::DataObject:
        if (asg.app_id == scenario.failed_app) out.push_back(asg.app_id);
        break;
      case FailureScope::DiskArray:
        if (asg.primary_array == scenario.failed_array) {
          out.push_back(asg.app_id);
        }
        break;
      case FailureScope::SiteDisaster:
        if (asg.primary_site == scenario.failed_site) {
          out.push_back(asg.app_id);
        }
        break;
      case FailureScope::RegionalDisaster:
        if (topology.site(asg.primary_site).region ==
            scenario.failed_region) {
          out.push_back(asg.app_id);
        }
        break;
    }
  }
  return out;
}

double recovery_bandwidth_mbps(const ResourcePool& pool, int device_id,
                               const std::vector<int>& failed) {
  double unaffected_load = 0.0;
  for (const auto& alloc : pool.allocations(device_id)) {
    const bool is_failed = std::find(failed.begin(), failed.end(),
                                     alloc.app_id) != failed.end();
    if (!is_failed) unaffected_load += alloc.bandwidth_mbps;
  }
  const double available = pool.device(device_id).bandwidth_mbps() -
                           unaffected_load;
  return std::max(available, kMinRecoveryBandwidthMbps);
}

namespace {

/// Solo recovery duration estimate (no contention): used by the
/// ShortestFirst ordering policy.
double solo_duration_estimate(const RecoveryPlan& plan,
                              const ResourcePool& pool,
                              const std::vector<int>& failed) {
  double duration = plan.lead_hours + plan.fixed_restore_hours;
  if (plan.needs_transfer()) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int dev : plan.shared_devices) {
      bottleneck =
          std::min(bottleneck, recovery_bandwidth_mbps(pool, dev, failed));
    }
    duration += units::transfer_hours(plan.transfer_gb, bottleneck);
  }
  return duration;
}

}  // namespace

std::vector<AppRecoveryResult> simulate_recovery(
    const ScenarioSpec& scenario, const ApplicationList& apps,
    const std::vector<AppAssignment>& assignments, const ResourcePool& pool,
    const ModelParams& params) {
  params.validate();
  const std::vector<int> failed =
      affected_apps(scenario, assignments, pool.topology());

  // Plan every affected app before scheduling so ordering policies can look
  // at the plans.
  std::map<int, RecoveryPlan> plans;
  for (int app_id : failed) {
    plans.emplace(app_id,
                  plan_recovery(apps.at(static_cast<std::size_t>(app_id)),
                                assignments.at(static_cast<std::size_t>(app_id)),
                                pool, scenario.scope, params));
  }

  // Serialization order on contended resources. The paper's rule: recovery
  // tasks for applications with higher penalty rates execute first (§3.2.2).
  std::vector<int> order = failed;
  switch (params.recovery_order) {
    case RecoveryOrder::PriorityPenalty:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto& pa = apps.at(static_cast<std::size_t>(a));
        const auto& pb = apps.at(static_cast<std::size_t>(b));
        if (pa.penalty_rate_sum() != pb.penalty_rate_sum()) {
          return pa.penalty_rate_sum() > pb.penalty_rate_sum();
        }
        return a < b;  // deterministic tie-break
      });
      break;
    case RecoveryOrder::ShortestFirst:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double da = solo_duration_estimate(plans.at(a), pool, failed);
        const double db = solo_duration_estimate(plans.at(b), pool, failed);
        if (da != db) return da < db;
        return a < b;
      });
      break;
    case RecoveryOrder::FifoById:
      std::sort(order.begin(), order.end());
      break;
  }

  std::map<int, double> device_free_at;  // device id → next free time (h)
  std::vector<AppRecoveryResult> results;
  results.reserve(order.size());

  for (int app_id : order) {
    const RecoveryPlan& plan = plans.at(app_id);

    AppRecoveryResult res;
    res.app_id = app_id;
    res.action = plan.action;
    res.copy = plan.copy;
    res.loss_hours = plan.loss_hours;

    if (plan.shared_devices.empty()) {
      // Snapshot revert (internal to the app's own array), unrecoverable:
      // nothing contended.
      res.outage_hours = plan.lead_hours + plan.fixed_restore_hours;
    } else {
      // The recovery operation begins when the hardware is repaired AND
      // every shared device has finished serving higher-priority
      // recoveries. Failover serializes its fixed bring-up time on the
      // spare compute; reconstructs additionally stream the dataset at the
      // bottleneck device's recovery bandwidth.
      double start = plan.lead_hours;
      for (int dev : plan.shared_devices) {
        const auto it = device_free_at.find(dev);
        if (it != device_free_at.end()) start = std::max(start, it->second);
      }
      double duration = plan.fixed_restore_hours;
      if (plan.needs_transfer()) {
        double bottleneck = std::numeric_limits<double>::infinity();
        for (int dev : plan.shared_devices) {
          bottleneck = std::min(bottleneck,
                                recovery_bandwidth_mbps(pool, dev, failed));
        }
        DEPSTOR_ENSURES(bottleneck > 0.0 &&
                        bottleneck !=
                            std::numeric_limits<double>::infinity());
        duration += units::transfer_hours(plan.transfer_gb, bottleneck);
      }
      const double end = start + duration;
      for (int dev : plan.shared_devices) device_free_at[dev] = end;
      res.outage_hours = end;
    }
    results.push_back(res);
  }
  return results;
}

}  // namespace depstor
