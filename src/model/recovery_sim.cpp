#include "model/recovery_sim.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

void enumerate_scenarios_into(std::vector<ScenarioSpec>& out,
                              const ApplicationList& apps,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const FailureModel& failures, bool with_names,
                              ScenarioScratch* scratch) {
  failures.validate();
  out.clear();
  ScenarioScratch local;
  ScenarioScratch& sc = scratch != nullptr ? *scratch : local;

  // One data-object failure per assigned application.
  for (const auto& app : apps) {
    const auto& asg = assignments.at(static_cast<std::size_t>(app.id));
    if (!asg.assigned) continue;
    ScenarioSpec s;
    s.scope = FailureScope::DataObject;
    s.failed_app = app.id;
    s.annual_rate = failures.data_object_rate;
    if (with_names) s.name = "object(" + app.name + ")";
    out.push_back(std::move(s));
  }

  // One array failure per array hosting at least one primary copy.
  std::vector<int>& primary_arrays = sc.arrays;
  std::vector<int>& primary_sites = sc.sites;
  primary_arrays.clear();
  primary_sites.clear();
  for (const auto& asg : assignments) {
    if (!asg.assigned) continue;
    primary_arrays.push_back(asg.primary_array);
    primary_sites.push_back(asg.primary_site);
  }
  std::sort(primary_arrays.begin(), primary_arrays.end());
  primary_arrays.erase(
      std::unique(primary_arrays.begin(), primary_arrays.end()),
      primary_arrays.end());
  for (int array_id : primary_arrays) {
    ScenarioSpec s;
    s.scope = FailureScope::DiskArray;
    s.failed_array = array_id;
    s.annual_rate = failures.disk_array_rate;
    if (with_names) {
      s.name = "array(" + pool.device(array_id).type.name + "#" +
               std::to_string(array_id) + ")";
    }
    out.push_back(std::move(s));
  }

  // One disaster per site hosting at least one primary copy.
  std::sort(primary_sites.begin(), primary_sites.end());
  primary_sites.erase(std::unique(primary_sites.begin(), primary_sites.end()),
                      primary_sites.end());
  for (int site : primary_sites) {
    ScenarioSpec s;
    s.scope = FailureScope::SiteDisaster;
    s.failed_site = site;
    s.annual_rate = failures.site_disaster_rate;
    if (with_names) s.name = "site(" + pool.topology().site(site).name + ")";
    out.push_back(std::move(s));
  }

  // One regional disaster per region hosting primaries (when enabled).
  if (failures.regional_disaster_rate > 0.0) {
    std::vector<int>& regions = sc.regions;
    regions.clear();
    for (int site : primary_sites) {
      regions.push_back(pool.topology().site(site).region);
    }
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
    for (int region : regions) {
      ScenarioSpec s;
      s.scope = FailureScope::RegionalDisaster;
      s.failed_region = region;
      s.annual_rate = failures.regional_disaster_rate;
      if (with_names) s.name = "region(" + std::to_string(region) + ")";
      out.push_back(std::move(s));
    }
  }
}

std::vector<ScenarioSpec> enumerate_scenarios(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures, bool with_names) {
  std::vector<ScenarioSpec> out;
  enumerate_scenarios_into(out, apps, assignments, pool, failures, with_names);
  return out;
}

namespace {

bool sorted_intersects(const std::vector<int>& a, const std::vector<int>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

/// Arrays a Room node takes out: the site's primary-hosting arrays, ranked
/// ascending by device id, sliced modulo the site's room count. Recomputed
/// at enumeration time because it depends on the candidate's pool.
void room_failed_arrays(std::vector<int>& out, const FailureDomainTree& tree,
                        const DomainNode& room,
                        const std::vector<int>& primary_arrays,
                        const ResourcePool& pool) {
  out.clear();
  const int rooms = tree.room_count(room.site);
  int rank = 0;
  for (int array_id : primary_arrays) {
    if (pool.device(array_id).site_id != room.site) continue;
    if (rank % rooms == room.room_index) out.push_back(array_id);
    ++rank;
  }
}

}  // namespace

void enumerate_scenarios_into(std::vector<ScenarioSpec>& out,
                              const ApplicationList& apps,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const ScenarioModel& model, bool with_names,
                              ScenarioScratch* scratch) {
  if (!model.has_tree()) {
    enumerate_scenarios_into(out, apps, assignments, pool, model.flat,
                             with_names, scratch);
    return;
  }
  const FailureDomainTree& tree = *model.tree;
  out.clear();
  ScenarioScratch local;
  ScenarioScratch& sc = scratch != nullptr ? *scratch : local;

  // Data-object failures are human/software error — not domain-correlated.
  for (const auto& app : apps) {
    const auto& asg = assignments.at(static_cast<std::size_t>(app.id));
    if (!asg.assigned) continue;
    ScenarioSpec s;
    s.scope = FailureScope::DataObject;
    s.failed_app = app.id;
    s.annual_rate = tree.data_object_rate();
    if (with_names) s.name = "object(" + app.name + ")";
    out.push_back(std::move(s));
  }

  std::vector<int>& primary_arrays = sc.arrays;
  std::vector<int>& primary_sites = sc.sites;
  primary_arrays.clear();
  primary_sites.clear();
  for (const auto& asg : assignments) {
    if (!asg.assigned) continue;
    primary_arrays.push_back(asg.primary_array);
    primary_sites.push_back(asg.primary_site);
  }
  std::sort(primary_arrays.begin(), primary_arrays.end());
  primary_arrays.erase(
      std::unique(primary_arrays.begin(), primary_arrays.end()),
      primary_arrays.end());
  std::sort(primary_sites.begin(), primary_sites.end());
  primary_sites.erase(std::unique(primary_sites.begin(), primary_sites.end()),
                      primary_sites.end());

  // Array failures, scaled by the hosting site's correlation chain (×1.0 —
  // hence bit-exact — on a degenerate tree).
  for (int array_id : primary_arrays) {
    ScenarioSpec s;
    s.scope = FailureScope::DiskArray;
    s.failed_array = array_id;
    const int host = pool.device(array_id).site_id;
    s.annual_rate =
        tree.disk_array_rate() * tree.correlation_chain(tree.site_node(host));
    if (with_names) {
      s.name = "array(" + pool.device(array_id).type.name + "#" +
               std::to_string(array_id) + ")";
    }
    out.push_back(std::move(s));
  }

  // Room destroys: each room fails its slice of the site's primary arrays.
  for (const auto& n : tree.nodes()) {
    if (n.level != DomainLevel::Room || n.rate <= 0.0) continue;
    room_failed_arrays(sc.site_arrays, tree, n, primary_arrays, pool);
    if (sc.site_arrays.empty()) continue;
    ScenarioSpec s;
    s.scope = FailureScope::Domain;
    s.domain_node = n.id;
    s.repair_hours = n.repair_hours;
    s.failed_arrays = sc.site_arrays;
    s.annual_rate = tree.effective_rate(n.id);
    if (with_names) s.name = "room(" + n.name + ")";
    out.push_back(std::move(s));
  }

  // Site disasters keep the legacy scope (and its survival/repair
  // semantics); the rate comes from the site's node, correlation-scaled.
  for (int site : primary_sites) {
    ScenarioSpec s;
    s.scope = FailureScope::SiteDisaster;
    s.failed_site = site;
    s.annual_rate = tree.effective_rate(tree.site_node(site));
    if (with_names) s.name = "site(" + pool.topology().site(site).name + ")";
    out.push_back(std::move(s));
  }

  // Zone destroys: a multi-site disaster over the zone's member sites.
  for (const auto& n : tree.nodes()) {
    if (n.level != DomainLevel::Zone || n.rate <= 0.0) continue;
    if (!sorted_intersects(tree.subtree_sites(n.id), primary_sites)) continue;
    ScenarioSpec s;
    s.scope = FailureScope::Domain;
    s.domain_node = n.id;
    s.repair_hours = n.repair_hours;
    s.failed_sites = tree.subtree_sites(n.id);
    s.annual_rate = tree.effective_rate(n.id);
    if (with_names) s.name = "zone(" + n.name + ")";
    out.push_back(std::move(s));
  }

  // Regional disasters: legacy scope, per-region node. A degenerate tree's
  // per-node rate equals the flat knob, so the rate>0 gate and the ascending
  // region order reproduce the flat list exactly.
  for (const auto& n : tree.nodes()) {
    if (n.level != DomainLevel::Region || n.rate <= 0.0) continue;
    if (!sorted_intersects(tree.subtree_sites(n.id), primary_sites)) continue;
    ScenarioSpec s;
    s.scope = FailureScope::RegionalDisaster;
    s.failed_region = n.region;
    s.annual_rate = tree.effective_rate(n.id);
    if (with_names) s.name = "region(" + std::to_string(n.region) + ")";
    out.push_back(std::move(s));
  }

  // Outage causes (power loss, network partition): the subtree is
  // unreachable but its data survives — recovery is fail-over or
  // wait-for-repair. Never present on a degenerate tree.
  for (const auto& n : tree.nodes()) {
    if (n.level == DomainLevel::Root || n.outage_rate <= 0.0) continue;
    ScenarioSpec s;
    if (n.level == DomainLevel::Room) {
      room_failed_arrays(sc.site_arrays, tree, n, primary_arrays, pool);
      if (sc.site_arrays.empty()) continue;
      s.failed_arrays = sc.site_arrays;
    } else {
      if (!sorted_intersects(tree.subtree_sites(n.id), primary_sites)) {
        continue;
      }
      s.failed_sites = tree.subtree_sites(n.id);
    }
    s.scope = FailureScope::Domain;
    s.domain_node = n.id;
    s.data_intact = true;
    s.repair_hours = n.repair_hours;
    s.annual_rate = tree.effective_outage_rate(n.id);
    if (with_names) s.name = "outage(" + n.name + ")";
    out.push_back(std::move(s));
  }
}

std::vector<ScenarioSpec> enumerate_scenarios(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model, bool with_names) {
  std::vector<ScenarioSpec> out;
  enumerate_scenarios_into(out, apps, assignments, pool, model, with_names);
  return out;
}

void affected_apps_into(std::vector<int>& out, const ScenarioSpec& scenario,
                        const std::vector<AppAssignment>& assignments,
                        const Topology& topology) {
  out.clear();
  for (const auto& asg : assignments) {
    if (!asg.assigned) continue;
    switch (scenario.scope) {
      case FailureScope::DataObject:
        if (asg.app_id == scenario.failed_app) out.push_back(asg.app_id);
        break;
      case FailureScope::DiskArray:
        if (asg.primary_array == scenario.failed_array) {
          out.push_back(asg.app_id);
        }
        break;
      case FailureScope::SiteDisaster:
        if (asg.primary_site == scenario.failed_site) {
          out.push_back(asg.app_id);
        }
        break;
      case FailureScope::RegionalDisaster:
        if (topology.site(asg.primary_site).region ==
            scenario.failed_region) {
          out.push_back(asg.app_id);
        }
        break;
      case FailureScope::Domain:
        // The subtree's footprint is precomputed (sorted) at enumeration.
        if (std::binary_search(scenario.failed_sites.begin(),
                               scenario.failed_sites.end(),
                               asg.primary_site) ||
            std::binary_search(scenario.failed_arrays.begin(),
                               scenario.failed_arrays.end(),
                               asg.primary_array)) {
          out.push_back(asg.app_id);
        }
        break;
    }
  }
}

std::vector<int> affected_apps(const ScenarioSpec& scenario,
                               const std::vector<AppAssignment>& assignments,
                               const Topology& topology) {
  std::vector<int> out;
  affected_apps_into(out, scenario, assignments, topology);
  return out;
}

double recovery_bandwidth_mbps(const ResourcePool& pool, int device_id,
                               const std::vector<int>& failed) {
  double unaffected_load = 0.0;
  for (const auto& alloc : pool.allocations(device_id)) {
    const bool is_failed = std::find(failed.begin(), failed.end(),
                                     alloc.app_id) != failed.end();
    if (!is_failed) unaffected_load += alloc.bandwidth_mbps;
  }
  const double available = pool.device(device_id).bandwidth_mbps() -
                           unaffected_load;
  return std::max(available, kMinRecoveryBandwidthMbps);
}

namespace {

/// Solo recovery duration estimate (no contention): used by the
/// ShortestFirst ordering policy.
double solo_duration_estimate(const RecoveryPlan& plan,
                              const ResourcePool& pool,
                              const std::vector<int>& failed) {
  double duration = plan.lead_hours + plan.fixed_restore_hours;
  if (plan.needs_transfer()) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int dev : plan.shared_devices) {
      bottleneck =
          std::min(bottleneck, recovery_bandwidth_mbps(pool, dev, failed));
    }
    duration += units::transfer_hours(plan.transfer_gb, bottleneck);
  }
  return duration;
}

/// Plan of `app_id` inside the workspace (plans are parallel to `failed`).
const RecoveryPlan& plan_of(const RecoveryWorkspace& ws, int app_id) {
  for (std::size_t i = 0; i < ws.failed.size(); ++i) {
    if (ws.failed[i] == app_id) return ws.plans[i];
  }
  throw InternalError("recovery plan missing for app " +
                      std::to_string(app_id));
}

}  // namespace

void simulate_recovery_into(std::vector<AppRecoveryResult>& out,
                            const ScenarioSpec& scenario,
                            const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool, const ModelParams& params,
                            RecoveryWorkspace& ws) {
  params.validate();
  out.clear();
  affected_apps_into(ws.failed, scenario, assignments, pool.topology());
  const std::vector<int>& failed = ws.failed;

  // Plan every affected app before scheduling so ordering policies can look
  // at the plans. Plans are rebuilt in place, reusing each slot's buffers.
  if (ws.plans.size() < failed.size()) ws.plans.resize(failed.size());
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const int app_id = failed[i];
    plan_recovery_into(ws.plans[i],
                       apps.at(static_cast<std::size_t>(app_id)),
                       assignments.at(static_cast<std::size_t>(app_id)), pool,
                       scenario, params);
  }

  // Serialization order on contended resources. The paper's rule: recovery
  // tasks for applications with higher penalty rates execute first (§3.2.2).
  std::vector<int>& order = ws.order;
  order.assign(failed.begin(), failed.end());
  switch (params.recovery_order) {
    case RecoveryOrder::PriorityPenalty:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto& pa = apps.at(static_cast<std::size_t>(a));
        const auto& pb = apps.at(static_cast<std::size_t>(b));
        if (pa.penalty_rate_sum() != pb.penalty_rate_sum()) {
          return pa.penalty_rate_sum() > pb.penalty_rate_sum();
        }
        return a < b;  // deterministic tie-break
      });
      break;
    case RecoveryOrder::ShortestFirst:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double da =
            solo_duration_estimate(plan_of(ws, a), pool, failed);
        const double db =
            solo_duration_estimate(plan_of(ws, b), pool, failed);
        if (da != db) return da < db;
        return a < b;
      });
      break;
    case RecoveryOrder::FifoById:
      std::sort(order.begin(), order.end());
      break;
  }

  // device id → next free time (hours); flat map, scenarios touch few devices.
  std::vector<std::pair<int, double>>& device_free_at = ws.device_free_at;
  device_free_at.clear();
  auto free_at = [&](int dev) -> double {
    for (const auto& [id, t] : device_free_at) {
      if (id == dev) return t;
    }
    return 0.0;
  };
  auto set_free_at = [&](int dev, double t) {
    for (auto& [id, slot] : device_free_at) {
      if (id == dev) {
        slot = t;
        return;
      }
    }
    device_free_at.emplace_back(dev, t);
  };

  out.reserve(order.size());
  for (int app_id : order) {
    const RecoveryPlan& plan = plan_of(ws, app_id);

    AppRecoveryResult res;
    res.app_id = app_id;
    res.action = plan.action;
    res.copy = plan.copy;
    res.loss_hours = plan.loss_hours;

    if (plan.shared_devices.empty()) {
      // Snapshot revert (internal to the app's own array), unrecoverable:
      // nothing contended.
      res.outage_hours = plan.lead_hours + plan.fixed_restore_hours;
    } else {
      // The recovery operation begins when the hardware is repaired AND
      // every shared device has finished serving higher-priority
      // recoveries. Failover serializes its fixed bring-up time on the
      // spare compute; reconstructs additionally stream the dataset at the
      // bottleneck device's recovery bandwidth.
      double start = plan.lead_hours;
      for (int dev : plan.shared_devices) {
        start = std::max(start, free_at(dev));
      }
      double duration = plan.fixed_restore_hours;
      if (plan.needs_transfer()) {
        double bottleneck = std::numeric_limits<double>::infinity();
        for (int dev : plan.shared_devices) {
          bottleneck = std::min(bottleneck,
                                recovery_bandwidth_mbps(pool, dev, failed));
        }
        DEPSTOR_ENSURES(bottleneck > 0.0 &&
                        bottleneck !=
                            std::numeric_limits<double>::infinity());
        duration += units::transfer_hours(plan.transfer_gb, bottleneck);
      }
      const double end = start + duration;
      for (int dev : plan.shared_devices) set_free_at(dev, end);
      res.outage_hours = end;
    }
    out.push_back(res);
  }
}

std::vector<AppRecoveryResult> simulate_recovery(
    const ScenarioSpec& scenario, const ApplicationList& apps,
    const std::vector<AppAssignment>& assignments, const ResourcePool& pool,
    const ModelParams& params) {
  std::vector<AppRecoveryResult> out;
  RecoveryWorkspace ws;
  simulate_recovery_into(out, scenario, apps, assignments, pool, params, ws);
  return out;
}

}  // namespace depstor
