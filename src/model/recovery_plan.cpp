#include "model/recovery_plan.hpp"

#include <algorithm>

#include "model/recovery_sim.hpp"
#include "util/check.hpp"

namespace depstor {

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::Failover:
      return "failover";
    case RecoveryAction::SnapshotRevert:
      return "snapshot-revert";
    case RecoveryAction::Reconstruct:
      return "reconstruct";
    case RecoveryAction::WaitRepair:
      return "wait-repair";
    case RecoveryAction::Unrecoverable:
      return "unrecoverable";
  }
  return "?";
}

namespace {

double repair_lead_hours(FailureScope scope, const ModelParams& params) {
  switch (scope) {
    case FailureScope::DataObject:
      return params.repair_data_object_hours;
    case FailureScope::DiskArray:
      return params.repair_disk_array_hours;
    case FailureScope::SiteDisaster:
      return params.repair_site_hours;
    case FailureScope::RegionalDisaster:
      return params.repair_regional_hours;
    case FailureScope::Domain:
      // Domain scenarios carry their node's repair lead in the spec; the
      // scenario-aware planner never consults this table for them.
      throw InternalError("repair lead of a Domain scenario is per-node");
  }
  return 0.0;
}

}  // namespace

RecoveryPlan plan_recovery(const ApplicationSpec& app, const AppAssignment& asg,
                           const ResourcePool& pool, FailureScope scope,
                           const ModelParams& params) {
  RecoveryPlan plan;
  plan_recovery_into(plan, app, asg, pool, scope, params);
  return plan;
}

void plan_recovery_into(RecoveryPlan& out, const ApplicationSpec& app,
                        const AppAssignment& asg, const ResourcePool& pool,
                        FailureScope scope, const ModelParams& params) {
  DEPSTOR_EXPECTS(asg.assigned);
  DEPSTOR_EXPECTS(app.id == asg.app_id);

  RecoveryPlan& plan = out;
  plan.shared_devices.clear();  // keep capacity, reset everything else
  plan.action = RecoveryAction::Unrecoverable;
  plan.copy = CopyLevel::None;
  plan.loss_hours = 0.0;
  plan.lead_hours = 0.0;
  plan.fixed_restore_hours = 0.0;
  plan.transfer_gb = 0.0;
  plan.app_id = app.id;
  plan.scope = scope;

  double staleness = 0.0;
  plan.copy = best_recovery_level(app, asg, pool, scope, &staleness);

  if (plan.copy == CopyLevel::None) {
    plan.action = RecoveryAction::Unrecoverable;
    plan.loss_hours = params.unprotected_loss_hours;
    plan.lead_hours = params.unprotected_loss_hours;
    return;
  }
  plan.loss_hours = staleness;

  // Failover: allowed whenever the technique is failover-capable and the
  // freshest surviving copy is the mirror (§2.1: fail over, fail back later).
  // Concurrent failovers serialize on the spare compute at the target site:
  // bringing applications up is a sequential admin operation, so a site
  // disaster that fails many applications over to one secondary pays
  // `failover_hours` per position in the queue.
  if (asg.technique.recovery == RecoveryMode::Failover &&
      plan.copy == CopyLevel::Mirror) {
    plan.action = RecoveryAction::Failover;
    plan.lead_hours = params.detection_hours;
    plan.fixed_restore_hours = params.failover_hours;
    DEPSTOR_ENSURES(asg.failover_compute >= 0);
    plan.shared_devices.push_back(asg.failover_compute);
    return;
  }

  // Data object failure with a surviving snapshot: in-place revert.
  if (scope == FailureScope::DataObject && plan.copy == CopyLevel::Snapshot) {
    plan.action = RecoveryAction::SnapshotRevert;
    plan.lead_hours = params.detection_hours;
    plan.fixed_restore_hours = params.snapshot_restore_hours;
    return;
  }

  // Everything else is a bulk reconstruct onto the (repaired) primary array.
  plan.action = RecoveryAction::Reconstruct;
  double repair = repair_lead_hours(scope, params);
  if (scope == FailureScope::DiskArray &&
      pool.has_spare_array(asg.primary_site,
                           pool.device(asg.primary_array).type.name)) {
    // A hot-spare enclosure of the same model stands by at the site.
    repair = std::min(repair, params.repair_with_spare_hours);
  }
  plan.lead_hours = params.detection_hours + repair;
  plan.transfer_gb = app.data_size_gb;
  plan.shared_devices.push_back(asg.primary_array);
  switch (plan.copy) {
    case CopyLevel::Mirror:
      DEPSTOR_ENSURES(asg.mirror_array >= 0 && asg.mirror_link >= 0);
      plan.shared_devices.push_back(asg.mirror_array);
      plan.shared_devices.push_back(asg.mirror_link);
      break;
    case CopyLevel::TapeBackup: {
      DEPSTOR_ENSURES(asg.tape_library >= 0);
      plan.shared_devices.push_back(asg.tape_library);
      plan.fixed_restore_hours = params.tape_load_hours;
      // Restoring an incremental cycle replays the full plus (worst case)
      // every incremental of the cycle, with a mount/locate overhead each.
      const int incrementals = asg.backup.incrementals_per_cycle();
      if (incrementals > 0) {
        plan.transfer_gb +=
            incrementals * incremental_size_gb(app, asg.backup);
        plan.fixed_restore_hours +=
            incrementals * params.incremental_load_hours;
      }
      break;
    }
    case CopyLevel::Vault:
      DEPSTOR_ENSURES(asg.tape_library >= 0);
      plan.shared_devices.push_back(asg.tape_library);
      plan.fixed_restore_hours = params.tape_load_hours;
      plan.lead_hours += params.vault_retrieval_hours;
      break;
    case CopyLevel::Snapshot:
      // Snapshot reconstruct outside a data-object failure cannot happen:
      // the snapshot does not survive array/site scopes.
      throw InternalError("snapshot reconstruct for scope " +
                          std::string(to_string(scope)));
    case CopyLevel::None:
      throw InternalError("unreachable: copy == None");
  }
}

void plan_recovery_into(RecoveryPlan& out, const ApplicationSpec& app,
                        const AppAssignment& asg, const ResourcePool& pool,
                        const ScenarioSpec& scenario,
                        const ModelParams& params) {
  if (scenario.scope != FailureScope::Domain) {
    plan_recovery_into(out, app, asg, pool, scenario.scope, params);
    return;
  }
  DEPSTOR_EXPECTS(asg.assigned);
  DEPSTOR_EXPECTS(app.id == asg.app_id);

  RecoveryPlan& plan = out;
  plan.shared_devices.clear();  // keep capacity, reset everything else
  plan.action = RecoveryAction::Unrecoverable;
  plan.copy = CopyLevel::None;
  plan.loss_hours = 0.0;
  plan.lead_hours = 0.0;
  plan.fixed_restore_hours = 0.0;
  plan.transfer_gb = 0.0;
  plan.app_id = app.id;
  plan.scope = scenario.scope;

  double staleness = 0.0;
  plan.copy = best_recovery_level(app, asg, pool, scenario, &staleness);

  if (scenario.data_intact) {
    // Outage (power loss, network partition): every copy is physically
    // fine, so no data is lost either way. Fail over to a mirror outside
    // the unreachable domain when the technique allows it; otherwise the
    // application simply waits out detection + the domain's repair lead.
    if (asg.technique.recovery == RecoveryMode::Failover &&
        plan.copy == CopyLevel::Mirror) {
      plan.action = RecoveryAction::Failover;
      plan.lead_hours = params.detection_hours;
      plan.fixed_restore_hours = params.failover_hours;
      DEPSTOR_ENSURES(asg.failover_compute >= 0);
      plan.shared_devices.push_back(asg.failover_compute);
      return;
    }
    plan.action = RecoveryAction::WaitRepair;
    plan.copy = CopyLevel::None;
    plan.lead_hours = params.detection_hours + scenario.repair_hours;
    return;
  }

  // Destroy (zone or room): the legacy flow with the failed subtree's
  // survival matrix and the node's repair lead.
  if (plan.copy == CopyLevel::None) {
    plan.action = RecoveryAction::Unrecoverable;
    plan.loss_hours = params.unprotected_loss_hours;
    plan.lead_hours = params.unprotected_loss_hours;
    return;
  }
  plan.loss_hours = staleness;

  if (asg.technique.recovery == RecoveryMode::Failover &&
      plan.copy == CopyLevel::Mirror) {
    plan.action = RecoveryAction::Failover;
    plan.lead_hours = params.detection_hours;
    plan.fixed_restore_hours = params.failover_hours;
    DEPSTOR_ENSURES(asg.failover_compute >= 0);
    plan.shared_devices.push_back(asg.failover_compute);
    return;
  }

  plan.action = RecoveryAction::Reconstruct;
  // Hot spares shorten single-array repairs, not a room or zone loss:
  // replacing every enclosure of a domain is a build-out, so the node's
  // repair lead applies untrimmed.
  plan.lead_hours = params.detection_hours + scenario.repair_hours;
  plan.transfer_gb = app.data_size_gb;
  plan.shared_devices.push_back(asg.primary_array);
  switch (plan.copy) {
    case CopyLevel::Mirror:
      DEPSTOR_ENSURES(asg.mirror_array >= 0 && asg.mirror_link >= 0);
      plan.shared_devices.push_back(asg.mirror_array);
      plan.shared_devices.push_back(asg.mirror_link);
      break;
    case CopyLevel::TapeBackup: {
      DEPSTOR_ENSURES(asg.tape_library >= 0);
      plan.shared_devices.push_back(asg.tape_library);
      plan.fixed_restore_hours = params.tape_load_hours;
      const int incrementals = asg.backup.incrementals_per_cycle();
      if (incrementals > 0) {
        plan.transfer_gb +=
            incrementals * incremental_size_gb(app, asg.backup);
        plan.fixed_restore_hours +=
            incrementals * params.incremental_load_hours;
      }
      break;
    }
    case CopyLevel::Vault:
      DEPSTOR_ENSURES(asg.tape_library >= 0);
      plan.shared_devices.push_back(asg.tape_library);
      plan.fixed_restore_hours = params.tape_load_hours;
      plan.lead_hours += params.vault_retrieval_hours;
      break;
    case CopyLevel::Snapshot:
      // A surviving snapshot implies an intact primary array and site, so
      // the app was not affected by the destroy in the first place.
      throw InternalError("snapshot reconstruct for a domain destroy");
    case CopyLevel::None:
      throw InternalError("unreachable: copy == None");
  }
}

RecoveryPlan plan_recovery(const ApplicationSpec& app, const AppAssignment& asg,
                           const ResourcePool& pool,
                           const ScenarioSpec& scenario,
                           const ModelParams& params) {
  RecoveryPlan plan;
  plan_recovery_into(plan, app, asg, pool, scenario, params);
  return plan;
}

}  // namespace depstor
