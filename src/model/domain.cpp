#include "model/domain.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace depstor {

const char* to_string(DomainLevel level) {
  switch (level) {
    case DomainLevel::Root:
      return "root";
    case DomainLevel::Region:
      return "region";
    case DomainLevel::Zone:
      return "zone";
    case DomainLevel::Site:
      return "site";
    case DomainLevel::Room:
      return "room";
  }
  return "?";
}

namespace {

int site_id_by_name(const Topology& topology, const std::string& name,
                    const std::string& where) {
  for (const auto& s : topology.sites) {
    if (s.name == name) return s.id;
  }
  throw InvalidArgument("failure domains: " + where + " references unknown "
                        "site \"" + name + "\"");
}

}  // namespace

FailureDomainTree FailureDomainTree::degenerate(const Topology& topology,
                                                const FailureModel& flat) {
  return build(topology, flat, {});
}

FailureDomainTree FailureDomainTree::build(
    const Topology& topology, const FailureModel& flat,
    const std::vector<DomainDecl>& decls) {
  topology.validate();
  flat.validate();

  FailureDomainTree tree;
  tree.data_object_rate_ = flat.data_object_rate;
  tree.disk_array_rate_ = flat.disk_array_rate;
  tree.degenerate_ = decls.empty();

  auto check_name = [&](const std::string& name) {
    DEPSTOR_EXPECTS_MSG(!name.empty(), "failure domains: empty domain name");
    for (const auto& n : tree.nodes_) {
      if (n.name == name) {
        throw InvalidArgument("failure domains: duplicate domain name \"" +
                              name + "\"");
      }
    }
  };

  DomainNode root;
  root.id = 0;
  root.level = DomainLevel::Root;
  root.name = "root";
  tree.nodes_.push_back(std::move(root));

  // Region skeleton: one node per distinct region, ascending region id,
  // defaulting to the flat regional-disaster rate.
  std::vector<int> regions;
  for (const auto& s : topology.sites) regions.push_back(s.region);
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());

  std::vector<int> region_node(regions.empty() ? 0 : regions.back() + 1, -1);
  for (int region : regions) {
    DomainNode n;
    n.id = static_cast<int>(tree.nodes_.size());
    n.parent = 0;
    n.level = DomainLevel::Region;
    n.region = region;
    n.rate = flat.regional_disaster_rate;
    n.name = "region-" + std::to_string(region);
    const DomainDecl* decl = nullptr;
    for (const auto& d : decls) {
      if (d.kind == DomainDecl::Kind::Region && d.region == region) {
        if (decl != nullptr) {
          throw InvalidArgument(
              "failure domains: region " + std::to_string(region) +
              " declared twice");
        }
        decl = &d;
      }
    }
    if (decl != nullptr) {
      if (!decl->name.empty()) n.name = decl->name;
      if (decl->rate >= 0.0) n.rate = decl->rate;
      n.outage_rate = decl->outage_rate;
      n.correlation = decl->correlation;
      n.repair_hours = decl->repair_hours;
    }
    check_name(n.name);
    region_node[static_cast<std::size_t>(region)] = n.id;
    tree.nodes_.push_back(std::move(n));
  }
  for (const auto& d : decls) {
    if (d.kind != DomainDecl::Kind::Region) continue;
    if (d.region < 0 || d.region >= static_cast<int>(region_node.size()) ||
        region_node[static_cast<std::size_t>(d.region)] < 0) {
      throw InvalidArgument("failure domains: region domain \"" + d.name +
                            "\" names region " + std::to_string(d.region) +
                            " which no site belongs to");
    }
  }

  // Zones: declaration order, each a child of its region node, claiming a
  // disjoint set of member sites.
  std::vector<int> zone_of_site(topology.sites.size(), -1);
  for (const auto& d : decls) {
    if (d.kind != DomainDecl::Kind::Zone) continue;
    if (d.region < 0 || d.region >= static_cast<int>(region_node.size()) ||
        region_node[static_cast<std::size_t>(d.region)] < 0) {
      throw InvalidArgument("failure domains: zone \"" + d.name +
                            "\" names region " + std::to_string(d.region) +
                            " which no site belongs to");
    }
    if (d.sites.empty()) {
      throw InvalidArgument("failure domains: zone \"" + d.name +
                            "\" lists no member sites");
    }
    DomainNode n;
    n.id = static_cast<int>(tree.nodes_.size());
    n.parent = region_node[static_cast<std::size_t>(d.region)];
    n.level = DomainLevel::Zone;
    n.region = d.region;
    n.name = d.name;
    n.rate = std::max(d.rate, 0.0);
    n.outage_rate = d.outage_rate;
    n.correlation = d.correlation;
    n.repair_hours = d.repair_hours;
    check_name(n.name);
    for (const auto& member : d.sites) {
      const int site = site_id_by_name(topology, member, "zone \"" + d.name + "\"");
      if (topology.site(site).region != d.region) {
        throw InvalidArgument("failure domains: zone \"" + d.name +
                              "\" member site \"" + member +
                              "\" is not in region " + std::to_string(d.region));
      }
      if (zone_of_site[static_cast<std::size_t>(site)] >= 0) {
        throw InvalidArgument("failure domains: site \"" + member +
                              "\" belongs to more than one zone");
      }
      zone_of_site[static_cast<std::size_t>(site)] = n.id;
    }
    tree.nodes_.push_back(std::move(n));
  }

  // Site skeleton: ascending site id, parented to the claiming zone (else
  // the region node), defaulting to the flat site-disaster rate.
  std::vector<int> site_node(topology.sites.size(), -1);
  for (const auto& s : topology.sites) {
    DomainNode n;
    n.id = static_cast<int>(tree.nodes_.size());
    const int zone = zone_of_site[static_cast<std::size_t>(s.id)];
    n.parent = zone >= 0 ? zone : region_node[static_cast<std::size_t>(s.region)];
    n.level = DomainLevel::Site;
    n.site = s.id;
    n.region = s.region;
    n.rate = flat.site_disaster_rate;
    n.name = "site-" + s.name;
    const DomainDecl* decl = nullptr;
    for (const auto& d : decls) {
      if (d.kind == DomainDecl::Kind::Site &&
          site_id_by_name(topology, d.site, "site domain \"" + d.name + "\"") ==
              s.id) {
        if (decl != nullptr) {
          throw InvalidArgument("failure domains: site \"" + s.name +
                                "\" declared twice");
        }
        decl = &d;
      }
    }
    if (decl != nullptr) {
      if (!decl->name.empty()) n.name = decl->name;
      if (decl->rate >= 0.0) n.rate = decl->rate;
      n.outage_rate = decl->outage_rate;
      n.correlation = decl->correlation;
      n.repair_hours = decl->repair_hours;
    }
    check_name(n.name);
    site_node[static_cast<std::size_t>(s.id)] = n.id;
    tree.nodes_.push_back(std::move(n));
  }

  // Rooms: declaration order, children of their site node. Rooms partition
  // the site's in-use arrays (by device-id rank modulo room count) — the
  // partition itself is computed at scenario-enumeration time because it
  // depends on the candidate's pool, not the environment.
  for (const auto& d : decls) {
    if (d.kind != DomainDecl::Kind::Room) continue;
    const int site = site_id_by_name(topology, d.site, "room \"" + d.name + "\"");
    DomainNode n;
    n.id = static_cast<int>(tree.nodes_.size());
    n.parent = site_node[static_cast<std::size_t>(site)];
    n.level = DomainLevel::Room;
    n.site = site;
    n.region = topology.site(site).region;
    n.name = d.name;
    n.rate = d.rate >= 0.0 ? d.rate : flat.disk_array_rate;
    n.outage_rate = d.outage_rate;
    n.correlation = d.correlation;
    n.repair_hours = d.repair_hours;
    check_name(n.name);
    tree.nodes_.push_back(std::move(n));
  }

  tree.finalize(topology);
  tree.validate(topology);
  return tree;
}

void FailureDomainTree::finalize(const Topology& topology) {
  site_node_.assign(topology.sites.size(), -1);
  room_counts_.assign(topology.sites.size(), 0);
  subtree_sites_.assign(nodes_.size(), {});
  for (auto& n : nodes_) {
    if (n.level == DomainLevel::Site) {
      site_node_[static_cast<std::size_t>(n.site)] = n.id;
    } else if (n.level == DomainLevel::Room) {
      n.room_index = room_counts_[static_cast<std::size_t>(n.site)]++;
    }
  }
  // A Room fails arrays, not its whole site, so only Site-and-above subtrees
  // carry site membership. Sites propagate up through zones/regions to root.
  for (const auto& n : nodes_) {
    if (n.level != DomainLevel::Site) continue;
    for (int a = n.id; a >= 0; a = nodes_[static_cast<std::size_t>(a)].parent) {
      subtree_sites_[static_cast<std::size_t>(a)].push_back(n.site);
    }
  }
  for (auto& sites : subtree_sites_) std::sort(sites.begin(), sites.end());
}

const DomainNode& FailureDomainTree::node(int id) const {
  return nodes_.at(static_cast<std::size_t>(id));
}

int FailureDomainTree::site_node(int site_id) const {
  return site_node_.at(static_cast<std::size_t>(site_id));
}

const std::vector<int>& FailureDomainTree::subtree_sites(int id) const {
  return subtree_sites_.at(static_cast<std::size_t>(id));
}

int FailureDomainTree::room_count(int site_id) const {
  return room_counts_.at(static_cast<std::size_t>(site_id));
}

double FailureDomainTree::correlation_chain(int id) const {
  double chain = 1.0;
  for (int a = id; a >= 0; a = nodes_[static_cast<std::size_t>(a)].parent) {
    chain *= nodes_[static_cast<std::size_t>(a)].correlation;
  }
  return chain;
}

double FailureDomainTree::effective_rate(int id) const {
  return node(id).rate * correlation_chain(id);
}

double FailureDomainTree::effective_outage_rate(int id) const {
  return node(id).outage_rate * correlation_chain(id);
}

void FailureDomainTree::set_correlation(int id, double correlation) {
  DEPSTOR_EXPECTS(correlation >= 0.0);
  nodes_.at(static_cast<std::size_t>(id)).correlation = correlation;
  if (correlation != 1.0) degenerate_ = false;
}

void FailureDomainTree::validate(const Topology& topology) const {
  DEPSTOR_EXPECTS_MSG(!nodes_.empty() &&
                          nodes_.front().level == DomainLevel::Root,
                      "failure domains: missing root node");
  for (const auto& n : nodes_) {
    DEPSTOR_EXPECTS(n.id == &n - nodes_.data());
    DEPSTOR_EXPECTS_MSG(n.rate >= 0.0 && n.outage_rate >= 0.0,
                        "failure domains: negative rate");
    DEPSTOR_EXPECTS_MSG(n.correlation >= 0.0,
                        "failure domains: negative correlation");
    DEPSTOR_EXPECTS_MSG(n.repair_hours >= 0.0,
                        "failure domains: negative repair lead");
    if (n.level == DomainLevel::Root) {
      DEPSTOR_EXPECTS(n.parent < 0);
      continue;
    }
    DEPSTOR_EXPECTS(n.parent >= 0 &&
                    n.parent < static_cast<int>(nodes_.size()) &&
                    n.parent < n.id);
    const DomainNode& p = nodes_[static_cast<std::size_t>(n.parent)];
    switch (n.level) {
      case DomainLevel::Region:
        DEPSTOR_EXPECTS(p.level == DomainLevel::Root);
        break;
      case DomainLevel::Zone:
        DEPSTOR_EXPECTS(p.level == DomainLevel::Region);
        break;
      case DomainLevel::Site:
        DEPSTOR_EXPECTS(p.level == DomainLevel::Region ||
                        p.level == DomainLevel::Zone);
        DEPSTOR_EXPECTS(n.site >= 0 && n.site < topology.site_count());
        break;
      case DomainLevel::Room:
        DEPSTOR_EXPECTS(p.level == DomainLevel::Site && n.site == p.site);
        break;
      case DomainLevel::Root:
        break;
    }
  }
  for (const auto& s : topology.sites) {
    DEPSTOR_EXPECTS_MSG(
        site_node_.at(static_cast<std::size_t>(s.id)) >= 0,
        "failure domains: site \"" + s.name + "\" has no domain node");
  }
  DEPSTOR_EXPECTS(data_object_rate_ >= 0.0 && disk_array_rate_ >= 0.0);
}

std::uint64_t FailureDomainTree::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix_u64(bits);
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  mix_double(data_object_rate_);
  mix_double(disk_array_rate_);
  mix_u64(degenerate_ ? 1 : 0);
  mix_u64(nodes_.size());
  for (const auto& n : nodes_) {
    mix_u64(static_cast<std::uint64_t>(static_cast<int>(n.level)));
    mix_u64(static_cast<std::uint64_t>(n.parent + 1));
    mix_u64(static_cast<std::uint64_t>(n.region + 1));
    mix_u64(static_cast<std::uint64_t>(n.site + 1));
    mix_double(n.rate);
    mix_double(n.outage_rate);
    mix_double(n.correlation);
    mix_double(n.repair_hours);
    mix_str(n.name);
  }
  return h;
}

}  // namespace depstor
