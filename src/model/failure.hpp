// Failure model (paper §2.4).
//
// Three failure scopes threaten an application's primary copy:
//   * data object failure — loss/corruption by human or software error, no
//     hardware failure; the corruption propagates to mirrors;
//   * disk array failure — the array hosting the primary copy fails;
//   * site disaster — every device at the primary site fails.
//
// Each scope has an annualized likelihood. Experiment §4.2 uses 1/3, 1/3 and
// 1/5 per year; the sensitivity study (§4.5) re-bases to 2, 1/5 and 1/20 per
// year and sweeps one at a time.
#pragma once

#include <string>
#include <vector>

namespace depstor {

/// `Domain` covers failures only the hierarchical tree can express (zone and
/// room destroys, power/partition outages); it has no flat rate — a Domain
/// scenario's likelihood comes from its tree node (see model/domain.hpp).
enum class FailureScope {
  DataObject,
  DiskArray,
  SiteDisaster,
  RegionalDisaster,
  Domain,
};

inline constexpr int kFailureScopeCount = 5;

const char* to_string(FailureScope s);

struct FailureModel {
  double data_object_rate = 1.0 / 3.0;   ///< events per app-year
  double disk_array_rate = 1.0 / 3.0;    ///< events per array-year
  double site_disaster_rate = 1.0 / 5.0; ///< events per site-year
  /// Regional disasters (§2.4) destroy every site of a region at once.
  /// Off by default — the paper's experiments use the three scopes above.
  double regional_disaster_rate = 0.0;   ///< events per region-year

  double rate(FailureScope scope) const;
  void validate() const;

  /// §4.2 baseline (1/3, 1/3, 1/5 per year).
  static FailureModel baseline();
  /// §4.5 sensitivity baseline (2, 1/5, 1/20 per year).
  static FailureModel sensitivity_baseline();
};

}  // namespace depstor
