#include "model/staleness.hpp"

#include <algorithm>
#include <limits>

#include "model/recovery_sim.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

const char* to_string(CopyLevel level) {
  switch (level) {
    case CopyLevel::Mirror:
      return "mirror";
    case CopyLevel::Snapshot:
      return "snapshot";
    case CopyLevel::TapeBackup:
      return "tape-backup";
    case CopyLevel::Vault:
      return "vault";
    case CopyLevel::None:
      return "none";
  }
  return "?";
}

bool level_maintained(const TechniqueSpec& technique, CopyLevel level) {
  switch (level) {
    case CopyLevel::Mirror:
      return technique.has_mirror();
    case CopyLevel::Snapshot:
    case CopyLevel::TapeBackup:
    case CopyLevel::Vault:
      return technique.has_backup;
    case CopyLevel::None:
      return false;
  }
  return false;
}

bool level_survives(CopyLevel level, FailureScope scope) {
  switch (scope) {
    case FailureScope::DataObject:
      // Hardware is intact but corruption propagates to mirrors; only
      // point-in-time copies are usable.
      return level != CopyLevel::Mirror && level != CopyLevel::None;
    case FailureScope::DiskArray:
      // Snapshots are internal to the failed primary array.
      return level != CopyLevel::Snapshot && level != CopyLevel::None;
    case FailureScope::SiteDisaster:
      // Snapshots and the backup tape library live at the primary site;
      // the mirror is at the secondary site and the vault is offsite.
      return level == CopyLevel::Mirror || level == CopyLevel::Vault;
    case FailureScope::RegionalDisaster:
      // Without placement information, assume the mirror shares the
      // region: only the vault certainly survives.
      return level == CopyLevel::Vault;
    case FailureScope::Domain:
      // Domain scenarios name the exact failed subtree; survival depends
      // on placement, so the placement-aware overload below must be used.
      // Without it, only the offsite vault certainly survives.
      return level == CopyLevel::Vault;
  }
  return false;
}

bool level_survives(CopyLevel level, FailureScope scope,
                    const AppAssignment& asg, const Topology& topology) {
  if (scope == FailureScope::RegionalDisaster && level == CopyLevel::Mirror &&
      asg.has_mirror()) {
    return topology.site(asg.secondary_site).region !=
           topology.site(asg.primary_site).region;
  }
  return level_survives(level, scope);
}

bool level_survives(CopyLevel level, const ScenarioSpec& scenario,
                    const AppAssignment& asg, const Topology& topology) {
  if (scenario.scope != FailureScope::Domain) {
    return level_survives(level, scenario.scope, asg, topology);
  }
  auto failed_site = [&](int site) {
    return std::binary_search(scenario.failed_sites.begin(),
                              scenario.failed_sites.end(), site);
  };
  auto failed_array = [&](int array) {
    return std::binary_search(scenario.failed_arrays.begin(),
                              scenario.failed_arrays.end(), array);
  };
  if (scenario.data_intact) {
    // Outage: only a mirror outside the unreachable domain is usable —
    // restoring from tape/vault while the primary merely waits for power
    // is never the plan (WaitRepair covers that case).
    return level == CopyLevel::Mirror && asg.has_mirror() &&
           !failed_site(asg.secondary_site) && !failed_array(asg.mirror_array);
  }
  switch (level) {
    case CopyLevel::Mirror:
      return asg.has_mirror() && !failed_site(asg.secondary_site) &&
             !failed_array(asg.mirror_array);
    case CopyLevel::Snapshot:
      // Internal to the primary array.
      return !failed_site(asg.primary_site) &&
             !failed_array(asg.primary_array);
    case CopyLevel::TapeBackup:
      // The library lives at the primary site; a room destroy (arrays only)
      // leaves it standing.
      return !failed_site(asg.primary_site);
    case CopyLevel::Vault:
      return true;  // offsite by definition
    case CopyLevel::None:
      return false;
  }
  return false;
}

std::vector<CopyLevel> surviving_levels(const TechniqueSpec& technique,
                                        FailureScope scope) {
  std::vector<CopyLevel> out;
  for (CopyLevel level : {CopyLevel::Mirror, CopyLevel::Snapshot,
                          CopyLevel::TapeBackup, CopyLevel::Vault}) {
    if (level_maintained(technique, level) && level_survives(level, scope)) {
      out.push_back(level);
    }
  }
  return out;
}

std::vector<CopyLevel> surviving_levels(const AppAssignment& asg,
                                        const Topology& topology,
                                        FailureScope scope) {
  std::vector<CopyLevel> out;
  for (CopyLevel level : {CopyLevel::Mirror, CopyLevel::Snapshot,
                          CopyLevel::TapeBackup, CopyLevel::Vault}) {
    if (level_maintained(asg.technique, level) &&
        level_survives(level, scope, asg, topology)) {
      out.push_back(level);
    }
  }
  return out;
}

double bandwidth_share_mbps(const ResourcePool& pool, int device_id,
                            int app_id, Purpose purpose) {
  const auto& allocs = pool.allocations(device_id);
  int sharers = 0;
  bool present = false;
  for (const auto& a : allocs) {
    if (a.purpose == purpose) {
      ++sharers;
      if (a.app_id == app_id) present = true;
    }
  }
  if (!present || sharers == 0) return 0.0;
  return pool.device(device_id).bandwidth_mbps() / sharers;
}

namespace {

/// Mirror staleness: one accumulation window of updates plus the time to
/// drain that window's worth of data over the app's share of the link.
StalenessBound mirror_staleness(const ApplicationSpec& app,
                                const AppAssignment& asg,
                                const ResourcePool& pool) {
  DEPSTOR_EXPECTS(asg.has_mirror());
  const double acc = asg.technique.mirror_accumulation_hours;
  const double share =
      bandwidth_share_mbps(pool, asg.mirror_link, app.id, Purpose::MirrorTraffic);
  DEPSTOR_ENSURES_MSG(share > 0.0, "mirror without link bandwidth");
  const double window_gb = units::accumulated_gb(app.avg_update_mbps, acc);
  return {units::transfer_hours(window_gb, share), acc};
}

}  // namespace

double backup_window_hours(const ApplicationSpec& app, const AppAssignment& asg,
                           const ResourcePool& pool) {
  DEPSTOR_EXPECTS(asg.has_backup());
  const double share =
      bandwidth_share_mbps(pool, asg.tape_library, app.id, Purpose::Backup);
  DEPSTOR_ENSURES_MSG(share > 0.0, "backup without tape bandwidth");
  return units::transfer_hours(app.data_size_gb, share);
}

double incremental_size_gb(const ApplicationSpec& app,
                           const BackupChainConfig& cfg) {
  if (!cfg.has_incrementals()) return 0.0;
  return units::accumulated_gb(app.unique_update_mbps,
                               cfg.incremental_interval_hours);
}

StalenessBound staleness_bound(CopyLevel level, const ApplicationSpec& app,
                               const AppAssignment& asg,
                               const ResourcePool& pool) {
  DEPSTOR_EXPECTS(asg.assigned);
  DEPSTOR_EXPECTS_MSG(level_maintained(asg.technique, level),
                      "technique does not maintain this copy level");
  switch (level) {
    case CopyLevel::Mirror:
      return mirror_staleness(app, asg, pool);
    case CopyLevel::Snapshot:
      // Point-in-time copy internal to the array: no propagation delay;
      // worst case the failure arrives just before the next snapshot.
      return {0.0, asg.backup.snapshot_interval_hours};
    case CopyLevel::TapeBackup: {
      // Backups are cut from the latest snapshot and take a backup window
      // to land on tape; worst case the failure arrives just before a new
      // cut completes. With incrementals the freshest tape copy is at most
      // one incremental interval old (plus its much shorter propagation).
      if (asg.backup.has_incrementals()) {
        const double share = bandwidth_share_mbps(pool, asg.tape_library,
                                                  app.id, Purpose::Backup);
        DEPSTOR_ENSURES_MSG(share > 0.0, "backup without tape bandwidth");
        const double incr_window = units::transfer_hours(
            incremental_size_gb(app, asg.backup), share);
        return {asg.backup.snapshot_interval_hours + incr_window,
                asg.backup.incremental_interval_hours};
      }
      return {asg.backup.snapshot_interval_hours +
                  backup_window_hours(app, asg, pool),
              asg.backup.backup_interval_hours};
    }
    case CopyLevel::Vault:
      return {asg.backup.snapshot_interval_hours +
                  asg.backup.vault_shipping_hours,
              asg.backup.vault_interval_hours};
    case CopyLevel::None:
      break;
  }
  throw InvalidArgument("staleness of CopyLevel::None is undefined");
}

double staleness_hours(CopyLevel level, const ApplicationSpec& app,
                       const AppAssignment& asg, const ResourcePool& pool) {
  return staleness_bound(level, app, asg, pool).worst();
}

CopyLevel best_recovery_level(const ApplicationSpec& app,
                              const AppAssignment& asg,
                              const ResourcePool& pool, FailureScope scope,
                              double* staleness_out) {
  CopyLevel best = CopyLevel::None;
  double best_staleness = std::numeric_limits<double>::infinity();
  for (CopyLevel level : surviving_levels(asg, pool.topology(), scope)) {
    const double s = staleness_hours(level, app, asg, pool);
    if (s < best_staleness) {
      best_staleness = s;
      best = level;
    }
  }
  if (staleness_out) {
    *staleness_out = best == CopyLevel::None ? 0.0 : best_staleness;
  }
  return best;
}

CopyLevel best_recovery_level(const ApplicationSpec& app,
                              const AppAssignment& asg,
                              const ResourcePool& pool,
                              const ScenarioSpec& scenario,
                              double* staleness_out) {
  CopyLevel best = CopyLevel::None;
  double best_staleness = std::numeric_limits<double>::infinity();
  for (CopyLevel level : {CopyLevel::Mirror, CopyLevel::Snapshot,
                          CopyLevel::TapeBackup, CopyLevel::Vault}) {
    if (!level_maintained(asg.technique, level) ||
        !level_survives(level, scenario, asg, pool.topology())) {
      continue;
    }
    const double s = staleness_hours(level, app, asg, pool);
    if (s < best_staleness) {
      best_staleness = s;
      best = level;
    }
  }
  if (staleness_out) {
    *staleness_out = best == CopyLevel::None ? 0.0 : best_staleness;
  }
  return best;
}

}  // namespace depstor
