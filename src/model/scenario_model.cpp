#include "model/scenario_model.hpp"

#include "util/check.hpp"

namespace depstor {

ScenarioModel ScenarioModel::flat_model(const FailureModel& rates) {
  ScenarioModel m;
  m.flat = rates;
  return m;
}

ScenarioModel ScenarioModel::tree_model(
    std::shared_ptr<const FailureDomainTree> t, const FailureModel& rates) {
  DEPSTOR_EXPECTS_MSG(t != nullptr, "tree_model requires a non-null tree");
  ScenarioModel m;
  m.flat = rates;
  m.tree = std::move(t);
  return m;
}

void ScenarioModel::validate() const {
  flat.validate();
  // Tree invariants are checked against a topology at build/load time;
  // here only the handle's presence distinguishes the two modes.
}

std::uint64_t fingerprint_scenarios(const ScenarioModel& model) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix_u64(bits);
  };
  mix_double(model.flat.data_object_rate);
  mix_double(model.flat.disk_array_rate);
  mix_double(model.flat.site_disaster_rate);
  mix_double(model.flat.regional_disaster_rate);
  mix_u64(model.tree != nullptr ? model.tree->fingerprint() : 0);
  return h;
}

}  // namespace depstor
