#include "model/params.hpp"

#include "util/check.hpp"

namespace depstor {

const char* to_string(RecoveryOrder order) {
  switch (order) {
    case RecoveryOrder::PriorityPenalty:
      return "priority-penalty";
    case RecoveryOrder::ShortestFirst:
      return "shortest-first";
    case RecoveryOrder::FifoById:
      return "fifo-by-id";
  }
  return "?";
}

void ModelParams::validate() const {
  DEPSTOR_EXPECTS(failover_hours >= 0.0);
  DEPSTOR_EXPECTS(snapshot_restore_hours >= 0.0);
  DEPSTOR_EXPECTS(tape_load_hours >= 0.0);
  DEPSTOR_EXPECTS(incremental_load_hours >= 0.0);
  DEPSTOR_EXPECTS(detection_hours >= 0.0);
  DEPSTOR_EXPECTS(repair_data_object_hours >= 0.0);
  DEPSTOR_EXPECTS(repair_disk_array_hours >= 0.0);
  DEPSTOR_EXPECTS(repair_site_hours >= 0.0);
  DEPSTOR_EXPECTS(repair_regional_hours >= 0.0);
  DEPSTOR_EXPECTS(repair_with_spare_hours >= 0.0);
  DEPSTOR_EXPECTS(unprotected_loss_hours > 0.0);
  DEPSTOR_EXPECTS(backup_window_target_hours > 0.0);
  DEPSTOR_EXPECTS(vault_retrieval_hours >= 0.0);
  DEPSTOR_EXPECTS(vault_annual_fee >= 0.0);
  DEPSTOR_EXPECTS(device_lifetime_years > 0.0);
}

}  // namespace depstor
