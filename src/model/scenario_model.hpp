// The scenario source of truth a solve evaluates against.
//
// Historically every consumer (enumeration, penalties, the incremental
// evaluator, Monte Carlo, reports) read rates straight off a flat
// FailureModel. A ScenarioModel wraps that choice into one value: either a
// legacy flat model, or a FailureDomainTree whose nodes carry cause-linked
// destroy/outage rates and correlation knobs. Requests (`SolveRequest`,
// `ResolveRequest`) can carry one to override the environment's model.
//
// A degenerate tree (the two-level shape a flat model implies) enumerates
// bit-identically to the flat path; `DEPSTOR_AUDIT` cross-checks that
// equality on every evaluation of a degenerate-tree candidate.
#pragma once

#include <cstdint>
#include <memory>

#include "model/domain.hpp"
#include "model/failure.hpp"

namespace depstor {

struct ScenarioModel {
  /// Flat rates: the enumeration source when `tree` is null, and the
  /// data-object / disk-array defaults either way.
  FailureModel flat;
  /// When set, scenario enumeration walks the tree instead of the flat
  /// scopes. Shared (environments and candidates copy the handle, not the
  /// tree); treat the pointee as immutable while any solve references it.
  std::shared_ptr<const FailureDomainTree> tree;

  bool has_tree() const { return tree != nullptr; }

  /// Legacy: enumerate the three flat scopes (plus regional) from `rates`.
  static ScenarioModel flat_model(const FailureModel& rates);

  /// Tree-driven enumeration; `rates` supplies the data-object and
  /// disk-array base rates for reporting and sensitivity sweeps.
  static ScenarioModel tree_model(std::shared_ptr<const FailureDomainTree> t,
                                  const FailureModel& rates);

  void validate() const;
};

/// Stable content hash (rates + tree shape/knobs): mixed into eval-cache
/// salts so two solves over different scenario models never alias.
std::uint64_t fingerprint_scenarios(const ScenarioModel& model);

}  // namespace depstor
