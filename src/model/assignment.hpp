// The per-application design decision record: which technique protects the
// application, how its backup chain is configured, and which provisioned
// devices hold its primary and secondary copies (paper §2.6 item 4).
//
// Device fields are ids into the candidate solution's ResourcePool; -1 means
// "not used by this technique".
#pragma once

#include "protection/technique.hpp"

namespace depstor {

struct AppAssignment {
  int app_id = -1;
  bool assigned = false;  ///< false in partial candidates (greedy stage)

  TechniqueSpec technique;
  BackupChainConfig backup;  ///< meaningful when technique.has_backup

  int primary_site = -1;
  int secondary_site = -1;  ///< mirror site; -1 when no mirror

  int primary_array = -1;   ///< device id of the primary copy's array
  int mirror_array = -1;    ///< device id of the mirror copy's array
  int tape_library = -1;    ///< device id of the backup tape library
  int mirror_link = -1;     ///< device id of the inter-site link group
  int primary_compute = -1; ///< device id of compute at the primary site
  int failover_compute = -1;///< device id of spare compute at the secondary

  bool has_mirror() const { return assigned && technique.has_mirror(); }
  bool has_backup() const { return assigned && technique.has_backup; }

  /// Structural sanity: every feature of the technique has its devices.
  void validate() const;
};

}  // namespace depstor
