// Hierarchical failure domains with correlated, cause-linked rates.
//
// The paper models three flat failure types (data object, array, site), but
// shared environments fail along a hierarchy: region → zone → site → room,
// with whole subtrees taken out by one cause (a regional disaster, a power
// domain, a network partition). Following the replica-placement work on
// correlated failures in hierarchical failure domains (Mills et al.), each
// tree node carries:
//
//   * `rate` — annualized likelihood of a *destroy* event that loses every
//     copy stored inside the subtree (fire, flood, demolition);
//   * `outage_rate` — annualized likelihood of an *outage* event (power
//     loss, network partition) that makes the subtree unreachable but
//     leaves data intact — recovery is fail-over or wait-for-repair;
//   * `correlation` — a multiplier applied to the effective rate of every
//     destroy/outage event at or below the node. Correlation > 1 says
//     "failures in this subtree are more likely than the per-node rates
//     admit because they share a cause"; the effective rate of node n is
//     n.rate × Π correlation over the root→n path.
//
// A flat FailureModel loads as a *degenerate* tree (root → regions → sites,
// every correlation 1.0, no zones/rooms, no outage causes). Because ×1.0 is
// exact in IEEE arithmetic, scenario enumeration from a degenerate tree is
// bit-identical to the legacy flat enumeration — the parity oracle under
// DEPSTOR_AUDIT holds the two paths to equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/failure.hpp"
#include "resources/site.hpp"

namespace depstor {

enum class DomainLevel { Root, Region, Zone, Site, Room };

const char* to_string(DomainLevel level);

struct DomainNode {
  int id = -1;
  int parent = -1;  ///< node id; -1 for the root
  DomainLevel level = DomainLevel::Root;
  std::string name;
  int region = -1;      ///< Region nodes: topology region id
  int site = -1;        ///< Site/Room nodes: topology site id
  int room_index = -1;  ///< Room nodes: index among the site's rooms
  double rate = 0.0;        ///< destroy events per year (cause-linked)
  double outage_rate = 0.0; ///< outage events per year (power/partition)
  double correlation = 1.0; ///< subtree likelihood multiplier (>= 0)
  double repair_hours = 24.0;  ///< repair lead for this node's events
};

/// One `[domain]` declaration — an override or addition applied on top of
/// the degenerate region/site skeleton that every topology implies.
struct DomainDecl {
  enum class Kind { Region, Zone, Site, Room };
  Kind kind = Kind::Region;
  std::string name;
  int region = -1;                 ///< Region: which region; Zone: parent region
  std::string site;                ///< Site/Room: topology site name
  std::vector<std::string> sites;  ///< Zone: member site names
  double rate = -1.0;              ///< < 0 → level default from FailureModel
  double outage_rate = 0.0;
  double correlation = 1.0;
  double repair_hours = 24.0;
};

/// The failure-domain tree of one environment. Immutable after `finalize()`
/// except for the correlation knobs (the sensitivity benches sweep them).
class FailureDomainTree {
 public:
  /// The two-level tree a flat FailureModel implies: root → one Region node
  /// per distinct region (rate = regional_disaster_rate) → one Site node per
  /// site (rate = site_disaster_rate); all correlations 1.0. Marked
  /// degenerate, which arms the flat-parity audit oracle.
  static FailureDomainTree degenerate(const Topology& topology,
                                      const FailureModel& flat);

  /// Build the region/site skeleton from `topology` + `flat` defaults, then
  /// apply `decls` (region/site knob overrides, zone and room additions).
  /// With empty `decls` this is exactly `degenerate()`.
  static FailureDomainTree build(const Topology& topology,
                                 const FailureModel& flat,
                                 const std::vector<DomainDecl>& decls);

  const std::vector<DomainNode>& nodes() const { return nodes_; }
  const DomainNode& node(int id) const;
  int root() const { return 0; }

  /// Node id of the Site node covering topology site `site_id`.
  int site_node(int site_id) const;

  /// Topology site ids inside node `id`'s subtree, ascending.
  const std::vector<int>& subtree_sites(int id) const;

  /// Number of Room children of `site_node(site_id)` (0 = no room split).
  int room_count(int site_id) const;

  bool degenerate_shape() const { return degenerate_; }
  double data_object_rate() const { return data_object_rate_; }
  double disk_array_rate() const { return disk_array_rate_; }

  /// node.rate (resp. outage_rate) × Π correlation over the root→node path.
  double effective_rate(int id) const;
  double effective_outage_rate(int id) const;

  /// Correlation-chain product alone (root→node, inclusive): what array
  /// scenarios hosted inside the subtree are scaled by.
  double correlation_chain(int id) const;

  /// Sensitivity knob: reset one node's correlation (must be >= 0). Keeps
  /// the tree finalized; clears the degenerate flag unless the value is 1.
  void set_correlation(int id, double correlation);

  void validate(const Topology& topology) const;

  std::uint64_t fingerprint() const;

 private:
  std::vector<DomainNode> nodes_;
  std::vector<int> site_node_;                 ///< site id → node id
  std::vector<std::vector<int>> subtree_sites_;
  std::vector<int> room_counts_;               ///< site id → room children
  double data_object_rate_ = 0.0;
  double disk_array_rate_ = 0.0;
  bool degenerate_ = false;

  void finalize(const Topology& topology);
};

}  // namespace depstor
