#include "model/assignment.hpp"

#include "util/check.hpp"

namespace depstor {

void AppAssignment::validate() const {
  DEPSTOR_EXPECTS(app_id >= 0);
  if (!assigned) return;
  technique.validate();
  DEPSTOR_EXPECTS_MSG(primary_site >= 0, technique.name);
  DEPSTOR_EXPECTS_MSG(primary_array >= 0, technique.name);
  DEPSTOR_EXPECTS_MSG(primary_compute >= 0, technique.name);
  if (technique.has_mirror()) {
    DEPSTOR_EXPECTS_MSG(secondary_site >= 0 && secondary_site != primary_site,
                        technique.name + ": mirror needs a distinct site");
    DEPSTOR_EXPECTS_MSG(mirror_array >= 0, technique.name);
    DEPSTOR_EXPECTS_MSG(mirror_link >= 0, technique.name);
  }
  if (technique.has_backup) {
    backup.validate();
    DEPSTOR_EXPECTS_MSG(tape_library >= 0, technique.name);
  }
  if (technique.recovery == RecoveryMode::Failover) {
    DEPSTOR_EXPECTS_MSG(failover_compute >= 0,
                        technique.name + ": failover needs spare compute");
  }
}

}  // namespace depstor
