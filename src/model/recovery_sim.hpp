// Multi-application recovery simulation (paper §3.2.2).
//
// This is the modeling extension the paper adds over the single-application
// framework of Keeton & Merchant: when a shared failure (array, site) takes
// down several applications at once, their recovery operations contend for
// the same devices. Recovery is serialized per resource by priority — the
// sum of each application's penalty rates — so lower-priority recoveries wait
// for higher-priority ones to release the shared device.
//
// Unaffected applications and their data protection workloads keep running:
// only the bandwidth headroom left by their allocations is available to
// recovery transfers.
#pragma once

#include <string>
#include <vector>

#include "model/assignment.hpp"
#include "model/failure.hpp"
#include "model/params.hpp"
#include "model/recovery_plan.hpp"
#include "model/scenario_model.hpp"
#include "resources/pool.hpp"
#include "workload/application.hpp"

namespace depstor {

/// One concrete failure event: a scope plus the failed entity. Domain-scope
/// scenarios (tree-only: zone/room destroys, power/partition outages)
/// additionally carry the failed subtree's footprint — the sites and arrays
/// the event takes out — plus the node's repair lead and whether the data
/// inside the domain survives (an outage) or is destroyed.
struct ScenarioSpec {
  FailureScope scope = FailureScope::DataObject;
  int failed_app = -1;     ///< DataObject: the app whose object is corrupted
  int failed_array = -1;   ///< DiskArray: pool device id of the failed array
  int failed_site = -1;    ///< SiteDisaster: the destroyed site
  int failed_region = -1;  ///< RegionalDisaster: the destroyed region
  int domain_node = -1;    ///< Domain: the failure-domain tree node
  /// Domain: true for outage causes (power loss, network partition) — every
  /// copy inside the subtree is intact but unreachable until repair.
  bool data_intact = false;
  double repair_hours = 0.0;  ///< Domain: the node's repair lead
  std::vector<int> failed_sites;   ///< Domain: subtree sites, ascending
  std::vector<int> failed_arrays;  ///< Domain (rooms): failed arrays, ascending
  double annual_rate = 0.0;
  std::string name;
};

/// Reusable intermediates of enumerate_scenarios_into (the primary-array /
/// primary-site dedup lists). Keeping one per evaluator makes repeated
/// enumeration allocation-free once capacities have grown.
struct ScenarioScratch {
  std::vector<int> arrays;
  std::vector<int> sites;
  std::vector<int> regions;
  std::vector<int> site_arrays;  ///< tree path: per-site array partitioning
};

/// All concrete failure scenarios of an (assigned subset of a) candidate:
/// one data-object failure per assigned app, one array failure per in-use
/// primary-hosting array, one disaster per site hosting primaries.
/// `with_names` fills the human-readable scenario names (off in the solver
/// hot path — string building is measurable there).
std::vector<ScenarioSpec> enumerate_scenarios(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const FailureModel& failures,
    bool with_names = false);

/// Buffer-reusing variant: clears and refills `out` (same order and contents
/// as enumerate_scenarios). With `with_names` off and warm capacities this
/// performs no heap allocation — the solver hot path calls it per probe.
void enumerate_scenarios_into(std::vector<ScenarioSpec>& out,
                              const ApplicationList& apps,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const FailureModel& failures,
                              bool with_names = false,
                              ScenarioScratch* scratch = nullptr);

/// Scenario-model-driven enumeration. Without a tree this is exactly the
/// flat path above. With a tree: data-object failures per app, one array
/// failure per in-use primary array (rate scaled by the hosting site's
/// correlation chain), room destroys, site disasters (legacy scope, per-node
/// effective rate), zone destroys, regional disasters (legacy scope), then
/// outage events for every node with an outage cause. A degenerate tree
/// reproduces the flat list bit for bit.
void enumerate_scenarios_into(std::vector<ScenarioSpec>& out,
                              const ApplicationList& apps,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const ScenarioModel& model,
                              bool with_names = false,
                              ScenarioScratch* scratch = nullptr);

/// Convenience wrapper over the model-driven `enumerate_scenarios_into`.
std::vector<ScenarioSpec> enumerate_scenarios(
    const ApplicationList& apps, const std::vector<AppAssignment>& assignments,
    const ResourcePool& pool, const ScenarioModel& model,
    bool with_names = false);

/// Ids of the applications whose primary copy the scenario destroys.
std::vector<int> affected_apps(const ScenarioSpec& scenario,
                               const std::vector<AppAssignment>& assignments,
                               const Topology& topology);

/// Buffer-reusing variant of affected_apps (clears and refills `out`).
void affected_apps_into(std::vector<int>& out, const ScenarioSpec& scenario,
                        const std::vector<AppAssignment>& assignments,
                        const Topology& topology);

struct AppRecoveryResult {
  int app_id = -1;
  RecoveryAction action = RecoveryAction::Unrecoverable;
  CopyLevel copy = CopyLevel::None;
  double outage_hours = 0.0;
  double loss_hours = 0.0;
};

/// Reusable buffers of one recovery simulation. The incremental evaluator
/// keeps one workspace and re-simulates thousands of scenarios through it;
/// with warm capacities a simulation performs no heap allocation.
struct RecoveryWorkspace {
  std::vector<int> failed;           ///< affected app ids, assignment order
  std::vector<RecoveryPlan> plans;   ///< parallel to `failed`
  std::vector<int> order;            ///< app ids in serialization order
  std::vector<std::pair<int, double>> device_free_at;  ///< device → free time
};

/// Simulate the recovery of every affected application under the scenario,
/// with per-device priority serialization and headroom-limited transfer
/// bandwidth. Results are returned in priority order (highest first).
std::vector<AppRecoveryResult> simulate_recovery(
    const ScenarioSpec& scenario, const ApplicationList& apps,
    const std::vector<AppAssignment>& assignments, const ResourcePool& pool,
    const ModelParams& params);

/// Buffer-reusing variant: clears and refills `out` with results identical
/// to simulate_recovery (same math, same order — both share one
/// implementation), reusing `ws` across calls.
void simulate_recovery_into(std::vector<AppRecoveryResult>& out,
                            const ScenarioSpec& scenario,
                            const ApplicationList& apps,
                            const std::vector<AppAssignment>& assignments,
                            const ResourcePool& pool, const ModelParams& params,
                            RecoveryWorkspace& ws);

/// Bandwidth (MB/s) available to recovery on `device_id` while the apps in
/// `failed` are down: provisioned bandwidth minus unaffected allocations,
/// floored at `min_recovery_bandwidth_mbps` to keep times finite.
double recovery_bandwidth_mbps(const ResourcePool& pool, int device_id,
                               const std::vector<int>& failed);

/// Floor for recovery bandwidth when a device has no headroom: recovery
/// crawls instead of deadlocking, which penalizes (rather than crashes)
/// under-provisioned designs.
inline constexpr double kMinRecoveryBandwidthMbps = 0.1;

}  // namespace depstor
