// Worst-case staleness (recent data loss) of each secondary-copy level, and
// the copy-survival matrix per failure scope (paper §3.2.1, after Keeton &
// Merchant DSN'04).
//
// The staleness of a level bounds how out-of-date a recovery from that level
// can be: it accumulates the level's own accumulation window, the time a copy
// takes to propagate to the level (a function of provisioned bandwidth), and
// the staleness the source copy already had when the propagation started.
#pragma once

#include <vector>

#include "model/assignment.hpp"
#include "resources/pool.hpp"
#include "workload/application.hpp"
#include "model/failure.hpp"

namespace depstor {

/// Secondary-copy levels in the protection hierarchy, freshest first.
enum class CopyLevel { Mirror, Snapshot, TapeBackup, Vault, None };

const char* to_string(CopyLevel level);

/// Staleness of a copy level decomposed into the part that is always there
/// (propagation delays, upstream-copy age) and the level's own accumulation
/// window. A failure arriving uniformly within the cycle loses
/// `fixed + U[0,1]·window` hours; the worst case is `fixed + window`.
struct StalenessBound {
  double fixed_hours = 0.0;
  double window_hours = 0.0;
  double worst() const { return fixed_hours + window_hours; }
  double expected() const { return fixed_hours + window_hours / 2.0; }
};

/// Staleness bound of the copy at `level` for this application, under the
/// assignment's configuration and the pool's provisioned bandwidths.
/// Precondition: the assignment's technique maintains `level`.
StalenessBound staleness_bound(CopyLevel level, const ApplicationSpec& app,
                               const AppAssignment& asg,
                               const ResourcePool& pool);

/// Worst-case staleness (hours): staleness_bound(...).worst(). This is what
/// the configuration solver prices (§3.2.1 computes upper bounds).
double staleness_hours(CopyLevel level, const ApplicationSpec& app,
                       const AppAssignment& asg, const ResourcePool& pool);

/// True when the technique maintains a copy at `level` at all.
bool level_maintained(const TechniqueSpec& technique, CopyLevel level);

/// True when a copy at `level` remains *usable* after a failure of `scope`
/// hits the application's primary copy. (Mirrors do not survive data object
/// failures — the corruption propagates; anything stored at the primary site
/// does not survive a site disaster; snapshots live on the primary array.)
/// For RegionalDisaster this placement-free overload assumes the mirror sits
/// in the same region (the conservative answer); use the placement-aware
/// overload when an assignment is available.
bool level_survives(CopyLevel level, FailureScope scope);

/// Placement-aware survival: identical to the overload above except that a
/// mirror survives a regional disaster when the secondary site's region
/// differs from the primary's (§2.4: geographic distribution).
bool level_survives(CopyLevel level, FailureScope scope,
                    const AppAssignment& asg, const Topology& topology);

struct ScenarioSpec;  // model/recovery_sim.hpp

/// Scenario-aware survival. Non-Domain scopes delegate to the placement
/// overload above (identical answers). Domain destroys (zone/room) check the
/// copy's placement against the failed subtree's site/array footprint:
/// mirrors survive outside it, snapshots die with the primary, the tape
/// library dies with the primary site, the vault always survives. Domain
/// outages (data intact) leave only an out-of-domain mirror *usable* — other
/// copies are physically fine but recovery from them is pointless while the
/// primary hardware merely waits for repair (see RecoveryAction::WaitRepair).
bool level_survives(CopyLevel level, const ScenarioSpec& scenario,
                    const AppAssignment& asg, const Topology& topology);

/// Levels that are both maintained and surviving, ordered freshest first
/// (placement-free; conservative for regional disasters).
std::vector<CopyLevel> surviving_levels(const TechniqueSpec& technique,
                                        FailureScope scope);

/// Placement-aware variant used by recovery planning.
std::vector<CopyLevel> surviving_levels(const AppAssignment& asg,
                                        const Topology& topology,
                                        FailureScope scope);

/// The surviving level with minimal staleness, or CopyLevel::None when the
/// failure is unrecoverable for this technique.
CopyLevel best_recovery_level(const ApplicationSpec& app,
                              const AppAssignment& asg,
                              const ResourcePool& pool, FailureScope scope,
                              double* staleness_out = nullptr);

/// Scenario-aware variant (selection rule identical; survival per the
/// scenario-aware `level_survives`).
CopyLevel best_recovery_level(const ApplicationSpec& app,
                              const AppAssignment& asg,
                              const ResourcePool& pool,
                              const ScenarioSpec& scenario,
                              double* staleness_out = nullptr);

/// Time (hours) a full backup of the dataset takes with the tape bandwidth
/// the application can use on its assigned library (device bandwidth shared
/// equally among the apps backing up to it).
double backup_window_hours(const ApplicationSpec& app,
                           const AppAssignment& asg, const ResourcePool& pool);

/// Size (GB) of one incremental cut: the unique updates accumulated over an
/// incremental interval.
double incremental_size_gb(const ApplicationSpec& app,
                           const BackupChainConfig& cfg);

/// Per-application share of a device's provisioned bandwidth: total
/// provisioned bandwidth divided equally among apps with allocations of the
/// given purpose. Returns 0 when the app has no such allocation.
double bandwidth_share_mbps(const ResourcePool& pool, int device_id,
                            int app_id, Purpose purpose);

}  // namespace depstor
