#include "model/failure.hpp"

#include "util/check.hpp"

namespace depstor {

const char* to_string(FailureScope s) {
  switch (s) {
    case FailureScope::DataObject:
      return "data-object";
    case FailureScope::DiskArray:
      return "disk-array";
    case FailureScope::SiteDisaster:
      return "site-disaster";
    case FailureScope::RegionalDisaster:
      return "regional-disaster";
    case FailureScope::Domain:
      return "domain";
  }
  return "?";
}

double FailureModel::rate(FailureScope scope) const {
  switch (scope) {
    case FailureScope::DataObject:
      return data_object_rate;
    case FailureScope::DiskArray:
      return disk_array_rate;
    case FailureScope::SiteDisaster:
      return site_disaster_rate;
    case FailureScope::RegionalDisaster:
      return regional_disaster_rate;
    case FailureScope::Domain:
      // Domain scenarios are rated per tree node, not by a flat knob.
      return 0.0;
  }
  return 0.0;
}

void FailureModel::validate() const {
  DEPSTOR_EXPECTS(data_object_rate >= 0.0);
  DEPSTOR_EXPECTS(disk_array_rate >= 0.0);
  DEPSTOR_EXPECTS(site_disaster_rate >= 0.0);
  DEPSTOR_EXPECTS(regional_disaster_rate >= 0.0);
}

FailureModel FailureModel::baseline() { return FailureModel{}; }

FailureModel FailureModel::sensitivity_baseline() {
  FailureModel m;
  m.data_object_rate = 2.0;
  m.disk_array_rate = 1.0 / 5.0;
  m.site_disaster_rate = 1.0 / 20.0;
  return m;
}

}  // namespace depstor
