// Model parameters the paper leaves unspecified (see DESIGN.md §4 for the
// full substitution table). All recovery-behavior knobs live here so that a
// single struct documents every numeric assumption of the reproduction.
#pragma once

namespace depstor {

/// How contending recovery operations are ordered on shared resources.
/// The paper serializes by penalty-rate priority (§3.2.2); the alternatives
/// exist for the scheduling ablation (bench_ablation_recovery_order) and
/// echo the authors' follow-up work on recovery scheduling [12].
enum class RecoveryOrder {
  PriorityPenalty,  ///< highest penalty-rate sum first (the paper's rule)
  ShortestFirst,    ///< smallest estimated solo recovery time first
  FifoById,         ///< application id order (arrival-order strawman)
};

const char* to_string(RecoveryOrder order);

struct ModelParams {
  // --- recovery behavior ---
  double failover_hours = 0.1;  ///< app restart + client redirection
  double snapshot_restore_hours = 0.25;  ///< revert-to-snapshot overhead
  double tape_load_hours = 0.5;  ///< mount/locate overhead per tape restore
  double incremental_load_hours = 0.1;  ///< per incremental replayed
  double detection_hours = 0.0;  ///< failure detection latency (all scopes)

  // --- repair lead times per failure scope (reconstruct paths) ---
  double repair_data_object_hours = 0.0;  ///< no hardware to repair
  double repair_disk_array_hours = 6.0;   ///< swap in replacement array
  /// Array repair when a hot-spare enclosure of the same model stands by at
  /// the site (bought by the configuration solver when it pays off).
  double repair_with_spare_hours = 0.5;
  double repair_site_hours = 24.0;        ///< standby-site bring-up
  double repair_regional_hours = 72.0;    ///< whole-region rebuild

  // --- unrecoverable failures ---
  /// Outage and loss time charged when no copy survives the failure scope
  /// (e.g., mirror-only protection hit by a data object failure).
  double unprotected_loss_hours = 720.0;  // 30 days

  // --- backup provisioning ---
  /// Tape bandwidth is provisioned so a full backup completes within this
  /// window (the paper's "backups complete overnight" requirement, §1).
  double backup_window_target_hours = 12.0;

  // --- vault (level 3) ---
  double vault_retrieval_hours = 24.0;  ///< ship tapes back from the vault
  double vault_annual_fee = 5000.0;     ///< service fee per app using backup

  // --- recovery scheduling ---
  RecoveryOrder recovery_order = RecoveryOrder::PriorityPenalty;

  // --- outlay accounting ---
  double device_lifetime_years = 3.0;  ///< amortization horizon (§2.5)

  void validate() const;
};

}  // namespace depstor
