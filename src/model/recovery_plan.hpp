// Per-application recovery planning (paper §3.2.2).
//
// Given a failure scope, the plan decides *how* the application comes back:
//
//  * Failover — the technique is failover-capable and the mirror survived:
//    computation resumes at the secondary site after a short restart; the
//    bulk fail-back copy happens in the background and does not contribute
//    to the outage.
//  * Snapshot revert — a data object failure with an intact array: the array
//    reverts to the last snapshot in-place, no bulk transfer.
//  * Reconstruct — repair/replace the failed hardware (lead time), then copy
//    the dataset back from the recovery copy (mirror over the inter-site
//    link, or tape through the library), contending with other recovering
//    applications for the shared devices.
//  * Unrecoverable — no copy survived the scope; a fixed catastrophic
//    loss/outage time is charged.
#pragma once

#include <vector>

#include "model/assignment.hpp"
#include "model/failure.hpp"
#include "model/params.hpp"
#include "model/staleness.hpp"
#include "resources/pool.hpp"
#include "workload/application.hpp"

namespace depstor {

/// `WaitRepair` is the outage answer (Domain scenarios with data intact):
/// nothing was lost and nothing is restored — the application is simply down
/// for detection + the domain's repair lead, unless it can fail over to a
/// mirror outside the unreachable subtree.
enum class RecoveryAction {
  Failover,
  SnapshotRevert,
  Reconstruct,
  WaitRepair,
  Unrecoverable,
};

const char* to_string(RecoveryAction a);

struct RecoveryPlan {
  int app_id = -1;
  FailureScope scope = FailureScope::DataObject;
  RecoveryAction action = RecoveryAction::Unrecoverable;
  CopyLevel copy = CopyLevel::None;  ///< copy used for recovery

  double loss_hours = 0.0;  ///< recent data loss (staleness of `copy`)
  double lead_hours = 0.0;  ///< detection + repair + vault retrieval
  double fixed_restore_hours = 0.0;  ///< snapshot revert / tape load overhead
  double transfer_gb = 0.0;          ///< bulk data copied on the critical path

  /// Devices the bulk transfer is serialized on (source copy's device, the
  /// inter-site link for cross-site restores, and the rebuilt primary array).
  std::vector<int> shared_devices;

  bool needs_transfer() const { return transfer_gb > 0.0; }
};

/// Build the recovery plan for one application under one failure scope.
/// Precondition: asg.assigned.
RecoveryPlan plan_recovery(const ApplicationSpec& app, const AppAssignment& asg,
                           const ResourcePool& pool, FailureScope scope,
                           const ModelParams& params);

/// Buffer-reusing variant: resets every field of `out` and rebuilds the plan
/// in place, keeping the `shared_devices` capacity across calls.
void plan_recovery_into(RecoveryPlan& out, const ApplicationSpec& app,
                        const AppAssignment& asg, const ResourcePool& pool,
                        FailureScope scope, const ModelParams& params);

struct ScenarioSpec;  // model/recovery_sim.hpp

/// Scenario-aware planning. Non-Domain scopes delegate to the scope-based
/// variant above (bit-identical plans). Domain destroys reconstruct with the
/// node's repair lead and the subtree-aware survival matrix; Domain outages
/// (data intact) fail over when a mirror outside the domain exists, else
/// WaitRepair — never Unrecoverable, and never a data loss.
void plan_recovery_into(RecoveryPlan& out, const ApplicationSpec& app,
                        const AppAssignment& asg, const ResourcePool& pool,
                        const ScenarioSpec& scenario,
                        const ModelParams& params);

/// Allocating wrapper over the scenario-aware `plan_recovery_into`.
RecoveryPlan plan_recovery(const ApplicationSpec& app, const AppAssignment& asg,
                           const ResourcePool& pool,
                           const ScenarioSpec& scenario,
                           const ModelParams& params);

}  // namespace depstor
