// Fixed pool of worker threads draining a TaskQueue.
//
// This is the fan-out primitive of the batch engine, and what the
// solver/parallel drivers delegate their thread management to. Tasks are
// plain closures and must not throw — callers that need error propagation
// capture an exception_ptr inside the task (see solver/parallel.cpp) or
// record the failure in their job bookkeeping (see engine/engine.cpp).
//
// TaskGroup adds nested fan-out on top: a task already running on the pool
// (a BatchEngine job, a refit sibling walk) can spawn subtasks onto the
// same pool and wait for them without deadlocking it — the waiting thread
// executes ("steals") any subtask the pool has not picked up yet, so a
// group always drains even on a pool of size 1 whose only worker is the
// waiter itself.
//
// Destruction closes the queue and joins the workers after every task
// already submitted has run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "engine/queue.hpp"

namespace depstor {

class WorkerPool {
 public:
  /// `workers` threads; 0 = one per hardware thread (at least one).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Returns false when the pool has been stopped (or its
  /// destructor is racing the submit): the task is rejected, the pending
  /// count rolled back, and wait_idle() cannot hang on work that will never
  /// run. Callers that require acceptance assert on the result.
  [[nodiscard]] bool submit(TaskQueue::Task task);

  /// Stop accepting submits, drain the queue, and join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Block until every submitted task has finished (the queue is empty and
  /// no worker is mid-task). Further submits remain allowed.
  void wait_idle();

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks submitted but not yet started.
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  void worker_loop();

  TaskQueue queue_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t unfinished_ = 0;  ///< submitted minus finished
  std::vector<std::thread> threads_;
};

/// Resolve a worker-count option: n >= 1 as given, 0 = hardware concurrency.
int resolve_worker_count(int workers);

/// A batch of subtasks fanned onto a WorkerPool by a single coordinating
/// thread, with help-while-wait draining.
///
///   TaskGroup group(pool);            // pool may be null: run() is inline
///   for (...) group.run([&] {...});
///   group.wait();                     // steals pending tasks, blocks on
///                                     // in-flight ones
///
/// run() enqueues the task in the group's own deque and submits a thin
/// claim-wrapper to the pool; whichever of {a pool worker, the waiting
/// thread} claims a task first executes it, the other finds the deque entry
/// gone and moves on. Because wait() executes unclaimed tasks itself, a
/// group submitted from *inside* a pool task cannot deadlock the pool — the
/// nested-submission shape the intra-solve parallel refit and the batch
/// engine rely on. Groups may nest arbitrarily (a group task may open its
/// own group on the same pool).
///
/// Tasks must not throw (same contract as WorkerPool). The group is
/// single-producer: only one thread calls run()/wait(). wait() returns only
/// after every task has finished; the destructor waits too.
class TaskGroup {
 public:
  /// `pool == nullptr` (or a pool with no live workers) degrades to inline
  /// execution inside run() — same results, zero threading.
  explicit TaskGroup(WorkerPool* pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(TaskQueue::Task task);
  void wait();

  /// Tasks handed to the pool (vs executed inline because there is no pool).
  std::int64_t spawned() const { return spawned_; }
  /// Tasks the waiting/submitting thread executed itself instead of a pool
  /// worker (inline fallbacks included).
  std::int64_t stolen() const { return stolen_; }

 private:
  /// Claim-state shared with the wrappers living in the pool queue; a
  /// shared_ptr so a wrapper that loses the claim race can still run its
  /// no-op safely after the group object is gone.
  struct State;

  WorkerPool* pool_;
  std::shared_ptr<State> state_;
  std::int64_t spawned_ = 0;
  std::int64_t stolen_ = 0;
};

}  // namespace depstor
