// Fixed pool of worker threads draining a TaskQueue.
//
// This is the fan-out primitive of the batch engine, and what the
// solver/parallel drivers delegate their thread management to. Tasks are
// plain closures and must not throw — callers that need error propagation
// capture an exception_ptr inside the task (see solver/parallel.cpp) or
// record the failure in their job bookkeeping (see engine/engine.cpp).
//
// TaskGroup adds nested fan-out on top: a task already running on the pool
// (a BatchEngine job, a refit sibling walk) can spawn subtasks onto the
// same pool and wait for them without deadlocking it — the waiting thread
// executes ("steals") any subtask the pool has not picked up yet, so a
// group always drains even on a pool of size 1 whose only worker is the
// waiter itself.
//
// Destruction closes the queue and joins the workers after every task
// already submitted has run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine/queue.hpp"

namespace depstor {

class WorkerPool {
 public:
  /// `workers` threads; 0 = one per hardware thread (at least one).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Returns false when the pool has been stopped (or its
  /// destructor is racing the submit): the task is rejected, the pending
  /// count rolled back, and wait_idle() cannot hang on work that will never
  /// run. Callers that require acceptance assert on the result.
  [[nodiscard]] bool submit(TaskQueue::Task task);

  /// Stop accepting submits, drain the queue, and join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Block until every submitted task has finished (the queue is empty and
  /// no worker is mid-task). Further submits remain allowed.
  void wait_idle();

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks submitted but not yet started.
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  void worker_loop();

  TaskQueue queue_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t unfinished_ = 0;  ///< submitted minus finished
  std::vector<std::thread> threads_;
};

/// Resolve a worker-count option: n >= 1 as given, 0 = hardware concurrency.
int resolve_worker_count(int workers);

/// A batch of subtasks fanned onto a WorkerPool by a single coordinating
/// thread, with help-while-wait draining.
///
///   TaskGroup group(pool);            // pool may be null: everything inline
///   group.run_indexed(n, chunk, [&](int i) {...});  // the fan primitive
///   for (...) group.run([&] {...});                 // ad-hoc closures
///   group.wait();                     // helps drain, then blocks on
///                                     // in-flight work; rethrows task errors
///
/// run_indexed(count, chunk, fn) fans `fn(0) .. fn(count-1)` as
/// ceil(count/chunk) *chunks* of consecutive indices. Claiming is one atomic
/// fetch_add on a shared cursor — no per-task allocation, no lock on the
/// steal path — and only min(chunks, workers) thin runner closures are
/// handed to the pool, so the pool's queue sees O(workers) entries per fan
/// instead of O(count). Whichever of {a pool runner, the waiting thread}
/// advances the cursor first owns that chunk; wait() claims chunks itself
/// (help-while-wait), which is what keeps nested fans deadlock-free even on
/// a 1-worker pool whose only worker is the waiter. Chunking never changes
/// results: each index's work is independent by contract and merges happen
/// slot-ordered in the caller, so grouping only decides *where* an index
/// runs.
///
/// run() keeps the original one-closure-per-task shape (group-owned deque +
/// claim wrappers) for heterogeneous work.
///
/// Unlike raw WorkerPool tasks, group tasks may throw: the first exception
/// (lowest index for run_indexed; submission order for run) is captured and
/// rethrown from wait() after the whole group has drained. The group is
/// single-producer: only one thread calls run()/run_indexed()/wait().
/// wait() returns only after every task has finished; the destructor drains
/// without rethrowing.
class TaskGroup {
 public:
  /// `pool == nullptr` (or a pool with no live workers) degrades to inline
  /// execution inside run()/run_indexed() — same results, zero threading.
  explicit TaskGroup(WorkerPool* pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(TaskQueue::Task task);

  /// Fan `fn(0) .. fn(count-1)` in chunks of `chunk` consecutive indices
  /// (the last chunk may be short). Blocks until every index has run — the
  /// calling thread claims chunks alongside the pool — and counts one
  /// spawned/stolen unit per *chunk* (the claim grain). Errors surface at
  /// wait(); indices after a throwing one within the same chunk are skipped,
  /// other chunks still run.
  void run_indexed(int count, int chunk, const std::function<void(int)>& fn);

  void wait();

  /// Claim units (chunks for run_indexed, tasks for run) executed by pool
  /// workers.
  std::int64_t spawned() const { return spawned_; }
  /// Claim units the waiting/submitting thread executed itself instead of a
  /// pool worker (inline fallbacks included).
  std::int64_t stolen() const { return stolen_; }

 private:
  /// Claim-state shared with the wrappers living in the pool queue; a
  /// shared_ptr so a wrapper that loses the claim race can still run its
  /// no-op safely after the group object is gone.
  struct State;
  struct IndexedFan;

  /// Help drain and block until every task finished, without rethrowing
  /// (the destructor's half of wait()).
  void wait_drain();

  WorkerPool* pool_;
  std::shared_ptr<State> state_;
  std::int64_t spawned_ = 0;
  std::int64_t stolen_ = 0;
  int next_index_ = 0;  ///< submission order, for deterministic error choice
};

}  // namespace depstor
