// Fixed pool of worker threads draining a TaskQueue.
//
// This is the fan-out primitive of the batch engine, and what the
// solver/parallel drivers delegate their thread management to. Tasks are
// plain closures and must not throw — callers that need error propagation
// capture an exception_ptr inside the task (see solver/parallel.cpp) or
// record the failure in their job bookkeeping (see engine/engine.cpp).
//
// Destruction closes the queue and joins the workers after every task
// already submitted has run.
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

#include "engine/queue.hpp"

namespace depstor {

class WorkerPool {
 public:
  /// `workers` threads; 0 = one per hardware thread (at least one).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task. Returns false when the pool has been stopped (or its
  /// destructor is racing the submit): the task is rejected, the pending
  /// count rolled back, and wait_idle() cannot hang on work that will never
  /// run. Callers that require acceptance assert on the result.
  [[nodiscard]] bool submit(TaskQueue::Task task);

  /// Stop accepting submits, drain the queue, and join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Block until every submitted task has finished (the queue is empty and
  /// no worker is mid-task). Further submits remain allowed.
  void wait_idle();

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks submitted but not yet started.
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  void worker_loop();

  TaskQueue queue_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t unfinished_ = 0;  ///< submitted minus finished
  std::vector<std::thread> threads_;
};

/// Resolve a worker-count option: n >= 1 as given, 0 = hardware concurrency.
int resolve_worker_count(int workers);

}  // namespace depstor
