// Sharded memoizing evaluation cache for candidate cost evaluations.
//
// Candidate::evaluate() — recovery simulation over every failure scenario
// plus outlay/penalty accounting — is the hot kernel of both solvers, and
// the search revisits states constantly: the configuration sweep re-prices
// its baseline after applying the winning grid point, the increment loop
// re-applies the best probe of the previous round, and the refit walk copies
// candidates between siblings. The cache memoizes evaluate() keyed by a
// 64-bit FNV-1a fingerprint of everything the evaluation depends on:
//
//   environment salt  (apps, topology, device catalog, failure rates, model
//                      parameters — so one cache can serve jobs over
//                      *different* environments without false sharing)
//   × per-app assignment (technique, chain configuration, sites, devices)
//   × provisioned pool  (per device: type, placement, units, extras,
//                        spare reservations)
//
// The cache is sharded: each shard is an independent LRU map behind its own
// mutex, selected by the key's high bits, so engine workers solving
// different jobs contend only when they land on the same shard. Hit/miss/
// insert/evict counters live *inside* each shard (updated under the lock
// the operation already holds — no shared atomic cache line) and flow into
// ConfigSolverStats, the engine metrics, and serve's /stats both aggregated
// and per shard.
//
// Expect low cross-job hit rates by design: the fingerprint keys the full
// contention footprint of a candidate (every assignment plus the
// provisioned pool), so two jobs only hit each other's entries when they
// reach byte-identical designs — see DESIGN.md §7.
//
// Memoization never changes results: a hit returns exactly the CostBreakdown
// a fresh evaluate() would have produced (64-bit fingerprint collisions
// excepted), so batch runs stay bit-identical whether the cache is cold,
// warm, or disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cost/breakdown.hpp"
#include "solver/solution.hpp"

namespace depstor {

/// Incremental FNV-1a (64-bit) used for the fingerprints. Exposed for tests.
class Fnv1a {
 public:
  Fnv1a& mix(std::uint64_t v);
  Fnv1a& mix(double v);  ///< hashes the bit pattern (exact, not rounded)
  Fnv1a& mix(int v) { return mix(static_cast<std::uint64_t>(v)); }
  Fnv1a& mix(bool v) { return mix(static_cast<std::uint64_t>(v)); }
  Fnv1a& mix(const std::string& s);
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

/// Salt covering everything evaluate() reads from the environment. Computed
/// once per solve and mixed into every candidate fingerprint so distinct
/// environments sharing one cache cannot collide by structure alone.
std::uint64_t fingerprint_environment(const Environment& env);

/// Fingerprint of a candidate's design decisions and provisioning: per-app
/// (technique, devices, intervals, cycle mode) plus the provisioned pool
/// (units, extras, spares), mixed over `env_salt`.
std::uint64_t fingerprint_candidate(const Candidate& candidate,
                                    std::uint64_t env_salt);

struct EvalCacheOptions {
  std::size_t shards = 16;              ///< rounded up to a power of two
  std::size_t capacity_per_shard = 4096;  ///< LRU bound per shard (entries)
};

/// One shard's counters, snapshotted under that shard's lock.
struct EvalCacheShardStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::size_t size = 0;  ///< entries currently resident in the shard
};

struct EvalCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;  ///< lookups that found nothing
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::size_t size = 0;  ///< entries currently resident
  /// Per-shard breakdown (same totals, split by the key's high bits). A
  /// lopsided distribution here means the fingerprint's high bits are not
  /// mixing — the aggregate hit rate alone cannot show that.
  std::vector<EvalCacheShardStats> shards;

  double hit_rate() const {
    const std::int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

class EvalCache {
 public:
  explicit EvalCache(EvalCacheOptions options = {});

  /// Thread-safe. A hit refreshes the entry's LRU position.
  std::optional<CostBreakdown> lookup(std::uint64_t key);

  /// Thread-safe; evicts the shard's least-recently-used entry when full.
  /// Re-inserting an existing key refreshes its value and recency.
  void insert(std::uint64_t key, const CostBreakdown& cost);

  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity() const {
    return shards_.size() * capacity_per_shard_;
  }

  EvalCacheStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The map points into the list.
    std::list<std::pair<std::uint64_t, CostBreakdown>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, CostBreakdown>>::iterator>
        index;
    /// Plain counters: every update already holds `mu`, so sharing an
    /// atomic cache line across shards would only add contention.
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
  };

  Shard& shard_of(std::uint64_t key);

  std::size_t capacity_per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace depstor
