#include "engine/engine.hpp"

#include <algorithm>

#include "analysis/audit.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

struct BatchEngine::Record {
  int id = -1;
  DesignJob job;
  std::uint64_t seed = 0;

  std::atomic<JobStatus> status{JobStatus::Queued};
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> progress{0};

  Clock::time_point submitted;
  double queue_ms = 0.0;
  double run_ms = 0.0;

  SolveResult solve;
  std::string error;
};

BatchEngine::BatchEngine(EngineOptions options)
    : options_(options),
      cache_(options.enable_cache
                 ? std::make_unique<EvalCache>(options.cache)
                 : nullptr),
      pool_(options.workers) {}

BatchEngine::~BatchEngine() {
  // WorkerPool's destructor drains the queue, so every submitted job reaches
  // a terminal state before the records go away.
}

int BatchEngine::submit(DesignJob job) {
  DEPSTOR_EXPECTS_MSG(job.env != nullptr, "design job needs an environment");
  auto rec = std::make_unique<Record>();
  Record* raw = rec.get();
  rec->job = std::move(job);
  rec->submitted = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec->id = static_cast<int>(records_.size());
    rec->seed = rec->job.derive_seed
                    ? options_.seed + static_cast<std::uint64_t>(rec->id)
                    : rec->job.options.seed;
    if (rec->job.name.empty()) {
      rec->job.name = "job-" + std::to_string(rec->id);
    }
    records_.push_back(std::move(rec));
  }
  metrics_.on_submit();
  // The pool only rejects pushes after its queue is closed, which the engine
  // never does while records can still be submitted — losing a task here
  // would strand the record in Queued and hang wait_all().
  const bool accepted = pool_.submit([this, raw] { run_job(*raw); });
  DEPSTOR_ENSURES_MSG(accepted, "engine worker pool rejected a job submit");
  return raw->id;
}

std::vector<int> BatchEngine::submit_all(std::vector<DesignJob> jobs) {
  std::vector<int> ids;
  ids.reserve(jobs.size());
  for (auto& job : jobs) ids.push_back(submit(std::move(job)));
  return ids;
}

void BatchEngine::run_job(Record& rec) {
  DEPSTOR_TRACE_SPAN("job", rec.id);
  const auto started = Clock::now();
  rec.queue_ms = ms_between(rec.submitted, started);

  JobStatus final_status;
  if (rec.cancel.load(std::memory_order_acquire)) {
    final_status = JobStatus::Cancelled;  // cancelled while queued: never run
  } else {
    const double deadline = rec.job.deadline_ms > 0.0
                                ? rec.job.deadline_ms
                                : options_.default_deadline_ms;
    if (deadline > 0.0 && rec.queue_ms >= deadline) {
      final_status = JobStatus::Expired;
    } else {
      rec.status.store(JobStatus::Running, std::memory_order_release);
      DesignSolverOptions opts = rec.job.options;
      opts.seed = rec.seed;
      ExecutionOptions exec = rec.job.exec;
      if (deadline > 0.0) {
        opts.time_budget_ms =
            std::min(opts.time_budget_ms, deadline - rec.queue_ms);
        if (exec.time_budget_ms > 0.0) {
          // The override channel must not smuggle a budget past the deadline.
          exec.time_budget_ms =
              std::min(exec.time_budget_ms, deadline - rec.queue_ms);
        }
      }
      exec.workers = 1;  // the engine *is* the outer fan
      exec.eval_cache = cache_.get();
      exec.cancel = &rec.cancel;
      exec.progress = &rec.progress;
      if (exec.intra_node_workers > 1) {
        // Refit subtasks ride the same pool as the jobs; the solving thread
        // steals any the busy pool does not pick up (TaskGroup), so a fully
        // loaded — even single-worker — pool cannot deadlock.
        exec.intra_pool = &pool_;
      }
      try {
        rec.solve = detail::solve_impl(
            rec.job.env.get(), opts, exec, nullptr,
            rec.job.scenarios ? &*rec.job.scenarios : nullptr);
        if (rec.solve.feasible && analysis::debug_audit_enabled()) {
          // Debug post-check after the result crossed the worker boundary:
          // a race or aliasing bug in the engine would corrupt the design
          // between the solver's own audit and this one.
          analysis::enforce_audit(*rec.solve.best, &rec.solve.cost, {},
                                  "BatchEngine::run_job");
        }
        final_status = rec.cancel.load(std::memory_order_acquire)
                           ? JobStatus::Cancelled
                           : JobStatus::Completed;
      } catch (const std::exception& e) {
        rec.error = e.what();
        final_status = JobStatus::Failed;
        DEPSTOR_LOG(Error, "batch job '" << rec.job.name
                                         << "' failed: " << rec.error);
      }
      rec.run_ms = ms_between(started, Clock::now());
    }
  }
  metrics_.on_finish(final_status, rec.solve.nodes_evaluated,
                     rec.solve.evaluations, rec.solve.scenarios_simulated,
                     rec.solve.scenarios_reused, rec.queue_ms + rec.run_ms);
  obs::counters().add("engine.jobs_finished", 1);
  switch (final_status) {
    case JobStatus::Completed:
      obs::counters().add("engine.jobs_completed", 1);
      break;
    case JobStatus::Failed:
      obs::counters().add("engine.jobs_failed", 1);
      break;
    case JobStatus::Cancelled:
      obs::counters().add("engine.jobs_cancelled", 1);
      break;
    case JobStatus::Expired:
      obs::counters().add("engine.jobs_expired", 1);
      break;
    default:
      break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec.status.store(final_status, std::memory_order_release);
  }
  done_cv_.notify_all();
}

int BatchEngine::job_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(records_.size());
}

JobStatus BatchEngine::status(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEPSTOR_EXPECTS(id >= 0 && id < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(id)]->status.load(
      std::memory_order_acquire);
}

std::int64_t BatchEngine::progress_nodes(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEPSTOR_EXPECTS(id >= 0 && id < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(id)]->progress.load(
      std::memory_order_relaxed);
}

void BatchEngine::cancel(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  DEPSTOR_EXPECTS(id >= 0 && id < static_cast<int>(records_.size()));
  records_[static_cast<std::size_t>(id)]->cancel.store(
      true, std::memory_order_release);
}

JobResult BatchEngine::result_of(const Record& rec) const {
  JobResult r;
  r.id = rec.id;
  r.name = rec.job.name;
  r.status = rec.status.load(std::memory_order_acquire);
  r.seed = rec.seed;
  r.solve = rec.solve;
  r.error = rec.error;
  r.queue_ms = rec.queue_ms;
  r.run_ms = rec.run_ms;
  r.env = rec.job.env;
  return r;
}

JobResult BatchEngine::wait(int id) {
  std::unique_lock<std::mutex> lock(mu_);
  DEPSTOR_EXPECTS(id >= 0 && id < static_cast<int>(records_.size()));
  Record& rec = *records_[static_cast<std::size_t>(id)];
  done_cv_.wait(lock, [&] {
    return is_terminal(rec.status.load(std::memory_order_acquire));
  });
  return result_of(rec);
}

std::vector<JobResult> BatchEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t count = records_.size();
  done_cv_.wait(lock, [&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!is_terminal(records_[i]->status.load(std::memory_order_acquire))) {
        return false;
      }
    }
    return true;
  });
  std::vector<JobResult> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    results.push_back(result_of(*records_[i]));
  }
  return results;
}

EngineMetricsSnapshot BatchEngine::metrics() const {
  // Count queued *jobs*, not the pool's raw queue depth: with intra-solve
  // refit fans borrowing this pool, the queue also holds task-group claim
  // wrappers (including spent ones whose task the waiter already stole),
  // which are not jobs waiting for a worker.
  std::size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& rec : records_) {
      if (rec->status.load(std::memory_order_acquire) == JobStatus::Queued) {
        ++queued;
      }
    }
  }
  return metrics_.snapshot(queued, cache_ ? cache_->stats() : EvalCacheStats{});
}

BatchReport run_batch(std::vector<DesignJob> jobs,
                      const EngineOptions& options) {
  BatchEngine engine(options);
  engine.submit_all(std::move(jobs));
  BatchReport report;
  report.results = engine.wait_all();
  report.metrics = engine.metrics();
  return report;
}

}  // namespace depstor
