#include "engine/queue.hpp"

#include "util/check.hpp"

namespace depstor {

bool TaskQueue::push(Task task) {
  DEPSTOR_EXPECTS(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

std::optional<TaskQueue::Task> TaskQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return std::nullopt;  // closed and drained
  Task task = std::move(tasks_.front());
  tasks_.pop_front();
  return task;
}

void TaskQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TaskQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

bool TaskQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace depstor
