// BatchEngine: the concurrent batch design engine.
//
// Accepts many design jobs (environment + solver options), runs them on a
// fixed worker pool with deterministic per-job seeding, and exposes per-job
// status/progress, cooperative cancellation, deadlines, and aggregate
// metrics (jobs/sec, nodes/sec, queue depth, p50/p95 job latency, evaluation
// cache hit rate).
//
// All workers share one sharded evaluation cache (engine/eval_cache.hpp),
// threaded into each job's ConfigSolver, so near-identical jobs — the
// sensitivity sweeps of Figs. 5-7, seed fans over one environment — stop
// re-running the recovery simulator for candidate states any job has already
// costed. Memoization is result-transparent: a batch yields bit-identical
// per-job results for any worker count and any cache configuration.
//
//   BatchEngine engine({.workers = 8});
//   for (auto& env : environments)
//     engine.submit(DesignJob::make(std::move(env), options));
//   for (JobResult& r : engine.wait_all()) ...;
//   std::cout << engine.metrics().render();
#pragma once

#include <memory>
#include <vector>

#include "engine/eval_cache.hpp"
#include "engine/job.hpp"
#include "engine/metrics.hpp"
#include "engine/worker_pool.hpp"

namespace depstor {

struct EngineOptions {
  int workers = 0;         ///< 0 = one per hardware thread
  std::uint64_t seed = 1;  ///< base of the derived per-job seeds

  bool enable_cache = true;
  EvalCacheOptions cache;

  /// Deadline applied to jobs that do not carry their own; 0 = none.
  double default_deadline_ms = 0.0;
};

/// Results plus the final metrics of a one-shot batch (see run_batch and
/// DesignTool::design_batch).
struct BatchReport {
  std::vector<JobResult> results;  ///< submission order
  EngineMetricsSnapshot metrics;
};

class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  /// Blocks until every submitted job has finished.
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Enqueue a job; returns its id (dense, in submission order). The job's
  /// environment pointer must be non-null.
  int submit(DesignJob job);
  std::vector<int> submit_all(std::vector<DesignJob> jobs);

  int job_count() const;
  JobStatus status(int id) const;

  /// Search nodes the job's solver has evaluated so far (live).
  std::int64_t progress_nodes(int id) const;

  /// Request cancellation: a queued job never runs; a running job stops at
  /// its next node boundary and keeps the best design found so far.
  /// No-op on finished jobs.
  void cancel(int id);

  /// Block until the job reaches a terminal status; returns a copy of its
  /// result (including the shared environment, so the result outlives the
  /// engine).
  JobResult wait(int id);

  /// Block until every job submitted so far has finished.
  std::vector<JobResult> wait_all();

  EngineMetricsSnapshot metrics() const;
  const EvalCache* cache() const { return cache_.get(); }
  int worker_count() const { return pool_.worker_count(); }

 private:
  struct Record;

  void run_job(Record& rec);
  JobResult result_of(const Record& rec) const;

  EngineOptions options_;
  std::unique_ptr<EvalCache> cache_;  ///< null when the cache is disabled
  EngineMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<Record>> records_;

  WorkerPool pool_;  ///< last member: joins before records are destroyed
};

/// Convenience one-shot: submit every job to a fresh engine, wait for all,
/// and return results plus final metrics.
BatchReport run_batch(std::vector<DesignJob> jobs,
                      const EngineOptions& options = {});

}  // namespace depstor
