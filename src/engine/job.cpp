#include "engine/job.hpp"

namespace depstor {

DesignJob DesignJob::make(Environment environment, DesignSolverOptions options,
                          std::string name) {
  DesignJob job;
  job.name = std::move(name);
  job.env = std::make_shared<const Environment>(std::move(environment));
  job.options = options;
  return job;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Queued:
      return "queued";
    case JobStatus::Running:
      return "running";
    case JobStatus::Completed:
      return "completed";
    case JobStatus::Cancelled:
      return "cancelled";
    case JobStatus::Expired:
      return "expired";
    case JobStatus::Failed:
      return "failed";
  }
  return "unknown";
}

bool is_terminal(JobStatus s) {
  return s == JobStatus::Completed || s == JobStatus::Cancelled ||
         s == JobStatus::Expired || s == JobStatus::Failed;
}

}  // namespace depstor
