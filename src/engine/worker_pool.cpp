#include "engine/worker_pool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

int resolve_worker_count(int workers) {
  DEPSTOR_EXPECTS_MSG(workers >= 0, "worker count must be >= 0 (0 = auto)");
  if (workers > 0) return workers;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(int workers) {
  const int count = resolve_worker_count(workers);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::stop() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool WorkerPool::submit(TaskQueue::Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++unfinished_;
  }
  if (!queue_.push(std::move(task))) {
    // The submit raced stop()/destruction: the task was rejected, so the
    // count must roll back — otherwise wait_idle() waits forever for a task
    // that will never run.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
    return false;
  }
  return true;
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
}

void WorkerPool::worker_loop() {
  while (auto task = queue_.pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      // Contract violation: tasks handle their own errors. Swallowing keeps
      // the pool alive; the log line makes the broken task visible.
      DEPSTOR_LOG(Error, "worker pool task threw: " << e.what());
    } catch (...) {
      DEPSTOR_LOG(Error, "worker pool task threw a non-std exception");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

struct TaskGroup::State {
  /// A pending task travels with its submission index — the claim wrapper
  /// that dequeues a task is not necessarily the one submitted for it, so
  /// the index cannot be captured in the wrapper.
  struct Pending {
    TaskQueue::Task task;
    int index = 0;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> pending;  ///< submitted, not yet claimed
  int active = 0;               ///< claimed and currently executing

  /// First task error of the group, rethrown from wait(). `error_index`
  /// orders competing errors deterministically: run_indexed records the
  /// lowest throwing index, run() closures record their submission order.
  std::exception_ptr error;
  int error_index = 0;

  /// Claim the oldest pending task (FIFO). Returns an empty function when
  /// another claimant got there first.
  Pending claim() {
    std::lock_guard<std::mutex> lock(mu);
    if (pending.empty()) return {};
    Pending out = std::move(pending.front());
    pending.pop_front();
    ++active;
    return out;
  }

  void finish_one() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active;
    }
    cv.notify_all();
  }

  void record_error(std::exception_ptr e, int index) {
    std::lock_guard<std::mutex> lock(mu);
    if (error == nullptr || index < error_index) {
      error = std::move(e);
      error_index = index;
    }
  }

  /// Run a claimed task, capturing a throw under `index` for wait().
  void execute(const Pending& claimed) {
    try {
      claimed.task();
    } catch (...) {
      record_error(std::current_exception(), claimed.index);
    }
    finish_one();
  }
};

/// Shared state of one run_indexed fan. Claiming a chunk is a single
/// fetch_add on `cursor` — no allocation, no lock — so the steal path costs
/// the same whether a pool runner or the waiting thread wins the race. The
/// runner closures handed to the pool hold this alive; `fn` itself lives on
/// the caller's stack, which is safe because run_indexed only returns once
/// every chunk is claimed *and* finished, and a late runner that finds the
/// cursor exhausted exits without touching `fn`.
struct TaskGroup::IndexedFan {
  const std::function<void(int)>* fn = nullptr;
  int count = 0;
  int chunk = 1;
  std::atomic<int> cursor{0};       ///< next unclaimed index (steps by chunk)
  std::atomic<int> done{0};         ///< indices retired (throwing chunks too)
  std::atomic<int> pool_chunks{0};  ///< chunks executed by pool runners
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
  int error_index = 0;

  /// Claim the next chunk; returns its first index, or -1 when exhausted.
  int claim() {
    const int begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
    return begin < count ? begin : -1;
  }

  void execute(int begin) {
    const int end = std::min(begin + chunk, count);
    int i = begin;
    try {
      for (; i < end; ++i) (*fn)(i);
    } catch (...) {
      // Keep the lowest throwing index: deterministic winner no matter
      // which chunk's error lands first. Indices after it in this chunk
      // are skipped; other chunks run to completion.
      std::lock_guard<std::mutex> lock(mu);
      if (error == nullptr || i < error_index) {
        error = std::current_exception();
        error_index = i;
      }
    }
    if (done.fetch_add(end - begin, std::memory_order_acq_rel) +
            (end - begin) ==
        count) {
      std::lock_guard<std::mutex> lock(mu);  // pair with the wait below
      cv.notify_all();
    }
  }

  void wait_done() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load(std::memory_order_acquire) == count; });
  }
};

TaskGroup::TaskGroup(WorkerPool* pool)
    : pool_(pool != nullptr && pool->worker_count() > 0 ? pool : nullptr),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  wait_drain();
  // A destructor cannot rethrow; surface an unconsumed task error in the log
  // instead of losing it silently.
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->error != nullptr) {
    DEPSTOR_LOG(Error, "task group destroyed with an unconsumed task error");
  }
}

void TaskGroup::run(TaskQueue::Task task) {
  const int index = next_index_++;
  if (pool_ == nullptr) {
    // No pool: execute inline. Identical results by construction — the
    // parallel refit's determinism contract rests on this equivalence.
    ++stolen_;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->active;
    }
    state_->execute({std::move(task), index});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back({std::move(task), index});
  }
  // The wrapper holds the state alive; if it loses the claim race to the
  // waiting thread it is a cheap no-op on whatever worker runs it.
  const bool accepted = pool_->submit([state = state_] {
    if (State::Pending claimed = state->claim(); claimed.task) {
      state->execute(claimed);
    }
  });
  if (!accepted) {
    // Pool stopped while the group is still live (shutdown race): fall back
    // to inline execution so the group still drains.
    if (State::Pending claimed = state_->claim(); claimed.task) {
      ++stolen_;
      state_->execute(claimed);
    }
    return;
  }
  ++spawned_;
}

void TaskGroup::run_indexed(int count, int chunk,
                            const std::function<void(int)>& fn) {
  if (count <= 0) return;
  const int base_index = next_index_;
  next_index_ += count;
  auto fan = std::make_shared<IndexedFan>();
  fan->fn = &fn;
  fan->count = count;
  fan->chunk = std::max(1, chunk);
  if (pool_ != nullptr) {
    // O(workers) runner closures per fan, not O(count) wrappers: each runner
    // loops fetch_add-claiming chunks until the cursor is exhausted.
    const int chunks = (count + fan->chunk - 1) / fan->chunk;
    const int runners = std::min(chunks, pool_->worker_count());
    for (int r = 0; r < runners; ++r) {
      const bool accepted = pool_->submit([fan] {
        int begin;
        while ((begin = fan->claim()) >= 0) {
          // Count before executing: the last chunk's execute() releases
          // wait_done(), and the spawned/stolen tally must be complete by
          // then.
          fan->pool_chunks.fetch_add(1, std::memory_order_relaxed);
          fan->execute(begin);
        }
      });
      if (!accepted) break;  // pool stopping: the claim loop below drains
    }
  }
  // Help-while-wait: the calling thread claims chunks like any runner, so
  // the fan drains even with no pool (or a pool whose workers are all busy
  // running ancestors of this very fan).
  int begin;
  while ((begin = fan->claim()) >= 0) {
    fan->execute(begin);
    ++stolen_;
  }
  fan->wait_done();
  spawned_ += fan->pool_chunks.load(std::memory_order_relaxed);
  if (fan->error != nullptr) {  // no lock needed: every chunk has retired
    state_->record_error(std::move(fan->error), base_index + fan->error_index);
  }
}

void TaskGroup::wait_drain() {
  // Help-while-wait: execute any task a pool worker has not claimed yet,
  // then block until the in-flight ones finish. This is what lets a pool
  // task fan subtasks onto its own (possibly fully busy) pool.
  for (;;) {
    State::Pending claimed = state_->claim();
    if (!claimed.task) break;
    ++stolen_;
    state_->execute(claimed);
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&] { return state_->active == 0 && state_->pending.empty(); });
}

void TaskGroup::wait() {
  wait_drain();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    error = std::move(state_->error);
    state_->error = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace depstor
