#include "engine/worker_pool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

int resolve_worker_count(int workers) {
  DEPSTOR_EXPECTS_MSG(workers >= 0, "worker count must be >= 0 (0 = auto)");
  if (workers > 0) return workers;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(int workers) {
  const int count = resolve_worker_count(workers);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  queue_.close();
  for (auto& t : threads_) t.join();
}

void WorkerPool::submit(TaskQueue::Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++unfinished_;
  }
  queue_.push(std::move(task));
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
}

void WorkerPool::worker_loop() {
  while (auto task = queue_.pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      // Contract violation: tasks handle their own errors. Swallowing keeps
      // the pool alive; the log line makes the broken task visible.
      DEPSTOR_LOG(Error, "worker pool task threw: " << e.what());
    } catch (...) {
      DEPSTOR_LOG(Error, "worker pool task threw a non-std exception");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace depstor
