#include "engine/worker_pool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

/// Enforce the no-throw task contract on the inline/steal execution paths,
/// mirroring what worker_loop does for pool-executed tasks.
void run_task_noexcept(const TaskQueue::Task& task) {
  try {
    task();
  } catch (const std::exception& e) {
    DEPSTOR_LOG(Error, "task group task threw: " << e.what());
  } catch (...) {
    DEPSTOR_LOG(Error, "task group task threw a non-std exception");
  }
}

}  // namespace

int resolve_worker_count(int workers) {
  DEPSTOR_EXPECTS_MSG(workers >= 0, "worker count must be >= 0 (0 = auto)");
  if (workers > 0) return workers;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(int workers) {
  const int count = resolve_worker_count(workers);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::stop() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool WorkerPool::submit(TaskQueue::Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++unfinished_;
  }
  if (!queue_.push(std::move(task))) {
    // The submit raced stop()/destruction: the task was rejected, so the
    // count must roll back — otherwise wait_idle() waits forever for a task
    // that will never run.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
    return false;
  }
  return true;
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
}

void WorkerPool::worker_loop() {
  while (auto task = queue_.pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      // Contract violation: tasks handle their own errors. Swallowing keeps
      // the pool alive; the log line makes the broken task visible.
      DEPSTOR_LOG(Error, "worker pool task threw: " << e.what());
    } catch (...) {
      DEPSTOR_LOG(Error, "worker pool task threw a non-std exception");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<TaskQueue::Task> pending;  ///< submitted, not yet claimed
  int active = 0;                       ///< claimed and currently executing

  /// Claim the oldest pending task (FIFO). Returns an empty function when
  /// another claimant got there first.
  TaskQueue::Task claim() {
    std::lock_guard<std::mutex> lock(mu);
    if (pending.empty()) return {};
    TaskQueue::Task task = std::move(pending.front());
    pending.pop_front();
    ++active;
    return task;
  }

  void finish_one() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active;
    }
    cv.notify_all();
  }
};

TaskGroup::TaskGroup(WorkerPool* pool)
    : pool_(pool != nullptr && pool->worker_count() > 0 ? pool : nullptr),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { wait(); }

void TaskGroup::run(TaskQueue::Task task) {
  if (pool_ == nullptr) {
    // No pool: execute inline. Identical results by construction — the
    // parallel refit's determinism contract rests on this equivalence.
    ++stolen_;
    run_task_noexcept(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back(std::move(task));
  }
  // The wrapper holds the state alive; if it loses the claim race to the
  // waiting thread it is a cheap no-op on whatever worker runs it.
  const bool accepted = pool_->submit([state = state_] {
    if (TaskQueue::Task claimed = state->claim()) {
      run_task_noexcept(claimed);
      state->finish_one();
    }
  });
  if (!accepted) {
    // Pool stopped while the group is still live (shutdown race): fall back
    // to inline execution so the group still drains.
    if (TaskQueue::Task claimed = state_->claim()) {
      ++stolen_;
      run_task_noexcept(claimed);
      state_->finish_one();
    }
    return;
  }
  ++spawned_;
}

void TaskGroup::wait() {
  // Help-while-wait: execute any task a pool worker has not claimed yet,
  // then block until the in-flight ones finish. This is what lets a pool
  // task fan subtasks onto its own (possibly fully busy) pool.
  while (TaskQueue::Task claimed = state_->claim()) {
    ++stolen_;
    run_task_noexcept(claimed);
    state_->finish_one();
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&] { return state_->active == 0 && state_->pending.empty(); });
}

}  // namespace depstor
