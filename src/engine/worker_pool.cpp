#include "engine/worker_pool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

int resolve_worker_count(int workers) {
  DEPSTOR_EXPECTS_MSG(workers >= 0, "worker count must be >= 0 (0 = auto)");
  if (workers > 0) return workers;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(int workers) {
  const int count = resolve_worker_count(workers);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::stop() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool WorkerPool::submit(TaskQueue::Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++unfinished_;
  }
  if (!queue_.push(std::move(task))) {
    // The submit raced stop()/destruction: the task was rejected, so the
    // count must roll back — otherwise wait_idle() waits forever for a task
    // that will never run.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
    return false;
  }
  return true;
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
}

void WorkerPool::worker_loop() {
  while (auto task = queue_.pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      // Contract violation: tasks handle their own errors. Swallowing keeps
      // the pool alive; the log line makes the broken task visible.
      DEPSTOR_LOG(Error, "worker pool task threw: " << e.what());
    } catch (...) {
      DEPSTOR_LOG(Error, "worker pool task threw a non-std exception");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace depstor
