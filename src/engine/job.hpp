// Batch design jobs: the unit of work of the batch engine.
//
// A DesignJob pairs an environment with design-solver options plus batch
// metadata (name, deadline, seeding policy). Jobs own their environment via
// shared_ptr so the JobResult can keep the environment alive for as long as
// the returned Candidate (which holds a raw Environment pointer) is used —
// callers may drop the engine and keep results.
//
// Seeding: by default the engine derives each job's seed deterministically
// from the engine base seed and the job's submission index (`base + index`),
// so a batch produces bit-identical results regardless of worker count or
// scheduling. Set `derive_seed = false` to use the seed already present in
// `options` verbatim.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/environment.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

struct DesignJob {
  std::string name;                        ///< report label; defaults to "job-<id>"
  std::shared_ptr<const Environment> env;  ///< must be non-null at submit()
  DesignSolverOptions options;

  /// Per-job execution options. Only the solve-shaping fields are honored
  /// (`intra_node_workers`, `deterministic`, `time_budget_ms`): the engine
  /// overrides the runtime hooks — `eval_cache` with its shared cache,
  /// `cancel`/`progress` with the job record's, `intra_pool` with its own
  /// pool (jobs fan refit subtasks onto the same workers; TaskGroup's
  /// help-while-wait keeps that deadlock-free), and `workers` is meaningless
  /// inside a single job.
  ExecutionOptions exec;

  /// Scenario-model override for every candidate this job's solve prices
  /// (SolveRequest::scenarios). Unset: the environment's own model.
  std::optional<ScenarioModel> scenarios;

  /// true (default): the engine overrides `options.seed` with
  /// `engine seed + submission index`. false: keep `options.seed`.
  bool derive_seed = true;

  /// Wall-clock deadline measured from submission, in milliseconds.
  /// A job still queued past its deadline is expired without running; a
  /// running job's solver budget is clipped to the time remaining.
  /// 0 = use the engine default (which may also be 0 = none).
  double deadline_ms = 0.0;

  /// Convenience: wrap an environment value into the shared_ptr form.
  static DesignJob make(Environment environment,
                        DesignSolverOptions options = {},
                        std::string name = {});
};

enum class JobStatus {
  Queued,     ///< submitted, not yet picked up by a worker
  Running,    ///< a worker is solving it
  Completed,  ///< solver ran to completion
  Cancelled,  ///< cancel() observed (queued: never ran; running: stopped early)
  Expired,    ///< deadline passed while still queued
  Failed,     ///< solver threw; see JobResult::error
};

const char* to_string(JobStatus s);

/// True for statuses a job can no longer leave.
bool is_terminal(JobStatus s);

struct JobResult {
  int id = -1;
  std::string name;
  JobStatus status = JobStatus::Queued;
  std::uint64_t seed = 0;  ///< effective seed the solver ran with

  /// Solver output. Valid when Completed; for Cancelled jobs that were
  /// already running it holds the best design found before the stop.
  SolveResult solve;
  std::string error;  ///< what() of the solver exception when Failed

  double queue_ms = 0.0;  ///< submission → pickup
  double run_ms = 0.0;    ///< pickup → finish (0 when never run)

  /// Keeps `solve.best`'s environment alive past the engine's lifetime.
  std::shared_ptr<const Environment> env;
};

}  // namespace depstor
