#include "engine/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/json.hpp"

namespace depstor {

namespace {

// Job latencies from sub-millisecond unit-test solves up to multi-hour
// batches; 160 geometric bins keep quantile interpolation tight (~9% wide).
constexpr double kLatencyLoMs = 1e-3;
constexpr double kLatencyHiMs = 1e7;
constexpr std::size_t kLatencyBins = 160;

}  // namespace

double EngineMetricsSnapshot::jobs_per_sec() const {
  const std::int64_t finished =
      jobs_completed + jobs_cancelled + jobs_expired + jobs_failed;
  return elapsed_ms > 0.0 ? static_cast<double>(finished) * 1000.0 / elapsed_ms
                          : 0.0;
}

double EngineMetricsSnapshot::nodes_per_sec() const {
  return elapsed_ms > 0.0
             ? static_cast<double>(nodes_evaluated) * 1000.0 / elapsed_ms
             : 0.0;
}

std::string EngineMetricsSnapshot::render() const {
  std::ostringstream os;
  os << "jobs: " << jobs_completed << " completed";
  if (jobs_cancelled > 0) os << ", " << jobs_cancelled << " cancelled";
  if (jobs_expired > 0) os << ", " << jobs_expired << " expired";
  if (jobs_failed > 0) os << ", " << jobs_failed << " failed";
  os << " of " << jobs_submitted << " submitted (" << queue_depth
     << " queued)\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "throughput: %.2f jobs/s, %.0f nodes/s over %.0f ms\n",
                jobs_per_sec(), nodes_per_sec(), elapsed_ms);
  os << buf;
  std::snprintf(buf, sizeof buf, "job latency: p50 %.1f ms, p95 %.1f ms\n",
                p50_job_ms, p95_job_ms);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "eval cache: %lld hits / %lld misses (%.1f%% hit rate), "
                "%zu entries, %lld evicted\n",
                static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses), cache.hit_rate() * 100.0,
                cache.size, static_cast<long long>(cache.evictions));
  os << buf;
  const std::int64_t scenario_total = scenarios_simulated + scenarios_reused;
  if (scenario_total > 0) {
    std::snprintf(buf, sizeof buf,
                  "scenarios: %lld simulated / %lld reused (%.1f%% reuse)\n",
                  static_cast<long long>(scenarios_simulated),
                  static_cast<long long>(scenarios_reused),
                  100.0 * static_cast<double>(scenarios_reused) /
                      static_cast<double>(scenario_total));
    os << buf;
  }
  return os.str();
}

void EngineMetricsSnapshot::to_json(JsonWriter& json) const {
  json.begin_object()
      .field("jobs_submitted", static_cast<long long>(jobs_submitted))
      .field("jobs_completed", static_cast<long long>(jobs_completed))
      .field("jobs_cancelled", static_cast<long long>(jobs_cancelled))
      .field("jobs_expired", static_cast<long long>(jobs_expired))
      .field("jobs_failed", static_cast<long long>(jobs_failed))
      .field("queue_depth", static_cast<long long>(queue_depth))
      .field("nodes_evaluated", static_cast<long long>(nodes_evaluated))
      .field("evaluations", static_cast<long long>(evaluations))
      .field("scenarios_simulated",
             static_cast<long long>(scenarios_simulated))
      .field("scenarios_reused", static_cast<long long>(scenarios_reused))
      .field("elapsed_ms", elapsed_ms)
      .field("jobs_per_sec", jobs_per_sec())
      .field("nodes_per_sec", nodes_per_sec())
      .field("p50_job_ms", p50_job_ms)
      .field("p95_job_ms", p95_job_ms)
      .field("job_latency_count", static_cast<long long>(job_latency_count));
  json.key("cache")
      .begin_object()
      .field("hits", static_cast<long long>(cache.hits))
      .field("misses", static_cast<long long>(cache.misses))
      .field("hit_rate", cache.hit_rate())
      .field("insertions", static_cast<long long>(cache.insertions))
      .field("evictions", static_cast<long long>(cache.evictions))
      .field("size", static_cast<long long>(cache.size));
  json.key("shards").begin_array();
  for (const EvalCacheShardStats& shard : cache.shards) {
    json.begin_object()
        .field("hits", static_cast<long long>(shard.hits))
        .field("misses", static_cast<long long>(shard.misses))
        .field("insertions", static_cast<long long>(shard.insertions))
        .field("evictions", static_cast<long long>(shard.evictions))
        .field("size", static_cast<long long>(shard.size))
        .end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
}

EngineMetrics::EngineMetrics()
    : start_(std::chrono::steady_clock::now()),
      latency_ms_(kLatencyLoMs, kLatencyHiMs, kLatencyBins) {}

void EngineMetrics::on_submit() {
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

void EngineMetrics::on_finish(JobStatus status, std::int64_t nodes,
                              std::int64_t evaluations,
                              std::int64_t scenarios_simulated,
                              std::int64_t scenarios_reused,
                              double latency_ms) {
  switch (status) {
    case JobStatus::Completed:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Cancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::Queued:
    case JobStatus::Running:
      break;  // not terminal; callers never pass these
  }
  nodes_.fetch_add(nodes, std::memory_order_relaxed);
  evaluations_.fetch_add(evaluations, std::memory_order_relaxed);
  scenarios_simulated_.fetch_add(scenarios_simulated,
                                 std::memory_order_relaxed);
  scenarios_reused_.fetch_add(scenarios_reused, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ms_.add(std::max(latency_ms, kLatencyLoMs));
}

EngineMetricsSnapshot EngineMetrics::snapshot(
    std::size_t queue_depth, const EvalCacheStats& cache) const {
  EngineMetricsSnapshot s;
  s.jobs_submitted = submitted_.load(std::memory_order_relaxed);
  s.jobs_completed = completed_.load(std::memory_order_relaxed);
  s.jobs_cancelled = cancelled_.load(std::memory_order_relaxed);
  s.jobs_expired = expired_.load(std::memory_order_relaxed);
  s.jobs_failed = failed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth;
  s.nodes_evaluated = nodes_.load(std::memory_order_relaxed);
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.scenarios_simulated =
      scenarios_simulated_.load(std::memory_order_relaxed);
  s.scenarios_reused = scenarios_reused_.load(std::memory_order_relaxed);
  s.cache = cache;
  s.elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  std::lock_guard<std::mutex> lock(latency_mu_);
  s.job_latency_count = static_cast<std::int64_t>(latency_ms_.total());
  if (latency_ms_.total() > 0) {
    s.p50_job_ms = latency_ms_.quantile(0.50);
    s.p95_job_ms = latency_ms_.quantile(0.95);
  }
  return s;
}

}  // namespace depstor
