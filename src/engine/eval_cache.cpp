#include "engine/eval_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace depstor {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void mix_device_type(Fnv1a& h, const DeviceTypeSpec& type) {
  h.mix(type.name)
      .mix(static_cast<int>(type.kind))
      .mix(static_cast<int>(type.cls))
      .mix(type.fixed_cost)
      .mix(type.cost_per_capacity_unit)
      .mix(type.cost_per_bandwidth_unit)
      .mix(type.max_capacity_units)
      .mix(type.max_bandwidth_units)
      .mix(type.capacity_unit_gb)
      .mix(type.bandwidth_unit_mbps)
      .mix(type.max_aggregate_bandwidth_mbps);
}

}  // namespace

Fnv1a& Fnv1a::mix(std::uint64_t v) {
  // Byte-wise FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffu;
    hash_ *= 1099511628211ull;  // FNV prime
  }
  return *this;
}

Fnv1a& Fnv1a::mix(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

Fnv1a& Fnv1a::mix(const std::string& s) {
  for (unsigned char c : s) {
    hash_ ^= c;
    hash_ *= 1099511628211ull;
  }
  return mix(static_cast<std::uint64_t>(s.size()));
}

std::uint64_t fingerprint_environment(const Environment& env) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(env.apps.size()));
  for (const auto& app : env.apps) {
    // Name and type code included: two environments whose apps share every
    // numeric field are still different environments, and a shared cache
    // keyed only on numbers would cross-pollinate between them when a delta
    // later diverges their footprints.
    h.mix(app.name)
        .mix(app.type_code)
        .mix(app.outage_penalty_rate)
        .mix(app.loss_penalty_rate)
        .mix(app.data_size_gb)
        .mix(app.avg_update_mbps)
        .mix(app.peak_update_mbps)
        .mix(app.avg_access_mbps)
        .mix(app.unique_update_mbps);
  }
  h.mix(static_cast<std::uint64_t>(env.topology.sites.size()));
  for (const auto& site : env.topology.sites) {
    h.mix(site.region)
        .mix(site.max_disk_arrays)
        .mix(site.max_spare_arrays)
        .mix(site.max_tape_libraries)
        .mix(site.max_compute_slots)
        .mix(site.fixed_cost);
  }
  for (const auto& pair : env.topology.pair_limits) {
    h.mix(pair.site_a).mix(pair.site_b).mix(pair.max_links);
  }
  for (const auto* types :
       {&env.array_types, &env.tape_types, &env.network_types}) {
    h.mix(static_cast<std::uint64_t>(types->size()));
    for (const auto& type : *types) mix_device_type(h, type);
  }
  mix_device_type(h, env.compute_type);

  h.mix(env.failures.data_object_rate)
      .mix(env.failures.disk_array_rate)
      .mix(env.failures.site_disaster_rate)
      .mix(env.failures.regional_disaster_rate);
  // The domain tree changes scenario pricing without touching the flat
  // rates; two environments differing only in tree structure or correlation
  // knobs must never share cache entries.
  h.mix(env.failure_domains != nullptr ? env.failure_domains->fingerprint()
                                       : std::uint64_t{0});

  const ModelParams& p = env.params;
  h.mix(p.failover_hours)
      .mix(p.snapshot_restore_hours)
      .mix(p.tape_load_hours)
      .mix(p.incremental_load_hours)
      .mix(p.detection_hours)
      .mix(p.repair_data_object_hours)
      .mix(p.repair_disk_array_hours)
      .mix(p.repair_with_spare_hours)
      .mix(p.repair_site_hours)
      .mix(p.repair_regional_hours)
      .mix(p.unprotected_loss_hours)
      .mix(p.backup_window_target_hours)
      .mix(p.vault_retrieval_hours)
      .mix(p.vault_annual_fee)
      .mix(static_cast<int>(p.recovery_order))
      .mix(p.device_lifetime_years);

  // Category thresholds and policy ranges were missing from the salt: they
  // change which techniques/configurations the solvers consider — and the
  // categories the recovery order serializes on — so two environments
  // differing only here must never share cache entries.
  h.mix(env.thresholds.gold_min).mix(env.thresholds.silver_min);
  const PolicyRanges& pol = env.policies;
  for (const auto* range :
       {&pol.snapshot_intervals_hours, &pol.backup_intervals_hours,
        &pol.incremental_intervals_hours}) {
    h.mix(static_cast<std::uint64_t>(range->size()));
    for (double v : *range) h.mix(v);
  }
  h.mix(pol.allow_incremental_backups)
      .mix(pol.allow_spare_arrays)
      .mix(pol.max_resource_increments);
  return h.digest();
}

std::uint64_t fingerprint_candidate(const Candidate& candidate,
                                    std::uint64_t env_salt) {
  Fnv1a h;
  h.mix(env_salt);

  for (const auto& asg : candidate.assignments()) {
    h.mix(asg.assigned);
    if (!asg.assigned) continue;
    h.mix(static_cast<int>(asg.technique.mirror))
        .mix(static_cast<int>(asg.technique.recovery))
        .mix(asg.technique.has_backup)
        .mix(asg.technique.mirror_accumulation_hours);
    if (asg.technique.has_backup) {
      const BackupChainConfig& b = asg.backup;
      h.mix(b.snapshot_interval_hours)
          .mix(b.snapshots_retained)
          .mix(b.backup_interval_hours)
          .mix(b.backups_retained)
          .mix(static_cast<int>(b.cycle))
          .mix(b.incremental_interval_hours)
          .mix(b.vault_interval_hours)
          .mix(b.vault_shipping_hours);
    }
    h.mix(asg.primary_site)
        .mix(asg.secondary_site)
        .mix(asg.primary_array)
        .mix(asg.mirror_array)
        .mix(asg.tape_library)
        .mix(asg.mirror_link)
        .mix(asg.primary_compute)
        .mix(asg.failover_compute);
  }

  // Provisioned pool: device ids are creation-ordered within a candidate, so
  // iterating in id order is canonical. Unit counts are technically implied
  // by the assignments, but mixing them is cheap insurance against any state
  // the assignment fields do not capture.
  const ResourcePool& pool = candidate.pool();
  h.mix(pool.device_count());
  for (const auto& dev : pool.devices()) {
    const bool used = pool.in_use(dev.id);
    h.mix(used);
    if (!used) continue;  // idle devices cost nothing and recover nothing
    h.mix(dev.type.name)
        .mix(dev.site_id)
        .mix(dev.site_b_id)
        .mix(dev.capacity_units)
        .mix(dev.bandwidth_units)
        .mix(dev.extra_capacity_units)
        .mix(dev.extra_bandwidth_units)
        .mix(pool.is_spare_device(dev.id));
  }
  return h.digest();
}

EvalCache::EvalCache(EvalCacheOptions options)
    : capacity_per_shard_(options.capacity_per_shard),
      shards_(round_up_pow2(std::max<std::size_t>(1, options.shards))) {
  DEPSTOR_EXPECTS(options.capacity_per_shard >= 1);
}

EvalCache::Shard& EvalCache::shard_of(std::uint64_t key) {
  // High bits pick the shard; the hash map inside the shard uses the low
  // bits, so the two selections stay independent.
  const std::size_t mask = shards_.size() - 1;
  return shards_[(key >> 48) & mask];
}

std::optional<CostBreakdown> EvalCache::lookup(std::uint64_t key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->second;
}

void EvalCache::insert(std::uint64_t key, const CostBreakdown& cost) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = cost;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= capacity_per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, cost);
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvalCacheShardStats ss;
    ss.hits = shard.hits;
    ss.misses = shard.misses;
    ss.insertions = shard.insertions;
    ss.evictions = shard.evictions;
    ss.size = shard.lru.size();
    s.hits += ss.hits;
    s.misses += ss.misses;
    s.insertions += ss.insertions;
    s.evictions += ss.evictions;
    s.size += ss.size;
    s.shards.push_back(ss);
  }
  return s;
}

}  // namespace depstor
