// Aggregate metrics of a batch engine run.
//
// Counters are atomics updated by the workers; job latencies stream into a
// mutex-guarded LogHistogram (util/histogram) whose quantiles give the
// p50/p95 figures. snapshot() assembles a consistent-enough view for
// reporting — individual counters are exact, cross-counter relationships
// (e.g. jobs/sec vs nodes) may lag by in-flight jobs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "engine/eval_cache.hpp"
#include "engine/job.hpp"
#include "util/histogram.hpp"

namespace depstor {

class JsonWriter;

struct EngineMetricsSnapshot {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_cancelled = 0;
  std::int64_t jobs_expired = 0;
  std::int64_t jobs_failed = 0;
  std::size_t queue_depth = 0;  ///< jobs waiting for a worker

  std::int64_t nodes_evaluated = 0;  ///< search nodes across finished jobs
  std::int64_t evaluations = 0;      ///< cost evaluations (incl. cache hits)
  /// Incremental-evaluator scenario counters across finished jobs: failure
  /// scenarios re-simulated vs served from the per-candidate footprint
  /// cache (cost/incremental.hpp).
  std::int64_t scenarios_simulated = 0;
  std::int64_t scenarios_reused = 0;
  EvalCacheStats cache;

  double elapsed_ms = 0.0;  ///< engine lifetime so far
  double p50_job_ms = 0.0;  ///< median job latency (queue + run)
  double p95_job_ms = 0.0;
  /// Samples behind the latency quantiles. 0 means no job has completed yet
  /// and the quantiles above are the 0.0 placeholder, not a measurement —
  /// consumers must check this before trusting p50/p95.
  std::int64_t job_latency_count = 0;

  double jobs_per_sec() const;
  double nodes_per_sec() const;

  /// Multi-line human-readable summary.
  std::string render() const;

  /// Write the snapshot as a JSON object value (caller owns surrounding
  /// structure; call between key()/array slots).
  void to_json(JsonWriter& json) const;
};

class EngineMetrics {
 public:
  EngineMetrics();

  void on_submit();

  /// Record a finished job: its terminal status, the solver counters it
  /// consumed, and its total latency (submission to finish).
  void on_finish(JobStatus status, std::int64_t nodes,
                 std::int64_t evaluations, std::int64_t scenarios_simulated,
                 std::int64_t scenarios_reused, double latency_ms);

  EngineMetricsSnapshot snapshot(std::size_t queue_depth,
                                 const EvalCacheStats& cache) const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> expired_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> nodes_{0};
  std::atomic<std::int64_t> evaluations_{0};
  std::atomic<std::int64_t> scenarios_simulated_{0};
  std::atomic<std::int64_t> scenarios_reused_{0};

  mutable std::mutex latency_mu_;
  LogHistogram latency_ms_;
};

}  // namespace depstor
