// Closed-able FIFO task queue feeding the engine's worker pool.
//
// Producers push closures; workers block in pop() until a task or shutdown
// arrives. close() stops further pushes but lets workers drain everything
// already queued — the engine relies on that to finish all submitted jobs on
// destruction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace depstor {

class TaskQueue {
 public:
  using Task = std::function<void()>;

  /// Enqueue a task. Returns false (and drops the task) once the queue has
  /// been closed — a submit racing shutdown is a caller-visible rejection,
  /// not a silent drop, so the caller can roll back its own bookkeeping.
  [[nodiscard]] bool push(Task task);

  /// Blocking dequeue: returns the next task, or nullopt once the queue is
  /// closed *and* drained (the worker-thread exit signal).
  std::optional<Task> pop();

  /// Stop accepting pushes and wake every blocked pop(). Queued tasks are
  /// still handed out until the queue is empty. Idempotent.
  void close();

  /// Tasks currently waiting (excludes tasks already handed to workers).
  std::size_t depth() const;

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

}  // namespace depstor
