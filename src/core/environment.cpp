#include "core/environment.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace depstor {

void PolicyRanges::validate() const {
  DEPSTOR_EXPECTS(!snapshot_intervals_hours.empty());
  DEPSTOR_EXPECTS(!backup_intervals_hours.empty());
  for (double v : snapshot_intervals_hours) DEPSTOR_EXPECTS(v > 0.0);
  for (double v : backup_intervals_hours) DEPSTOR_EXPECTS(v > 0.0);
  const double max_snap = *std::max_element(snapshot_intervals_hours.begin(),
                                            snapshot_intervals_hours.end());
  const double min_backup = *std::min_element(backup_intervals_hours.begin(),
                                              backup_intervals_hours.end());
  DEPSTOR_EXPECTS_MSG(min_backup >= max_snap,
                      "backups cannot be more frequent than snapshots");
  if (allow_incremental_backups) {
    DEPSTOR_EXPECTS(!incremental_intervals_hours.empty());
    for (double v : incremental_intervals_hours) DEPSTOR_EXPECTS(v > 0.0);
  }
  DEPSTOR_EXPECTS(max_resource_increments >= 0);
}

const ApplicationSpec& Environment::app(int id) const {
  DEPSTOR_EXPECTS(id >= 0 && id < static_cast<int>(apps.size()));
  return apps[static_cast<std::size_t>(id)];
}

void Environment::validate() const {
  DEPSTOR_EXPECTS_MSG(!apps.empty(), "environment needs applications");
  for (std::size_t i = 0; i < apps.size(); ++i) {
    DEPSTOR_EXPECTS_MSG(apps[i].id == static_cast<int>(i),
                        "application ids must be dense and ordered");
    apps[i].validate();
  }
  topology.validate();
  DEPSTOR_EXPECTS_MSG(!array_types.empty(), "need at least one array model");
  DEPSTOR_EXPECTS_MSG(!tape_types.empty(), "need at least one tape model");
  DEPSTOR_EXPECTS_MSG(!network_types.empty(),
                      "need at least one network model");
  for (const auto& t : array_types) {
    t.validate();
    DEPSTOR_EXPECTS(t.kind == DeviceKind::DiskArray);
  }
  for (const auto& t : tape_types) {
    t.validate();
    DEPSTOR_EXPECTS(t.kind == DeviceKind::TapeLibrary);
  }
  for (const auto& t : network_types) {
    t.validate();
    DEPSTOR_EXPECTS(t.kind == DeviceKind::NetworkLink);
  }
  compute_type.validate();
  DEPSTOR_EXPECTS(compute_type.kind == DeviceKind::Compute);
  failures.validate();
  if (failure_domains != nullptr) failure_domains->validate(topology);
  params.validate();
  policies.validate();
}

}  // namespace depstor
