// DesignTool: the public facade of the automated design tool (paper Fig. 1).
//
// Wraps the design solver, the two comparison heuristics, and the reporting
// helpers the experiments use. Typical use:
//
//   Environment env = scenarios::peer_sites(8);
//   DesignTool tool(env);
//   auto result = tool.design({.time_budget_ms = 2000, .seed = 7});
//   std::cout << DesignTool::describe(env, *result.best);
#pragma once

#include <string>
#include <vector>

#include "baselines/human_heuristic.hpp"
#include "baselines/random_heuristic.hpp"
#include "core/environment.hpp"
#include "engine/engine.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

class DesignTool {
 public:
  explicit DesignTool(Environment env);

  const Environment& env() const { return env_; }

  /// Run the two-stage design solver (Algorithm 1). Forwards to
  /// depstor::solve (core/api.hpp); pass `exec` to fan seed restarts or
  /// parallelize the refit stage.
  SolveResult design(const DesignSolverOptions& options = {},
                     const ExecutionOptions& exec = {}) const;

  /// Batch mode: run many design jobs — each its own environment — on the
  /// batch engine's worker pool with a shared evaluation cache. Results come
  /// back in submission order together with the engine's final metrics.
  static BatchReport design_batch(std::vector<DesignJob> jobs,
                                  const EngineOptions& engine = {});

  /// Batch mode over *this* tool's environment: one job per option set
  /// (seed fans, budget sweeps). The engine derives per-job seeds
  /// deterministically from `engine.seed` unless a run opts out.
  BatchReport design_batch(const std::vector<DesignSolverOptions>& runs,
                           const EngineOptions& engine = {}) const;

  /// Run the emulated human architect (§4.1).
  BaselineResult design_human(const BaselineOptions& options = {}) const;

  /// Run the random design baseline (§4).
  BaselineResult design_random(const BaselineOptions& options = {}) const;

  /// Re-evaluate a candidate's cost under a different failure model
  /// (sensitivity studies re-price a fixed design, or redesign; §4.5
  /// redesigns — see bench_fig5..7).
  CostBreakdown evaluate_under(const Candidate& candidate,
                               const FailureModel& failures) const;

  /// Render a Table 4-style description of the chosen design: one row per
  /// application with technique, primary site and the devices it touches.
  static std::string describe(const Environment& env,
                              const Candidate& candidate);

  /// Render the per-app penalty/outage detail of a cost breakdown.
  static std::string describe_cost(const Environment& env,
                                   const CostBreakdown& cost);

 private:
  Environment env_;
};

}  // namespace depstor
