#include "core/env_delta.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "engine/eval_cache.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace depstor {

namespace {

/// Largest dataset any single array model in the catalog can hold. An app
/// resized past this can never be placed; reject at delta validation instead
/// of deep inside the solver.
double max_array_capacity_gb(const Environment& env) {
  double best = 0.0;
  for (const auto& type : env.array_types) {
    best = std::max(best, static_cast<double>(type.max_capacity_units) *
                              type.capacity_unit_gb);
  }
  return best;
}

void check_app_fits(const Environment& env, const ApplicationSpec& app,
                    const char* verb) {
  const double limit = max_array_capacity_gb(env);
  if (app.data_size_gb > limit) {
    throw InvalidArgument(
        "env delta: cannot " + std::string(verb) + " application `" +
        app.name + "`: data_size_gb " + std::to_string(app.data_size_gb) +
        " exceeds the largest array model's capacity (" +
        std::to_string(limit) + " GB) — resize past pool capacity");
  }
}

std::map<std::string, int> index_by_name(const ApplicationList& apps) {
  std::map<std::string, int> by_name;
  for (const auto& app : apps) by_name.emplace(app.name, app.id);
  return by_name;
}

bool same_app_fields(const ApplicationSpec& a, const ApplicationSpec& b) {
  return a.type_code == b.type_code &&
         a.outage_penalty_rate == b.outage_penalty_rate &&
         a.loss_penalty_rate == b.loss_penalty_rate &&
         a.data_size_gb == b.data_size_gb &&
         a.avg_update_mbps == b.avg_update_mbps &&
         a.peak_update_mbps == b.peak_update_mbps &&
         a.avg_access_mbps == b.avg_access_mbps &&
         a.unique_update_mbps == b.unique_update_mbps;
}

}  // namespace

DeltaPlan apply_delta(const Environment& prev, const EnvDelta& delta) {
  const auto prev_by_name = index_by_name(prev.apps);

  std::set<std::string> removed;
  for (const auto& name : delta.remove) {
    if (prev_by_name.find(name) == prev_by_name.end()) {
      throw InvalidArgument("env delta: remove names unknown application `" +
                            name + "`");
    }
    if (!removed.insert(name).second) {
      throw InvalidArgument("env delta: application `" + name +
                            "` removed twice");
    }
  }

  std::map<std::string, const ApplicationSpec*> resized;
  for (const auto& spec : delta.resize) {
    if (prev_by_name.find(spec.name) == prev_by_name.end()) {
      throw InvalidArgument("env delta: resize names unknown application `" +
                            spec.name + "`");
    }
    if (removed.count(spec.name) != 0) {
      throw InvalidArgument("env delta: application `" + spec.name +
                            "` both removed and resized");
    }
    if (!resized.emplace(spec.name, &spec).second) {
      throw InvalidArgument("env delta: application `" + spec.name +
                            "` resized twice");
    }
    spec.validate();
    check_app_fits(prev, spec, "resize");
  }

  std::set<std::string> added_names;
  for (const auto& spec : delta.add) {
    if (spec.name.empty()) {
      throw InvalidArgument("env delta: added application has no name");
    }
    if (!added_names.insert(spec.name).second) {
      throw InvalidArgument("env delta: application `" + spec.name +
                            "` added twice");
    }
    if (prev_by_name.count(spec.name) != 0 && removed.count(spec.name) == 0) {
      throw InvalidArgument("env delta: added application `" + spec.name +
                            "` already exists (remove it first to replace)");
    }
    spec.validate();
    check_app_fits(prev, spec, "add");
  }

  DeltaPlan plan;
  plan.env = prev;
  plan.env.apps.clear();
  plan.new_of_old.assign(prev.apps.size(), -1);

  // Survivors first, in their previous relative order (keeps new_of_old
  // monotone), resized specs swapped in by name; additions appended.
  std::map<std::string, int> resized_new_id;
  for (const auto& app : prev.apps) {
    if (removed.count(app.name) != 0) continue;
    const int new_id = static_cast<int>(plan.env.apps.size());
    plan.new_of_old[static_cast<std::size_t>(app.id)] = new_id;
    auto it = resized.find(app.name);
    if (it != resized.end()) {
      plan.env.apps.push_back(*it->second);
      plan.env.apps.back().name = app.name;
      resized_new_id.emplace(app.name, new_id);
    } else {
      plan.env.apps.push_back(app);
    }
  }
  for (const auto& spec : delta.resize) {
    plan.resized_apps.push_back(resized_new_id.at(spec.name));
  }
  for (const auto& spec : delta.add) {
    plan.added_apps.push_back(static_cast<int>(plan.env.apps.size()));
    plan.env.apps.push_back(spec);
  }
  workload::assign_ids(plan.env.apps);

  std::set<std::string> changed_site_names;
  for (const auto& change : delta.site_changes) {
    auto it = std::find_if(plan.env.topology.sites.begin(),
                           plan.env.topology.sites.end(),
                           [&](const SiteSpec& s) {
                             return s.name == change.site;
                           });
    if (it == plan.env.topology.sites.end()) {
      throw InvalidArgument("env delta: site change names unknown site `" +
                            change.site + "`");
    }
    if (!changed_site_names.insert(change.site).second) {
      throw InvalidArgument("env delta: site `" + change.site +
                            "` changed twice");
    }
    const std::pair<const std::optional<int>*, int*> fields[] = {
        {&change.max_disk_arrays, &it->max_disk_arrays},
        {&change.max_spare_arrays, &it->max_spare_arrays},
        {&change.max_tape_libraries, &it->max_tape_libraries},
        {&change.max_compute_slots, &it->max_compute_slots}};
    for (const auto& [src, dst] : fields) {
      if (!src->has_value()) continue;
      if (**src < 0) {
        throw InvalidArgument("env delta: site `" + change.site +
                              "` capacity must be >= 0");
      }
      *dst = **src;
    }
    plan.changed_sites.push_back(it->id);
  }

  plan.env.validate();
  return plan;
}

EnvDelta diff_environments(const Environment& prev, const Environment& next) {
  // Failure-model drift gets its own rejection ahead of the generic
  // fingerprint replay: clients that bumped a rate or re-shaped the domain
  // tree should learn that directly (serve surfaces the reason code in its
  // 422), not as an anonymous "differ beyond apps" failure.
  const FailureModel& pf = prev.failures;
  const FailureModel& nf = next.failures;
  const std::uint64_t prev_tree =
      prev.failure_domains != nullptr ? prev.failure_domains->fingerprint()
                                      : 0;
  const std::uint64_t next_tree =
      next.failure_domains != nullptr ? next.failure_domains->fingerprint()
                                      : 0;
  if (pf.data_object_rate != nf.data_object_rate ||
      pf.disk_array_rate != nf.disk_array_rate ||
      pf.site_disaster_rate != nf.site_disaster_rate ||
      pf.regional_disaster_rate != nf.regional_disaster_rate ||
      prev_tree != next_tree) {
    throw NonDeltaError(
        kReasonFailureModelChanged,
        "env diff: the failure model changed (flat failure rates or the "
        "failure-domain tree) — rate drift is not expressible as a delta; "
        "submit as a fresh design, not a revision");
  }

  EnvDelta delta;
  const auto prev_by_name = index_by_name(prev.apps);
  const auto next_by_name = index_by_name(next.apps);
  if (next_by_name.size() != next.apps.size()) {
    throw InvalidArgument("env diff: successor has duplicate app names");
  }

  for (const auto& app : prev.apps) {
    if (next_by_name.count(app.name) == 0) delta.remove.push_back(app.name);
  }
  // Survivors must keep their relative order with additions appended; walk
  // the successor checking both at once.
  int last_survivor_old_id = -1;
  bool seen_added = false;
  for (const auto& app : next.apps) {
    auto it = prev_by_name.find(app.name);
    if (it == prev_by_name.end()) {
      delta.add.push_back(app);
      seen_added = true;
      continue;
    }
    if (seen_added) {
      throw InvalidArgument(
          "env diff: surviving application `" + app.name +
          "` appears after an added one — new applications must be appended");
    }
    if (it->second < last_survivor_old_id) {
      throw InvalidArgument(
          "env diff: applications were reordered (`" + app.name +
          "`) — survivors must keep their relative order");
    }
    last_survivor_old_id = it->second;
    if (!same_app_fields(prev.apps[static_cast<std::size_t>(it->second)],
                         app)) {
      delta.resize.push_back(app);
    }
  }

  if (prev.topology.sites.size() != next.topology.sites.size()) {
    throw InvalidArgument("env diff: site count changed — not a delta");
  }
  for (std::size_t i = 0; i < prev.topology.sites.size(); ++i) {
    const SiteSpec& a = prev.topology.sites[i];
    const SiteSpec& b = next.topology.sites[i];
    if (a.name != b.name || a.region != b.region ||
        a.fixed_cost != b.fixed_cost) {
      throw InvalidArgument("env diff: site `" + a.name +
                            "` geometry changed — not a delta");
    }
    SiteCapacityChange change;
    change.site = a.name;
    if (a.max_disk_arrays != b.max_disk_arrays)
      change.max_disk_arrays = b.max_disk_arrays;
    if (a.max_spare_arrays != b.max_spare_arrays)
      change.max_spare_arrays = b.max_spare_arrays;
    if (a.max_tape_libraries != b.max_tape_libraries)
      change.max_tape_libraries = b.max_tape_libraries;
    if (a.max_compute_slots != b.max_compute_slots)
      change.max_compute_slots = b.max_compute_slots;
    if (change.max_disk_arrays || change.max_spare_arrays ||
        change.max_tape_libraries || change.max_compute_slots) {
      delta.site_changes.push_back(std::move(change));
    }
  }

  // Everything else must be untouched: rebuilding `next` from the delta and
  // comparing environment fingerprints catches changes (catalogs, failures,
  // params, thresholds, policies, links) that a delta cannot express.
  const DeltaPlan plan = apply_delta(prev, delta);
  if (fingerprint_environment(plan.env) != fingerprint_environment(next)) {
    throw InvalidArgument(
        "env diff: environments differ beyond apps and site capacities "
        "(catalog, failure, parameter, policy, or link changes are not "
        "expressible as a delta)");
  }
  return delta;
}

}  // namespace depstor
