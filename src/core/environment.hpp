// The full problem description handed to the design tool (paper §2.6):
// applications with business requirements, site topology, available device
// models, failure likelihoods, model parameters, and the policy ranges the
// configuration solver may search over.
#pragma once

#include <memory>
#include <vector>

#include "model/failure.hpp"
#include "model/params.hpp"
#include "model/scenario_model.hpp"
#include "protection/technique.hpp"
#include "resources/device.hpp"
#include "resources/site.hpp"
#include "workload/application.hpp"

namespace depstor {

/// Discretized value ranges for the configuration parameters (§3.2: "valid
/// ranges of values are based on policies", e.g. 12-hour backup increments).
/// Table 2's values (12 h snapshots, 7-day backups) are members of the
/// default ranges.
struct PolicyRanges {
  std::vector<double> snapshot_intervals_hours = {4.0, 8.0, 12.0, 24.0};
  std::vector<double> backup_intervals_hours = {84.0, 168.0, 336.0};
  /// Incremental-cycle options swept when `allow_incremental_backups`.
  std::vector<double> incremental_intervals_hours = {12.0, 24.0};
  bool allow_incremental_backups = true;
  /// Let the increment loop buy hot-spare array enclosures (shortening the
  /// array repair lead) when a spare pays for itself.
  bool allow_spare_arrays = true;
  /// Ceiling on the §3.2.2 resource-increment loop (extra links / drives /
  /// array units added while cost keeps dropping).
  int max_resource_increments = 8;

  void validate() const;
};

struct Environment {
  ApplicationList apps;
  Topology topology;

  /// Device models deployable in this environment.
  std::vector<DeviceTypeSpec> array_types;
  std::vector<DeviceTypeSpec> tape_types;
  std::vector<DeviceTypeSpec> network_types;
  DeviceTypeSpec compute_type;

  FailureModel failures;
  /// Hierarchical failure domains (model/domain.hpp). Loaded environments
  /// always carry one — the env loader builds the degenerate two-level tree
  /// (bit-identical scenarios to `failures`) when the INI declares no
  /// `[failure_domains]` section. Null on hand-built environments, which
  /// then evaluate through the legacy flat path.
  std::shared_ptr<const FailureDomainTree> failure_domains;
  ModelParams params;
  CategoryThresholds thresholds;
  PolicyRanges policies;

  const ApplicationSpec& app(int id) const;
  AppCategory app_category(int id) const {
    return app(id).category(thresholds);
  }

  /// The scenario source of truth a solve over this environment uses:
  /// tree-driven when `failure_domains` is set, legacy flat otherwise.
  ScenarioModel scenario_model() const {
    return failure_domains != nullptr
               ? ScenarioModel::tree_model(failure_domains, failures)
               : ScenarioModel::flat_model(failures);
  }

  void validate() const;
};

}  // namespace depstor
