#include "core/sampler.hpp"

#include <algorithm>

#include "protection/catalog.hpp"
#include "solver/config_solver.hpp"
#include "solver/solution.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace depstor {

double SampleStats::percentile_of(double cost) const {
  if (samples.empty()) return 0.0;
  const auto below = std::count_if(samples.begin(), samples.end(),
                                   [&](double s) { return s < cost; });
  return static_cast<double>(below) / static_cast<double>(samples.size());
}

SolutionSpaceSampler::SolutionSpaceSampler(const Environment* env)
    : env_(env) {
  DEPSTOR_EXPECTS(env != nullptr);
  env_->validate();
}

SampleStats SolutionSpaceSampler::sample(int count, std::uint64_t seed,
                                         bool configure,
                                         int max_attempts_factor) const {
  DEPSTOR_EXPECTS(count >= 1);
  DEPSTOR_EXPECTS(max_attempts_factor >= 1);
  SampleStats stats;
  stats.samples.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  ConfigSolver config_solver(env_);
  const auto techniques = protection::all_techniques();
  const int n_apps = static_cast<int>(env_->apps.size());
  const int n_sites = env_->topology.site_count();
  const long max_attempts = static_cast<long>(count) * max_attempts_factor;

  // A design draws a technique uniformly per application; the layout draw is
  // retried a few times per app (like the random heuristic) so that sampled
  // designs differ in protection choices rather than dying on device-type
  // collisions at a site.
  constexpr int kLayoutRetries = 8;
  while (stats.feasible < count && stats.attempted < max_attempts) {
    ++stats.attempted;
    Candidate cand(env_);
    bool failed = false;
    for (int app_id = 0; app_id < n_apps && !failed; ++app_id) {
      const TechniqueSpec& technique = techniques[rng.index(techniques.size())];
      bool placed = false;
      for (int attempt = 0; attempt < kLayoutRetries && !placed; ++attempt) {
        DesignChoice choice;
        choice.technique = technique;
        choice.primary_site = rng.uniform_int(0, n_sites - 1);
        choice.primary_array_type =
            env_->array_types[rng.index(env_->array_types.size())].name;
        if (choice.technique.has_mirror()) {
          const auto neighbors =
              env_->topology.neighbors(choice.primary_site);
          if (neighbors.empty()) continue;
          choice.secondary_site = neighbors[rng.index(neighbors.size())];
          choice.mirror_array_type =
              env_->array_types[rng.index(env_->array_types.size())].name;
          choice.link_type =
              env_->network_types[rng.index(env_->network_types.size())].name;
        }
        if (choice.technique.has_backup) {
          choice.tape_type =
              env_->tape_types[rng.index(env_->tape_types.size())].name;
        }
        try {
          cand.place_app(app_id, choice);
          cand.check_feasible();
          placed = true;
        } catch (const InfeasibleError&) {
          if (cand.is_assigned(app_id)) cand.remove_app(app_id);
        }
      }
      failed = !placed;
    }
    if (failed) continue;
    const double cost = configure ? config_solver.solve(cand).total()
                                  : cand.evaluate().total();
    stats.costs.add(cost);
    stats.samples.push_back(cost);
    ++stats.feasible;
  }
  return stats;
}

}  // namespace depstor
