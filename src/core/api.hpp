// The one public solve entry point.
//
// Historically the tool grew four ways to run Algorithm 1 — the class-shaped
// `DesignSolver::solve()`, the free `solve_parallel(env, options, workers)`
// with its out-of-band worker count, the engine's per-job option plumbing,
// and `DesignTool::design`. A SolveRequest subsumes them: say *what* to
// solve (environment + DesignSolverOptions) and *how* to execute it
// (ExecutionOptions — worker fans, intra-solve parallelism, determinism,
// cache/cancel/progress hooks) in one value, and call `depstor::solve`.
//
//   SolveRequest req;
//   req.env = &env;
//   req.options.seed = 7;
//   req.exec.workers = 4;             // 4-way seed-restart fan
//   req.exec.intra_node_workers = 4;  // 4 threads inside each refit search
//   SolveResult result = depstor::solve(req);
//
// The old entry points are gone (removed after a deprecation cycle — see
// README's migration table); `depstor::solve` / `depstor::resolve` are the
// only ways to run the search.
#pragma once

#include <memory>
#include <optional>

#include "core/env_delta.hpp"
#include "core/environment.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

struct SolveRequest {
  /// Must be non-null and valid for the duration of the call. The returned
  /// Candidate holds a pointer into it.
  const Environment* env = nullptr;
  /// What to search (algorithm parameters; paper §3.1).
  DesignSolverOptions options;
  /// How to execute the search (threads, determinism, runtime hooks).
  ExecutionOptions exec;
  /// Scenario source of truth for every candidate the search prices. Unset
  /// (the default): the environment's own model — the failure-domain tree
  /// when the env carries one, the legacy flat scopes otherwise
  /// (Environment::scenario_model). Set it to price the same environment
  /// under a what-if failure model (e.g. the correlation-sensitivity bench
  /// sweeping subtree correlations) without cloning the environment.
  std::optional<ScenarioModel> scenarios;
};

/// Run the design search described by `request`.
///
/// `exec.workers > 1` fans that many independent seed-restart solves (seeds
/// `options.seed + k`) across a batch engine sharing one evaluation cache,
/// and merges by minimum cost — the old `solve_parallel` contract, counters
/// summed. Each solve additionally uses `exec.intra_node_workers` threads
/// inside its refit stage. With `exec.deterministic`, the result is
/// bit-identical for any worker counts.
///
/// Throws InvalidArgument for a null environment or non-positive worker
/// counts; never throws for infeasibility — inspect `SolveResult::feasible`.
SolveResult solve(const SolveRequest& request);

/// A delta re-design: the previous environment, the solution designed for
/// it, and what changed. `resolve` validates the delta, migrates the
/// previous solution onto the successor environment (carrying the
/// incremental evaluator's per-scenario cache — entries the delta does not
/// touch never re-simulate), and runs a warm-started solve scoped to the
/// touched applications instead of a greedy-from-scratch search.
struct ResolveRequest {
  /// Environment `prev_solution` was designed for. Must outlive the call.
  const Environment* prev_env = nullptr;
  /// The prior design, bound to `*prev_env` (its feasibility is re-checked
  /// after migration; a design the delta breaks falls back to a cold solve).
  const Candidate* prev_solution = nullptr;
  EnvDelta delta;
  DesignSolverOptions options;
  /// Warm solves run as a single search (no seed-restart fan — restarts are
  /// exactly what a warm start avoids); `exec.workers` must be 1.
  /// intra_node_workers parallelism applies as usual.
  ExecutionOptions exec;
  /// As SolveRequest::scenarios. Overriding on a warm solve forfeits the
  /// migrated scenario cache (every cached result embeds the old model's
  /// rates), so set it only when the what-if model truly differs.
  std::optional<ScenarioModel> scenarios;
};

struct ResolveResult {
  /// The successor environment the result is bound to (the returned
  /// Candidate points into it — keep this alive as long as the design).
  std::shared_ptr<const Environment> env;
  SolveResult result;
  /// True when the warm-started path produced the result; false when it fell
  /// back to a cold solve (seed placement failed, or the delta broke the
  /// prior design's feasibility — e.g. a site capacity shrink).
  bool warm = false;
  /// Applications whose requirements the delta touched (added + resized +
  /// apps at capacity-changed sites) — the refit focus set's size.
  /// Survivors that merely share devices with removed/resized apps keep
  /// their designs; the incremental evaluator re-simulates any scenario
  /// whose contention changed regardless.
  int touched_apps = 0;
};

/// Re-design for a changed environment, warm-started from a prior solution.
///
/// Under DEPSTOR_AUDIT every warm result is cross-checked against a cold
/// (cache-free, from-scratch) evaluation of the final design — the reported
/// totals must be bit-identical, which is the cross-solve cache-correctness
/// contract. Throws InvalidArgument on an invalid delta (unknown names,
/// duplicates, resize past pool capacity) or a malformed request; never
/// throws for infeasibility — inspect `result.feasible`.
ResolveResult resolve(const ResolveRequest& request);

}  // namespace depstor
