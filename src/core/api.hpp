// The one public solve entry point.
//
// Historically the tool grew four ways to run Algorithm 1 — the class-shaped
// `DesignSolver::solve()`, the free `solve_parallel(env, options, workers)`
// with its out-of-band worker count, the engine's per-job option plumbing,
// and `DesignTool::design`. A SolveRequest subsumes them: say *what* to
// solve (environment + DesignSolverOptions) and *how* to execute it
// (ExecutionOptions — worker fans, intra-solve parallelism, determinism,
// cache/cancel/progress hooks) in one value, and call `depstor::solve`.
//
//   SolveRequest req;
//   req.env = &env;
//   req.options.seed = 7;
//   req.exec.workers = 4;             // 4-way seed-restart fan
//   req.exec.intra_node_workers = 4;  // 4 threads inside each refit search
//   SolveResult result = depstor::solve(req);
//
// Old entry points survive as thin deprecated wrappers (see README's
// migration table); new code should not call them.
#pragma once

#include "core/environment.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

struct SolveRequest {
  /// Must be non-null and valid for the duration of the call. The returned
  /// Candidate holds a pointer into it.
  const Environment* env = nullptr;
  /// What to search (algorithm parameters; paper §3.1).
  DesignSolverOptions options;
  /// How to execute the search (threads, determinism, runtime hooks).
  ExecutionOptions exec;
};

/// Run the design search described by `request`.
///
/// `exec.workers > 1` fans that many independent seed-restart solves (seeds
/// `options.seed + k`) across a batch engine sharing one evaluation cache,
/// and merges by minimum cost — the old `solve_parallel` contract, counters
/// summed. Each solve additionally uses `exec.intra_node_workers` threads
/// inside its refit stage. With `exec.deterministic`, the result is
/// bit-identical for any worker counts.
///
/// Throws InvalidArgument for a null environment or non-positive worker
/// counts; never throws for infeasibility — inspect `SolveResult::feasible`.
SolveResult solve(const SolveRequest& request);

}  // namespace depstor
