#include "core/env_loader.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "model/domain.hpp"
#include "resources/catalog.hpp"
#include "util/check.hpp"
#include "util/ini.hpp"
#include "workload/generator.hpp"

namespace depstor {

namespace {

int resolve_site(const Environment& env, const std::string& ref,
                 const IniSection& section) {
  for (const auto& site : env.topology.sites) {
    if (site.name == ref) return site.id;
  }
  char* end = nullptr;
  const long index = std::strtol(ref.c_str(), &end, 10);
  if (end && *end == '\0' && index >= 0 &&
      index < env.topology.site_count()) {
    return static_cast<int>(index);
  }
  throw InvalidArgument("[" + section.name + "] (line " +
                        std::to_string(section.line) +
                        ") references unknown site: " + ref);
}

ApplicationSpec parse_application(const IniSection& s) {
  ApplicationSpec app;
  app.name = s.get_string("name");
  app.type_code = s.get_string_or("type", app.name);
  app.outage_penalty_rate = s.get_double("outage_penalty_rate");
  app.loss_penalty_rate = s.get_double("loss_penalty_rate");
  app.data_size_gb = s.get_double("data_size_gb");
  app.avg_update_mbps = s.get_double("avg_update_mbps");
  app.peak_update_mbps =
      s.get_double_or("peak_update_mbps", app.avg_update_mbps);
  app.avg_access_mbps =
      s.get_double_or("avg_access_mbps", app.avg_update_mbps);
  app.unique_update_mbps =
      s.get_double_or("unique_update_mbps", 0.4 * app.avg_update_mbps);
  app.validate();
  return app;
}

SiteSpec parse_site(const IniSection& s, int id) {
  SiteSpec site;
  site.id = id;
  site.name = s.get_string("name");
  site.region = s.get_int_or("region", 0);
  site.max_disk_arrays = s.get_int_or("max_disk_arrays", 2);
  site.max_spare_arrays = s.get_int_or("max_spare_arrays", 1);
  site.max_tape_libraries = s.get_int_or("max_tape_libraries", 1);
  site.max_compute_slots = s.get_int_or("max_compute_slots", 8);
  site.fixed_cost = s.get_double_or("fixed_cost", 1000000.0);
  site.validate();
  return site;
}

std::vector<DeviceTypeSpec> parse_catalog_list(const IniSection& s,
                                               const std::string& key,
                                               DeviceKind kind) {
  std::vector<DeviceTypeSpec> out;
  std::set<std::string> seen;
  for (const auto& name : split_list(s.get_string(key))) {
    if (!seen.insert(name).second) {
      throw InvalidArgument("[" + s.name + "] (line " +
                            std::to_string(s.line) + ") " + key +
                            " lists duplicate device type: " + name);
    }
    DeviceTypeSpec type = resources::by_name(name);
    DEPSTOR_EXPECTS_MSG(type.kind == kind,
                        "[catalog] " + key + ": " + name +
                            " is not of the expected device kind");
    out.push_back(std::move(type));
  }
  DEPSTOR_EXPECTS_MSG(!out.empty(), "[catalog] " + key + " is empty");
  return out;
}

/// One `[domain]` section → a DomainDecl. `level` picks the kind; the
/// remaining keys mirror DomainDecl's fields.
DomainDecl parse_domain(const IniSection& s) {
  DomainDecl d;
  const std::string level = s.get_string("level");
  if (level == "region") {
    d.kind = DomainDecl::Kind::Region;
    d.region = s.get_int("region");
  } else if (level == "zone") {
    d.kind = DomainDecl::Kind::Zone;
    d.region = s.get_int("region");
    d.sites = split_list(s.get_string("sites"));
  } else if (level == "site") {
    d.kind = DomainDecl::Kind::Site;
    d.site = s.get_string("site");
  } else if (level == "room") {
    d.kind = DomainDecl::Kind::Room;
    d.site = s.get_string("site");
  } else {
    throw InvalidArgument("[domain] (line " + std::to_string(s.line) +
                          ") level must be region|zone|site|room, got: " +
                          level);
  }
  // Region/site overrides may omit the name (the skeleton node keeps its
  // generated one); zones and rooms are new nodes, so they must be named.
  d.name = s.get_string_or("name", "");
  if (d.name.empty() && (d.kind == DomainDecl::Kind::Zone ||
                         d.kind == DomainDecl::Kind::Room)) {
    throw InvalidArgument("[domain] (line " + std::to_string(s.line) +
                          ") " + level + " domains need a name");
  }
  d.rate = s.get_double_or("rate", d.rate);
  d.outage_rate = s.get_double_or("outage_rate", d.outage_rate);
  d.correlation = s.get_double_or("correlation", d.correlation);
  d.repair_hours = s.get_double_or("repair_hours", d.repair_hours);
  return d;
}

}  // namespace

Environment environment_from_ini(const std::string& text) {
  const auto sections = parse_ini(text);
  Environment env;
  env.array_types = resources::disk_arrays();
  env.tape_types = resources::tape_libraries();
  env.network_types = resources::networks();
  env.compute_type = resources::compute_high();

  // Pass 1: sites (links and applications may reference them by name).
  // Duplicate names are rejected rather than silently overwritten: a name
  // collision would make later by-name references (links, deltas) ambiguous.
  std::set<std::string> site_names;
  for (const auto& s : sections) {
    if (s.name == "site") {
      SiteSpec site =
          parse_site(s, static_cast<int>(env.topology.sites.size()));
      if (!site_names.insert(site.name).second) {
        throw InvalidArgument("[" + s.name + "] (line " +
                              std::to_string(s.line) +
                              ") duplicate site name: " + site.name);
      }
      env.topology.sites.push_back(std::move(site));
    }
  }
  DEPSTOR_EXPECTS_MSG(!env.topology.sites.empty(),
                      "environment file declares no [site]");

  // Pass 2: everything else.
  std::set<std::string> app_names;
  std::vector<DomainDecl> domain_decls;
  bool saw_failure_domains = false;
  for (const auto& s : sections) {
    if (s.name == "site") continue;
    if (s.name == "link") {
      Topology::PairLimit pair;
      pair.site_a = resolve_site(env, s.get_string("a"), s);
      pair.site_b = resolve_site(env, s.get_string("b"), s);
      pair.max_links = s.get_int("max_links");
      env.topology.pair_limits.push_back(pair);
    } else if (s.name == "application") {
      ApplicationSpec app = parse_application(s);
      if (!app_names.insert(app.name).second) {
        throw InvalidArgument("[" + s.name + "] (line " +
                              std::to_string(s.line) +
                              ") duplicate application name: " + app.name);
      }
      env.apps.push_back(std::move(app));
    } else if (s.name == "failures") {
      env.failures.data_object_rate =
          s.get_double_or("data_object_rate", env.failures.data_object_rate);
      env.failures.disk_array_rate =
          s.get_double_or("disk_array_rate", env.failures.disk_array_rate);
      env.failures.site_disaster_rate = s.get_double_or(
          "site_disaster_rate", env.failures.site_disaster_rate);
      env.failures.regional_disaster_rate = s.get_double_or(
          "regional_disaster_rate", env.failures.regional_disaster_rate);
    } else if (s.name == "failure_domains") {
      // Versioned header for the domain-tree description. The optional rate
      // keys override the flat model's equivalents so the tree and the flat
      // fallback always price data-object/array events identically.
      if (saw_failure_domains) {
        throw InvalidArgument("[failure_domains] (line " +
                              std::to_string(s.line) + ") declared twice");
      }
      saw_failure_domains = true;
      const int version = s.get_int("version");
      if (version != 1) {
        throw InvalidArgument("[failure_domains] (line " +
                              std::to_string(s.line) +
                              ") unsupported version " +
                              std::to_string(version) + " (expected 1)");
      }
      env.failures.data_object_rate =
          s.get_double_or("data_object_rate", env.failures.data_object_rate);
      env.failures.disk_array_rate =
          s.get_double_or("disk_array_rate", env.failures.disk_array_rate);
    } else if (s.name == "domain") {
      domain_decls.push_back(parse_domain(s));
    } else if (s.name == "catalog") {
      if (s.has("arrays")) {
        env.array_types =
            parse_catalog_list(s, "arrays", DeviceKind::DiskArray);
      }
      if (s.has("tapes")) {
        env.tape_types =
            parse_catalog_list(s, "tapes", DeviceKind::TapeLibrary);
      }
      if (s.has("networks")) {
        env.network_types =
            parse_catalog_list(s, "networks", DeviceKind::NetworkLink);
      }
    } else {
      throw InvalidArgument("unknown section [" + s.name + "] at line " +
                            std::to_string(s.line));
    }
  }
  DEPSTOR_EXPECTS_MSG(!env.apps.empty(),
                      "environment file declares no [application]");
  if (!domain_decls.empty() && !saw_failure_domains) {
    throw InvalidArgument(
        "[domain] sections need a [failure_domains] header (version = 1)");
  }
  workload::assign_ids(env.apps);
  // Loaded environments always evaluate through the domain tree: explicit
  // declarations when given, otherwise the degenerate two-level tree that
  // reproduces the flat model bit for bit.
  env.failure_domains = std::make_shared<const FailureDomainTree>(
      FailureDomainTree::build(env.topology, env.failures, domain_decls));
  env.validate();
  return env;
}

Environment load_environment(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("cannot open environment file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return environment_from_ini(buffer.str());
}

}  // namespace depstor
