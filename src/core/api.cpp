#include "core/api.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "util/check.hpp"

namespace depstor {

namespace {

/// Alias a caller-owned environment into the shared_ptr form jobs expect,
/// without copying or taking ownership (the caller outlives the engine).
std::shared_ptr<const Environment> borrow(const Environment* env) {
  return {env, [](const Environment*) {}};
}

/// Seed-restart fan: one engine job per worker (the engine derives job k's
/// seed as `options.seed + k`), merged by minimum cost with ties to the
/// lowest seed — reproducible for any scheduling. Counters are summed.
SolveResult solve_fan(const SolveRequest& request) {
  const ExecutionOptions& exec = request.exec;
  EngineOptions engine_options;
  engine_options.workers = exec.workers;
  engine_options.seed = request.options.seed;
  BatchEngine engine(engine_options);

  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(exec.workers));
  for (int k = 0; k < exec.workers; ++k) {
    DesignJob job;
    job.name = "solve-" + std::to_string(k);
    job.env = borrow(request.env);
    job.options = request.options;
    // Per-job execution: the runtime hooks become engine-managed (the
    // engine threads its shared cache and per-record cancel/progress into
    // every job), so only the solve-shaping knobs pass through.
    job.exec.intra_node_workers = exec.intra_node_workers;
    job.exec.intra_min_fan = exec.intra_min_fan;
    job.exec.deterministic = exec.deterministic;
    job.exec.time_budget_ms = exec.time_budget_ms;
    ids.push_back(engine.submit(std::move(job)));
  }

  // The caller's cancel/progress hooks live outside the engine's records;
  // bridge them by polling while the fan runs. Skipped entirely when no
  // hook is set — wait_all() blocks without any polling.
  if (exec.cancel != nullptr || exec.progress != nullptr) {
    bool cancel_sent = false;
    for (;;) {
      bool all_done = true;
      std::int64_t nodes = 0;
      for (int id : ids) {
        if (!is_terminal(engine.status(id))) all_done = false;
        nodes += engine.progress_nodes(id);
      }
      if (exec.progress != nullptr) {
        exec.progress->store(nodes, std::memory_order_relaxed);
      }
      if (!cancel_sent && exec.cancel != nullptr &&
          exec.cancel->load(std::memory_order_acquire)) {
        for (int id : ids) engine.cancel(id);
        cancel_sent = true;
      }
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  SolveResult merged;
  for (auto& jr : engine.wait_all()) {
    if (jr.status == JobStatus::Failed) {
      throw InternalError("parallel solve worker failed: " + jr.error);
    }
    SolveResult& r = jr.solve;
    merged.cancelled = merged.cancelled || r.cancelled ||
                       jr.status == JobStatus::Cancelled;
    merged.nodes_evaluated += r.nodes_evaluated;
    merged.refit_iterations += r.refit_iterations;
    merged.greedy_restarts += r.greedy_restarts;
    merged.evaluations += r.evaluations;
    merged.cache_hits += r.cache_hits;
    merged.cache_misses += r.cache_misses;
    merged.scenarios_simulated += r.scenarios_simulated;
    merged.scenarios_reused += r.scenarios_reused;
    merged.refit_parallel_tasks += r.refit_parallel_tasks;
    merged.refit_steal_count += r.refit_steal_count;
    merged.refit_fanned = merged.refit_fanned || r.refit_fanned;
    // Jobs calibrate independently; report the widest threshold any applied.
    merged.intra_min_fan_used =
        std::max(merged.intra_min_fan_used, r.intra_min_fan_used);
    merged.eval_ms += r.eval_ms;
    merged.sweep_ms += r.sweep_ms;
    merged.increment_ms += r.increment_ms;
    merged.elapsed_ms = std::max(merged.elapsed_ms, r.elapsed_ms);
    if (!r.feasible) continue;
    if (!merged.feasible || r.cost.total() < merged.cost.total()) {
      merged.feasible = true;
      merged.cost = r.cost;
      merged.best = std::move(r.best);
    }
  }
  return merged;
}

}  // namespace

SolveResult solve(const SolveRequest& request) {
  DEPSTOR_EXPECTS_MSG(request.env != nullptr,
                      "SolveRequest needs an environment");
  DEPSTOR_EXPECTS_MSG(request.exec.workers >= 1,
                      "SolveRequest workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(request.exec.intra_node_workers >= 1,
                      "SolveRequest intra_node_workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(request.exec.intra_min_fan >= 0,
                      "SolveRequest intra_min_fan must be >= 0 (0 = auto)");
  if (request.exec.workers == 1) {
    return detail::solve_impl(request.env, request.options, request.exec);
  }
  return solve_fan(request);
}

}  // namespace depstor
