#include "core/api.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "engine/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

/// Alias a caller-owned environment into the shared_ptr form jobs expect,
/// without copying or taking ownership (the caller outlives the engine).
std::shared_ptr<const Environment> borrow(const Environment* env) {
  return {env, [](const Environment*) {}};
}

/// Seed-restart fan: one engine job per worker (the engine derives job k's
/// seed as `options.seed + k`), merged by minimum cost with ties to the
/// lowest seed — reproducible for any scheduling. Counters are summed.
SolveResult solve_fan(const SolveRequest& request) {
  const ExecutionOptions& exec = request.exec;
  EngineOptions engine_options;
  engine_options.workers = exec.workers;
  engine_options.seed = request.options.seed;
  BatchEngine engine(engine_options);

  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(exec.workers));
  for (int k = 0; k < exec.workers; ++k) {
    DesignJob job;
    job.name = "solve-" + std::to_string(k);
    job.env = borrow(request.env);
    job.options = request.options;
    // Per-job execution: the runtime hooks become engine-managed (the
    // engine threads its shared cache and per-record cancel/progress into
    // every job), so only the solve-shaping knobs pass through.
    job.exec.intra_node_workers = exec.intra_node_workers;
    job.exec.intra_min_fan = exec.intra_min_fan;
    job.exec.deterministic = exec.deterministic;
    job.exec.time_budget_ms = exec.time_budget_ms;
    job.scenarios = request.scenarios;
    ids.push_back(engine.submit(std::move(job)));
  }

  // The caller's cancel/progress hooks live outside the engine's records;
  // bridge them by polling while the fan runs. Skipped entirely when no
  // hook is set — wait_all() blocks without any polling.
  if (exec.cancel != nullptr || exec.progress != nullptr) {
    bool cancel_sent = false;
    for (;;) {
      bool all_done = true;
      std::int64_t nodes = 0;
      for (int id : ids) {
        if (!is_terminal(engine.status(id))) all_done = false;
        nodes += engine.progress_nodes(id);
      }
      if (exec.progress != nullptr) {
        exec.progress->store(nodes, std::memory_order_relaxed);
      }
      if (!cancel_sent && exec.cancel != nullptr &&
          exec.cancel->load(std::memory_order_acquire)) {
        for (int id : ids) engine.cancel(id);
        cancel_sent = true;
      }
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  SolveResult merged;
  for (auto& jr : engine.wait_all()) {
    if (jr.status == JobStatus::Failed) {
      throw InternalError("parallel solve worker failed: " + jr.error);
    }
    SolveResult& r = jr.solve;
    merged.cancelled = merged.cancelled || r.cancelled ||
                       jr.status == JobStatus::Cancelled;
    merged.nodes_evaluated += r.nodes_evaluated;
    merged.refit_iterations += r.refit_iterations;
    merged.greedy_restarts += r.greedy_restarts;
    merged.evaluations += r.evaluations;
    merged.cache_hits += r.cache_hits;
    merged.cache_misses += r.cache_misses;
    merged.scenarios_simulated += r.scenarios_simulated;
    merged.scenarios_reused += r.scenarios_reused;
    merged.refit_parallel_tasks += r.refit_parallel_tasks;
    merged.refit_steal_count += r.refit_steal_count;
    merged.refit_fanned = merged.refit_fanned || r.refit_fanned;
    // Jobs calibrate independently; report the widest threshold any applied.
    merged.intra_min_fan_used =
        std::max(merged.intra_min_fan_used, r.intra_min_fan_used);
    merged.eval_ms += r.eval_ms;
    merged.sweep_ms += r.sweep_ms;
    merged.increment_ms += r.increment_ms;
    merged.elapsed_ms = std::max(merged.elapsed_ms, r.elapsed_ms);
    if (!r.feasible) continue;
    if (!merged.feasible || r.cost.total() < merged.cost.total()) {
      merged.feasible = true;
      merged.cost = r.cost;
      merged.best = std::move(r.best);
    }
  }
  return merged;
}

}  // namespace

SolveResult solve(const SolveRequest& request) {
  DEPSTOR_EXPECTS_MSG(request.env != nullptr,
                      "SolveRequest needs an environment");
  DEPSTOR_EXPECTS_MSG(request.exec.workers >= 1,
                      "SolveRequest workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(request.exec.intra_node_workers >= 1,
                      "SolveRequest intra_node_workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(request.exec.intra_min_fan >= 0,
                      "SolveRequest intra_min_fan must be >= 0 (0 = auto)");
  if (request.exec.workers == 1) {
    return detail::solve_impl(
        request.env, request.options, request.exec, nullptr,
        request.scenarios ? &*request.scenarios : nullptr);
  }
  return solve_fan(request);
}

namespace {

/// Cross-solve cache-correctness oracle: the warm result's reported cost
/// must equal a cold (cache-free, incremental-disabled) evaluation of the
/// same design bit-for-bit. Any divergence means a migrated scenario cache
/// aliased stale state.
void audit_warm_totals(const SolveResult& r, const char* where) {
  if (!r.feasible || !analysis::debug_audit_enabled()) return;
  Candidate fresh = *r.best;
  fresh.set_incremental_enabled(false);
  const CostBreakdown full = fresh.evaluate();
  if (full.outlay != r.cost.outlay ||
      full.outage_penalty != r.cost.outage_penalty ||
      full.loss_penalty != r.cost.loss_penalty) {
    throw InternalError(std::string(where) +
                        ": warm-start totals diverged from a cold "
                        "evaluation: warm " +
                        std::to_string(r.cost.total()) + " vs cold " +
                        std::to_string(full.total()));
  }
}

}  // namespace

ResolveResult resolve(const ResolveRequest& request) {
  DEPSTOR_EXPECTS_MSG(request.prev_env != nullptr,
                      "ResolveRequest needs the previous environment");
  DEPSTOR_EXPECTS_MSG(request.prev_solution != nullptr,
                      "ResolveRequest needs the previous solution");
  DEPSTOR_EXPECTS_MSG(&request.prev_solution->env() == request.prev_env,
                      "previous solution is not bound to prev_env");
  DEPSTOR_EXPECTS_MSG(request.exec.workers == 1,
                      "resolve runs a single warm solve; use "
                      "intra_node_workers for parallelism");

  DeltaPlan plan = apply_delta(*request.prev_env, request.delta);

  ResolveResult out;
  out.env = std::make_shared<const Environment>(std::move(plan.env));

  const std::set<int> changed_sites(plan.changed_sites.begin(),
                                    plan.changed_sites.end());

  Candidate seed = *request.prev_solution;
  seed.migrate(out.env.get(), plan.new_of_old);

  // Re-place resized survivors against their new specs, reusing the prior
  // choice (sites, device types, backup chain). A resize the old layout can
  // no longer hold leaves the app unassigned; the warm stage places it
  // fresh.
  for (int id : plan.resized_apps) {
    if (!seed.is_assigned(id)) continue;
    const DesignChoice choice = seed.choice(id);
    seed.remove_app(id);
    try {
      seed.place_app(id, choice);
    } catch (const InfeasibleError&) {
    }
  }

  // Refit focus: the apps whose *requirements* the delta touches — added
  // and resized apps, plus every app placed at a capacity-changed site
  // (shrinks can force those layouts to move). Survivors merely sharing a
  // device with a removed/resized app stay out of the focus on purpose:
  // their designs remain feasible and near-optimal under the delta, and
  // correctness never depends on focus membership — the footprint-keyed
  // incremental evaluator re-simulates any scenario whose contention
  // actually changed no matter which apps refit may move. Keeping the
  // focus at delta size is what makes a small delta's warm solve an order
  // of magnitude cheaper than a cold one; the opportunity cost (a sharer
  // that could exploit freed capacity) is recovered by the next full
  // re-design.
  std::vector<int> focus = plan.added_apps;
  focus.insert(focus.end(), plan.resized_apps.begin(),
               plan.resized_apps.end());
  for (const AppAssignment& asg : seed.assignments()) {
    if (!asg.assigned) continue;
    const bool touched =
        changed_sites.count(asg.primary_site) != 0 ||
        (asg.secondary_site >= 0 &&
         changed_sites.count(asg.secondary_site) != 0);
    if (touched) focus.push_back(asg.app_id);
  }
  std::sort(focus.begin(), focus.end());
  focus.erase(std::unique(focus.begin(), focus.end()), focus.end());
  out.touched_apps = static_cast<int>(focus.size());

  // The delta may have broken the prior design outright (site capacity
  // shrink below what the layout uses): then the warm seed is worthless and
  // the cold path takes over.
  bool seed_ok = true;
  try {
    seed.check_feasible();
  } catch (const std::exception& e) {
    DEPSTOR_LOG(Info, "resolve: migrated seed infeasible ("
                          << e.what() << "); falling back to a cold solve");
    seed_ok = false;
  }

  if (seed_ok) {
    const detail::WarmStart warm{&seed, &focus};
    out.result = detail::solve_impl(
        out.env.get(), request.options, request.exec, &warm,
        request.scenarios ? &*request.scenarios : nullptr);
    if (out.result.feasible) {
      audit_warm_totals(out.result, "resolve");
      out.warm = true;
      return out;
    }
    DEPSTOR_LOG(Info,
                "resolve: warm solve found no feasible design; falling "
                "back to a cold solve");
  }

  SolveRequest cold;
  cold.env = out.env.get();
  cold.options = request.options;
  cold.exec = request.exec;
  cold.scenarios = request.scenarios;
  out.result = solve(cold);
  out.warm = false;
  return out;
}

}  // namespace depstor
