// Delta descriptions of a changing ("living") environment.
//
// Production fleets do not re-solve from scratch: applications arrive, grow,
// and leave, and site capacity is added or reclaimed. An EnvDelta names
// exactly those changes relative to a previous Environment; apply_delta
// validates it and produces the successor environment plus the old→new app id
// map the warm-start machinery (Candidate::migrate, depstor::resolve) needs
// to carry a prior solution and its scenario caches across solves.
//
// Invariant: surviving applications keep their relative order and new
// applications are appended. That keeps the id map monotone, which is what
// lets the incremental evaluator's footprint keys be rewritten in place.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/environment.hpp"
#include "util/check.hpp"

namespace depstor {

/// Machine-readable reason code of a NonDeltaError: the failure model (flat
/// rates or the failure-domain tree) drifted between the environments.
inline constexpr const char* kReasonFailureModelChanged =
    "failure_model_changed";

/// diff_environments rejection that carries a reason code alongside the
/// human-readable message, so the serve layer's 422 can tell clients *why*
/// the successor is not reachable by a delta.
class NonDeltaError : public InvalidArgument {
 public:
  NonDeltaError(std::string reason, const std::string& what)
      : InvalidArgument(what), reason_(std::move(reason)) {}
  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Capacity changes for one site, addressed by name. Absent fields keep the
/// previous value. Geometry (region, fixed cost) is not expressible as a
/// delta — changing it is a different environment, not a revision.
struct SiteCapacityChange {
  std::string site;
  std::optional<int> max_disk_arrays;
  std::optional<int> max_spare_arrays;
  std::optional<int> max_tape_libraries;
  std::optional<int> max_compute_slots;
};

/// Changes relative to a previous environment: apps added, removed (by
/// name), resized (replacement spec addressed by name), and site capacity
/// changes. Everything else (catalogs, failures, params, thresholds,
/// policies, topology links) must be unchanged.
struct EnvDelta {
  std::vector<ApplicationSpec> add;
  std::vector<std::string> remove;
  std::vector<ApplicationSpec> resize;
  std::vector<SiteCapacityChange> site_changes;

  bool empty() const {
    return add.empty() && remove.empty() && resize.empty() &&
           site_changes.empty();
  }
};

/// apply_delta's result: the successor environment plus the id bookkeeping
/// the warm-start path consumes.
struct DeltaPlan {
  Environment env;
  /// Old app id → new app id, or -1 when the app was removed. Monotone over
  /// the surviving ids (survivors keep their relative order).
  std::vector<int> new_of_old;
  std::vector<int> added_apps;    ///< new ids of apps in delta.add
  std::vector<int> resized_apps;  ///< new ids of apps in delta.resize
  std::vector<int> changed_sites; ///< site ids touched by site_changes
};

/// Validate `delta` against `prev` and build the successor environment.
/// Throws InvalidArgument on: unknown / duplicate app or site names, removing
/// and resizing the same app, invalid replacement specs, apps too large for
/// every array model in the catalog ("resize past pool capacity"), or
/// negative capacities. The result env passes Environment::validate().
DeltaPlan apply_delta(const Environment& prev, const EnvDelta& delta);

/// Recover the EnvDelta between two concrete environments, for callers (the
/// serve layer) that receive the successor as a full document. Throws
/// InvalidArgument when `next` is not reachable from `prev` by a delta:
/// survivors reordered, sites added/removed/renamed, or any non-delta field
/// (catalogs, failures, params, thresholds, policies, link topology, site
/// geometry) changed. Verified by fingerprint: apply_delta(prev, result)
/// must reproduce `next` exactly.
EnvDelta diff_environments(const Environment& prev, const Environment& next);

}  // namespace depstor
