// Factories for the paper's experimental environments (§4.2-§4.5).
#pragma once

#include "core/environment.hpp"

namespace depstor::scenarios {

/// §4.3 peer sites: two sites, each able to host two disk arrays, one tape
/// library and compute for eight applications; up to 32 links between them;
/// `app_count` applications cycling through the Table 1 classes (default 8 —
/// two of each class).
Environment peer_sites(int app_count = 8);

/// §4.4 / §4.5 multi-site: `site_count` fully connected sites (default 4),
/// `app_count` applications (scaled four at a time in the paper), up to
/// `max_links` per site pair (paper: six network links per pair).
Environment multi_site(int app_count = 16, int site_count = 4,
                       int max_links = 6);

/// Correlation-sensitivity environment (Fig. 4 analogue for failure
/// domains): two regions of two sites each, regional disasters on, and a
/// failure-domain tree whose Region nodes carry `correlation` as their
/// subtree-likelihood knob. The remote region's facilities cost 2.5× the
/// local ones, so at correlation 1.0 the cheapest designs keep both copies
/// in one region; as the knob grows, the scaled site/regional rates force
/// cross-region mirrors despite the extra fixed cost.
Environment regional_correlated(int app_count = 8, double correlation = 1.0);

/// Default compute capacity per site used by both factories.
inline constexpr int kComputeSlotsPerSite = 8;

}  // namespace depstor::scenarios
