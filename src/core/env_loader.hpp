// Environment files: declare a whole design problem in a text file and run
// the tool against it (depstor_cli --env=<path>).
//
// Format (INI, see util/ini.hpp), sections in any order:
//
//   [site]                        # one per site, ids in declaration order
//   name = east-1
//   region = 0                    # optional (default 0)
//   max_disk_arrays = 2           # optional (defaults in parentheses)
//   max_spare_arrays = 1
//   max_tape_libraries = 1
//   max_compute_slots = 8
//   fixed_cost = 1000000
//
//   [link]                        # one per connected site pair
//   a = east-1                    # site name or index
//   b = west-1
//   max_links = 16
//
//   [application]                 # one per application
//   name = billing
//   type = BIL                    # optional display code
//   outage_penalty_rate = 2e6     # US$/hr
//   loss_penalty_rate = 8e6
//   data_size_gb = 900
//   avg_update_mbps = 3
//   peak_update_mbps = 25         # optional (default = avg)
//   avg_access_mbps = 30          # optional (default = avg)
//   unique_update_mbps = 1.2      # optional (default = 0.4 × avg)
//
//   [failures]                    # optional; §4.2 defaults
//   data_object_rate = 0.333      # per year
//   disk_array_rate = 0.333
//   site_disaster_rate = 0.2
//   regional_disaster_rate = 0
//
//   [catalog]                     # optional; defaults to the full Table 3
//   arrays = XP1200, EVA8000      # names from resources::by_name
//   tapes = TapeLib-High
//   networks = Net-High, Net-Med
#pragma once

#include <string>

#include "core/environment.hpp"

namespace depstor {

/// Build an Environment from environment-file text. Throws InvalidArgument
/// with section/line context on any problem; the result is validate()d.
Environment environment_from_ini(const std::string& text);

/// Convenience: read the file and parse it.
Environment load_environment(const std::string& path);

}  // namespace depstor
