#include "core/report.hpp"

#include "cost/outlay.hpp"
#include "cost/penalty.hpp"
#include "model/recovery_sim.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace depstor {

std::string solution_to_json(const Environment& env,
                             const Candidate& candidate,
                             const CostBreakdown& cost) {
  JsonWriter w;
  w.begin_object();

  w.key("applications").begin_array();
  for (const auto& asg : candidate.assignments()) {
    const auto& app = env.app(asg.app_id);
    w.begin_object();
    w.field("name", app.name);
    w.field("type", app.type_code);
    w.field("assigned", asg.assigned);
    if (asg.assigned) {
      w.field("technique", asg.technique.name);
      w.field("category", to_string(asg.technique.category));
      w.field("recovery", to_string(asg.technique.recovery));
      w.field("primary_site", env.topology.site(asg.primary_site).name);
      if (asg.secondary_site >= 0) {
        w.field("secondary_site", env.topology.site(asg.secondary_site).name);
      }
      if (asg.has_backup()) {
        w.key("backup").begin_object();
        w.field("snapshot_interval_hours",
                asg.backup.snapshot_interval_hours);
        w.field("backup_interval_hours", asg.backup.backup_interval_hours);
        w.field("cycle", to_string(asg.backup.cycle));
        if (asg.backup.has_incrementals()) {
          w.field("incremental_interval_hours",
                  asg.backup.incremental_interval_hours);
        }
        w.field("vault_interval_hours", asg.backup.vault_interval_hours);
        w.end_object();
      }
      w.key("devices").begin_object();
      auto dev_field = [&](const char* name, int id) {
        if (id < 0) return;
        const auto& dev = candidate.pool().device(id);
        w.field(name, dev.type.name + "@" +
                          env.topology.site(dev.site_id).name);
      };
      dev_field("primary_array", asg.primary_array);
      dev_field("mirror_array", asg.mirror_array);
      dev_field("tape_library", asg.tape_library);
      if (asg.mirror_link >= 0) {
        const auto& link = candidate.pool().device(asg.mirror_link);
        w.field("mirror_link", link.type.name + " x" +
                                   std::to_string(link.bandwidth_units));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("devices").begin_array();
  for (const auto& dev : candidate.pool().devices()) {
    if (!candidate.pool().in_use(dev.id)) continue;
    w.begin_object();
    w.field("id", dev.id);
    w.field("type", dev.type.name);
    w.field("kind", to_string(dev.type.kind));
    w.field("site", env.topology.site(dev.site_id).name);
    if (dev.site_b_id >= 0) {
      w.field("site_b", env.topology.site(dev.site_b_id).name);
    }
    w.field("capacity_units", dev.capacity_units);
    w.field("bandwidth_units", dev.bandwidth_units);
    w.field("purchase_cost", dev.purchase_cost());
    w.field("annual_cost",
            annual_device_outlay(candidate.pool(), dev.id, env.params));
    w.end_object();
  }
  w.end_array();

  w.key("cost").begin_object();
  w.field("annual_outlay", cost.outlay);
  w.field("annual_outage_penalty", cost.outage_penalty);
  w.field("annual_loss_penalty", cost.loss_penalty);
  w.field("annual_total", cost.total());
  w.key("per_application").begin_array();
  for (const auto& d : cost.per_app) {
    w.begin_object();
    w.field("name", env.app(d.app_id).name);
    w.field("outage_penalty", d.outage_penalty);
    w.field("loss_penalty", d.loss_penalty);
    w.field("expected_outage_hours", d.expected_outage_hours);
    w.field("expected_loss_hours", d.expected_loss_hours);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

std::string threat_report(const Environment& env,
                          const Candidate& candidate) {
  Table table({"Failure scope", "Scenarios", "Rate/yr each",
               "Outage penalty/yr", "Loss penalty/yr", "Total/yr"});
  const auto scopes = compute_scope_penalties(
      env.apps, candidate.assignments(), candidate.pool(),
      candidate.scenario_model(), env.params);
  for (const auto& sp : scopes) {
    if (sp.scenarios == 0 && env.failures.rate(sp.scope) <= 0.0) continue;
    // Tree-driven scopes price each scenario by its own node's effective
    // rate, so the per-scenario column shows the mean; flat scopes (and
    // degenerate trees) have uniform rates, making the mean exact.
    const double rate_each = sp.scenarios > 0
                                 ? sp.rate_sum / sp.scenarios
                                 : env.failures.rate(sp.scope);
    table.add_row({to_string(sp.scope), std::to_string(sp.scenarios),
                   Table::num(rate_each, 3),
                   Table::money(sp.outage_penalty),
                   Table::money(sp.loss_penalty), Table::money(sp.total())});
  }
  return table.render();
}

std::string recovery_report(const Environment& env,
                            const Candidate& candidate) {
  Table table({"Scenario", "Rate/yr", "App", "Action", "Copy used", "Outage",
               "Recent loss"});
  const auto scenarios =
      enumerate_scenarios(env.apps, candidate.assignments(), candidate.pool(),
                          candidate.scenario_model(), /*with_names=*/true);
  for (const auto& scenario : scenarios) {
    const auto results = simulate_recovery(
        scenario, env.apps, candidate.assignments(), candidate.pool(),
        env.params);
    for (const auto& r : results) {
      table.add_row({scenario.name, Table::num(scenario.annual_rate, 3),
                     env.app(r.app_id).name, to_string(r.action),
                     to_string(r.copy), Table::hours(r.outage_hours),
                     Table::hours(r.loss_hours)});
    }
  }
  return table.render();
}

}  // namespace depstor
