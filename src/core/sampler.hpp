// Solution-space sampler (paper §4.3.1 / Figure 2).
//
// The optimal design is intractable, so the paper estimates solution quality
// by randomly sampling a large collection of complete designs and locating
// the heuristics' solutions within the empirical cost distribution. This
// sampler draws fully random feasible designs (the random heuristic's
// generator without the keep-min loop), prices each, and feeds a histogram.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/environment.hpp"
#include "cost/breakdown.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace depstor {

struct SampleStats {
  RunningStats costs;
  std::vector<double> samples;  ///< every sampled total cost
  int attempted = 0;            ///< designs drawn (incl. infeasible)
  int feasible = 0;

  /// Fraction of samples cheaper than `cost` (the percentile of a
  /// heuristic's solution within the sampled space).
  double percentile_of(double cost) const;
};

class SolutionSpaceSampler {
 public:
  explicit SolutionSpaceSampler(const Environment* env);

  /// Draw until `count` feasible designs are priced (or `max_attempts`
  /// draws). `configure` toggles running the configuration solver on each
  /// sample (slower; the paper's samples are raw designs, default off).
  SampleStats sample(int count, std::uint64_t seed, bool configure = false,
                     int max_attempts_factor = 20) const;

 private:
  const Environment* env_;
};

}  // namespace depstor
