// Machine- and operator-readable reports of a finished design.
//
//  * solution_to_json — the full design as a JSON document: application
//    assignments (technique, sites, chain configuration), provisioned
//    devices (units, purchase and annualized costs), and the cost breakdown
//    with per-application penalties. Stable field names; intended for
//    dashboards or diffing two designs.
//  * recovery_report — the per-scenario recovery behavior as a table: for
//    every concrete failure scenario, each affected application's recovery
//    action, the copy used, and the resulting outage / recent-loss times.
//    This is the evaluation detail behind the penalty numbers.
#pragma once

#include <string>

#include "core/environment.hpp"
#include "cost/breakdown.hpp"
#include "solver/solution.hpp"

namespace depstor {

std::string solution_to_json(const Environment& env, const Candidate& candidate,
                             const CostBreakdown& cost);

std::string recovery_report(const Environment& env,
                            const Candidate& candidate);

/// Penalty attribution by failure scope ("what threat drives this design's
/// expected cost") as a table.
std::string threat_report(const Environment& env, const Candidate& candidate);

}  // namespace depstor
