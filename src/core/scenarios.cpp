#include "core/scenarios.hpp"

#include "resources/catalog.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace depstor::scenarios {

namespace {

Environment base_environment(int app_count) {
  DEPSTOR_EXPECTS(app_count >= 1);
  Environment env;
  env.apps = workload::mixed_set(app_count);
  env.array_types = resources::disk_arrays();
  env.tape_types = resources::tape_libraries();
  env.network_types = resources::networks();
  env.compute_type = resources::compute_high();
  env.failures = FailureModel::baseline();
  return env;
}

SiteSpec site_prototype(int compute_slots) {
  SiteSpec s;
  s.name = "site";
  s.max_disk_arrays = 2;
  s.max_tape_libraries = 1;
  s.max_compute_slots = compute_slots;
  s.fixed_cost = 1000000.0;
  return s;
}

}  // namespace

Environment peer_sites(int app_count) {
  Environment env = base_environment(app_count);
  env.topology = Topology::fully_connected(
      2, site_prototype(kComputeSlotsPerSite), /*max_links=*/32);
  env.validate();
  return env;
}

Environment multi_site(int app_count, int site_count, int max_links) {
  DEPSTOR_EXPECTS(site_count >= 2);
  DEPSTOR_EXPECTS(max_links >= 1);
  Environment env = base_environment(app_count);
  env.topology = Topology::fully_connected(
      site_count, site_prototype(kComputeSlotsPerSite), max_links);
  env.validate();
  return env;
}

}  // namespace depstor::scenarios
