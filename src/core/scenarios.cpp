#include "core/scenarios.hpp"

#include <memory>

#include "model/domain.hpp"
#include "resources/catalog.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace depstor::scenarios {

namespace {

Environment base_environment(int app_count) {
  DEPSTOR_EXPECTS(app_count >= 1);
  Environment env;
  env.apps = workload::mixed_set(app_count);
  env.array_types = resources::disk_arrays();
  env.tape_types = resources::tape_libraries();
  env.network_types = resources::networks();
  env.compute_type = resources::compute_high();
  env.failures = FailureModel::baseline();
  return env;
}

SiteSpec site_prototype(int compute_slots) {
  SiteSpec s;
  s.name = "site";
  s.max_disk_arrays = 2;
  s.max_tape_libraries = 1;
  s.max_compute_slots = compute_slots;
  s.fixed_cost = 1000000.0;
  return s;
}

}  // namespace

Environment peer_sites(int app_count) {
  Environment env = base_environment(app_count);
  env.topology = Topology::fully_connected(
      2, site_prototype(kComputeSlotsPerSite), /*max_links=*/32);
  env.validate();
  return env;
}

Environment multi_site(int app_count, int site_count, int max_links) {
  DEPSTOR_EXPECTS(site_count >= 2);
  DEPSTOR_EXPECTS(max_links >= 1);
  Environment env = base_environment(app_count);
  env.topology = Topology::fully_connected(
      site_count, site_prototype(kComputeSlotsPerSite), max_links);
  env.validate();
  return env;
}

Environment regional_correlated(int app_count, double correlation) {
  DEPSTOR_EXPECTS(correlation >= 0.0);
  Environment env = base_environment(app_count);
  // Rare enough that at correlation 1 the remote-facility premium outweighs
  // the correlated-disaster exposure; the sweep's correlation knob scales
  // this up until the trade flips.
  env.failures.regional_disaster_rate = 1.0 / 2000.0;
  env.topology = Topology::fully_connected(
      4, site_prototype(kComputeSlotsPerSite), /*max_links=*/6);
  const char* names[] = {"east-a", "east-b", "west-a", "west-b"};
  for (int s = 0; s < 4; ++s) {
    env.topology.sites[static_cast<std::size_t>(s)].name = names[s];
    env.topology.sites[static_cast<std::size_t>(s)].region = s / 2;
  }
  // The remote region is the expensive facility the solver must be pushed
  // into opening: same device catalog, 2.5x the fixed cost.
  env.topology.sites[2].fixed_cost = 2500000.0;
  env.topology.sites[3].fixed_cost = 2500000.0;

  std::vector<DomainDecl> decls(2);
  decls[0].kind = DomainDecl::Kind::Region;
  decls[0].region = 0;
  decls[0].correlation = correlation;
  decls[1].kind = DomainDecl::Kind::Region;
  decls[1].region = 1;
  decls[1].correlation = correlation;
  env.failure_domains = std::make_shared<const FailureDomainTree>(
      FailureDomainTree::build(env.topology, env.failures, decls));
  env.validate();
  return env;
}

}  // namespace depstor::scenarios
