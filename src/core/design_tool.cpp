#include "core/design_tool.hpp"

#include <sstream>

#include "core/api.hpp"
#include "util/table.hpp"

namespace depstor {

DesignTool::DesignTool(Environment env) : env_(std::move(env)) {
  env_.validate();
}

SolveResult DesignTool::design(const DesignSolverOptions& options,
                               const ExecutionOptions& exec) const {
  SolveRequest request;
  request.env = &env_;
  request.options = options;
  request.exec = exec;
  return solve(request);
}

BatchReport DesignTool::design_batch(std::vector<DesignJob> jobs,
                                     const EngineOptions& engine) {
  return run_batch(std::move(jobs), engine);
}

BatchReport DesignTool::design_batch(
    const std::vector<DesignSolverOptions>& runs,
    const EngineOptions& engine) const {
  // One shared copy of the environment keeps every returned Candidate valid
  // for as long as the caller holds the report.
  auto shared_env = std::make_shared<const Environment>(env_);
  std::vector<DesignJob> jobs;
  jobs.reserve(runs.size());
  for (const auto& options : runs) {
    DesignJob job;
    job.env = shared_env;
    job.options = options;
    jobs.push_back(std::move(job));
  }
  return run_batch(std::move(jobs), engine);
}

BaselineResult DesignTool::design_human(const BaselineOptions& options) const {
  HumanHeuristic heuristic(&env_, options);
  return heuristic.solve();
}

BaselineResult DesignTool::design_random(
    const BaselineOptions& options) const {
  RandomHeuristic heuristic(&env_, options);
  return heuristic.solve();
}

CostBreakdown DesignTool::evaluate_under(const Candidate& candidate,
                                         const FailureModel& failures) const {
  return evaluate_cost(env_.apps, candidate.assignments(), candidate.pool(),
                       failures, env_.params);
}

std::string DesignTool::describe(const Environment& env,
                                 const Candidate& candidate) {
  Table table({"App", "Type", "Data protection technique", "Primary site",
               "Secondary site", "Array", "Mirror array", "Tape lib",
               "Links"});
  for (const auto& asg : candidate.assignments()) {
    const auto& app = env.app(asg.app_id);
    if (!asg.assigned) {
      table.add_row({app.name, app.type_code, "(unassigned)", "-", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const auto& pool = candidate.pool();
    auto dev_name = [&](int id) -> std::string {
      if (id < 0) return "-";
      const auto& dev = pool.device(id);
      return dev.type.name + "@" + env.topology.site(dev.site_id).name;
    };
    std::string links = "-";
    if (asg.mirror_link >= 0) {
      const auto& dev = pool.device(asg.mirror_link);
      links = dev.type.name + " x" + std::to_string(dev.bandwidth_units);
    }
    table.add_row(
        {app.name, app.type_code, asg.technique.name,
         env.topology.site(asg.primary_site).name,
         asg.secondary_site >= 0 ? env.topology.site(asg.secondary_site).name
                                 : "-",
         dev_name(asg.primary_array), dev_name(asg.mirror_array),
         dev_name(asg.tape_library), links});
  }
  return table.render();
}

std::string DesignTool::describe_cost(const Environment& env,
                                      const CostBreakdown& cost) {
  std::ostringstream os;
  Table table({"App", "Outage penalty/yr", "Loss penalty/yr",
               "E[outage] h/yr", "E[loss] h/yr"});
  for (const auto& d : cost.per_app) {
    table.add_row({env.app(d.app_id).name, Table::money(d.outage_penalty),
                   Table::money(d.loss_penalty),
                   Table::num(d.expected_outage_hours),
                   Table::num(d.expected_loss_hours)});
  }
  os << table.render();
  os << "outlays/yr: " << Table::money(cost.outlay)
     << "  outage penalty/yr: " << Table::money(cost.outage_penalty)
     << "  loss penalty/yr: " << Table::money(cost.loss_penalty)
     << "  TOTAL: " << Table::money(cost.total()) << "\n";
  return os.str();
}

}  // namespace depstor
