#include "resources/site.hpp"

#include "util/check.hpp"

namespace depstor {

void SiteSpec::validate() const {
  DEPSTOR_EXPECTS_MSG(!name.empty(), "site needs a name");
  DEPSTOR_EXPECTS_MSG(region >= 0, name);
  DEPSTOR_EXPECTS_MSG(max_disk_arrays >= 0, name);
  DEPSTOR_EXPECTS_MSG(max_spare_arrays >= 0, name);
  DEPSTOR_EXPECTS_MSG(max_tape_libraries >= 0, name);
  DEPSTOR_EXPECTS_MSG(max_compute_slots >= 0, name);
  DEPSTOR_EXPECTS_MSG(fixed_cost >= 0.0, name);
}

const SiteSpec& Topology::site(int id) const {
  DEPSTOR_EXPECTS(id >= 0 && id < site_count());
  return sites[static_cast<std::size_t>(id)];
}

bool Topology::connected(int a, int b) const { return max_links(a, b) > 0; }

int Topology::max_links(int a, int b) const {
  for (const auto& p : pair_limits) {
    if ((p.site_a == a && p.site_b == b) ||
        (p.site_a == b && p.site_b == a)) {
      return p.max_links;
    }
  }
  return 0;
}

std::vector<int> Topology::neighbors(int id) const {
  std::vector<int> out;
  for (int s = 0; s < site_count(); ++s) {
    if (s != id && connected(id, s)) out.push_back(s);
  }
  return out;
}

void Topology::validate() const {
  DEPSTOR_EXPECTS_MSG(!sites.empty(), "topology needs at least one site");
  for (int i = 0; i < site_count(); ++i) {
    DEPSTOR_EXPECTS_MSG(sites[static_cast<std::size_t>(i)].id == i,
                        "site ids must be dense and ordered");
    sites[static_cast<std::size_t>(i)].validate();
  }
  for (const auto& p : pair_limits) {
    DEPSTOR_EXPECTS(p.site_a >= 0 && p.site_a < site_count());
    DEPSTOR_EXPECTS(p.site_b >= 0 && p.site_b < site_count());
    DEPSTOR_EXPECTS_MSG(p.site_a != p.site_b, "self-links are meaningless");
    DEPSTOR_EXPECTS(p.max_links > 0);
  }
}

Topology Topology::fully_connected(int n, const SiteSpec& prototype,
                                   int max_links) {
  DEPSTOR_EXPECTS(n >= 1);
  Topology t;
  for (int i = 0; i < n; ++i) {
    SiteSpec s = prototype;
    s.id = i;
    s.name = "P" + std::to_string(i + 1);
    t.sites.push_back(std::move(s));
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      t.pair_limits.push_back({a, b, max_links});
    }
  }
  t.validate();
  return t;
}

}  // namespace depstor
