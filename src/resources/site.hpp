// Data-center sites and inter-site topology (paper §2.3, §4.3, §4.4).
//
// A site hosts disk arrays, tape libraries, and compute, subject to per-site
// maxima (e.g., the peer-sites case study allows at most two arrays — one
// high-end, one low-end — one tape library, and compute for eight
// applications per site). Site pairs are connected by link groups with a
// maximum number of links.
#pragma once

#include <string>
#include <vector>

#include "resources/device.hpp"

namespace depstor {

struct SiteSpec {
  int id = -1;
  std::string name;
  /// Geographic region (§2.4: regional disasters destroy every site in a
  /// region — mirrors protect against them only when the secondary site
  /// sits in a different region). All sites share region 0 by default.
  int region = 0;
  int max_disk_arrays = 2;
  /// Hot-spare array enclosures (floor space separate from the live arrays).
  int max_spare_arrays = 1;
  int max_tape_libraries = 1;
  int max_compute_slots = 8;  ///< application slots of compute
  double fixed_cost = 1000000.0;  ///< facilities, unamortized US$

  void validate() const;
};

struct Topology {
  std::vector<SiteSpec> sites;

  struct PairLimit {
    int site_a = -1;
    int site_b = -1;
    int max_links = 0;  ///< across all link types between the pair
  };
  std::vector<PairLimit> pair_limits;

  int site_count() const { return static_cast<int>(sites.size()); }

  const SiteSpec& site(int id) const;

  /// True when a link group exists between the (unordered) pair.
  bool connected(int a, int b) const;

  /// Maximum total links between the pair (0 when not connected).
  int max_links(int a, int b) const;

  /// All site ids except `id` that are connected to `id`.
  std::vector<int> neighbors(int id) const;

  void validate() const;

  /// `n` identical sites, fully connected with `max_links` per pair.
  static Topology fully_connected(int n, const SiteSpec& prototype,
                                  int max_links);
};

}  // namespace depstor
