// Table 3 device catalog (unamortized purchase prices, US$).
//
// Interpretation notes (see DESIGN.md §4):
//  * Tape libraries: the incremental column is split following §2.3's
//    "tape cartridges and tape drives" wording — $18,400 (high) / $10,400
//    (med) buys a tape *drive* (bandwidth unit); cartridges (capacity
//    units, 60 GB) cost $100 each.
//  * The Med network per-link cost appears in the paper as "200,00"; we read
//    it as $200,000.
//  * Compute is modeled with capacity units = application slots (one slot
//    hosts one application's computation); `capacity_unit_gb` is 1.0 and
//    means "slots", not gigabytes, for this kind only.
#pragma once

#include <vector>

#include "resources/device.hpp"

namespace depstor::resources {

DeviceTypeSpec xp1200();   ///< high-end disk array
DeviceTypeSpec eva8000();  ///< mid-range disk array (paper: "EVA800")
DeviceTypeSpec msa1500();  ///< low-end disk array

DeviceTypeSpec tape_library_high();
DeviceTypeSpec tape_library_med();

DeviceTypeSpec network_high();
DeviceTypeSpec network_med();

DeviceTypeSpec compute_high();

/// All disk array types, high to low.
std::vector<DeviceTypeSpec> disk_arrays();
/// All tape library types, high to low.
std::vector<DeviceTypeSpec> tape_libraries();
/// All network link types, high to low.
std::vector<DeviceTypeSpec> networks();

/// Catalog lookup by name; throws InvalidArgument when unknown.
DeviceTypeSpec by_name(const std::string& name);

}  // namespace depstor::resources
