#include "resources/device.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace depstor {

const char* to_string(DeviceKind k) {
  switch (k) {
    case DeviceKind::DiskArray:
      return "disk-array";
    case DeviceKind::TapeLibrary:
      return "tape-library";
    case DeviceKind::NetworkLink:
      return "network";
    case DeviceKind::Compute:
      return "compute";
  }
  return "?";
}

const char* to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::Low:
      return "Low";
    case DeviceClass::Med:
      return "Med";
    case DeviceClass::High:
      return "High";
  }
  return "?";
}

double DeviceTypeSpec::capacity_gb(int units) const {
  DEPSTOR_EXPECTS(units >= 0);
  return capacity_unit_gb * units;
}

double DeviceTypeSpec::bandwidth_mbps(int cap_units, int bw_units) const {
  DEPSTOR_EXPECTS(cap_units >= 0 && bw_units >= 0);
  double bw = 0.0;
  if (kind == DeviceKind::DiskArray) {
    bw = bandwidth_unit_mbps * cap_units;
  } else {
    bw = bandwidth_unit_mbps * bw_units;
  }
  if (max_aggregate_bandwidth_mbps > 0.0) {
    bw = std::min(bw, max_aggregate_bandwidth_mbps);
  }
  return bw;
}

double DeviceTypeSpec::max_bandwidth_mbps() const {
  return bandwidth_mbps(max_capacity_units, max_bandwidth_units);
}

int DeviceTypeSpec::min_capacity_units(double cap_gb, double bw_mbps) const {
  DEPSTOR_EXPECTS(cap_gb >= 0.0 && bw_mbps >= 0.0);
  if (max_capacity_units == 0) return cap_gb > 0.0 ? -1 : 0;
  int units = static_cast<int>(std::ceil(cap_gb / capacity_unit_gb));
  if (kind == DeviceKind::DiskArray && bw_mbps > 0.0) {
    if (bw_mbps > max_bandwidth_mbps()) return -1;
    units = std::max(
        units, static_cast<int>(std::ceil(bw_mbps / bandwidth_unit_mbps)));
  }
  return units <= max_capacity_units ? units : -1;
}

int DeviceTypeSpec::min_bandwidth_units(double bw_mbps) const {
  DEPSTOR_EXPECTS(bw_mbps >= 0.0);
  if (bw_mbps <= 0.0) return 0;
  if (kind == DeviceKind::DiskArray) return 0;  // derives from capacity
  if (max_bandwidth_units == 0) return -1;
  if (max_aggregate_bandwidth_mbps > 0.0 &&
      bw_mbps > max_aggregate_bandwidth_mbps) {
    return -1;
  }
  const int units = static_cast<int>(std::ceil(bw_mbps / bandwidth_unit_mbps));
  return units <= max_bandwidth_units ? units : -1;
}

double DeviceTypeSpec::purchase_cost(int cap_units, int bw_units) const {
  DEPSTOR_EXPECTS(cap_units >= 0 && bw_units >= 0);
  return fixed_cost + cost_per_capacity_unit * cap_units +
         cost_per_bandwidth_unit * bw_units;
}

void DeviceTypeSpec::validate() const {
  DEPSTOR_EXPECTS_MSG(!name.empty(), "device type needs a name");
  DEPSTOR_EXPECTS_MSG(fixed_cost >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(cost_per_capacity_unit >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(cost_per_bandwidth_unit >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(max_capacity_units >= 0, name);
  DEPSTOR_EXPECTS_MSG(max_bandwidth_units >= 0, name);
  if (max_capacity_units > 0) {
    DEPSTOR_EXPECTS_MSG(capacity_unit_gb > 0.0, name);
  }
  if (kind == DeviceKind::DiskArray || max_bandwidth_units > 0) {
    DEPSTOR_EXPECTS_MSG(bandwidth_unit_mbps > 0.0, name);
  }
}

}  // namespace depstor
