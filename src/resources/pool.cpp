#include "resources/pool.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace depstor {

const char* to_string(Purpose p) {
  switch (p) {
    case Purpose::Primary:
      return "primary";
    case Purpose::Mirror:
      return "mirror";
    case Purpose::Snapshot:
      return "snapshot";
    case Purpose::Backup:
      return "backup";
    case Purpose::MirrorTraffic:
      return "mirror-traffic";
    case Purpose::ComputePrimary:
      return "compute-primary";
    case Purpose::ComputeFailover:
      return "compute-failover";
    case Purpose::Spare:
      return "spare";
  }
  return "?";
}

ResourcePool::ResourcePool(Topology topology) : topology_(std::move(topology)) {
  topology_.validate();
}

int ResourcePool::add_device(const DeviceTypeSpec& type, int site,
                             int site_b) {
  type.validate();
  DEPSTOR_EXPECTS(site >= 0 && site < topology_.site_count());
  if (type.kind == DeviceKind::NetworkLink) {
    DEPSTOR_EXPECTS_MSG(site_b >= 0 && site_b < topology_.site_count() &&
                            site_b != site,
                        "network links need two distinct endpoints");
    if (!topology_.connected(site, site_b)) {
      throw InfeasibleError("no link group between sites " +
                            std::to_string(site) + " and " +
                            std::to_string(site_b));
    }
  } else {
    DEPSTOR_EXPECTS_MSG(site_b == -1,
                        "only network links span two sites");
  }
  DeviceInstance dev;
  dev.id = device_count();
  dev.type = type;
  dev.site_id = site;
  dev.site_b_id = site_b;
  devices_.push_back(std::move(dev));
  allocs_.emplace_back();
  return devices_.back().id;
}

const DeviceInstance& ResourcePool::device(int id) const {
  DEPSTOR_EXPECTS(id >= 0 && id < device_count());
  return devices_[static_cast<std::size_t>(id)];
}

const std::vector<Allocation>& ResourcePool::allocations(int id) const {
  DEPSTOR_EXPECTS(id >= 0 && id < device_count());
  return allocs_[static_cast<std::size_t>(id)];
}

void ResourcePool::allocate(int device_id, const Allocation& alloc) {
  DEPSTOR_EXPECTS(device_id >= 0 && device_id < device_count());
  DEPSTOR_EXPECTS(alloc.app_id >= 0);
  DEPSTOR_EXPECTS(alloc.capacity_gb >= 0.0 && alloc.bandwidth_mbps >= 0.0);
  auto& list = allocs_[static_cast<std::size_t>(device_id)];
  list.push_back(alloc);
  try {
    recompute_units(device_id);
  } catch (const InfeasibleError&) {
    list.pop_back();  // strong guarantee: failed allocations leave no trace
    recompute_units(device_id);
    throw;
  }
}

void ResourcePool::update_allocation(int device_id, int app_id,
                                     Purpose purpose, double capacity_gb,
                                     double bandwidth_mbps) {
  DEPSTOR_EXPECTS(device_id >= 0 && device_id < device_count());
  DEPSTOR_EXPECTS(capacity_gb >= 0.0 && bandwidth_mbps >= 0.0);
  auto& list = allocs_[static_cast<std::size_t>(device_id)];
  const auto it =
      std::find_if(list.begin(), list.end(), [&](const Allocation& a) {
        return a.app_id == app_id && a.purpose == purpose;
      });
  DEPSTOR_EXPECTS_MSG(it != list.end(),
                      "no allocation to update on device " +
                          std::to_string(device_id));
  const Allocation old = *it;
  it->capacity_gb = capacity_gb;
  it->bandwidth_mbps = bandwidth_mbps;
  try {
    recompute_units(device_id);
  } catch (const InfeasibleError&) {
    *it = old;  // strong guarantee: restore and re-derive the old units
    recompute_units(device_id);
    throw;
  }
}

void ResourcePool::release_app(int app_id) {
  DEPSTOR_EXPECTS(app_id >= 0);
  for (int id = 0; id < device_count(); ++id) {
    auto& list = allocs_[static_cast<std::size_t>(id)];
    const auto old_size = list.size();
    std::erase_if(list, [&](const Allocation& a) { return a.app_id == app_id; });
    if (list.size() != old_size) {
      if (list.empty()) {
        // Idle devices drop their solver-chosen extras too: the next user
        // re-decides provisioning from scratch.
        auto& dev = devices_[static_cast<std::size_t>(id)];
        dev.extra_capacity_units = 0;
        dev.extra_bandwidth_units = 0;
      }
      recompute_units(id);
    }
  }
}

void ResourcePool::remap_app_ids(const std::vector<int>& new_of_old) {
  const int old_count = static_cast<int>(new_of_old.size());
  for (auto& list : allocs_) {
    for (auto& alloc : list) {
      if (alloc.app_id < 0 || alloc.app_id >= old_count) continue;
      const int new_id = new_of_old[static_cast<std::size_t>(alloc.app_id)];
      DEPSTOR_EXPECTS_MSG(new_id >= 0,
                          "remap_app_ids: removed app still holds "
                          "allocations — release_app it first");
      alloc.app_id = new_id;
    }
  }
}

void ResourcePool::set_topology(Topology topology) {
  DEPSTOR_EXPECTS(topology.sites.size() == topology_.sites.size());
  topology_ = std::move(topology);
}

double ResourcePool::used_capacity_gb(int id) const {
  double total = 0.0;
  for (const auto& a : allocations(id)) total += a.capacity_gb;
  return total;
}

double ResourcePool::used_bandwidth_mbps(int id) const {
  double total = 0.0;
  for (const auto& a : allocations(id)) total += a.bandwidth_mbps;
  return total;
}

double ResourcePool::utilization(int id) const {
  const DeviceInstance& dev = device(id);
  double util = 0.0;
  if (dev.type.max_capacity_units > 0) {
    util = std::max(util, used_capacity_gb(id) / dev.type.max_capacity_gb());
  }
  const double max_bw = dev.type.max_bandwidth_mbps();
  if (max_bw > 0.0) {
    util = std::max(util, used_bandwidth_mbps(id) / max_bw);
  }
  return std::min(util, 1.0);
}

double ResourcePool::bandwidth_headroom_mbps(int id) const {
  return std::max(0.0, device(id).bandwidth_mbps() - used_bandwidth_mbps(id));
}

int ResourcePool::set_extra_bandwidth_units(int device_id, int extra) {
  DEPSTOR_EXPECTS(extra >= 0);
  auto& dev = devices_[static_cast<std::size_t>(device_id)];
  const int base = dev.bandwidth_units - dev.extra_bandwidth_units;
  dev.extra_bandwidth_units =
      std::min(extra, std::max(0, dev.type.max_bandwidth_units - base));
  recompute_units(device_id);
  return dev.extra_bandwidth_units;
}

int ResourcePool::set_extra_capacity_units(int device_id, int extra) {
  DEPSTOR_EXPECTS(extra >= 0);
  auto& dev = devices_[static_cast<std::size_t>(device_id)];
  const int base = dev.capacity_units - dev.extra_capacity_units;
  dev.extra_capacity_units =
      std::min(extra, std::max(0, dev.type.max_capacity_units - base));
  recompute_units(device_id);
  return dev.extra_capacity_units;
}

std::vector<int> ResourcePool::devices_at(int site, DeviceKind kind) const {
  std::vector<int> out;
  for (const auto& dev : devices_) {
    if (dev.site_id == site && dev.type.kind == kind) out.push_back(dev.id);
  }
  return out;
}

int ResourcePool::find_link(int a, int b, const std::string& type_name) const {
  for (const auto& dev : devices_) {
    if (dev.is_link_between(a, b) && dev.type.name == type_name) return dev.id;
  }
  return -1;
}

std::vector<int> ResourcePool::links_between(int a, int b) const {
  std::vector<int> out;
  for (const auto& dev : devices_) {
    if (dev.is_link_between(a, b)) out.push_back(dev.id);
  }
  return out;
}

std::vector<int> ResourcePool::sites_in_use() const {
  std::vector<bool> used(static_cast<std::size_t>(topology_.site_count()),
                         false);
  for (const auto& dev : devices_) {
    if (!in_use(dev.id)) continue;
    used[static_cast<std::size_t>(dev.site_id)] = true;
    if (dev.site_b_id >= 0) used[static_cast<std::size_t>(dev.site_b_id)] = true;
  }
  std::vector<int> out;
  for (int s = 0; s < topology_.site_count(); ++s) {
    if (used[static_cast<std::size_t>(s)]) out.push_back(s);
  }
  return out;
}

bool ResourcePool::is_spare_device(int id) const {
  const auto& allocs = allocations(id);
  if (allocs.empty()) return false;
  for (const auto& a : allocs) {
    if (a.purpose != Purpose::Spare) return false;
  }
  return true;
}

bool ResourcePool::has_spare_array(int site,
                                   const std::string& type_name) const {
  for (int id : devices_at(site, DeviceKind::DiskArray)) {
    if (device(id).type.name == type_name && is_spare_device(id)) return true;
  }
  return false;
}

void ResourcePool::check_feasible() const {
  // Single pass over the devices, then limit checks in a fixed order (per
  // site: arrays, spares, tapes, compute; then site pairs ascending — the
  // same order as the original per-site rescan, so the first violation
  // reported is identical). The solvers call this on every resource probe,
  // so the O(sites × devices) rescan it replaces was hot.
  const int site_count = topology_.site_count();
  struct SiteCounts {
    int arrays = 0;
    int spares = 0;
    int tapes = 0;
    int compute_slots = 0;
  };
  std::vector<SiteCounts> counts(static_cast<std::size_t>(site_count));
  std::vector<int> pair_links(
      static_cast<std::size_t>(site_count * site_count), 0);
  for (const auto& dev : devices_) {
    if (!in_use(dev.id)) continue;
    SiteCounts& c = counts[static_cast<std::size_t>(dev.site_id)];
    switch (dev.type.kind) {
      case DeviceKind::DiskArray:
        if (is_spare_device(dev.id)) {
          ++c.spares;
        } else {
          ++c.arrays;
        }
        break;
      case DeviceKind::TapeLibrary:
        ++c.tapes;
        break;
      case DeviceKind::Compute:
        c.compute_slots += dev.capacity_units;
        break;
      case DeviceKind::NetworkLink: {
        const int lo = std::min(dev.site_id, dev.site_b_id);
        const int hi = std::max(dev.site_id, dev.site_b_id);
        pair_links[static_cast<std::size_t>(lo * site_count + hi)] +=
            dev.bandwidth_units;
        break;
      }
    }
  }
  for (int s = 0; s < site_count; ++s) {
    const SiteSpec& site = topology_.site(s);
    const SiteCounts& c = counts[static_cast<std::size_t>(s)];
    if (c.arrays > site.max_disk_arrays) {
      throw InfeasibleError(site.name + ": " + std::to_string(c.arrays) +
                            " disk arrays exceed the site limit of " +
                            std::to_string(site.max_disk_arrays));
    }
    if (c.spares > site.max_spare_arrays) {
      throw InfeasibleError(site.name + ": " + std::to_string(c.spares) +
                            " spare arrays exceed the site limit of " +
                            std::to_string(site.max_spare_arrays));
    }
    if (c.tapes > site.max_tape_libraries) {
      throw InfeasibleError(site.name + ": " + std::to_string(c.tapes) +
                            " tape libraries exceed the site limit of " +
                            std::to_string(site.max_tape_libraries));
    }
    if (c.compute_slots > site.max_compute_slots) {
      throw InfeasibleError(site.name + ": " +
                            std::to_string(c.compute_slots) +
                            " compute slots exceed the site limit of " +
                            std::to_string(site.max_compute_slots));
    }
  }
  for (int a = 0; a < site_count; ++a) {
    for (int b = a + 1; b < site_count; ++b) {
      const int links =
          pair_links[static_cast<std::size_t>(a * site_count + b)];
      if (links > topology_.max_links(a, b)) {
        throw InfeasibleError("sites " + std::to_string(a) + "-" +
                              std::to_string(b) + ": " +
                              std::to_string(links) +
                              " links exceed the pair limit of " +
                              std::to_string(topology_.max_links(a, b)));
      }
    }
  }
}

void ResourcePool::recompute_units(int id) {
  auto& dev = devices_[static_cast<std::size_t>(id)];
  const double cap = used_capacity_gb(id);
  const double bw = used_bandwidth_mbps(id);

  const int min_cap = dev.type.min_capacity_units(cap, bw);
  DEPSTOR_REQUIRE_MSG(min_cap >= 0,
                      dev.type.name + " #" + std::to_string(id) +
                          " cannot supply " + std::to_string(cap) + " GB / " +
                          std::to_string(bw) + " MB/s");
  const int min_bw = dev.type.min_bandwidth_units(bw);
  DEPSTOR_REQUIRE_MSG(min_bw >= 0,
                      dev.type.name + " #" + std::to_string(id) +
                          " cannot supply " + std::to_string(bw) + " MB/s");
  dev.capacity_units = std::min(min_cap + dev.extra_capacity_units,
                                dev.type.max_capacity_units);
  dev.extra_capacity_units = dev.capacity_units - min_cap;
  dev.bandwidth_units = std::min(min_bw + dev.extra_bandwidth_units,
                                 dev.type.max_bandwidth_units);
  dev.extra_bandwidth_units = dev.bandwidth_units - min_bw;
}

}  // namespace depstor
