// ResourcePool: the provisioned devices of one candidate solution, plus the
// per-device allocations that applications and their data protection
// workloads place on them (paper §2.3, §3.1.3).
//
// Devices are created on demand by the solvers; unit counts are maintained as
// the minimum implied by the device's allocations plus any solver-chosen
// extra units (extra network links / tape drives bought to shorten recovery,
// §3.2.2). A device with no allocations is "idle": it contributes no outlay
// and does not count against site limits, but keeps its id so assignments
// never dangle.
#pragma once

#include <vector>

#include "resources/device.hpp"
#include "resources/site.hpp"

namespace depstor {

/// Why an allocation exists. Used for reporting, for identifying which
/// copies survive a failure scope, and for recovery planning.
enum class Purpose {
  Primary,          ///< primary copy (array capacity + access bandwidth)
  Mirror,           ///< remote mirror copy (array capacity + update bandwidth)
  Snapshot,         ///< space-efficient point-in-time copies on the primary array
  Backup,           ///< tape backup (cartridge capacity + drive bandwidth)
  MirrorTraffic,    ///< inter-site link bandwidth for mirror propagation
  ComputePrimary,   ///< compute slot running the application
  ComputeFailover,  ///< spare compute slot at the secondary site
  Spare,            ///< hot-spare device reservation (shortens repair leads)
};

/// Base of the owner ids used for spare allocations (spares belong to a
/// (site, array type) pair, not an application): the candidate derives
/// `kSpareOwnerBase + site * array_type_count + type_index`, so each spare
/// can be released individually. Far above any real app id.
inline constexpr int kSpareOwnerBase = 1'000'000;

const char* to_string(Purpose p);

struct Allocation {
  int app_id = -1;
  Purpose purpose = Purpose::Primary;
  double capacity_gb = 0.0;     ///< compute devices: slots
  double bandwidth_mbps = 0.0;
};

class ResourcePool {
 public:
  explicit ResourcePool(Topology topology);

  const Topology& topology() const { return topology_; }

  /// Add a device at `site` (network links: between `site` and `site_b`).
  /// Returns the new device id. Site limits are only enforced by
  /// check_feasible(), so the search may transiently exceed them.
  int add_device(const DeviceTypeSpec& type, int site, int site_b = -1);

  int device_count() const { return static_cast<int>(devices_.size()); }
  const DeviceInstance& device(int id) const;
  const std::vector<DeviceInstance>& devices() const { return devices_; }

  bool in_use(int id) const { return !allocations(id).empty(); }

  /// Place an allocation, growing the device's units as needed.
  /// Throws InfeasibleError when the device cannot grow enough.
  void allocate(int device_id, const Allocation& alloc);

  /// Resize an existing allocation in place — same app, same purpose, same
  /// position in the device's allocation list — and re-derive the device's
  /// units. Strong guarantee: when the new sizes don't fit the device type,
  /// the old allocation is restored and InfeasibleError propagates. Much
  /// cheaper than release + re-allocate, and order-preserving, which lets
  /// incremental cost evaluation keep every cached scenario that doesn't
  /// touch this device.
  void update_allocation(int device_id, int app_id, Purpose purpose,
                         double capacity_gb, double bandwidth_mbps);

  /// Remove every allocation belonging to `app_id` across all devices and
  /// shrink unit counts accordingly.
  void release_app(int app_id);

  /// Rewrite allocation owner ids through an old→new app id map (warm-start
  /// migration across environment deltas). Ids at or above
  /// `new_of_old.size()` — spare owners — are kept as-is. Allocations owned
  /// by removed apps (mapped to -1) must have been released beforehand.
  void remap_app_ids(const std::vector<int>& new_of_old);

  /// Replace the topology (site capacity deltas). Site count, ids, and link
  /// pairs must be unchanged — only per-site limits may differ; violations
  /// surface through the next check_feasible().
  void set_topology(Topology topology);

  const std::vector<Allocation>& allocations(int id) const;

  double used_capacity_gb(int id) const;
  double used_bandwidth_mbps(int id) const;

  /// Fraction of the device's *maximum* provisioning consumed (max of the
  /// capacity and bandwidth dimensions). Used by the reconfiguration
  /// operator's load-balancing bias.
  double utilization(int id) const;

  /// Headroom available for recovery traffic on a device: provisioned
  /// bandwidth minus allocations that keep running during recovery.
  double bandwidth_headroom_mbps(int id) const;

  /// Buy extra units beyond the allocation-implied minimum (clamped to the
  /// device maximum; returns the extras actually applied).
  int set_extra_bandwidth_units(int device_id, int extra);
  int set_extra_capacity_units(int device_id, int extra);

  /// Existing (in-use or idle) devices of a kind at a site.
  std::vector<int> devices_at(int site, DeviceKind kind) const;

  /// Device id of the link group between the pair using `type`, or -1.
  int find_link(int a, int b, const std::string& type_name) const;
  /// All link-group device ids between a pair (any type).
  std::vector<int> links_between(int a, int b) const;

  /// Sites hosting at least one in-use device.
  std::vector<int> sites_in_use() const;

  /// True when `id`'s allocations are all hot-spare reservations.
  bool is_spare_device(int id) const;

  /// True when an in-use hot spare of the given array type sits at `site`.
  bool has_spare_array(int site, const std::string& type_name) const;

  /// Verify per-site device limits and per-pair link limits; throws
  /// InfeasibleError describing the first violation.
  void check_feasible() const;

 private:
  void recompute_units(int id);

  Topology topology_;
  std::vector<DeviceInstance> devices_;
  std::vector<std::vector<Allocation>> allocs_;
};

}  // namespace depstor
