// Device infrastructure model (paper §2.3, Table 3).
//
// Every device type allocates capacity and bandwidth in discrete units and
// carries a fixed acquisition cost plus per-unit incremental costs. The three
// kinds behave differently:
//
//  * Disk arrays: capacity units are disk shelves (143 GB each); array
//    bandwidth *derives* from the number of capacity units (25/10/8 MB/s per
//    unit) up to a fixed aggregate ceiling (512/256/128 MB/s). There are no
//    separately purchasable bandwidth units.
//  * Tape libraries: capacity units are cartridges (60 GB), bandwidth units
//    are tape drives (120 MB/s each, max 24/4).
//  * Network links: bandwidth units are links (20/10 MB/s each); no capacity
//    dimension.
//  * Compute: capacity units are servers (one application each).
#pragma once

#include <string>

namespace depstor {

enum class DeviceKind { DiskArray, TapeLibrary, NetworkLink, Compute };
enum class DeviceClass { Low = 0, Med = 1, High = 2 };

const char* to_string(DeviceKind k);
const char* to_string(DeviceClass c);

struct DeviceTypeSpec {
  std::string name;  ///< e.g. "XP1200"
  DeviceKind kind = DeviceKind::DiskArray;
  DeviceClass cls = DeviceClass::Med;

  double fixed_cost = 0.0;               ///< per instance (unamortized, US$)
  double cost_per_capacity_unit = 0.0;   ///< US$ per capacity unit
  double cost_per_bandwidth_unit = 0.0;  ///< US$ per bandwidth unit

  int max_capacity_units = 0;   ///< 0 when the kind has no capacity dimension
  int max_bandwidth_units = 0;  ///< 0 when bandwidth derives from capacity

  double capacity_unit_gb = 0.0;
  double bandwidth_unit_mbps = 0.0;

  /// Aggregate bandwidth ceiling (arrays: controller limit). 0 = no ceiling
  /// beyond max units.
  double max_aggregate_bandwidth_mbps = 0.0;

  /// Usable capacity with `units` capacity units.
  double capacity_gb(int units) const;

  /// Deliverable bandwidth with the given unit counts. For disk arrays the
  /// bandwidth comes from capacity units; otherwise from bandwidth units.
  double bandwidth_mbps(int capacity_units, int bandwidth_units) const;

  /// Hard ceiling on deliverable bandwidth when fully provisioned.
  double max_bandwidth_mbps() const;

  /// Hard ceiling on capacity when fully provisioned.
  double max_capacity_gb() const { return capacity_gb(max_capacity_units); }

  /// Minimum capacity units covering `cap_gb` of data — and, for disk
  /// arrays, also delivering `bw_mbps`. Returns -1 when impossible.
  int min_capacity_units(double cap_gb, double bw_mbps) const;

  /// Minimum bandwidth units delivering `bw_mbps` (tape drives, links).
  /// Returns -1 when impossible.
  int min_bandwidth_units(double bw_mbps) const;

  /// Unamortized purchase price of an instance with the given units.
  double purchase_cost(int capacity_units, int bandwidth_units) const;

  void validate() const;
};

/// A provisioned device in a candidate solution.
///
/// Unit counts are stored as the minimum implied by the allocations placed on
/// the device (maintained by ResourcePool) plus solver-chosen extras
/// (extra links / tape drives bought to shorten recovery, §3.2.2).
struct DeviceInstance {
  int id = -1;
  DeviceTypeSpec type;
  int site_id = -1;    ///< hosting site (network: endpoint A)
  int site_b_id = -1;  ///< network links only: endpoint B

  int capacity_units = 0;   ///< provisioned (≥ minimum implied by allocations)
  int bandwidth_units = 0;  ///< provisioned
  int extra_capacity_units = 0;   ///< solver-added beyond the minimum
  int extra_bandwidth_units = 0;  ///< solver-added beyond the minimum

  double capacity_gb() const { return type.capacity_gb(capacity_units); }
  double bandwidth_mbps() const {
    return type.bandwidth_mbps(capacity_units, bandwidth_units);
  }
  double purchase_cost() const {
    return type.purchase_cost(capacity_units, bandwidth_units);
  }

  bool is_link_between(int a, int b) const {
    return type.kind == DeviceKind::NetworkLink &&
           ((site_id == a && site_b_id == b) ||
            (site_id == b && site_b_id == a));
  }
};

}  // namespace depstor
