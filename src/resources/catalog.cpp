#include "resources/catalog.hpp"

#include "util/check.hpp"

namespace depstor::resources {

namespace {
DeviceTypeSpec make(std::string name, DeviceKind kind, DeviceClass cls,
                    double fixed, double per_cap, double per_bw, int max_cap,
                    int max_bw, double cap_gb, double bw_mbps,
                    double max_agg_bw) {
  DeviceTypeSpec d;
  d.name = std::move(name);
  d.kind = kind;
  d.cls = cls;
  d.fixed_cost = fixed;
  d.cost_per_capacity_unit = per_cap;
  d.cost_per_bandwidth_unit = per_bw;
  d.max_capacity_units = max_cap;
  d.max_bandwidth_units = max_bw;
  d.capacity_unit_gb = cap_gb;
  d.bandwidth_unit_mbps = bw_mbps;
  d.max_aggregate_bandwidth_mbps = max_agg_bw;
  d.validate();
  return d;
}

constexpr double kCartridgeCost = 100.0;  // per 60 GB cartridge
}  // namespace

DeviceTypeSpec xp1200() {
  return make("XP1200", DeviceKind::DiskArray, DeviceClass::High, 375000.0,
              8723.0, 0.0, 1024, 0, 143.0, 25.0, 512.0);
}

DeviceTypeSpec eva8000() {
  return make("EVA8000", DeviceKind::DiskArray, DeviceClass::Med, 123000.0,
              3720.0, 0.0, 512, 0, 143.0, 10.0, 256.0);
}

DeviceTypeSpec msa1500() {
  return make("MSA1500", DeviceKind::DiskArray, DeviceClass::Low, 123000.0,
              3720.0, 0.0, 128, 0, 143.0, 8.0, 128.0);
}

DeviceTypeSpec tape_library_high() {
  return make("TapeLib-High", DeviceKind::TapeLibrary, DeviceClass::High,
              141000.0, kCartridgeCost, 18400.0, 720, 24, 60.0, 120.0, 2400.0);
}

DeviceTypeSpec tape_library_med() {
  return make("TapeLib-Med", DeviceKind::TapeLibrary, DeviceClass::Med,
              76000.0, kCartridgeCost, 10400.0, 120, 4, 60.0, 120.0, 400.0);
}

DeviceTypeSpec network_high() {
  return make("Net-High", DeviceKind::NetworkLink, DeviceClass::High, 0.0, 0.0,
              500000.0, 0, 32, 0.0, 20.0, 640.0);
}

DeviceTypeSpec network_med() {
  return make("Net-Med", DeviceKind::NetworkLink, DeviceClass::Med, 0.0, 0.0,
              200000.0, 0, 16, 0.0, 10.0, 160.0);
}

DeviceTypeSpec compute_high() {
  // Capacity units are application slots (see header); one slot runs one
  // application, $125,000 per slot, no meaningful bandwidth dimension.
  return make("Compute-High", DeviceKind::Compute, DeviceClass::High, 0.0,
              125000.0, 0.0, 64, 0, 1.0, 0.0, 0.0);
}

std::vector<DeviceTypeSpec> disk_arrays() {
  return {xp1200(), eva8000(), msa1500()};
}

std::vector<DeviceTypeSpec> tape_libraries() {
  return {tape_library_high(), tape_library_med()};
}

std::vector<DeviceTypeSpec> networks() {
  return {network_high(), network_med()};
}

DeviceTypeSpec by_name(const std::string& name) {
  for (const auto& d :
       {xp1200(), eva8000(), msa1500(), tape_library_high(),
        tape_library_med(), network_high(), network_med(), compute_high()}) {
    if (d.name == name) return d;
  }
  throw InvalidArgument("unknown device type: " + name);
}

}  // namespace depstor::resources
