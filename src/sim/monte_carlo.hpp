// Monte Carlo validation of the analytic dependability model.
//
// The configuration solver prices designs analytically: expected annual
// penalty = Σ scenarios (annual rate × worst-case consequence). This module
// cross-checks that arithmetic by *living through* the failures instead:
// failure events arrive as independent Poisson processes (one per concrete
// scenario — each app's data objects, each primary-hosting array, each
// primary site), every event is pushed through the same recovery planner and
// contention scheduler, and the realized outage / recent-loss hours are
// accumulated over thousands of simulated years.
//
// Two deliberate fidelity differences from the analytic path make the
// comparison informative rather than circular:
//
//  * recent data loss is *sampled*: a failure lands uniformly within the
//    recovery copy's accumulation cycle, losing `fixed + U·window` hours
//    (the analytic model charges the worst case `fixed + window`, which
//    §3.2.1 describes as an upper bound — the simulator verifies it is one,
//    and that the gap is ≈ window/2);
//  * overlapping failures are handled: if an application is hit again while
//    still recovering, only the *additional* downtime extends its outage
//    (the analytic model prices events independently).
//
// Expected relationships, asserted by tests and printed by
// bench_model_validation:
//   simulated outage ≈ analytic outage        (outages are not sampled)
//   analytic/2 ≲ simulated loss ≤ analytic    (worst-case vs uniform)
#pragma once

#include <cstdint>
#include <vector>

#include "core/environment.hpp"
#include "solver/solution.hpp"

namespace depstor {

struct MonteCarloOptions {
  double years = 2000.0;  ///< simulated horizon
  std::uint64_t seed = 1;

  void validate() const;
};

struct AppSimStats {
  int app_id = -1;
  long long failure_events = 0;  ///< events whose scope hit this app
  double outage_hours = 0.0;     ///< realized downtime over the horizon
  double loss_hours = 0.0;       ///< realized recent-data-loss hours
  double outage_penalty = 0.0;   ///< realized, US$ over the horizon
  double loss_penalty = 0.0;
};

struct MonteCarloResult {
  double years = 0.0;
  long long events = 0;  ///< failure events injected
  std::vector<AppSimStats> per_app;

  double annual_outage_penalty() const;
  double annual_loss_penalty() const;
  double annual_penalty() const {
    return annual_outage_penalty() + annual_loss_penalty();
  }
};

class MonteCarloSimulator {
 public:
  explicit MonteCarloSimulator(const Environment* env);

  /// Inject Poisson failures against the candidate's design for the given
  /// horizon and return the realized statistics. The candidate must be a
  /// complete feasible design.
  MonteCarloResult run(const Candidate& candidate,
                       const MonteCarloOptions& options) const;

 private:
  const Environment* env_;
};

}  // namespace depstor
