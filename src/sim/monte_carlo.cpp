#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "model/recovery_sim.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace depstor {

void MonteCarloOptions::validate() const {
  DEPSTOR_EXPECTS(years > 0.0);
}

double MonteCarloResult::annual_outage_penalty() const {
  double total = 0.0;
  for (const auto& s : per_app) total += s.outage_penalty;
  return total / years;
}

double MonteCarloResult::annual_loss_penalty() const {
  double total = 0.0;
  for (const auto& s : per_app) total += s.loss_penalty;
  return total / years;
}

MonteCarloSimulator::MonteCarloSimulator(const Environment* env) : env_(env) {
  DEPSTOR_EXPECTS(env != nullptr);
  env_->validate();
}

namespace {

struct PendingEvent {
  double time_hours = 0.0;
  std::size_t scenario_index = 0;
  bool operator>(const PendingEvent& other) const {
    return time_hours > other.time_hours;
  }
};

double exponential_hours(Rng& rng, double annual_rate) {
  // Inter-arrival of a Poisson process with `annual_rate` events/year. A
  // zero (or negative) rate has no arrivals: dividing by it would inject
  // inf/NaN event times into the event queue, so callers must skip those
  // scenarios instead of sampling them.
  DEPSTOR_EXPECTS_MSG(annual_rate > 0.0,
                      "exponential_hours needs a positive annual rate");
  return -std::log(1.0 - rng.uniform()) / annual_rate *
         units::kHoursPerYear;
}

}  // namespace

MonteCarloResult MonteCarloSimulator::run(
    const Candidate& candidate, const MonteCarloOptions& options) const {
  DEPSTOR_TRACE_SPAN_NAMED(run_span, "mc_run");
  options.validate();
  candidate.check_feasible();

  const auto scenarios =
      enumerate_scenarios(env_->apps, candidate.assignments(),
                          candidate.pool(), candidate.scenario_model());
  MonteCarloResult result;
  result.years = options.years;
  result.per_app.resize(env_->apps.size());
  for (std::size_t i = 0; i < env_->apps.size(); ++i) {
    result.per_app[i].app_id = static_cast<int>(i);
  }
  if (scenarios.empty()) return result;

  Rng rng(options.seed);
  const double horizon_hours = options.years * units::kHoursPerYear;

  // One Poisson arrival stream per concrete scenario, merged on a heap.
  std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                      std::greater<PendingEvent>>
      queue;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (scenarios[i].annual_rate <= 0.0) continue;
    queue.push({exponential_hours(rng, scenarios[i].annual_rate), i});
  }

  // Downtime bookkeeping: an application hit again while still recovering
  // only accrues the *additional* downtime.
  std::vector<double> busy_until(env_->apps.size(), 0.0);

  while (!queue.empty() && queue.top().time_hours < horizon_hours) {
    const PendingEvent event = queue.top();
    queue.pop();
    const ScenarioSpec& scenario = scenarios[event.scenario_index];
    ++result.events;

    DEPSTOR_TRACE_SPAN("scenario_sim",
                       static_cast<std::int64_t>(event.scenario_index));
    const auto recoveries =
        simulate_recovery(scenario, env_->apps, candidate.assignments(),
                          candidate.pool(), env_->params);
    for (const auto& rec : recoveries) {
      const auto& app = env_->apps[static_cast<std::size_t>(rec.app_id)];
      auto& stats = result.per_app[static_cast<std::size_t>(rec.app_id)];
      ++stats.failure_events;

      // Sample the recent loss uniformly within the recovery copy's
      // accumulation cycle: fixed + U·window (worst case = fixed + window,
      // which is what rec.loss_hours carries).
      double loss = rec.loss_hours;
      if (rec.copy != CopyLevel::None) {
        const StalenessBound bound = staleness_bound(
            rec.copy, app,
            candidate.assignments()[static_cast<std::size_t>(rec.app_id)],
            candidate.pool());
        loss = bound.fixed_hours + rng.uniform() * bound.window_hours;
      }
      stats.loss_hours += loss;
      stats.loss_penalty += loss * app.loss_penalty_rate;

      // Outage union: only downtime beyond any recovery still in progress
      // counts again.
      const double end = event.time_hours + rec.outage_hours;
      const double already_down =
          std::max(0.0, std::min(busy_until[static_cast<std::size_t>(
                                     rec.app_id)],
                                 end) -
                            event.time_hours);
      const double additional = rec.outage_hours - already_down;
      if (additional > 0.0) {
        stats.outage_hours += additional;
        stats.outage_penalty += additional * app.outage_penalty_rate;
      }
      busy_until[static_cast<std::size_t>(rec.app_id)] =
          std::max(busy_until[static_cast<std::size_t>(rec.app_id)], end);
    }

    // Schedule this stream's next arrival.
    queue.push({event.time_hours +
                    exponential_hours(rng, scenario.annual_rate),
                event.scenario_index});
  }
  run_span.set_arg(result.events);
  obs::counters().add("mc.runs", 1);
  obs::counters().add("mc.events", result.events);
  return result;
}

}  // namespace depstor
