// Span-based tracing with a Chrome trace_event JSON exporter.
//
// DEPSTOR_TRACE_SPAN("refit") opens an RAII span: construction stamps a
// monotonic-clock start, destruction records the completed span into a
// per-thread ring buffer. The exporter assembles every thread's ring into a
// chrome://tracing / Perfetto-loadable JSON document ("X" complete events,
// microsecond timestamps), so a solve's greedy/refit/sweep/increment/
// scenario-simulation phase structure is directly visible on a timeline.
//
// Cost discipline (the solver evaluates millions of candidates):
//  - disabled (the default), a span site costs one relaxed atomic load and
//    a branch — no clock read, no allocation;
//  - enabled, a span costs two steady_clock reads plus a short critical
//    section on its thread's ring (uncontended except during export).
//
// Ring buffers are fixed-capacity (DEPSTOR_TRACE_BUFFER overrides the
// per-thread event count) and overwrite their oldest events, keeping the
// tail of the run; the exporter reports how many events were dropped so a
// truncated trace is never mistaken for a complete one. Thread ids are
// assigned in registration order and stay stable for the process lifetime.
//
// Toggles: set_trace_enabled() programmatically, or DEPSTOR_TRACE=1 in the
// environment (read once, on the first span site hit or enabled() query).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace depstor::obs {

namespace detail {
/// -1 = not yet resolved (DEPSTOR_TRACE pending), 0 = off, 1 = on.
extern std::atomic<int> g_trace_state;
bool trace_enabled_slow();
std::int64_t now_ns();
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 std::int64_t arg, bool has_arg);
}  // namespace detail

/// Fast check used by every span site.
inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::trace_enabled_slow();
}

/// Programmatic override (wins over DEPSTOR_TRACE).
void set_trace_enabled(bool on);

/// RAII span. `name` must be a string literal (the ring stores the pointer).
/// The optional arg lands in the exported event's args ("v") — job ids,
/// app ids, simulated-scenario counts.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }
  TraceSpan(const char* name, std::int64_t arg) : TraceSpan(name) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, detail::now_ns(), arg_, has_arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach/replace the arg after construction (e.g. a count known only at
  /// scope exit). No-op when tracing was off at construction.
  void set_arg(std::int64_t arg) {
    if (name_ != nullptr) {
      arg_ = arg;
      has_arg_ = true;
    }
  }

 private:
  const char* name_ = nullptr;  ///< null = tracing was off at construction
  std::int64_t start_ns_ = 0;
  std::int64_t arg_ = 0;
  bool has_arg_ = false;
};

struct TraceStats {
  std::int64_t recorded = 0;  ///< events currently held in the rings
  std::int64_t dropped = 0;   ///< events overwritten by ring wrap-around
  int threads = 0;            ///< threads that recorded at least one span
};
TraceStats trace_stats();

/// Drop every buffered event (thread ids keep their assignments).
void clear_trace();

/// Write the buffered spans as a Chrome trace_event JSON document:
/// {"traceEvents":[...], "displayTimeUnit":"ms", "counters":{...},
///  "traceStats":{...}}. The counter registry snapshot rides along so one
/// file carries both the timeline and the end-of-solve counters.
void write_chrome_trace(std::ostream& os);
std::string chrome_trace_json();

}  // namespace depstor::obs

#define DEPSTOR_OBS_CONCAT_(a, b) a##b
#define DEPSTOR_OBS_CONCAT(a, b) DEPSTOR_OBS_CONCAT_(a, b)

/// Open a span covering the rest of the enclosing scope.
/// DEPSTOR_TRACE_SPAN("sweep") or DEPSTOR_TRACE_SPAN("sweep", app_id).
#define DEPSTOR_TRACE_SPAN(...)                             \
  const ::depstor::obs::TraceSpan DEPSTOR_OBS_CONCAT(       \
      depstor_trace_span_, __LINE__)(__VA_ARGS__)

/// Same, but named so the scope can call set_arg on it later.
#define DEPSTOR_TRACE_SPAN_NAMED(var, ...) \
  ::depstor::obs::TraceSpan var(__VA_ARGS__)
