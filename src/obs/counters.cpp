#include "obs/counters.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"

namespace depstor::obs {

std::atomic<std::int64_t>& CounterRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<std::int64_t>>(0);
  return *cell;
}

void CounterRegistry::add(const std::string& name, std::int64_t delta) {
  counter(name).fetch_add(delta, std::memory_order_relaxed);
}

void CounterRegistry::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

std::int64_t CounterRegistry::value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

double CounterRegistry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, std::int64_t>>
CounterRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, double>> CounterRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::string CounterRegistry::render_text() const {
  const auto counter_rows = counters();
  const auto gauge_rows = gauges();
  std::size_t width = 0;
  for (const auto& [name, _] : counter_rows) width = std::max(width, name.size());
  for (const auto& [name, _] : gauge_rows) width = std::max(width, name.size());

  std::ostringstream os;
  for (const auto& [name, value] : counter_rows) {
    os << name << std::string(width - name.size() + 2, ' ') << value << "\n";
  }
  for (const auto& [name, value] : gauge_rows) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", value);
    os << name << std::string(width - name.size() + 2, ' ') << buf << "\n";
  }
  return os.str();
}

void CounterRegistry::to_json(JsonWriter& json) const {
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : counters()) {
    json.field(name, static_cast<long long>(value));
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : gauges()) {
    json.field(name, value);
  }
  json.end_object();
  json.end_object();
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->store(0, std::memory_order_relaxed);
  }
  gauges_.clear();
}

CounterRegistry& counters() {
  static CounterRegistry* instance = new CounterRegistry();  // never destroyed
  return *instance;
}

}  // namespace depstor::obs
