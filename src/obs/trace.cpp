#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/counters.hpp"
#include "util/json.hpp"

namespace depstor::obs {

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t arg = 0;
  bool has_arg = false;
};

std::size_t ring_capacity() {
  static const std::size_t capacity = [] {
    if (const char* v = std::getenv("DEPSTOR_TRACE_BUFFER")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return static_cast<std::size_t>(1) << 18;  // 256k events/thread, ~10 MB
  }();
  return capacity;
}

/// One thread's span buffer. Single producer (its thread); the mutex makes
/// the exporter's concurrent read safe. Storage grows on demand up to the
/// fixed capacity, then wraps, overwriting the oldest events.
struct TraceRing {
  explicit TraceRing(int tid) : tid(tid) {}

  void push(const TraceEvent& event) {
    const std::lock_guard<std::mutex> lock(mu);
    if (events.size() < ring_capacity()) {
      events.push_back(event);
    } else {
      events[next % events.size()] = event;
      ++dropped;
    }
    ++next;
  }

  const int tid;
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t next = 0;  ///< total pushes; next % size() = oldest slot
  std::int64_t dropped = 0;
};

/// Global ring registry. Rings are never destroyed (threads may outlive a
/// clear; the thread_local below holds a raw pointer into this list).
struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  TraceRing* ring_for_current_thread() {
    thread_local TraceRing* ring = nullptr;
    if (ring == nullptr) {
      const std::lock_guard<std::mutex> lock(mu);
      rings.push_back(
          std::make_unique<TraceRing>(static_cast<int>(rings.size())));
      ring = rings.back().get();
    }
    return ring;
  }
};

TraceRegistry& registry() {
  static TraceRegistry* instance = new TraceRegistry();  // never destroyed
  return *instance;
}

}  // namespace

namespace detail {

std::atomic<int> g_trace_state{-1};

bool trace_enabled_slow() {
  const char* v = std::getenv("DEPSTOR_TRACE");
  const bool on = v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
  int expected = -1;
  g_trace_state.compare_exchange_strong(expected, on ? 1 : 0,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed) != 0;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 std::int64_t arg, bool has_arg) {
  registry().ring_for_current_thread()->push(
      {name, start_ns, end_ns - start_ns, arg, has_arg});
}

}  // namespace detail

void set_trace_enabled(bool on) {
  detail::g_trace_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

TraceStats trace_stats() {
  TraceStats stats;
  TraceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->next == 0) continue;
    ++stats.threads;
    stats.recorded += static_cast<std::int64_t>(ring->events.size());
    stats.dropped += ring->dropped;
  }
  return stats;
}

void clear_trace() {
  TraceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

void write_chrome_trace(std::ostream& os) {
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  TraceRegistry& reg = registry();
  TraceStats stats;
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      const std::lock_guard<std::mutex> ring_lock(ring->mu);
      if (ring->next == 0) continue;
      ++stats.threads;
      stats.dropped += ring->dropped;
      // Oldest first: once the ring has wrapped, the oldest surviving event
      // sits at next % size().
      const std::size_t count = ring->events.size();
      const std::size_t first =
          ring->next > count ? ring->next % count : 0;
      for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent& e = ring->events[(first + i) % count];
        ++stats.recorded;
        json.begin_object()
            .field("name", e.name)
            .field("cat", "depstor")
            .field("ph", "X")
            .field("ts", static_cast<double>(e.start_ns) / 1000.0)
            .field("dur", static_cast<double>(e.dur_ns) / 1000.0)
            .field("pid", 1)
            .field("tid", ring->tid);
        if (e.has_arg) {
          json.key("args")
              .begin_object()
              .field("v", static_cast<long long>(e.arg))
              .end_object();
        }
        json.end_object();
      }
    }
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  json.key("counters");
  counters().to_json(json);
  json.key("traceStats")
      .begin_object()
      .field("recorded", static_cast<long long>(stats.recorded))
      .field("dropped", static_cast<long long>(stats.dropped))
      .field("threads", stats.threads)
      .end_object();
  json.end_object();
  os << json.str() << "\n";
}

std::string chrome_trace_json() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace depstor::obs
