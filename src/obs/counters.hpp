// Central counter/gauge registry: one process-wide home for the counters
// that used to live ad hoc in SolveResult, the engine metrics, and the
// incremental-evaluation stats.
//
// Counters are monotonic int64 cells, registered by name on first use; the
// returned atomic reference stays valid for the process lifetime, so hot
// paths resolve the name once (function-local static) and then pay a single
// relaxed fetch_add. Truly hot per-evaluation counts keep their existing
// per-solve struct counters (no shared cache line in the inner loops) and
// are *published* into the registry at end of solve — the registry is the
// aggregation and reporting layer, not a replacement for per-solve stats.
//
// Gauges are last-write-wins doubles for end-of-solve readings (stage
// timings, hit rates). dump: render_text() for humans, to_json() for
// machines; both are also embedded in the Chrome trace export so one file
// carries the timeline and the counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace depstor {

class JsonWriter;

namespace obs {

class CounterRegistry {
 public:
  /// The named counter cell, created at zero on first use. The reference
  /// remains valid forever — cache it and fetch_add(relaxed) on hot paths.
  std::atomic<std::int64_t>& counter(const std::string& name);

  /// Convenience one-shot add (registration + relaxed add).
  void add(const std::string& name, std::int64_t delta);

  /// Last-write-wins gauge.
  void set_gauge(const std::string& name, double value);

  /// Current value; 0 when the counter was never registered.
  std::int64_t value(const std::string& name) const;
  /// NaN-free read; 0.0 when the gauge was never set.
  double gauge(const std::string& name) const;

  /// Name-sorted snapshots.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// Aligned "name  value" listing of every counter, then every gauge.
  std::string render_text() const;

  /// {"counters": {...}, "gauges": {...}} as a JSON object value (caller
  /// owns the surrounding structure).
  void to_json(JsonWriter& json) const;

  /// Zero every counter and drop every gauge (registrations survive, so
  /// cached references stay valid). For tests and batch-run boundaries.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> counters_;
  std::map<std::string, double> gauges_;
};

/// The process-wide registry.
CounterRegistry& counters();

}  // namespace obs
}  // namespace depstor

/// Hot-path increment: resolves the cell once per call site.
#define DEPSTOR_COUNTER_ADD(name, delta)                                \
  do {                                                                  \
    static std::atomic<std::int64_t>& depstor_obs_cell =                \
        ::depstor::obs::counters().counter(name);                       \
    depstor_obs_cell.fetch_add((delta), std::memory_order_relaxed);     \
  } while (0)
