#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace depstor::serve {

namespace {

std::string errno_text() { return std::strerror(errno); }

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("serve: bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

ScopedFd listen_on(const std::string& host, int port, int* bound_port,
                   int backlog) {
  DEPSTOR_EXPECTS_MSG(port >= 0 && port <= 65535,
                      "serve: listen port out of range");
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw InvalidArgument("serve: socket() failed: " + errno_text());
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw InvalidArgument("serve: bind to " + host + ":" +
                          std::to_string(port) + " failed: " + errno_text());
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw InvalidArgument("serve: listen failed: " + errno_text());
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      throw InternalError("serve: getsockname failed: " + errno_text());
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

ScopedFd connect_to(const std::string& host, int port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw InvalidArgument("serve: socket() failed: " + errno_text());
  }
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw InvalidArgument("serve: connect to " + host + ":" +
                          std::to_string(port) + " failed: " + errno_text());
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool wait_readable(int fd, double timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int timeout =
      timeout_ms < 0.0 ? -1 : static_cast<int>(timeout_ms + 0.999);
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let the read surface the error
  }
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone (EPIPE/ECONNRESET) or unrecoverable error
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string* out, double timeout_ms) {
  DEPSTOR_EXPECTS(out != nullptr);
  if (overflowed_) return Status::Overflow;
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      out->assign(buffer_, 0, pos);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      buffer_.erase(0, pos + 1);
      return Status::Line;
    }
    if (buffer_.size() > max_line_bytes_) {
      overflowed_ = true;
      return Status::Overflow;
    }
    if (eof_) return Status::Eof;
    if (!wait_readable(fd_, timeout_ms)) return Status::Timeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;  // orderly close or connection error: both end the stream
  }
}

}  // namespace depstor::serve
