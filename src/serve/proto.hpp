// Wire protocol of the design service.
//
// Transport is newline-delimited JSON over TCP: every request and every
// server event is one JSON document on one line. A connection carries a
// sequence of requests; the server interleaves events for the connection's
// in-flight job with the reads (progress, then exactly one terminal result).
//
// Client → server lines:
//   {"op":"design","env_ini":"<INI text>", ...}   submit a design request
//       optional: "id" (label echoed in every event), "priority" (higher
//       runs first; default 0), "deadline_ms" (from admission; default
//       server-wide), "deterministic", "options":{seed,breadth,depth,
//       max_refit_iterations,max_greedy_restarts,max_repetitions,
//       time_budget_ms}
//   {"op":"resolve","env_ini":"<INI text>","prev_job":"<job id>", ...}
//       warm-started re-design: env_ini is the *successor* environment and
//       prev_job names a completed design/resolve job whose solution the
//       server still holds (a bounded in-memory store). The server derives
//       the delta between the stored environment and env_ini itself; the
//       two may differ only in applications and site capacities. Takes the
//       same optional keys as "design".
//   {"op":"cancel"}                                cancel this connection's
//                                                  in-flight job
//   {"op":"stats"}  or the literal line  GET /stats
//                                                  counter-registry snapshot
//
// Server → client lines (every event has "type"):
//   {"type":"accepted","id":...,"job":N,"queue_depth":N}
//   {"type":"rejected","id":...,"code":N,"reason":...,"detail":...}
//       codes: 400 parse, 413 oversized, 422 lint, 429 queue_full,
//              503 shutting_down
//   {"type":"progress","id":...,"status":"queued"|"running","nodes":N}
//   {"type":"result","id":...,"status":...,"feasible":...,"total_cost":...,
//       "nodes":N,"cache_hits":N,"cache_misses":N,"refit_fanned":...,
//       "queue_ms":...,"run_ms":...[,"warm":...,"touched_apps":N]
//       [,"error":...]}    (warm/touched_apps only on resolve results)
//   {"type":"stats","server":{...},"obs":{"counters":{...},"gauges":{...}}}
//
// Unknown keys anywhere in a request are rejected (parse errors carry the
// offending key), mirroring CliFlags::reject_unknown — typos in automation
// fail loudly instead of silently running with defaults.
#pragma once

#include <cstdint>
#include <string>

#include "solver/design_solver.hpp"

namespace depstor::serve {

/// Admission-rejection codes (HTTP-flavored so log greps read naturally).
inline constexpr int kRejectParse = 400;
inline constexpr int kRejectOversized = 413;
inline constexpr int kRejectLint = 422;
inline constexpr int kRejectQueueFull = 429;
inline constexpr int kRejectShutdown = 503;

/// The literal convenience spelling for a stats request.
inline constexpr const char* kStatsRequestLine = "GET /stats";

/// One parsed client request.
struct WireRequest {
  enum class Op { Design, Resolve, Cancel, Stats };
  Op op = Op::Design;
  std::string id;            ///< client label; server assigns one when empty
  std::string env_ini;       ///< INI environment text (core/env_loader.hpp)
  std::string prev_job;      ///< resolve only: stored prior solution's job id
  int priority = 0;          ///< higher runs first among queued jobs
  double deadline_ms = 0.0;  ///< from admission; 0 = server default
  bool deterministic = false;
  DesignSolverOptions options;  ///< wire "options" overlaid on defaults
};

/// True when the raw line is the literal stats spelling.
bool is_stats_line(const std::string& line);

/// Serialize a design request (the client side of parse_request; round-trips
/// through it exactly). Every option is emitted explicitly so a request is
/// self-describing regardless of server defaults.
std::string build_design_request(const WireRequest& req);
/// Serialize a resolve request (op "resolve"; requires env_ini + prev_job).
std::string build_resolve_request(const WireRequest& req);
/// {"op":"cancel"} / {"op":"stats"} one-liners.
std::string build_cancel_request();
std::string build_stats_request();

/// Parse one request line. `max_bytes` bounds the document (0 = unlimited).
/// Throws InvalidArgument on malformed JSON, unknown keys, wrong types, or
/// a missing/unknown "op" — the message is the rejection detail.
WireRequest parse_request(const std::string& line, std::size_t max_bytes);

/// Event builders — each returns one complete JSON line (no trailing '\n').
std::string event_accepted(const std::string& id, std::int64_t job,
                           int queue_depth);
std::string event_rejected(const std::string& id, int code,
                           const std::string& reason,
                           const std::string& detail);
std::string event_progress(const std::string& id, const std::string& status,
                           std::int64_t nodes);

/// Terminal-result payload, one per accepted job.
struct ResultEvent {
  std::string id;
  std::string status;  ///< completed | cancelled | expired | failed
  bool feasible = false;
  double total_cost = 0.0;
  std::int64_t nodes = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  bool refit_fanned = false;
  double queue_ms = 0.0;
  double run_ms = 0.0;
  /// 1-based order in which the server's workers claimed jobs — the
  /// observable proof of priority scheduling (tests key off it).
  std::int64_t run_order = 0;
  /// Resolve results only (is_resolve gates emission): whether the
  /// warm-started path produced the design (false = cold fallback), and how
  /// many applications the delta touched.
  bool is_resolve = false;
  bool warm = false;
  std::int64_t touched_apps = 0;
  std::string error;  ///< non-empty only for status "failed"
};
std::string event_result(const ResultEvent& r);

}  // namespace depstor::serve
