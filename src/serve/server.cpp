#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <fstream>

#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "core/api.hpp"
#include "core/env_loader.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace depstor::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Accept-loop poll period: how quickly shutdown is noticed, nothing else.
constexpr double kAcceptPollMs = 50.0;
/// Idle-connection poll period (between requests on one connection).
constexpr double kIdlePollMs = 50.0;

}  // namespace

/// One admitted design request, from admission to its terminal result.
/// Shared between the connection thread (progress/result streaming, cancel)
/// and the pool worker that claims it.
struct Server::JobRecord {
  std::int64_t seq = 0;       ///< admission order; priority ties break FIFO
  std::string id;             ///< wire label echoed in every event
  int priority = 0;
  Environment env;            ///< design: the environment; resolve: successor
  DesignSolverOptions options;
  bool deterministic = false;
  double deadline_ms = 0.0;   ///< from admitted_at; 0 = none
  Clock::time_point admitted_at{};

  // Resolve requests only: the stored prior solution (pinned so eviction
  // cannot free it mid-run) and the delta derived at admission.
  bool resolve = false;
  std::shared_ptr<const StoredSolution> prev;
  EnvDelta delta;

  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> progress{0};
  std::atomic<bool> running{false};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;          ///< result is final (under mu)
  ResultEvent result;         ///< valid once done
};

/// A completed job's design, retained for warm-started resolve requests.
/// `keepalive` owns whatever storage `env` lives in (the JobRecord for
/// design jobs, the ResolveResult's shared environment for resolve jobs);
/// `best` is bound to `*env`. Never mutated after construction — resolve
/// copies its seed.
struct Server::StoredSolution {
  std::shared_ptr<const void> keepalive;
  const Environment* env = nullptr;
  Candidate best;

  StoredSolution(std::shared_ptr<const void> keep, const Environment* e,
                 Candidate b)
      : keepalive(std::move(keep)), env(e), best(std::move(b)) {}
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      // End-to-end job latency, 10us .. 1h, matching the engine metrics.
      latency_(0.01, 3.6e6, 64) {
  DEPSTOR_EXPECTS_MSG(options_.workers >= 0, "serve: workers must be >= 0");
  DEPSTOR_EXPECTS_MSG(options_.intra_workers >= 1,
                      "serve: intra_workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(options_.intra_min_fan >= 0,
                      "serve: intra_min_fan must be >= 0 (0 = auto)");
  DEPSTOR_EXPECTS_MSG(options_.max_queue >= 1,
                      "serve: max_queue must be >= 1");
  DEPSTOR_EXPECTS_MSG(options_.max_request_bytes >= 64,
                      "serve: max_request_bytes must be >= 64");
  DEPSTOR_EXPECTS_MSG(options_.progress_interval_ms > 0.0,
                      "serve: progress_interval_ms must be > 0");
  DEPSTOR_EXPECTS_MSG(options_.solution_store_cap >= 1,
                      "serve: solution_store_cap must be >= 1");
}

Server::~Server() { shutdown(); }

void Server::start() {
  listener_ = listen_on(options_.host, options_.port, &port_);
  pool_ = std::make_unique<WorkerPool>(options_.workers);
  if (options_.enable_cache) cache_ = std::make_unique<EvalCache>();
  started_at_ = Clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!accept_stop_.load(std::memory_order_acquire)) {
    if (!wait_readable(listener_.get(), kAcceptPollMs)) continue;
    ScopedFd client(::accept(listener_.get(), nullptr, nullptr));
    if (!client.valid()) continue;  // racing shutdown or transient error
    DEPSTOR_COUNTER_ADD("serve.connections_accepted", 1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back(
        [this, fd = std::move(client)]() mutable {
          connection_loop(std::move(fd));
        });
  }
}

void Server::connection_loop(ScopedFd fd) {
  LineReader reader(fd.get(), options_.max_request_bytes + 1024);
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.read_line(&line, kIdlePollMs);
    if (status == LineReader::Status::Eof) return;
    if (status == LineReader::Status::Overflow) {
      DEPSTOR_COUNTER_ADD("serve.jobs_rejected", 1);
      DEPSTOR_COUNTER_ADD("serve.rejected_oversized", 1);
      send_all(fd.get(),
               event_rejected("", kRejectOversized, "oversized",
                              "request line exceeds " +
                                  std::to_string(options_.max_request_bytes) +
                                  " bytes") +
                   "\n");
      return;  // newline framing is lost; the connection is unusable
    }
    if (status == LineReader::Status::Timeout) {
      if (conn_stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    if (line.empty()) continue;
    if (line.size() > options_.max_request_bytes) {
      // A complete line over the cap: framing is intact, so reject just the
      // request and keep the connection (unlike Overflow above).
      DEPSTOR_COUNTER_ADD("serve.jobs_rejected", 1);
      DEPSTOR_COUNTER_ADD("serve.rejected_oversized", 1);
      if (!send_all(fd.get(),
                    event_rejected("", kRejectOversized, "oversized",
                                   "request of " +
                                       std::to_string(line.size()) +
                                       " bytes exceeds the " +
                                       std::to_string(
                                           options_.max_request_bytes) +
                                       "-byte limit") +
                        "\n")) {
        return;
      }
      continue;
    }
    if (is_stats_line(line)) {
      DEPSTOR_COUNTER_ADD("serve.stats_requests", 1);
      if (!send_all(fd.get(), stats_json() + "\n")) return;
      continue;
    }
    // Everything else is a JSON request; cancel with no job in flight is a
    // harmless no-op, stats works in any state.
    if (line.front() == '{') {
      WireRequest peek;
      try {
        peek = parse_request(line, options_.max_request_bytes);
      } catch (const std::exception& e) {
        DEPSTOR_COUNTER_ADD("serve.jobs_rejected", 1);
        DEPSTOR_COUNTER_ADD("serve.rejected_parse", 1);
        if (!send_all(fd.get(), event_rejected("", kRejectParse, "parse",
                                               e.what()) +
                                    "\n")) {
          return;
        }
        continue;
      }
      if (peek.op == WireRequest::Op::Stats) {
        DEPSTOR_COUNTER_ADD("serve.stats_requests", 1);
        if (!send_all(fd.get(), stats_json() + "\n")) return;
        continue;
      }
      if (peek.op == WireRequest::Op::Cancel) continue;  // nothing in flight
    }
    std::shared_ptr<JobRecord> rec = admit(line, fd.get());
    if (rec == nullptr) continue;  // rejected (event already sent)
    if (!monitor(reader, rec, fd.get())) return;
  }
}

std::shared_ptr<Server::JobRecord> Server::admit(const std::string& line,
                                                 int fd) {
  auto reject = [&](const std::string& id, int code, const char* reason,
                    const std::string& detail) -> std::shared_ptr<JobRecord> {
    DEPSTOR_COUNTER_ADD("serve.jobs_rejected", 1);
    // Dynamic name: the registry's slow path, not the cached-cell macro.
    obs::counters().add(std::string("serve.rejected_") + reason, 1);
    send_all(fd, event_rejected(id, code, reason, detail) + "\n");
    return nullptr;
  };

  WireRequest req;
  try {
    req = parse_request(line, options_.max_request_bytes);
  } catch (const std::exception& e) {
    return reject("", kRejectParse, "parse", e.what());
  }
  if (req.op != WireRequest::Op::Design &&
      req.op != WireRequest::Op::Resolve) {
    return reject(req.id, kRejectParse, "parse",
                  "expected a design or resolve request here");
  }

  // Lint before admission: a request that cannot produce a valid
  // environment never takes a queue slot.
  if (options_.lint_admission) {
    const analysis::DiagnosticReport report =
        analysis::lint_environment_text(req.env_ini, "<request>");
    if (report.has_errors()) {
      std::string detail = "environment failed lint";
      for (const auto& d : report.diagnostics()) {
        detail += "; " + d.render();
      }
      return reject(req.id, kRejectLint, "lint", detail);
    }
  }
  auto rec = std::make_shared<JobRecord>();
  try {
    rec->env = environment_from_ini(req.env_ini);
    rec->env.validate();
  } catch (const std::exception& e) {
    return reject(req.id, kRejectLint, "lint", e.what());
  }

  rec->id = req.id;
  rec->priority = req.priority;
  rec->options = req.options;
  rec->deterministic = req.deterministic;
  rec->deadline_ms = req.deadline_ms > 0.0 ? req.deadline_ms
                                           : options_.default_deadline_ms;

  if (req.op == WireRequest::Op::Resolve) {
    rec->resolve = true;
    rec->prev = find_solution(req.prev_job);
    if (rec->prev == nullptr) {
      return reject(req.id, kRejectLint, "unknown_prev_job",
                    "no stored solution for job \"" + req.prev_job +
                        "\" (the server retains the last " +
                        std::to_string(options_.solution_store_cap) +
                        " completed feasible designs)");
    }
    // Derive the delta here so a successor environment that differs beyond
    // applications and site capacities is rejected before taking a slot.
    try {
      rec->delta = diff_environments(*rec->prev->env, rec->env);
    } catch (const NonDeltaError& e) {
      // Reason-coded rejection (e.g. failure_model_changed): the 422 tells
      // the client *why* the revision was refused, not just that it was.
      return reject(req.id, kRejectLint, e.reason().c_str(), e.what());
    } catch (const std::exception& e) {
      return reject(req.id, kRejectLint, "delta", e.what());
    }
  }

  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (draining_.load(std::memory_order_acquire)) {
      return reject(req.id, kRejectShutdown, "shutting_down",
                    "server is draining; not accepting new work");
    }
    if (queued_ >= options_.max_queue) {
      return reject(req.id, kRejectQueueFull, "queue_full",
                    "queue depth " + std::to_string(queued_) +
                        " is at the limit of " +
                        std::to_string(options_.max_queue));
    }
    rec->seq = next_seq_++;
    if (rec->id.empty()) rec->id = "job-" + std::to_string(rec->seq);
    rec->admitted_at = Clock::now();
    heap_.push_back(rec);
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const std::shared_ptr<JobRecord>& a,
                      const std::shared_ptr<JobRecord>& b) {
                     if (a->priority != b->priority) {
                       return a->priority < b->priority;
                     }
                     return a->seq > b->seq;
                   });
    depth = ++queued_;
  }
  DEPSTOR_COUNTER_ADD("serve.jobs_admitted", 1);
  submit_claim();
  if (!send_all(fd, event_accepted(rec->id, rec->seq, depth) + "\n")) {
    // Peer vanished between sending the request and hearing the answer:
    // treat like a disconnect so the slot is not wasted.
    rec->cancel.store(true, std::memory_order_release);
    return nullptr;
  }
  return rec;
}

void Server::submit_claim() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (paused_) {
      ++deferred_claims_;
      return;
    }
  }
  const bool accepted = pool_->submit([this] {
    std::shared_ptr<JobRecord> rec;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (heap_.empty()) return;
      std::pop_heap(heap_.begin(), heap_.end(),
                    [](const std::shared_ptr<JobRecord>& a,
                       const std::shared_ptr<JobRecord>& b) {
                      if (a->priority != b->priority) {
                        return a->priority < b->priority;
                      }
                      return a->seq > b->seq;
                    });
      rec = std::move(heap_.back());
      heap_.pop_back();
      --queued_;
      ++running_;
    }
    run_job(rec);
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      --running_;
    }
    drain_cv_.notify_all();
  });
  // Admission happens only before the drain completes and the pool stops
  // only after; a rejected submit would strand a queued job.
  DEPSTOR_ENSURES(accepted);
}

void Server::pause_dispatch() {
  std::lock_guard<std::mutex> lock(sched_mu_);
  paused_ = true;
}

void Server::resume_dispatch() {
  int release = 0;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    paused_ = false;
    release = deferred_claims_;
    deferred_claims_ = 0;
  }
  for (int i = 0; i < release; ++i) submit_claim();
}

void Server::run_job(const std::shared_ptr<JobRecord>& rec) {
  const double queue_ms = ms_since(rec->admitted_at);
  ResultEvent event;
  event.id = rec->id;
  event.queue_ms = queue_ms;
  event.run_order = next_run_order_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (rec->cancel.load(std::memory_order_acquire)) {
    event.status = "cancelled";
    finish_job(rec, std::move(event));
    return;
  }
  if (rec->deadline_ms > 0.0 && queue_ms >= rec->deadline_ms) {
    event.status = "expired";
    finish_job(rec, std::move(event));
    return;
  }

  ExecutionOptions exec;
  exec.workers = 1;
  exec.intra_node_workers = options_.intra_workers;
  exec.intra_min_fan = options_.intra_min_fan;
  exec.deterministic = rec->deterministic;
  exec.eval_cache = cache_.get();
  exec.cancel = &rec->cancel;
  exec.progress = &rec->progress;
  if (options_.intra_workers > 1) exec.intra_pool = pool_.get();
  if (rec->deadline_ms > 0.0) {
    // Clip the solve budget to the deadline's remainder (engine semantics).
    const double remaining = rec->deadline_ms - queue_ms;
    exec.time_budget_ms = rec->options.time_budget_ms > 0.0
                              ? std::min(rec->options.time_budget_ms,
                                         remaining)
                              : remaining;
  }

  auto fill = [&event](const SolveResult& result) {
    event.status = result.cancelled ? "cancelled" : "completed";
    event.feasible = result.feasible;
    event.total_cost = result.feasible ? result.cost.total() : 0.0;
    event.nodes = result.nodes_evaluated;
    event.cache_hits = result.cache_hits;
    event.cache_misses = result.cache_misses;
    event.refit_fanned = result.refit_fanned;
  };

  rec->running.store(true, std::memory_order_release);
  const Clock::time_point run_start = Clock::now();
  try {
    if (rec->resolve) {
      ResolveRequest request;
      request.prev_env = rec->prev->env;
      request.prev_solution = &rec->prev->best;
      request.delta = rec->delta;
      request.options = rec->options;
      request.exec = exec;
      ResolveResult out = depstor::resolve(request);
      fill(out.result);
      event.is_resolve = true;
      event.warm = out.warm;
      event.touched_apps = out.touched_apps;
      if (event.status == "completed" && out.result.feasible) {
        // The successor design becomes resolvable in turn (chained deltas).
        const Environment* env = out.env.get();
        store_solution(rec->id, std::make_shared<const StoredSolution>(
                                    std::move(out.env), env,
                                    std::move(*out.result.best)));
      }
    } else {
      SolveRequest request;
      request.env = &rec->env;
      request.options = rec->options;
      request.exec = exec;
      SolveResult result = depstor::solve(request);
      fill(result);
      if (event.status == "completed" && result.feasible) {
        store_solution(rec->id, std::make_shared<const StoredSolution>(
                                    rec, &rec->env,
                                    std::move(*result.best)));
      }
    }
  } catch (const std::exception& e) {
    event.status = "failed";
    event.error = e.what();
  }
  event.run_ms = ms_since(run_start);
  finish_job(rec, std::move(event));
}

void Server::store_solution(const std::string& id,
                            std::shared_ptr<const StoredSolution> sol) {
  std::lock_guard<std::mutex> lock(store_mu_);
  for (auto& entry : store_) {
    if (entry.first == id) {
      entry.second = std::move(sol);
      return;
    }
  }
  store_.emplace_back(id, std::move(sol));
  if (store_.size() > static_cast<std::size_t>(options_.solution_store_cap)) {
    store_.erase(store_.begin());
  }
}

std::shared_ptr<const Server::StoredSolution> Server::find_solution(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(store_mu_);
  for (const auto& entry : store_) {
    if (entry.first == id) return entry.second;
  }
  return nullptr;
}

int Server::solutions_stored() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return static_cast<int>(store_.size());
}

void Server::finish_job(const std::shared_ptr<JobRecord>& rec,
                        ResultEvent event) {
  obs::counters().add("serve.jobs_" + event.status, 1);
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    latency_.add(event.queue_ms + event.run_ms);
  }
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->result = std::move(event);
    rec->done = true;
  }
  rec->cv.notify_all();
}

bool Server::monitor(LineReader& reader, const std::shared_ptr<JobRecord>& rec,
                     int fd) {
  // Any sign the client is gone — EOF, broken framing, a failed send —
  // cancels the job so the worker frees up at the next node boundary.
  auto lost_client = [&] {
    DEPSTOR_COUNTER_ADD("serve.client_disconnects", 1);
    rec->cancel.store(true, std::memory_order_release);
    return false;
  };
  std::string line;
  for (;;) {
    const LineReader::Status status =
        reader.read_line(&line, options_.progress_interval_ms);
    if (status == LineReader::Status::Eof ||
        status == LineReader::Status::Overflow) {
      return lost_client();
    }
    if (status == LineReader::Status::Line && !line.empty()) {
      if (is_stats_line(line)) {
        DEPSTOR_COUNTER_ADD("serve.stats_requests", 1);
        if (!send_all(fd, stats_json() + "\n")) return lost_client();
        continue;
      }
      try {
        const WireRequest req = parse_request(line, options_.max_request_bytes);
        if (req.op == WireRequest::Op::Cancel) {
          rec->cancel.store(true, std::memory_order_release);
        } else if (req.op == WireRequest::Op::Stats) {
          DEPSTOR_COUNTER_ADD("serve.stats_requests", 1);
          if (!send_all(fd, stats_json() + "\n")) return lost_client();
        } else {
          // One in-flight design per connection keeps result attribution
          // unambiguous; open another connection for concurrent jobs.
          DEPSTOR_COUNTER_ADD("serve.jobs_rejected", 1);
          DEPSTOR_COUNTER_ADD("serve.rejected_busy", 1);
          if (!send_all(fd, event_rejected(req.id, kRejectParse, "busy",
                                           "a design is already in flight "
                                           "on this connection") +
                                "\n")) {
            return lost_client();
          }
        }
      } catch (const std::exception& e) {
        if (!send_all(fd, event_rejected("", kRejectParse, "parse",
                                         e.what()) +
                              "\n")) {
          return lost_client();
        }
      }
      continue;  // drain any further buffered lines before progressing
    }
    // Timeout: the progress tick.
    {
      std::lock_guard<std::mutex> lock(rec->mu);
      if (rec->done) break;
    }
    const bool running = rec->running.load(std::memory_order_acquire);
    if (!send_all(fd, event_progress(
                          rec->id, running ? "running" : "queued",
                          rec->progress.load(std::memory_order_relaxed)) +
                          "\n")) {
      return lost_client();
    }
  }
  std::unique_lock<std::mutex> lock(rec->mu);
  const std::string event = event_result(rec->result) + "\n";
  lock.unlock();
  return send_all(fd, event);
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return queued_;
}

int Server::active_jobs() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return running_;
}

void Server::publish_gauges() const {
  obs::CounterRegistry& reg = obs::counters();
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    reg.set_gauge("serve.queue_depth", queued_);
    reg.set_gauge("serve.active_jobs", running_);
  }
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    reg.set_gauge("serve.p50_job_ms", latency_.quantile(0.5));
    reg.set_gauge("serve.p95_job_ms", latency_.quantile(0.95));
    reg.set_gauge("serve.job_latency_count",
                  static_cast<double>(latency_.total()));
  }
  if (cache_ != nullptr) {
    const EvalCacheStats stats = cache_->stats();
    const std::int64_t lookups = stats.hits + stats.misses;
    reg.set_gauge("serve.cache_hit_rate",
                  lookups > 0 ? static_cast<double>(stats.hits) /
                                    static_cast<double>(lookups)
                              : 0.0);
    reg.set_gauge("serve.cache_hits", static_cast<double>(stats.hits));
    reg.set_gauge("serve.cache_misses", static_cast<double>(stats.misses));
    reg.set_gauge("serve.cache_insertions",
                  static_cast<double>(stats.insertions));
    reg.set_gauge("serve.cache_evictions",
                  static_cast<double>(stats.evictions));
    // Per-shard gauges: a lopsided spread flags fingerprint bits that stop
    // mixing, which the aggregate hit rate cannot show.
    for (std::size_t i = 0; i < stats.shards.size(); ++i) {
      const std::string prefix =
          "serve.cache_shard" + std::to_string(i) + ".";
      reg.set_gauge(prefix + "hits",
                    static_cast<double>(stats.shards[i].hits));
      reg.set_gauge(prefix + "misses",
                    static_cast<double>(stats.shards[i].misses));
      reg.set_gauge(prefix + "insertions",
                    static_cast<double>(stats.shards[i].insertions));
    }
  }
  reg.set_gauge("serve.uptime_ms", ms_since(started_at_));
}

std::string Server::stats_json() const {
  publish_gauges();
  int queued = 0;
  int running = 0;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    queued = queued_;
    running = running_;
  }
  double p50 = 0.0;
  double p95 = 0.0;
  long long latency_count = 0;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    latency_count = static_cast<long long>(latency_.total());
    p50 = latency_.quantile(0.5);
    p95 = latency_.quantile(0.95);
  }
  const obs::CounterRegistry& reg = obs::counters();
  JsonWriter w;
  w.begin_object().field("type", "stats");
  w.key("server")
      .begin_object()
      .field("uptime_ms", ms_since(started_at_))
      .field("draining", draining())
      .field("queue_depth", queued)
      .field("active_jobs", running)
      .field("max_queue", options_.max_queue)
      .field("workers", pool_ != nullptr ? pool_->worker_count() : 0)
      .field("jobs_admitted",
             static_cast<long long>(reg.value("serve.jobs_admitted")))
      .field("jobs_completed",
             static_cast<long long>(reg.value("serve.jobs_completed")))
      .field("jobs_cancelled",
             static_cast<long long>(reg.value("serve.jobs_cancelled")))
      .field("jobs_expired",
             static_cast<long long>(reg.value("serve.jobs_expired")))
      .field("jobs_failed",
             static_cast<long long>(reg.value("serve.jobs_failed")))
      .field("jobs_rejected",
             static_cast<long long>(reg.value("serve.jobs_rejected")))
      .field("solutions_stored", solutions_stored())
      // job_latency_count disambiguates the quantiles: a fresh daemon
      // reports p50 = p95 = 0.0 with count 0 (no samples), which is not the
      // same claim as "the median job took 0 ms".
      .field("p50_job_ms", p50)
      .field("p95_job_ms", p95)
      .field("job_latency_count", latency_count);
  if (cache_ != nullptr) {
    const EvalCacheStats stats = cache_->stats();
    const std::int64_t lookups = stats.hits + stats.misses;
    w.field("cache_hit_rate", lookups > 0
                                  ? static_cast<double>(stats.hits) /
                                        static_cast<double>(lookups)
                                  : 0.0)
        .field("cache_entries", static_cast<long long>(stats.size));
    w.key("cache")
        .begin_object()
        .field("hits", static_cast<long long>(stats.hits))
        .field("misses", static_cast<long long>(stats.misses))
        .field("insertions", static_cast<long long>(stats.insertions))
        .field("evictions", static_cast<long long>(stats.evictions));
    w.key("shards").begin_array();
    for (const EvalCacheShardStats& shard : stats.shards) {
      w.begin_object()
          .field("hits", static_cast<long long>(shard.hits))
          .field("misses", static_cast<long long>(shard.misses))
          .field("insertions", static_cast<long long>(shard.insertions))
          .field("evictions", static_cast<long long>(shard.evictions))
          .field("size", static_cast<long long>(shard.size))
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("obs");
  reg.to_json(w);
  w.end_object();
  return w.str();
}

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (pool_ == nullptr) return;  // never started

  draining_.store(true, std::memory_order_release);
  resume_dispatch();  // release any test-paused claims so the queue drains
  {
    std::unique_lock<std::mutex> lock(sched_mu_);
    drain_cv_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
  }
  // Results are all terminal; connection threads deliver them before they
  // notice conn_stop_. Stop taking new connections, then wind down.
  accept_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  conn_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }
  pool_->stop();
  listener_.reset();

  publish_gauges();
  if (!options_.final_stats_path.empty()) {
    std::ofstream out(options_.final_stats_path);
    out << stats_json() << "\n";
  }
  if (!options_.final_trace_path.empty()) {
    std::ofstream out(options_.final_trace_path);
    obs::write_chrome_trace(out);
  }
}

}  // namespace depstor::serve
