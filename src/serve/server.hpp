// depstor_serve's engine room: a long-running design service over
// depstor::solve (DESIGN.md §10).
//
// One Server owns one listener socket, one process-wide WorkerPool, and one
// shared sharded EvalCache. Every accepted connection gets a thread that
// speaks the serve/proto wire format; every admitted design request becomes
// a JobRecord scheduled by priority on the pool. The pieces:
//
//   admission   Requests are parsed (bounded by max_request_bytes), linted
//               with analysis::lint_environment_text, and admitted only
//               while the queue has room and the server is not draining.
//               Every rejection is explicit — a "rejected" event with an
//               HTTP-flavored code — never a silent drop.
//
//   scheduling  Admitted jobs enter a priority heap (priority desc,
//               admission order asc). One claim task per admitted job goes
//               to the WorkerPool; each claim pops the *current* best job,
//               so priorities reorder work that is still queued. The pool
//               is shared with the intra-solve refit fan (TaskGroup's
//               help-while-wait makes the nesting deadlock-free).
//
//   streaming   While a job is queued/running its connection thread emits
//               "progress" events every progress_interval_ms from the
//               solve's progress atomic, then exactly one "result". A
//               cancel line — or the client disconnecting — flips the job's
//               cancel atomic and the solve stops at the next node.
//
//   shutdown    shutdown() (SIGINT/SIGTERM in depstor_serve) drains: new
//               admissions are rejected with 503, queued + running jobs run
//               to completion and their results are delivered, then the
//               listener and connection threads wind down and the final
//               stats snapshot is flushed. Accepted work is never dropped.
//
// Live stats: the literal line "GET /stats" (or {"op":"stats"}) returns a
// JSON snapshot — queue depth, job outcomes, cache hit rate, p50/p95
// end-to-end job latency — with the whole obs::counters() registry embedded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/eval_cache.hpp"
#include "engine/worker_pool.hpp"
#include "serve/proto.hpp"
#include "serve/socket.hpp"
#include "util/histogram.hpp"

namespace depstor::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;     ///< 0 = ephemeral (the bound port is Server::port())
  int workers = 0;  ///< pool threads; 0 = one per hardware thread
  int intra_workers = 1;   ///< refit threads per job (nested on the pool)
  int intra_min_fan = 0;   ///< ExecutionOptions::intra_min_fan per job
                           ///< (0 = auto-calibrate per solve)
  int max_queue = 64;      ///< admitted-but-not-started cap; beyond = 429
  std::size_t max_request_bytes = 1 << 20;  ///< per-line and per-JSON bound
  bool enable_cache = true;         ///< shared EvalCache across all jobs
  bool lint_admission = true;       ///< reject env lint errors with 422
  double default_deadline_ms = 0.0;  ///< per-job deadline when the request
                                     ///< carries none; 0 = none
  double progress_interval_ms = 25.0;  ///< progress-event cadence
  /// Completed feasible designs retained in memory for warm-started
  /// "resolve" requests (prev_job lookup), evicted FIFO beyond the cap.
  int solution_store_cap = 16;
  std::string final_stats_path;  ///< write the last stats JSON on shutdown
  std::string final_trace_path;  ///< write a Chrome trace on shutdown
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  ~Server();  ///< calls shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. Throws InvalidArgument when the
  /// address cannot be bound.
  void start();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  /// Graceful drain (see the header comment). Blocks until every admitted
  /// job has a delivered result and every thread is joined. Idempotent and
  /// safe to call from a signal-watching thread.
  void shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Jobs admitted but not yet claimed by a worker.
  int queue_depth() const;
  /// Jobs currently running on the pool.
  int active_jobs() const;

  /// The live stats snapshot (one JSON object, the wire "stats" event).
  std::string stats_json() const;

  /// Test hooks: hold admitted jobs in the queue (claims are deferred, not
  /// dropped) so tests can fill the queue or assert priority order, then
  /// release them. resume_dispatch() is also called by shutdown().
  void pause_dispatch();
  void resume_dispatch();

  /// Solutions currently retained for resolve-by-job-id (test hook).
  int solutions_stored() const;

 private:
  struct JobRecord;
  struct StoredSolution;

  void accept_loop();
  void connection_loop(ScopedFd fd);

  /// Parse/lint/admit one design line; sends accepted/rejected. Returns the
  /// admitted record, or null when rejected.
  std::shared_ptr<JobRecord> admit(const std::string& line, int fd);
  /// Stream progress until the job is terminal, handling interleaved lines
  /// (cancel/stats). Returns false when the connection must close.
  bool monitor(LineReader& reader, const std::shared_ptr<JobRecord>& rec,
               int fd);

  void submit_claim();  ///< one claim task onto the pool (or defer)
  void run_job(const std::shared_ptr<JobRecord>& rec);
  void finish_job(const std::shared_ptr<JobRecord>& rec, ResultEvent event);
  void publish_gauges() const;

  /// Retain a completed job's design for later resolve requests (FIFO
  /// eviction beyond solution_store_cap; same id overwrites in place).
  void store_solution(const std::string& id,
                      std::shared_ptr<const StoredSolution> sol);
  std::shared_ptr<const StoredSolution> find_solution(
      const std::string& id) const;

  ServeOptions options_;
  int port_ = 0;
  ScopedFd listener_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<EvalCache> cache_;
  std::chrono::steady_clock::time_point started_at_{};

  std::thread accept_thread_;
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> conn_stop_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;

  mutable std::mutex sched_mu_;
  std::condition_variable drain_cv_;
  std::vector<std::shared_ptr<JobRecord>> heap_;  ///< priority max-heap
  int queued_ = 0;
  int running_ = 0;
  std::int64_t next_seq_ = 1;
  bool paused_ = false;
  int deferred_claims_ = 0;
  std::atomic<std::int64_t> next_run_order_{0};

  mutable std::mutex latency_mu_;
  LogHistogram latency_;  ///< end-to-end admission→terminal, ms

  mutable std::mutex store_mu_;
  std::vector<std::pair<std::string, std::shared_ptr<const StoredSolution>>>
      store_;  ///< insertion-ordered; front is oldest

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
};

}  // namespace depstor::serve
