// Thin POSIX TCP helpers shared by the design service (serve/server), its
// client (serve/client), and the loopback tests.
//
// Everything here is blocking-with-timeout: callers that need to interleave
// socket readiness with other state (a job finishing, a shutdown flag) poll
// with short timeouts instead of parking in recv(). Writes use MSG_NOSIGNAL
// so a peer that vanished mid-stream surfaces as a return value, never as a
// process-killing SIGPIPE — the daemon must survive any client behavior.
#pragma once

#include <cstddef>
#include <string>

namespace depstor::serve {

/// RAII ownership of a file descriptor.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Close the held descriptor (if any) and adopt `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Bind + listen on host:port. `port == 0` picks an ephemeral port;
/// `*bound_port` always receives the actual one. Throws InvalidArgument on
/// any socket failure (address in use, bad host, ...).
ScopedFd listen_on(const std::string& host, int port, int* bound_port,
                   int backlog = 64);

/// Blocking connect to host:port. Throws InvalidArgument on failure.
ScopedFd connect_to(const std::string& host, int port);

/// True when the descriptor is readable (or at EOF/error — a read will not
/// block) within `timeout_ms`; false on timeout.
bool wait_readable(int fd, double timeout_ms);

/// Write the whole buffer. Returns false when the peer is gone (EPIPE,
/// reset); never raises SIGPIPE.
bool send_all(int fd, const std::string& data);

/// Buffered newline-delimited line reader over a socket.
///
/// Lines are the wire framing of the design service: one request or event
/// per '\n'-terminated line. The reader enforces a per-line byte cap so a
/// hostile peer streaming an endless line exhausts a counter, not memory —
/// Overflow is sticky (framing is lost; the connection must be dropped).
class LineReader {
 public:
  enum class Status {
    Line,      ///< *out holds a complete line (terminator stripped)
    Timeout,   ///< no complete line within timeout_ms; retry later
    Eof,       ///< peer closed (or connection error) with no pending line
    Overflow,  ///< line exceeded max_line_bytes; connection unusable
  };

  LineReader(int fd, std::size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Read until a full line, EOF, overflow, or the timeout elapses.
  /// A trailing '\r' (telnet-style clients) is stripped with the '\n'.
  Status read_line(std::string* out, double timeout_ms);

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  bool overflowed_ = false;
};

}  // namespace depstor::serve
