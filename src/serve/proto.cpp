#include "serve/proto.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/json.hpp"

namespace depstor::serve {

namespace {

/// Wire numbers destined for int fields must be integral and in range.
int as_int_field(const JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  const double r = std::nearbyint(d);
  if (d != r || r < -2147483648.0 || r > 2147483647.0) {
    throw InvalidArgument("request field \"" + key +
                          "\" must be an integer");
  }
  return static_cast<int>(r);
}

void apply_options(const JsonValue& obj, DesignSolverOptions* options) {
  for (const auto& [key, value] : obj.members()) {
    if (key == "seed") {
      const double d = value.as_number();
      if (d < 0.0 || d != std::nearbyint(d)) {
        throw InvalidArgument(
            "request field \"seed\" must be a non-negative integer");
      }
      options->seed = static_cast<std::uint64_t>(d);
    } else if (key == "breadth") {
      options->breadth = as_int_field(value, key);
    } else if (key == "depth") {
      options->depth = as_int_field(value, key);
    } else if (key == "max_refit_iterations") {
      options->max_refit_iterations = as_int_field(value, key);
    } else if (key == "max_greedy_restarts") {
      options->max_greedy_restarts = as_int_field(value, key);
    } else if (key == "max_repetitions") {
      options->max_repetitions = as_int_field(value, key);
    } else if (key == "time_budget_ms") {
      options->time_budget_ms = value.as_number();
    } else {
      throw InvalidArgument("unknown request option \"" + key + "\"");
    }
  }
}

}  // namespace

bool is_stats_line(const std::string& line) {
  return line == kStatsRequestLine;
}

WireRequest parse_request(const std::string& line, std::size_t max_bytes) {
  const JsonValue doc = parse_json(line, JsonLimits{max_bytes});
  if (doc.type() != JsonValue::Type::Object) {
    throw InvalidArgument("request must be a JSON object");
  }
  WireRequest req;
  std::string op;
  bool have_env = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "op") {
      op = value.as_string();
    } else if (key == "id") {
      req.id = value.as_string();
    } else if (key == "env_ini") {
      req.env_ini = value.as_string();
      have_env = true;
    } else if (key == "prev_job") {
      req.prev_job = value.as_string();
    } else if (key == "priority") {
      req.priority = as_int_field(value, key);
    } else if (key == "deadline_ms") {
      req.deadline_ms = value.as_number();
      if (req.deadline_ms < 0.0) {
        throw InvalidArgument("request field \"deadline_ms\" must be >= 0");
      }
    } else if (key == "deterministic") {
      req.deterministic = value.as_bool();
    } else if (key == "options") {
      apply_options(value, &req.options);
    } else {
      throw InvalidArgument("unknown request field \"" + key + "\"");
    }
  }
  if (op == "design") {
    req.op = WireRequest::Op::Design;
    if (!have_env) {
      throw InvalidArgument("design request requires \"env_ini\"");
    }
    if (!req.prev_job.empty()) {
      throw InvalidArgument(
          "\"prev_job\" belongs to resolve requests, not design");
    }
  } else if (op == "resolve") {
    req.op = WireRequest::Op::Resolve;
    if (!have_env) {
      throw InvalidArgument("resolve request requires \"env_ini\"");
    }
    if (req.prev_job.empty()) {
      throw InvalidArgument("resolve request requires \"prev_job\"");
    }
  } else if (op == "cancel") {
    req.op = WireRequest::Op::Cancel;
  } else if (op == "stats") {
    req.op = WireRequest::Op::Stats;
  } else if (op.empty()) {
    throw InvalidArgument("request is missing \"op\"");
  } else {
    throw InvalidArgument("unknown request op \"" + op +
                          "\" (expected design|resolve|cancel|stats)");
  }
  return req;
}

namespace {

std::string build_submit_request(const WireRequest& req, const char* op,
                                 bool with_prev_job) {
  JsonWriter w;
  w.begin_object().field("op", op);
  if (!req.id.empty()) w.field("id", req.id);
  w.field("env_ini", req.env_ini);
  if (with_prev_job) w.field("prev_job", req.prev_job);
  if (req.priority != 0) w.field("priority", req.priority);
  if (req.deadline_ms > 0.0) w.field("deadline_ms", req.deadline_ms);
  if (req.deterministic) w.field("deterministic", true);
  w.key("options")
      .begin_object()
      .field("seed", static_cast<long long>(req.options.seed))
      .field("breadth", req.options.breadth)
      .field("depth", req.options.depth)
      .field("max_refit_iterations", req.options.max_refit_iterations)
      .field("max_greedy_restarts", req.options.max_greedy_restarts)
      .field("max_repetitions", req.options.max_repetitions)
      .field("time_budget_ms", req.options.time_budget_ms)
      .end_object();
  w.end_object();
  return w.str();
}

}  // namespace

std::string build_design_request(const WireRequest& req) {
  return build_submit_request(req, "design", /*with_prev_job=*/false);
}

std::string build_resolve_request(const WireRequest& req) {
  return build_submit_request(req, "resolve", /*with_prev_job=*/true);
}

std::string build_cancel_request() {
  JsonWriter w;
  w.begin_object().field("op", "cancel").end_object();
  return w.str();
}

std::string build_stats_request() {
  JsonWriter w;
  w.begin_object().field("op", "stats").end_object();
  return w.str();
}

std::string event_accepted(const std::string& id, std::int64_t job,
                           int queue_depth) {
  JsonWriter w;
  w.begin_object()
      .field("type", "accepted")
      .field("id", id)
      .field("job", static_cast<long long>(job))
      .field("queue_depth", queue_depth)
      .end_object();
  return w.str();
}

std::string event_rejected(const std::string& id, int code,
                           const std::string& reason,
                           const std::string& detail) {
  JsonWriter w;
  w.begin_object()
      .field("type", "rejected")
      .field("id", id)
      .field("code", code)
      .field("reason", reason)
      .field("detail", detail)
      .end_object();
  return w.str();
}

std::string event_progress(const std::string& id, const std::string& status,
                           std::int64_t nodes) {
  JsonWriter w;
  w.begin_object()
      .field("type", "progress")
      .field("id", id)
      .field("status", status)
      .field("nodes", static_cast<long long>(nodes))
      .end_object();
  return w.str();
}

std::string event_result(const ResultEvent& r) {
  JsonWriter w;
  w.begin_object()
      .field("type", "result")
      .field("id", r.id)
      .field("status", r.status)
      .field("feasible", r.feasible)
      .field("total_cost", r.total_cost)
      .field("nodes", static_cast<long long>(r.nodes))
      .field("cache_hits", static_cast<long long>(r.cache_hits))
      .field("cache_misses", static_cast<long long>(r.cache_misses))
      .field("refit_fanned", r.refit_fanned)
      .field("queue_ms", r.queue_ms)
      .field("run_ms", r.run_ms)
      .field("run_order", static_cast<long long>(r.run_order));
  if (r.is_resolve) {
    w.field("warm", r.warm)
        .field("touched_apps", static_cast<long long>(r.touched_apps));
  }
  if (!r.error.empty()) w.field("error", r.error);
  w.end_object();
  return w.str();
}

}  // namespace depstor::serve
