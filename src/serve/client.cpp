#include "serve/client.hpp"

namespace depstor::serve {

namespace {
// Server events are small JSON lines; 4 MiB tolerates any stats dump.
constexpr std::size_t kMaxEventBytes = 4u << 20;
}  // namespace

Client::Client(const std::string& host, int port)
    : fd_(connect_to(host, port)), reader_(fd_.get(), kMaxEventBytes) {}

bool Client::send_line(const std::string& line) {
  if (!fd_.valid()) return false;
  return send_all(fd_.get(), line + "\n");
}

std::optional<JsonValue> Client::next_event(double timeout_ms) {
  if (eof_ || !fd_.valid()) return std::nullopt;
  std::string line;
  switch (reader_.read_line(&line, timeout_ms)) {
    case LineReader::Status::Line:
      return parse_json(line);
    case LineReader::Status::Timeout:
      return std::nullopt;
    case LineReader::Status::Eof:
    case LineReader::Status::Overflow:
      eof_ = true;
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace depstor::serve
