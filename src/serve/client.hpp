// Client side of the serve wire protocol: one TCP connection to a running
// depstor_serve, line-oriented sends, parsed-JSON receives.
//
// Used by depstor_request, tests/test_serve.cpp, and the serve_probe bench —
// one implementation of the framing so protocol drift breaks loudly in all
// three. The class is intentionally dumb: it frames and parses, the caller
// interprets the events.
#pragma once

#include <optional>
#include <string>

#include "serve/proto.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"

namespace depstor::serve {

class Client {
 public:
  /// Connect to a running server. Throws InvalidArgument on failure.
  Client(const std::string& host, int port);

  /// Raw line send (a '\n' is appended). False when the server is gone.
  bool send_line(const std::string& line);

  bool send_design(const WireRequest& req) {
    return send_line(build_design_request(req));
  }
  bool send_resolve(const WireRequest& req) {
    return send_line(build_resolve_request(req));
  }
  bool send_cancel() { return send_line(build_cancel_request()); }
  bool request_stats() { return send_line(kStatsRequestLine); }

  /// Next server event as parsed JSON, or nullopt on timeout. Throws
  /// InvalidArgument when the server sends malformed JSON (a protocol bug
  /// worth failing loudly on). After EOF, always nullopt — check eof().
  std::optional<JsonValue> next_event(double timeout_ms);

  /// True once the server has closed the connection.
  bool eof() const { return eof_; }

  /// Hard-close the socket without a cancel — how tests and depstor_request
  /// simulate a client crash (the server must notice and cancel).
  void disconnect() { fd_.reset(); }

  bool connected() const { return fd_.valid(); }

 private:
  ScopedFd fd_;
  LineReader reader_;
  bool eof_ = false;
};

}  // namespace depstor::serve
