// Application workload model (paper §2.2, §2.4, Table 1).
//
// An application is described by its business requirements — the data outage
// and recent-data-loss penalty rates — and its workload characteristics:
// dataset capacity, average / peak (non-unique) update rates, unique update
// rate, and average access rate. Applications are classified gold / silver /
// bronze by fixed thresholds on the sum of their penalty rates (§3.1.3).
#pragma once

#include <string>
#include <vector>

namespace depstor {

/// Business-importance class used by the reconfiguration operator and the
/// human heuristic. Ordering is meaningful: Gold > Silver > Bronze.
enum class AppCategory { Bronze = 0, Silver = 1, Gold = 2 };

const char* to_string(AppCategory c);

/// Fixed thresholds (US$/hr on the penalty-rate sum) that split applications
/// into classes. Defaults chosen so Table 1's B→Gold, W/C→Silver, S→Bronze.
struct CategoryThresholds {
  double gold_min = 6e6;    ///< penalty sum ≥ this → Gold
  double silver_min = 1e6;  ///< penalty sum ≥ this → Silver
};

struct ApplicationSpec {
  int id = -1;              ///< dense index within an Environment
  std::string name;         ///< e.g. "B1"
  std::string type_code;    ///< "B", "W", "C", "S" per Table 1

  // Business requirements (penalty rates, US$/hr).
  double outage_penalty_rate = 0.0;
  double loss_penalty_rate = 0.0;

  // Workload characteristics.
  double data_size_gb = 0.0;
  double avg_update_mbps = 0.0;     ///< average non-unique update rate
  double peak_update_mbps = 0.0;    ///< peak non-unique update rate
  double avg_access_mbps = 0.0;     ///< average read+write rate
  double unique_update_mbps = 0.0;  ///< unique-update rate (periodic copies)

  /// Penalty-rate sum — the priority used for greedy ordering, recovery
  /// serialization, and categorization.
  double penalty_rate_sum() const {
    return outage_penalty_rate + loss_penalty_rate;
  }

  /// Category under the given thresholds.
  AppCategory category(const CategoryThresholds& t = {}) const;

  /// Validate invariants (non-negative rates, positive size…); throws
  /// InvalidArgument on violation.
  void validate() const;
};

using ApplicationList = std::vector<ApplicationSpec>;

}  // namespace depstor
