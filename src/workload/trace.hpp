// Synthetic block-level I/O traces and workload characterization.
//
// The paper's workload characteristics (Table 1) are "scaled versions of the
// cello2002 workload" — an HP Labs trace that is not publicly available.
// This module provides the closest synthetic equivalent so the
// characterization path can be exercised end to end:
//
//  * SyntheticTraceGenerator — cello-like block I/O: non-homogeneous Poisson
//    arrivals with a diurnal rate profile, a Zipf-skewed block popularity
//    over a bounded working set, and a configurable write fraction;
//  * characterize() — derives exactly the quantities §2.2 needs from any
//    trace: average and peak (windowed) non-unique update rates, average
//    access rate, and the unique update rate (distinct blocks written per
//    unit time — what periodic copies must move);
//  * app_from_trace() — assembles an ApplicationSpec from business
//    requirements plus measured characteristics.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/application.hpp"

namespace depstor::workload {

struct TraceRecord {
  double time_hours = 0.0;
  std::uint64_t block = 0;  ///< logical block id within the working set
  bool is_write = false;
};

struct TraceGeneratorOptions {
  double duration_hours = 24.0;
  double mean_iops = 100.0;  ///< long-run average arrival rate
  /// Diurnal modulation: rate(t) = mean·(1 + amplitude·sin(2πt/24h)).
  double diurnal_amplitude = 0.5;
  double write_fraction = 0.35;
  std::uint64_t working_set_blocks = 1 << 20;
  double zipf_theta = 0.9;  ///< block popularity skew, 0 = uniform
  std::uint32_t block_kb = 8;  ///< bytes moved per I/O

  void validate() const;
};

class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(TraceGeneratorOptions options);

  /// Generate the whole trace (records ordered by time).
  std::vector<TraceRecord> generate(Rng& rng) const;

  const TraceGeneratorOptions& options() const { return options_; }

 private:
  std::uint64_t sample_block(Rng& rng) const;

  TraceGeneratorOptions options_;
  // Bounded-Zipf sampling constants (Gray et al.'s approximation).
  double zetan_ = 0.0;
  double zeta2_ = 0.0;
};

/// §2.2 workload characteristics measured from a trace.
struct TraceCharacteristics {
  double duration_hours = 0.0;
  long long reads = 0;
  long long writes = 0;
  double avg_update_mbps = 0.0;     ///< non-unique write rate
  double peak_update_mbps = 0.0;    ///< max windowed write rate
  double avg_access_mbps = 0.0;     ///< read + write rate
  double unique_update_mbps = 0.0;  ///< distinct blocks written / time
  double footprint_gb = 0.0;        ///< distinct blocks touched
};

/// Measure a trace. `window_minutes` sets the peak-rate window (the paper's
/// peak update rate sizes synchronous mirror links, so short windows are
/// appropriate). Records must be time-ordered.
TraceCharacteristics characterize(const std::vector<TraceRecord>& trace,
                                  std::uint32_t block_kb,
                                  double window_minutes = 5.0);

/// Assemble an ApplicationSpec: business requirements from the caller,
/// workload characteristics from the trace, dataset size explicit (traces
/// show the touched footprint, not the provisioned capacity).
ApplicationSpec app_from_trace(const std::string& name,
                               const std::string& type_code,
                               double outage_penalty_rate,
                               double loss_penalty_rate, double data_size_gb,
                               const TraceCharacteristics& traits);

}  // namespace depstor::workload
