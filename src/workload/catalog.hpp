// Table 1 application classes.
//
//  B  central banking   — $5M/hr outage, $5M/hr loss, 1300 GB, gold
//  W  company web       — $5M/hr outage, $5K/hr loss, 4300 GB, silver
//  C  consumer banking  — $5K/hr outage, $5M/hr loss, 4300 GB, silver
//  S  student accounts  — $5K/hr outage, $5K/hr loss,  500 GB, bronze
//
// Workload characteristics are scaled versions of the cello2002 trace as
// reported in the paper. The unique-update rate is not tabulated in the
// paper; we use 0.4 × avg update rate (see DESIGN.md §4).
#pragma once

#include "workload/application.hpp"

namespace depstor::workload {

inline constexpr double kUniqueUpdateFraction = 0.4;

/// The four application classes. `instance` numbers the copy (B1, B2, …).
ApplicationSpec central_banking(int instance = 1);
ApplicationSpec web_service(int instance = 1);
ApplicationSpec consumer_banking(int instance = 1);
ApplicationSpec student_accounts(int instance = 1);

/// One application of the given Table 1 type code ("B","W","C","S").
ApplicationSpec by_type_code(const std::string& code, int instance = 1);

/// All four class prototypes (instance 1 of each).
ApplicationList all_prototypes();

}  // namespace depstor::workload
