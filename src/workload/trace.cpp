#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor::workload {

void TraceGeneratorOptions::validate() const {
  DEPSTOR_EXPECTS(duration_hours > 0.0);
  DEPSTOR_EXPECTS(mean_iops > 0.0);
  DEPSTOR_EXPECTS(diurnal_amplitude >= 0.0 && diurnal_amplitude <= 1.0);
  DEPSTOR_EXPECTS(write_fraction >= 0.0 && write_fraction <= 1.0);
  DEPSTOR_EXPECTS(working_set_blocks >= 2);
  DEPSTOR_EXPECTS(zipf_theta >= 0.0 && zipf_theta < 1.0);
  DEPSTOR_EXPECTS(block_kb > 0);
}

SyntheticTraceGenerator::SyntheticTraceGenerator(TraceGeneratorOptions options)
    : options_(std::move(options)) {
  options_.validate();
  if (options_.zipf_theta > 0.0) {
    // ζ(n,θ) = Σ_{i=1..n} i^-θ, computed once (n is at most a few million).
    const double theta = options_.zipf_theta;
    double z = 0.0;
    for (std::uint64_t i = 1; i <= options_.working_set_blocks; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zetan_ = z;
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta);
  }
}

std::uint64_t SyntheticTraceGenerator::sample_block(Rng& rng) const {
  const auto n = options_.working_set_blocks;
  if (options_.zipf_theta <= 0.0) {
    return static_cast<std::uint64_t>(rng.index(n));
  }
  // Bounded Zipf via Gray et al.'s approximation ("Quickly generating
  // billion-record synthetic databases", SIGMOD'94).
  const double theta = options_.zipf_theta;
  const double alpha = 1.0 / (1.0 - theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - zeta2_ / zetan_);
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  const auto block = static_cast<std::uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return std::min(block, n - 1);
}

std::vector<TraceRecord> SyntheticTraceGenerator::generate(Rng& rng) const {
  std::vector<TraceRecord> trace;
  trace.reserve(static_cast<std::size_t>(options_.mean_iops *
                                         options_.duration_hours * 3600.0));
  // Non-homogeneous Poisson by thinning against the peak rate.
  const double peak_rate_per_hour =
      options_.mean_iops * 3600.0 * (1.0 + options_.diurnal_amplitude);
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform()) / peak_rate_per_hour;
    if (t >= options_.duration_hours) break;
    const double rate_factor =
        (1.0 + options_.diurnal_amplitude *
                   std::sin(2.0 * M_PI * t / 24.0)) /
        (1.0 + options_.diurnal_amplitude);
    if (!rng.chance(rate_factor)) continue;
    TraceRecord rec;
    rec.time_hours = t;
    rec.is_write = rng.chance(options_.write_fraction);
    rec.block = sample_block(rng);
    trace.push_back(rec);
  }
  return trace;
}

TraceCharacteristics characterize(const std::vector<TraceRecord>& trace,
                                  std::uint32_t block_kb,
                                  double window_minutes) {
  DEPSTOR_EXPECTS(block_kb > 0);
  DEPSTOR_EXPECTS(window_minutes > 0.0);
  TraceCharacteristics out;
  if (trace.empty()) return out;
  out.duration_hours = trace.back().time_hours;
  DEPSTOR_EXPECTS_MSG(out.duration_hours > 0.0,
                      "trace must span positive time");

  const double window_hours = window_minutes / 60.0;
  const double block_mb = block_kb / 1000.0;

  std::unordered_set<std::uint64_t> touched;
  std::unordered_set<std::uint64_t> written;
  long long window_writes = 0;
  std::size_t window_index = 0;
  long long peak_window_writes = 0;
  double prev_time = 0.0;

  for (const auto& rec : trace) {
    DEPSTOR_EXPECTS_MSG(rec.time_hours >= prev_time,
                        "trace records must be time-ordered");
    prev_time = rec.time_hours;
    touched.insert(rec.block);
    if (rec.is_write) {
      ++out.writes;
      written.insert(rec.block);
      const auto w =
          static_cast<std::size_t>(rec.time_hours / window_hours);
      if (w != window_index) {
        peak_window_writes = std::max(peak_window_writes, window_writes);
        window_writes = 0;
        window_index = w;
      }
      ++window_writes;
    } else {
      ++out.reads;
    }
  }
  peak_window_writes = std::max(peak_window_writes, window_writes);

  const double duration_seconds =
      out.duration_hours * units::kSecondsPerHour;
  const double window_seconds = window_hours * units::kSecondsPerHour;
  out.avg_update_mbps =
      static_cast<double>(out.writes) * block_mb / duration_seconds;
  out.peak_update_mbps =
      static_cast<double>(peak_window_writes) * block_mb / window_seconds;
  out.avg_access_mbps = static_cast<double>(out.reads + out.writes) *
                        block_mb / duration_seconds;
  out.unique_update_mbps =
      static_cast<double>(written.size()) * block_mb / duration_seconds;
  out.footprint_gb = static_cast<double>(touched.size()) * block_mb / 1000.0;

  // Windowed peaks can undershoot the average in degenerate cases (a trace
  // shorter than one window); clamp to keep the §2.2 invariants.
  out.peak_update_mbps = std::max(out.peak_update_mbps, out.avg_update_mbps);
  return out;
}

ApplicationSpec app_from_trace(const std::string& name,
                               const std::string& type_code,
                               double outage_penalty_rate,
                               double loss_penalty_rate, double data_size_gb,
                               const TraceCharacteristics& traits) {
  ApplicationSpec app;
  app.name = name;
  app.type_code = type_code;
  app.outage_penalty_rate = outage_penalty_rate;
  app.loss_penalty_rate = loss_penalty_rate;
  app.data_size_gb = data_size_gb;
  app.avg_update_mbps = traits.avg_update_mbps;
  app.peak_update_mbps = traits.peak_update_mbps;
  app.avg_access_mbps =
      std::max(traits.avg_access_mbps, traits.avg_update_mbps);
  app.unique_update_mbps =
      std::min(traits.unique_update_mbps, traits.avg_update_mbps);
  app.validate();
  return app;
}

}  // namespace depstor::workload
