#include "workload/catalog.hpp"

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor::workload {

namespace {
ApplicationSpec make(const std::string& code, int instance, double outage,
                     double loss, double size_gb, double avg_update,
                     double peak_update, double access) {
  ApplicationSpec app;
  app.name = code + std::to_string(instance);
  app.type_code = code;
  app.outage_penalty_rate = outage;
  app.loss_penalty_rate = loss;
  app.data_size_gb = size_gb;
  app.avg_update_mbps = avg_update;
  app.peak_update_mbps = peak_update;
  app.avg_access_mbps = access;
  app.unique_update_mbps = kUniqueUpdateFraction * avg_update;
  app.validate();
  return app;
}
}  // namespace

ApplicationSpec central_banking(int instance) {
  return make("B", instance, units::megadollars(5), units::megadollars(5),
              1300.0, 5.0, 50.0, 50.0);
}

ApplicationSpec web_service(int instance) {
  return make("W", instance, units::megadollars(5), units::kilodollars(5),
              4300.0, 2.0, 20.0, 20.0);
}

ApplicationSpec consumer_banking(int instance) {
  return make("C", instance, units::kilodollars(5), units::megadollars(5),
              4300.0, 1.0, 10.0, 10.0);
}

ApplicationSpec student_accounts(int instance) {
  return make("S", instance, units::kilodollars(5), units::kilodollars(5),
              500.0, 0.5, 5.0, 5.0);
}

ApplicationSpec by_type_code(const std::string& code, int instance) {
  if (code == "B") return central_banking(instance);
  if (code == "W") return web_service(instance);
  if (code == "C") return consumer_banking(instance);
  if (code == "S") return student_accounts(instance);
  throw InvalidArgument("unknown application type code: " + code);
}

ApplicationList all_prototypes() {
  return {central_banking(), web_service(), consumer_banking(),
          student_accounts()};
}

}  // namespace depstor::workload
