#include "workload/application.hpp"

#include "util/check.hpp"

namespace depstor {

const char* to_string(AppCategory c) {
  switch (c) {
    case AppCategory::Gold:
      return "Gold";
    case AppCategory::Silver:
      return "Silver";
    case AppCategory::Bronze:
      return "Bronze";
  }
  return "?";
}

AppCategory ApplicationSpec::category(const CategoryThresholds& t) const {
  const double sum = penalty_rate_sum();
  if (sum >= t.gold_min) return AppCategory::Gold;
  if (sum >= t.silver_min) return AppCategory::Silver;
  return AppCategory::Bronze;
}

void ApplicationSpec::validate() const {
  DEPSTOR_EXPECTS_MSG(!name.empty(), "application needs a name");
  DEPSTOR_EXPECTS_MSG(outage_penalty_rate >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(loss_penalty_rate >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(data_size_gb > 0.0, name);
  DEPSTOR_EXPECTS_MSG(avg_update_mbps >= 0.0, name);
  DEPSTOR_EXPECTS_MSG(peak_update_mbps >= avg_update_mbps,
                      name + ": peak update rate below average");
  DEPSTOR_EXPECTS_MSG(avg_access_mbps >= avg_update_mbps,
                      name + ": access rate below update rate");
  DEPSTOR_EXPECTS_MSG(unique_update_mbps >= 0.0 &&
                          unique_update_mbps <= avg_update_mbps,
                      name + ": unique update rate out of range");
}

}  // namespace depstor
