// Workload-set generators for the paper's experiments.
//
// The scalability experiment (§4.4) scales the environment "by four
// applications at a time, one from each class"; the peer-sites case study
// (§4.3) deploys eight applications (two of each class). `mixed_set`
// produces those sets; `perturbed_set` additionally jitters the workload
// characteristics (not the penalty rates) for robustness testing.
#pragma once

#include "util/rng.hpp"
#include "workload/application.hpp"

namespace depstor::workload {

/// `count` applications cycling through the class order B, C, W, S
/// (so every prefix of 4k contains k of each class). Ids are assigned
/// densely from 0.
ApplicationList mixed_set(int count);

/// Like mixed_set, but data sizes and rates are jittered by ±`jitter`
/// fraction (uniform). Penalty rates are left exact so categorization is
/// unchanged. Used by property tests and robustness studies.
ApplicationList perturbed_set(int count, double jitter, Rng& rng);

/// Assign dense ids (0..n-1) in place; returns the same list for chaining.
ApplicationList& assign_ids(ApplicationList& apps);

}  // namespace depstor::workload
