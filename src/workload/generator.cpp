#include "workload/generator.hpp"

#include <array>

#include "util/check.hpp"
#include "workload/catalog.hpp"

namespace depstor::workload {

namespace {
constexpr std::array<const char*, 4> kClassOrder = {"B", "C", "W", "S"};
}

ApplicationList& assign_ids(ApplicationList& apps) {
  for (std::size_t i = 0; i < apps.size(); ++i) {
    apps[i].id = static_cast<int>(i);
  }
  return apps;
}

ApplicationList mixed_set(int count) {
  DEPSTOR_EXPECTS(count > 0);
  ApplicationList apps;
  apps.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int instance = i / static_cast<int>(kClassOrder.size()) + 1;
    apps.push_back(by_type_code(kClassOrder[static_cast<std::size_t>(i) %
                                            kClassOrder.size()],
                                instance));
  }
  return assign_ids(apps);
}

ApplicationList perturbed_set(int count, double jitter, Rng& rng) {
  DEPSTOR_EXPECTS(jitter >= 0.0 && jitter < 1.0);
  ApplicationList apps = mixed_set(count);
  for (auto& app : apps) {
    const auto scale = [&] { return 1.0 + rng.uniform(-jitter, jitter); };
    app.data_size_gb *= scale();
    app.avg_update_mbps *= scale();
    // Keep the spec invariants: peak ≥ avg, access ≥ avg, unique ≤ avg.
    app.peak_update_mbps =
        std::max(app.peak_update_mbps * scale(), app.avg_update_mbps);
    app.avg_access_mbps =
        std::max(app.avg_access_mbps * scale(), app.avg_update_mbps);
    app.unique_update_mbps = kUniqueUpdateFraction * app.avg_update_mbps;
    app.validate();
  }
  return apps;
}

}  // namespace depstor::workload
