// Design solver (paper §3.1, Algorithm 1).
//
// Stage 1 (greedy best-fit): starting from an empty design, applications are
// added one at a time — each chosen randomly with probability weighted by its
// penalty-rate sum (stringent apps first) — and given the
// incremental-cost-minimizing technique/layout by the reconfiguration
// operator. If an application cannot be placed, the stage restarts from
// scratch (bounded).
//
// Stage 2 (refit): randomized local search around the greedy design. Each
// iteration explores `b` siblings of the incumbent; from each sibling a
// depth-`d` walk evaluates `b` random neighbors per level and descends to the
// level's best (worsening moves allowed — that is how the search escapes
// local minima). The walk restarts from the incumbent for the next sibling.
// The incumbent advances to the best node seen; a local optimum is declared
// when a full iteration brings no improvement.
//
// Every node is completed and priced by the configuration solver before
// comparison, exactly as in Algorithm 1 (lines 6, 18, 25).
//
// The refit stage's siblings and per-level neighbors are mutually
// independent, so they fan onto a WorkerPool when
// `ExecutionOptions::intra_node_workers > 1` (see DESIGN.md §9). Every
// search node draws from its own RNG stream derived from the structural
// coordinates (repetition, iteration, sibling, level, slot), and merges are
// slot-ordered, so the parallel solve is bit-identical to the sequential one
// when `deterministic` disables the wall-clock cutoffs.
//
// The public entry point is `depstor::solve(SolveRequest)` in core/api.hpp;
// this header defines the option structs and the internal driver.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "solver/config_solver.hpp"
#include "solver/reconfigure.hpp"
#include "solver/solution.hpp"

namespace depstor {

class EvalCache;   // engine/eval_cache.hpp
class WorkerPool;  // engine/worker_pool.hpp

/// Ordering of the greedy stage. Algorithm 1 line 4 says "maximum penalty";
/// §3.1.1's prose says randomized, penalty-weighted. Both are provided; the
/// prose behavior is the default (it is what lets restarts differ).
enum class GreedyOrder { WeightedRandom, MaxPenalty };

/// Algorithm parameters of one solve — what the search explores and when it
/// stops. Execution concerns (threads, cache, cancellation) live in
/// ExecutionOptions; keeping the two apart is what lets the same
/// DesignSolverOptions be replayed sequentially, intra-parallel, or fanned
/// across seed restarts without touching the algorithm knobs.
struct DesignSolverOptions {
  int breadth = 3;  ///< b: siblings / neighbors per level
  int depth = 5;    ///< d: depth of each refit walk
  int max_refit_iterations = 30;
  int max_greedy_restarts = 25;
  /// Soft wall-clock budget for the whole solve (checked between nodes).
  /// Ignored when ExecutionOptions::deterministic is set.
  double time_budget_ms = 2000.0;
  /// Cap on greedy+refit repetitions (0 = until the time budget runs out;
  /// under `deterministic`, 0 means exactly one repetition).
  int max_repetitions = 0;
  std::uint64_t seed = 1;
  GreedyOrder greedy_order = GreedyOrder::WeightedRandom;
  /// The configuration solver completes every node either way; this picks
  /// its scope. false (default): per-node re-optimization covers only the
  /// application the search edge changed (plus its devices), with a full
  /// pass at greedy completion and a final polish — O(grid) per node.
  /// true: the full every-application sweep at every node — Algorithm 1
  /// taken literally, O(apps × grid) per node, prohibitive beyond ~12 apps.
  bool full_config_solve_every_node = false;
  ReconfigureOptions reconfigure;
};

/// How a solve executes: parallelism, determinism, budget override, and the
/// runtime hooks (cache, cancellation, progress) that used to hide inside
/// DesignSolverOptions.
struct ExecutionOptions {
  /// Independent seed-restart solves run concurrently, merged by minimum
  /// cost (the seed-restart fan). Must be >= 1.
  int workers = 1;
  /// Threads cooperating *inside* each solve's refit stage. 1 = the
  /// sequential path (no pool is created). Must be >= 1.
  int intra_node_workers = 1;
  /// Minimum fan width worth handing to the pool: a refit fan with fewer
  /// independent slots than this runs inline on the coordinating thread even
  /// when a pool is available, because fan dispatch overhead swamps the
  /// per-slot work on narrow fans of cheap nodes. 0 (the default) means
  /// *auto-calibrate*: the solve measures the pool's per-chunk dispatch cost
  /// with a startup micro-probe, compares it against the mean per-node cost
  /// observed during its own greedy stage, and picks the smallest fan width
  /// whose projected saving beats the dispatch bill (DESIGN.md §9). Explicit
  /// values >= 1 skip the probe (1 = always fan). Inline and pooled fans
  /// follow the same slot order and structural RNG streams, so the threshold
  /// never changes results — SolveResult::refit_fanned records which path
  /// ran and SolveResult::intra_min_fan_used the threshold applied.
  int intra_min_fan = 0;
  /// Disable the wall-clock cutoffs so the node set explored depends only on
  /// (options, seed) — required for the bit-identical parallel-vs-sequential
  /// contract. Termination then comes from max_repetitions (0 → 1) and
  /// max_refit_iterations. Cancellation is still honored.
  bool deterministic = false;
  /// When > 0, overrides DesignSolverOptions::time_budget_ms.
  double time_budget_ms = 0.0;

  /// Shared memoizing evaluation cache threaded into the configuration
  /// solver. Never changes results, only skips recomputation.
  EvalCache* eval_cache = nullptr;
  /// Cooperative cancellation: when set and true, the solve stops at the
  /// next node boundary and returns the best design found so far.
  const std::atomic<bool>* cancel = nullptr;
  /// Live progress sink, incremented once per evaluated search node.
  std::atomic<std::int64_t>* progress = nullptr;
  /// Borrow an existing pool for the intra-solve fan instead of creating one
  /// (the batch engine lends its own so jobs and refit tasks share workers).
  /// Null: the solve owns a pool when intra_node_workers > 1.
  WorkerPool* intra_pool = nullptr;
};

struct SolveResult {
  std::optional<Candidate> best;  ///< empty when no feasible design found
  CostBreakdown cost;
  bool feasible = false;
  bool cancelled = false;  ///< stopped early by the cancellation hook
  // 64-bit counters: long batch runs overflow 32 bits.
  std::int64_t greedy_restarts = 0;
  std::int64_t refit_iterations = 0;
  std::int64_t nodes_evaluated = 0;
  std::int64_t evaluations = 0;   ///< config-solver cost evaluations
  std::int64_t cache_hits = 0;    ///< evaluations served from the cache
  std::int64_t cache_misses = 0;
  /// Incremental-evaluator scenario counters (cost/incremental.hpp): failure
  /// scenarios actually re-simulated vs served from the footprint cache.
  std::int64_t scenarios_simulated = 0;
  std::int64_t scenarios_reused = 0;
  /// Intra-solve refit fan: tasks handed to the pool vs executed by the
  /// coordinating thread itself (help-while-wait steals; with
  /// intra_node_workers == 1 every task is "stolen" — run inline).
  std::int64_t refit_parallel_tasks = 0;
  std::int64_t refit_steal_count = 0;
  /// Which refit path actually ran: true when at least one fan cleared
  /// the effective min-fan threshold and went to the pool; false when every
  /// fan ran inline (narrow fans, intra_node_workers == 1, or no pool).
  bool refit_fanned = false;
  /// The fan threshold actually applied: the explicit
  /// ExecutionOptions::intra_min_fan when >= 1, otherwise the value the
  /// startup micro-probe calibrated from dispatch overhead vs node cost.
  int intra_min_fan_used = 0;
  /// Per-stage wall-clock: evaluation calls, backup-chain sweeps, resource
  /// increment loops (eval_ms overlaps the other two — see
  /// ConfigSolverStats).
  double eval_ms = 0.0;
  double sweep_ms = 0.0;
  double increment_ms = 0.0;
  double elapsed_ms = 0.0;
};

namespace detail {

/// Warm-start input for a delta re-design (depstor::resolve): `seed` is a
/// prior solution already migrated onto the target environment (its
/// incremental-evaluator scenario cache travels with it), and `focus_apps`
/// — sorted ascending — are the apps the environment delta touched. With a
/// warm start the solver skips the greedy stage (the seed *is* the start
/// node, with any still-unassigned apps placed first), restricts refit to
/// the focus set, and polishes only the focus apps: untouched applications
/// keep their designs and their cached scenario results. An empty focus set
/// skips refit entirely. When seeding fails (an unassigned app cannot be
/// placed), the result comes back infeasible and the caller falls back to a
/// cold solve.
struct WarmStart {
  const Candidate* seed = nullptr;
  const std::vector<int>* focus_apps = nullptr;
};

/// Run one greedy+refit solve under `exec` (workers is ignored here — the
/// seed fan lives in depstor::solve). `warm`, when set, replaces the greedy
/// stage with the warm-start path above. `scenarios`, when set, overrides
/// the environment's scenario model for every candidate the search prices
/// (SolveRequest::scenarios); it must outlive the call. Internal: callers go
/// through core/api.hpp.
SolveResult solve_impl(const Environment* env,
                       const DesignSolverOptions& options,
                       const ExecutionOptions& exec,
                       const WarmStart* warm = nullptr,
                       const ScenarioModel* scenarios = nullptr);

}  // namespace detail

}  // namespace depstor
