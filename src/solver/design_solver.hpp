// Design solver (paper §3.1, Algorithm 1).
//
// Stage 1 (greedy best-fit): starting from an empty design, applications are
// added one at a time — each chosen randomly with probability weighted by its
// penalty-rate sum (stringent apps first) — and given the
// incremental-cost-minimizing technique/layout by the reconfiguration
// operator. If an application cannot be placed, the stage restarts from
// scratch (bounded).
//
// Stage 2 (refit): randomized local search around the greedy design. Each
// iteration explores `b` siblings of the incumbent; from each sibling a
// depth-`d` walk evaluates `b` random neighbors per level and descends to the
// level's best (worsening moves allowed — that is how the search escapes
// local minima). The walk restarts from the incumbent for the next sibling.
// The incumbent advances to the best node seen; a local optimum is declared
// when a full iteration brings no improvement.
//
// Every node is completed and priced by the configuration solver before
// comparison, exactly as in Algorithm 1 (lines 6, 18, 25).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "solver/config_solver.hpp"
#include "solver/reconfigure.hpp"
#include "solver/solution.hpp"

namespace depstor {

/// Ordering of the greedy stage. Algorithm 1 line 4 says "maximum penalty";
/// §3.1.1's prose says randomized, penalty-weighted. Both are provided; the
/// prose behavior is the default (it is what lets restarts differ).
enum class GreedyOrder { WeightedRandom, MaxPenalty };

struct DesignSolverOptions {
  int breadth = 3;  ///< b: siblings / neighbors per level
  int depth = 5;    ///< d: depth of each refit walk
  int max_refit_iterations = 30;
  int max_greedy_restarts = 25;
  /// Soft wall-clock budget for the whole solve (checked between nodes).
  double time_budget_ms = 2000.0;
  /// Cap on greedy+refit repetitions (0 = until the time budget runs out).
  /// With a cap and a generous budget the solve is exactly reproducible.
  int max_repetitions = 0;
  std::uint64_t seed = 1;
  GreedyOrder greedy_order = GreedyOrder::WeightedRandom;
  /// The configuration solver completes every node either way; this picks
  /// its scope. false (default): per-node re-optimization covers only the
  /// application the search edge changed (plus its devices), with a full
  /// pass at greedy completion and a final polish — O(grid) per node.
  /// true: the full every-application sweep at every node — Algorithm 1
  /// taken literally, O(apps × grid) per node, prohibitive beyond ~12 apps.
  bool full_config_solve_every_node = false;
  ReconfigureOptions reconfigure;

  // --- batch-engine hooks (engine/engine.hpp); all optional ---
  /// Shared memoizing evaluation cache threaded into the configuration
  /// solver. Never changes results, only skips recomputation.
  EvalCache* eval_cache = nullptr;
  /// Cooperative cancellation: when set and true, the solve stops at the
  /// next node boundary and returns the best design found so far.
  const std::atomic<bool>* cancel = nullptr;
  /// Live progress sink, incremented once per evaluated search node.
  std::atomic<std::int64_t>* progress = nullptr;
};

struct SolveResult {
  std::optional<Candidate> best;  ///< empty when no feasible design found
  CostBreakdown cost;
  bool feasible = false;
  bool cancelled = false;  ///< stopped early by the cancellation hook
  // 64-bit counters: long batch runs overflow 32 bits.
  std::int64_t greedy_restarts = 0;
  std::int64_t refit_iterations = 0;
  std::int64_t nodes_evaluated = 0;
  std::int64_t evaluations = 0;   ///< config-solver cost evaluations
  std::int64_t cache_hits = 0;    ///< evaluations served from the cache
  std::int64_t cache_misses = 0;
  /// Incremental-evaluator scenario counters (cost/incremental.hpp): failure
  /// scenarios actually re-simulated vs served from the footprint cache.
  std::int64_t scenarios_simulated = 0;
  std::int64_t scenarios_reused = 0;
  /// Per-stage wall-clock: evaluation calls, backup-chain sweeps, resource
  /// increment loops (eval_ms overlaps the other two — see
  /// ConfigSolverStats).
  double eval_ms = 0.0;
  double sweep_ms = 0.0;
  double increment_ms = 0.0;
  double elapsed_ms = 0.0;
};

class DesignSolver {
 public:
  explicit DesignSolver(const Environment* env,
                        DesignSolverOptions options = {});

  /// Run greedy + refit once within the time budget and return the best
  /// design found. Never throws for infeasibility — inspect `feasible`.
  SolveResult solve();

 private:
  const Environment* env_;
  DesignSolverOptions options_;
};

}  // namespace depstor
