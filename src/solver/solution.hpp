// Candidate storage solution: the node type of the design solver's search
// graph (paper §3.1).
//
// A Candidate owns a ResourcePool and one AppAssignment per application.
// `place_app` turns a high-level DesignChoice (technique + device/site
// choices) into concrete devices and allocations; `remove_app` releases them.
// Candidates are value types — the refit search copies them freely.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/environment.hpp"
#include "cost/breakdown.hpp"
#include "cost/incremental.hpp"
#include "model/assignment.hpp"
#include "resources/pool.hpp"

namespace depstor {

/// High-level design decisions for one application, produced by the
/// reconfiguration operator / baselines and consumed by Candidate::place_app.
/// Device types are referenced by catalog name; sites by id.
struct DesignChoice {
  TechniqueSpec technique;
  BackupChainConfig backup;  ///< initial configuration (solver tunes later)

  int primary_site = -1;
  int secondary_site = -1;  ///< required when the technique mirrors

  std::string primary_array_type;
  std::string mirror_array_type;  ///< required when the technique mirrors
  std::string tape_type;          ///< required when the technique backs up
  std::string link_type;          ///< required when the technique mirrors
};

class Candidate {
 public:
  explicit Candidate(const Environment* env);

  const Environment& env() const { return *env_; }
  const ResourcePool& pool() const { return pool_; }
  const std::vector<AppAssignment>& assignments() const { return assignments_; }
  const AppAssignment& assignment(int app_id) const;

  bool is_assigned(int app_id) const { return assignment(app_id).assigned; }
  int assigned_count() const;
  /// Ids of applications not yet assigned a design.
  std::vector<int> unassigned_apps() const;

  /// The choice used to place an app (for re-placement and reporting).
  const DesignChoice& choice(int app_id) const;

  /// Realize `choice` for the application: find-or-create the devices and
  /// place every allocation (primary copy, snapshot space, mirror copy and
  /// traffic, tape backup, compute). Throws InfeasibleError — with the
  /// candidate unchanged — when the devices cannot fit the load.
  void place_app(int app_id, const DesignChoice& choice);

  /// Release every allocation of the app; its devices stay (idle devices
  /// cost nothing and keep ids stable).
  void remove_app(int app_id);

  /// Re-bind this candidate to a successor environment produced by
  /// apply_delta (warm-start migration): removed apps are released,
  /// surviving assignments move to their new ids, added apps appear
  /// unassigned, and the incremental evaluator's per-scenario cache is
  /// carried across — entries whose contention footprint the delta does not
  /// touch stay valid and will not re-simulate. Resized survivors are *not*
  /// re-placed here; the caller re-places them against the new specs.
  ///
  /// `new_env` must outlive the candidate and share the old environment's
  /// topology geometry (site count/ids, link pairs — only per-site capacity
  /// limits may differ). `new_of_old` maps old app ids to new ids (-1 =
  /// removed) and must be monotone over survivors, as apply_delta
  /// guarantees. Not allowed inside a probe.
  void migrate(const Environment* new_env,
               const std::vector<int>& new_of_old);

  /// Re-place the app with a new backup-chain configuration (configuration
  /// solver knob). Throws InfeasibleError with the old config restored.
  void set_backup_config(int app_id, const BackupChainConfig& config);

  /// Buy extra units on a device (configuration solver knob; forwards to
  /// ResourcePool). Returns the extras actually applied after clamping.
  int set_extra_bandwidth_units(int device_id, int extra);
  int set_extra_capacity_units(int device_id, int extra);

  /// Buy / return a hot-spare array enclosure of `type_name` at `site`
  /// (configuration solver knob: shortens array repair leads for primaries
  /// of the same model at the site). Idempotent; throws InfeasibleError
  /// when enabling would exceed the site's spare limit.
  void set_spare_array(int site, const std::string& type_name, bool enabled);
  bool has_spare_array(int site, const std::string& type_name) const {
    return pool_.has_spare_array(site, type_name);
  }

  /// Full cost of the current state (partial candidates: penalties cover
  /// assigned apps only, outlays cover everything provisioned).
  ///
  /// With the incremental path enabled (the default; see
  /// incremental_default_enabled), mutations since the previous evaluation
  /// are replayed through the dirty-tracked IncrementalEvaluator: only
  /// failure scenarios whose contention footprint they intersect are
  /// re-simulated. Results are bit-identical to a from-scratch
  /// evaluate_cost; debug/audit builds (DEPSTOR_AUDIT) cross-check every
  /// reusing evaluation against the full recompute. `stats`, when given,
  /// accumulates simulated/reused scenario counters.
  CostBreakdown evaluate(IncrementalStats* stats = nullptr) const;

  /// Toggle the incremental evaluation path for this candidate (process
  /// default: DEPSTOR_INCREMENTAL, on unless =0). Disabling falls back to
  /// the full evaluator; re-enabling marks everything dirty so the cache
  /// rebuilds before any reuse.
  void set_incremental_enabled(bool enabled);
  bool incremental_enabled() const { return incremental_enabled_; }

  /// Probe transaction around a speculative mutate → evaluate → revert
  /// sequence (the solvers' steepest-descent loops). Between begin_probe and
  /// abort_probe the incremental evaluator stashes the committed results of
  /// every scenario the probe forces it to re-simulate; abort_probe swaps
  /// them back and restores the pending dirty marks, making a reverted probe
  /// cost nothing at the next evaluation. The caller must restore the
  /// candidate to its exact begin_probe state (every mutation undone) before
  /// aborting. commit_probe instead keeps the trial results. No-ops when the
  /// incremental path is disabled; probes do not nest.
  void begin_probe();
  void abort_probe();
  void commit_probe();

  /// Site limits, link limits, per-assignment structural validity.
  /// Throws InfeasibleError / InvalidArgument on violation.
  void check_feasible() const;

  /// The scenario source of truth this candidate evaluates against.
  /// Initialized from the environment (`Environment::scenario_model`);
  /// requests override it per solve (SolveRequest::scenarios).
  const ScenarioModel& scenario_model() const { return scenarios_; }

  /// Replace the scenario model. Rates embedded in every cached scenario
  /// become stale, so everything is marked dirty — the next evaluation
  /// re-enumerates and re-simulates from scratch. Not allowed in a probe.
  void set_scenario_model(ScenarioModel model);

 private:
  int find_or_create_device(const DeviceTypeSpec& type, int site,
                            int site_b = -1);
  const DeviceTypeSpec& type_by_name(const std::string& name) const;
  /// DEPSTOR_AUDIT oracle: a degenerate tree must price bit-identically to
  /// the flat model it encodes. No-op otherwise.
  void audit_flat_parity(const CostBreakdown& cost) const;

  const Environment* env_;
  ScenarioModel scenarios_;  ///< see scenario_model()
  ResourcePool pool_;
  std::vector<AppAssignment> assignments_;
  std::vector<std::optional<DesignChoice>> choices_;

  /// name → spec over the environment's device catalogs, built once in the
  /// constructor (type_by_name runs inside the sweep loop on every
  /// place_app). Pointers reference `env_`, which outlives the candidate,
  /// so copies of the candidate share the same targets.
  std::unordered_map<std::string, const DeviceTypeSpec*> type_index_;

  /// Incremental evaluation state. Mutable values copied with the
  /// candidate: a copy inherits a valid cache for its own lineage (the
  /// refit search copies candidates freely). `dirty_` accumulates across
  /// mutations — including between evaluations skipped by the engine's
  /// EvalCache — and is cleared by a successful incremental evaluation.
  mutable DirtySet dirty_;
  mutable IncrementalEvaluator inc_eval_;
  bool incremental_enabled_ = incremental_default_enabled();
  DirtySet probe_dirty_;  ///< dirty_ snapshot taken at begin_probe
  bool probe_active_ = false;
};

}  // namespace depstor
