#include "solver/solution.hpp"

#include <algorithm>
#include <array>

#include "analysis/audit.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

Candidate::Candidate(const Environment* env)
    : env_(env),
      scenarios_((DEPSTOR_EXPECTS(env != nullptr), env->scenario_model())),
      pool_(env->topology) {
  env_->validate();
  assignments_.resize(env_->apps.size());
  choices_.resize(env_->apps.size());
  for (std::size_t i = 0; i < assignments_.size(); ++i) {
    assignments_[i].app_id = static_cast<int>(i);
  }
  for (const auto& t : env_->array_types) type_index_.emplace(t.name, &t);
  for (const auto& t : env_->tape_types) type_index_.emplace(t.name, &t);
  for (const auto& t : env_->network_types) type_index_.emplace(t.name, &t);
  type_index_.emplace(env_->compute_type.name, &env_->compute_type);
}

const AppAssignment& Candidate::assignment(int app_id) const {
  DEPSTOR_EXPECTS(app_id >= 0 &&
                  app_id < static_cast<int>(assignments_.size()));
  return assignments_[static_cast<std::size_t>(app_id)];
}

int Candidate::assigned_count() const {
  int n = 0;
  for (const auto& a : assignments_) n += a.assigned ? 1 : 0;
  return n;
}

std::vector<int> Candidate::unassigned_apps() const {
  std::vector<int> out;
  for (const auto& a : assignments_) {
    if (!a.assigned) out.push_back(a.app_id);
  }
  return out;
}

const DesignChoice& Candidate::choice(int app_id) const {
  DEPSTOR_EXPECTS(is_assigned(app_id));
  return *choices_[static_cast<std::size_t>(app_id)];
}

const DeviceTypeSpec& Candidate::type_by_name(const std::string& name) const {
  const auto it = type_index_.find(name);
  if (it == type_index_.end()) {
    throw InvalidArgument("device type not in this environment: " + name);
  }
  return *it->second;
}

namespace {

/// Dirty-mark an assignment: the app plus every device it references. Used
/// on placement, removal, and the rollback paths — any of them changes the
/// allocations (and thus units, outlay, and recovery contention) of these
/// devices.
void mark_assignment(DirtySet& dirty, const AppAssignment& asg) {
  dirty.mark_app(asg.app_id);
  // Placement and removal change which apps are assigned (and possibly the
  // set of primary arrays/sites), so the scenario enumeration itself must
  // be redone — unlike the configuration knobs, which only mark entities.
  dirty.mark_structure();
  for (int id : {asg.primary_array, asg.primary_compute, asg.mirror_array,
                 asg.mirror_link, asg.tape_library, asg.failover_compute}) {
    if (id >= 0) dirty.mark_device(id);
  }
}

/// Space-efficient snapshots on the primary array: each retained snapshot
/// holds one interval's worth of unique updates. Shared by place_app and
/// set_backup_config so the two paths size the allocation identically.
double snapshot_capacity_gb(const ApplicationSpec& app,
                            const BackupChainConfig& cfg) {
  return cfg.snapshots_retained *
         units::accumulated_gb(app.unique_update_mbps,
                               cfg.snapshot_interval_hours);
}

/// Tape-library demand for the backup chain: cartridges for the retained
/// fulls plus one cycle's worth of incrementals (older cycles migrate to
/// the vault with their full), drive bandwidth to finish a full backup
/// within the window.
Allocation tape_backup_allocation(int app_id, const ApplicationSpec& app,
                                  const BackupChainConfig& cfg,
                                  const ModelParams& params) {
  const double window =
      std::min(params.backup_window_target_hours, cfg.backup_interval_hours);
  const double tape_bw = app.data_size_gb * units::kMBPerGB /
                         (window * units::kSecondsPerHour);
  const double incrementals_gb =
      cfg.incrementals_per_cycle() *
      units::accumulated_gb(app.unique_update_mbps,
                            cfg.incremental_interval_hours);
  return {app_id, Purpose::Backup,
          cfg.backups_retained * app.data_size_gb + incrementals_gb, tape_bw};
}

/// Exact (bit-for-bit) comparison for the debug equivalence oracle.
bool exactly_equal(const CostBreakdown& a, const CostBreakdown& b) {
  if (a.outlay != b.outlay || a.outage_penalty != b.outage_penalty ||
      a.loss_penalty != b.loss_penalty ||
      a.per_app.size() != b.per_app.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_app.size(); ++i) {
    const auto& x = a.per_app[i];
    const auto& y = b.per_app[i];
    if (x.app_id != y.app_id || x.outage_penalty != y.outage_penalty ||
        x.loss_penalty != y.loss_penalty ||
        x.expected_outage_hours != y.expected_outage_hours ||
        x.expected_loss_hours != y.expected_loss_hours) {
      return false;
    }
  }
  return true;
}

}  // namespace

int Candidate::find_or_create_device(const DeviceTypeSpec& type, int site,
                                     int site_b) {
  if (type.kind == DeviceKind::NetworkLink) {
    const int existing = pool_.find_link(site, site_b, type.name);
    if (existing >= 0) return existing;
  } else {
    for (int id : pool_.devices_at(site, type.kind)) {
      // Hot-spare reservations keep their device exclusively.
      if (pool_.device(id).type.name == type.name &&
          !pool_.is_spare_device(id)) {
        return id;
      }
    }
  }
  return pool_.add_device(type, site, site_b);
}

void Candidate::place_app(int app_id, const DesignChoice& choice) {
  const ApplicationSpec& app = env_->app(app_id);
  DEPSTOR_EXPECTS_MSG(!is_assigned(app_id),
                      app.name + " is already assigned");
  const TechniqueSpec& tech = choice.technique;
  tech.validate();
  DEPSTOR_EXPECTS(choice.primary_site >= 0 &&
                  choice.primary_site < env_->topology.site_count());
  if (tech.has_mirror()) {
    DEPSTOR_EXPECTS_MSG(choice.secondary_site >= 0 &&
                            choice.secondary_site != choice.primary_site,
                        "mirroring needs a distinct secondary site");
    DEPSTOR_REQUIRE_MSG(
        env_->topology.connected(choice.primary_site, choice.secondary_site),
        "sites " + std::to_string(choice.primary_site) + " and " +
            std::to_string(choice.secondary_site) + " are not connected");
  }
  if (tech.has_backup) choice.backup.validate();

  AppAssignment asg;
  asg.app_id = app_id;
  asg.assigned = true;
  asg.technique = tech;
  asg.backup = choice.backup;
  asg.primary_site = choice.primary_site;
  asg.secondary_site = tech.has_mirror() ? choice.secondary_site : -1;

  // Allocation is transactional: on any failure, roll back everything this
  // app placed so the candidate is unchanged (strong exception guarantee).
  try {
    // Primary copy: dataset capacity plus the application's access stream.
    const auto& primary_type = type_by_name(choice.primary_array_type);
    DEPSTOR_EXPECTS(primary_type.kind == DeviceKind::DiskArray);
    asg.primary_array =
        find_or_create_device(primary_type, choice.primary_site);
    pool_.allocate(asg.primary_array,
                   {app_id, Purpose::Primary, app.data_size_gb,
                    app.avg_access_mbps});

    // Compute slot running the application.
    asg.primary_compute =
        find_or_create_device(env_->compute_type, choice.primary_site);
    pool_.allocate(asg.primary_compute,
                   {app_id, Purpose::ComputePrimary, 1.0, 0.0});

    if (tech.has_mirror()) {
      const auto& mirror_type = type_by_name(choice.mirror_array_type);
      DEPSTOR_EXPECTS(mirror_type.kind == DeviceKind::DiskArray);
      asg.mirror_array =
          find_or_create_device(mirror_type, choice.secondary_site);
      // The mirror array absorbs the sustained update stream.
      pool_.allocate(asg.mirror_array,
                     {app_id, Purpose::Mirror, app.data_size_gb,
                      app.avg_update_mbps});

      // Inter-site links sized for the mirror mode's bandwidth demand:
      // peak update rate for synchronous, average for asynchronous (§2.2).
      const auto& link_type = type_by_name(choice.link_type);
      DEPSTOR_EXPECTS(link_type.kind == DeviceKind::NetworkLink);
      asg.mirror_link = find_or_create_device(
          link_type, choice.primary_site, choice.secondary_site);
      pool_.allocate(asg.mirror_link,
                     {app_id, Purpose::MirrorTraffic, 0.0,
                      tech.mirror_bandwidth_demand(app)});
    }

    if (tech.has_backup) {
      pool_.allocate(asg.primary_array,
                     {app_id, Purpose::Snapshot,
                      snapshot_capacity_gb(app, asg.backup), 0.0});

      // Tape library at the primary site.
      const auto& tape_type = type_by_name(choice.tape_type);
      DEPSTOR_EXPECTS(tape_type.kind == DeviceKind::TapeLibrary);
      asg.tape_library =
          find_or_create_device(tape_type, choice.primary_site);
      pool_.allocate(asg.tape_library,
                     tape_backup_allocation(app_id, app, asg.backup,
                                            env_->params));
    }

    if (tech.recovery == RecoveryMode::Failover) {
      asg.failover_compute =
          find_or_create_device(env_->compute_type, choice.secondary_site);
      pool_.allocate(asg.failover_compute,
                     {app_id, Purpose::ComputeFailover, 1.0, 0.0});
    }
  } catch (...) {
    // Devices that got (and now lose) partial allocations changed; the
    // fields set before the failure point identify them.
    mark_assignment(dirty_, asg);
    pool_.release_app(app_id);
    throw;
  }

  asg.validate();
  mark_assignment(dirty_, asg);
  assignments_[static_cast<std::size_t>(app_id)] = asg;
  choices_[static_cast<std::size_t>(app_id)] = choice;
}

void Candidate::remove_app(int app_id) {
  DEPSTOR_EXPECTS(app_id >= 0 &&
                  app_id < static_cast<int>(assignments_.size()));
  const AppAssignment& old = assignments_[static_cast<std::size_t>(app_id)];
  if (old.assigned) mark_assignment(dirty_, old);
  pool_.release_app(app_id);
  AppAssignment blank;
  blank.app_id = app_id;
  assignments_[static_cast<std::size_t>(app_id)] = blank;
  choices_[static_cast<std::size_t>(app_id)].reset();
}

void Candidate::migrate(const Environment* new_env,
                        const std::vector<int>& new_of_old) {
  DEPSTOR_EXPECTS(new_env != nullptr);
  DEPSTOR_EXPECTS_MSG(!probe_active_, "cannot migrate inside a probe");
  DEPSTOR_EXPECTS(new_of_old.size() == assignments_.size());
  DEPSTOR_EXPECTS_MSG(
      new_env->topology.sites.size() == env_->topology.sites.size(),
      "migrate: topology geometry must be unchanged");
  int prev_new_id = -1;
  for (int id : new_of_old) {
    if (id < 0) continue;
    DEPSTOR_EXPECTS_MSG(id > prev_new_id,
                        "migrate: new_of_old must be monotone over survivors");
    prev_new_id = id;
  }

  // Release removed apps first, while their old ids are still the live ones:
  // this marks their devices dirty, so every cached scenario contending on
  // those devices re-simulates even though the entries themselves survive.
  for (std::size_t i = 0; i < new_of_old.size(); ++i) {
    if (new_of_old[i] < 0) remove_app(static_cast<int>(i));
  }
  pool_.remap_app_ids(new_of_old);
  pool_.set_topology(new_env->topology);

  std::vector<AppAssignment> assignments(new_env->apps.size());
  std::vector<std::optional<DesignChoice>> choices(new_env->apps.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    assignments[i].app_id = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < new_of_old.size(); ++i) {
    const int new_id = new_of_old[i];
    if (new_id < 0) continue;
    assignments[static_cast<std::size_t>(new_id)] = std::move(assignments_[i]);
    assignments[static_cast<std::size_t>(new_id)].app_id = new_id;
    choices[static_cast<std::size_t>(new_id)] = std::move(choices_[i]);
  }
  assignments_ = std::move(assignments);
  choices_ = std::move(choices);

  env_ = new_env;
  // diff_environments rejects failure-model drift (failure_model_changed),
  // so the successor's scenario model is rate-identical to the current one
  // and re-binding it invalidates nothing.
  scenarios_ = env_->scenario_model();
  type_index_.clear();
  for (const auto& t : env_->array_types) type_index_.emplace(t.name, &t);
  for (const auto& t : env_->tape_types) type_index_.emplace(t.name, &t);
  for (const auto& t : env_->network_types) type_index_.emplace(t.name, &t);
  type_index_.emplace(env_->compute_type.name, &env_->compute_type);

  inc_eval_.remap_apps(new_of_old);
  // Pending dirty app marks move to their new ids (marks on removed apps
  // drop — their devices are already marked); the structure bit forces the
  // next evaluation to re-enumerate scenarios and re-derive affected sets,
  // which is the safety net under the id rewrite.
  const int old_count = static_cast<int>(new_of_old.size());
  std::vector<int> remapped_apps;
  remapped_apps.reserve(dirty_.apps.size());
  for (int id : dirty_.apps) {
    const int mapped = (id >= 0 && id < old_count)
                           ? new_of_old[static_cast<std::size_t>(id)]
                           : id;
    if (mapped >= 0) remapped_apps.push_back(mapped);
  }
  dirty_.apps = std::move(remapped_apps);
  dirty_.mark_structure();
}

void Candidate::set_backup_config(int app_id,
                                  const BackupChainConfig& config) {
  DEPSTOR_EXPECTS(is_assigned(app_id));
  DEPSTOR_EXPECTS_MSG(assignment(app_id).technique.has_backup,
                      "technique has no backup chain to configure");
  config.validate();
  AppAssignment& asg = assignments_[static_cast<std::size_t>(app_id)];
  const ApplicationSpec& app = env_->app(app_id);

  // Only two allocations depend on the chain config — the snapshot space on
  // the primary array and the backup demand on the tape library — and both
  // keep their identity (device, purpose, list position). Resizing them in
  // place instead of re-placing the whole app is the configuration sweep's
  // hot path: it skips device discovery and the other four allocations, and
  // the precise dirty marks below let incremental evaluation keep every
  // scenario that touches neither device.
  const BackupChainConfig previous = asg.backup;
  const auto units_of = [this](int id) {
    const DeviceInstance& d = pool_.device(id);
    return std::array<int, 4>{d.capacity_units, d.bandwidth_units,
                              d.extra_capacity_units,
                              d.extra_bandwidth_units};
  };
  const auto array_units = units_of(asg.primary_array);
  const auto tape_units = units_of(asg.tape_library);
  const Allocation old_tape =
      tape_backup_allocation(app_id, app, previous, env_->params);

  pool_.update_allocation(asg.primary_array, app_id, Purpose::Snapshot,
                          snapshot_capacity_gb(app, config), 0.0);
  const Allocation tape =
      tape_backup_allocation(app_id, app, config, env_->params);
  try {
    pool_.update_allocation(asg.tape_library, app_id, Purpose::Backup,
                            tape.capacity_gb, tape.bandwidth_mbps);
  } catch (...) {
    // Restore the old, known-feasible snapshot sizing. The pool is back to
    // its exact prior state, so nothing needs a dirty mark.
    pool_.update_allocation(asg.primary_array, app_id, Purpose::Snapshot,
                            snapshot_capacity_gb(app, previous), 0.0);
    throw;
  }
  asg.backup = config;
  choices_[static_cast<std::size_t>(app_id)]->backup = config;
  dirty_.mark_app(app_id);
  // Other applications observe these devices only through provisioned units
  // (outlay, recovery/staleness bandwidth) and through this app's share of
  // allocated bandwidth (their recovery headroom). When neither changed —
  // the resized allocation fits the same units and the drive demand is
  // window-clamped — every cached scenario not involving this app is still
  // exact, so the devices stay clean.
  if (units_of(asg.primary_array) != array_units) {
    dirty_.mark_device(asg.primary_array);
  }
  if (units_of(asg.tape_library) != tape_units ||
      tape.bandwidth_mbps != old_tape.bandwidth_mbps) {
    dirty_.mark_device(asg.tape_library);
  }
}

void Candidate::set_spare_array(int site, const std::string& type_name,
                                bool enabled) {
  DEPSTOR_EXPECTS(site >= 0 && site < env_->topology.site_count());
  // One owner id per (site, array type): release_app(owner) must only ever
  // drop *this* spare. A per-site owner would silently return a previously
  // bought spare of another type at the same site when a probe rolls back.
  int type_index = -1;
  for (std::size_t i = 0; i < env_->array_types.size(); ++i) {
    if (env_->array_types[i].name == type_name) {
      type_index = static_cast<int>(i);
      break;
    }
  }
  DEPSTOR_EXPECTS_MSG(type_index >= 0, type_name);
  const int owner = kSpareOwnerBase +
                    site * static_cast<int>(env_->array_types.size()) +
                    type_index;
  if (!enabled) {
    // Returning the spare: drop this site's spare allocations. Other sites'
    // spares use different owner ids and are untouched.
    if (pool_.has_spare_array(site, type_name)) {
      for (int id : pool_.devices_at(site, DeviceKind::DiskArray)) {
        if (pool_.device(id).type.name == type_name &&
            pool_.is_spare_device(id)) {
          pool_.release_app(owner);
          dirty_.mark_site(site);
          dirty_.mark_device(id);
          return;
        }
      }
    }
    return;
  }
  if (pool_.has_spare_array(site, type_name)) return;  // already there

  // A spare must live on its own (otherwise-idle) device: find an idle
  // device of the type at the site or create one, then reserve it.
  int device_id = -1;
  for (int id : pool_.devices_at(site, DeviceKind::DiskArray)) {
    if (pool_.device(id).type.name == type_name && !pool_.in_use(id)) {
      device_id = id;
      break;
    }
  }
  if (device_id < 0) {
    device_id = pool_.add_device(type_by_name(type_name), site);
  }
  pool_.allocate(device_id, {owner, Purpose::Spare, 0.0, 0.0});
  try {
    pool_.check_feasible();
  } catch (const InfeasibleError&) {
    pool_.release_app(owner);
    throw;
  }
  dirty_.mark_site(site);
  dirty_.mark_device(device_id);
}

int Candidate::set_extra_bandwidth_units(int device_id, int extra) {
  // The pool clamps to the device maximum, so a probe can be a no-op (the
  // increment loop routinely retries maxed-out devices); only an actual
  // unit change invalidates cached scenarios.
  const DeviceInstance& dev = pool_.device(device_id);
  const int cap = dev.capacity_units;
  const int bw = dev.bandwidth_units;
  const int applied = pool_.set_extra_bandwidth_units(device_id, extra);
  if (dev.capacity_units != cap || dev.bandwidth_units != bw) {
    dirty_.mark_device(device_id);
  }
  return applied;
}

int Candidate::set_extra_capacity_units(int device_id, int extra) {
  const DeviceInstance& dev = pool_.device(device_id);
  const int cap = dev.capacity_units;
  const int bw = dev.bandwidth_units;
  const int applied = pool_.set_extra_capacity_units(device_id, extra);
  if (dev.capacity_units != cap || dev.bandwidth_units != bw) {
    dirty_.mark_device(device_id);
  }
  return applied;
}

CostBreakdown Candidate::evaluate(IncrementalStats* stats) const {
  if (!incremental_enabled_) {
    CostBreakdown cost = evaluate_cost(env_->apps, assignments_, pool_,
                                       scenarios_, env_->params);
    audit_flat_parity(cost);
    return cost;
  }
  CostBreakdown cost;
  const bool reused =
      inc_eval_.evaluate(cost, env_->apps, assignments_, pool_, scenarios_,
                         env_->params, dirty_, stats);
  if (reused && analysis::debug_audit_enabled()) {
    // Equivalence oracle: whenever cached scenario results were reused, the
    // incremental total must match a from-scratch recompute bit-for-bit. A
    // fully re-simulated evaluation is skipped — it *is* the full
    // computation.
    const CostBreakdown full = evaluate_cost(env_->apps, assignments_, pool_,
                                             scenarios_, env_->params);
    if (!exactly_equal(cost, full)) {
      throw InternalError(
          "incremental evaluation diverged from full recompute: "
          "incremental total " +
          std::to_string(cost.total()) + " vs full " +
          std::to_string(full.total()));
    }
  }
  audit_flat_parity(cost);
  return cost;
}

void Candidate::audit_flat_parity(const CostBreakdown& cost) const {
  // Degenerate-tree oracle (DEPSTOR_AUDIT): a flat environment loaded
  // through the two-level tree must price bit-identically to the legacy
  // flat enumeration — the tree is a pure re-encoding, not a new model.
  if (!analysis::debug_audit_enabled()) return;
  if (!scenarios_.has_tree() || !scenarios_.tree->degenerate_shape()) return;
  const CostBreakdown flat =
      evaluate_cost(env_->apps, assignments_, pool_,
                    ScenarioModel::flat_model(scenarios_.flat), env_->params);
  if (!exactly_equal(cost, flat)) {
    throw InternalError(
        "degenerate failure-domain tree diverged from the flat model: "
        "tree total " +
        std::to_string(cost.total()) + " vs flat " +
        std::to_string(flat.total()));
  }
}

void Candidate::set_scenario_model(ScenarioModel model) {
  DEPSTOR_EXPECTS_MSG(!probe_active_,
                      "cannot swap scenario models inside a probe");
  model.validate();
  scenarios_ = std::move(model);
  // Every cached scenario embeds the old model's rates and structure.
  dirty_.mark_all();
}

void Candidate::set_incremental_enabled(bool enabled) {
  DEPSTOR_EXPECTS_MSG(!probe_active_,
                      "cannot toggle incremental evaluation inside a probe");
  // Re-enabling after mutations evaluated by the full path: the cache is
  // stale in unknown ways, so everything must re-simulate once.
  if (enabled && !incremental_enabled_) dirty_.mark_all();
  incremental_enabled_ = enabled;
}

void Candidate::begin_probe() {
  DEPSTOR_EXPECTS_MSG(!probe_active_, "probes do not nest");
  if (!incremental_enabled_) return;  // full path keeps no cached state
  // Flush pending marks (possible when the engine's EvalCache answered the
  // last evaluation) so the trial starts from a committed cache: every
  // re-simulation inside it is then attributable to the probe alone, and
  // abort_probe restores an exact pre-probe state.
  if (!dirty_.empty()) evaluate();
  inc_eval_.begin_trial();
  probe_dirty_ = dirty_;
  probe_active_ = true;
}

void Candidate::abort_probe() {
  if (!probe_active_) return;
  probe_active_ = false;
  inc_eval_.abort_trial();
  dirty_ = probe_dirty_;
}

void Candidate::commit_probe() {
  if (!probe_active_) return;
  probe_active_ = false;
  inc_eval_.commit_trial();
}

void Candidate::check_feasible() const {
  pool_.check_feasible();
  for (const auto& asg : assignments_) {
    asg.validate();
  }
}

}  // namespace depstor
