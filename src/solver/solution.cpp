#include "solver/solution.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

Candidate::Candidate(const Environment* env)
    : env_(env), pool_((DEPSTOR_EXPECTS(env != nullptr), env->topology)) {
  env_->validate();
  assignments_.resize(env_->apps.size());
  choices_.resize(env_->apps.size());
  for (std::size_t i = 0; i < assignments_.size(); ++i) {
    assignments_[i].app_id = static_cast<int>(i);
  }
}

const AppAssignment& Candidate::assignment(int app_id) const {
  DEPSTOR_EXPECTS(app_id >= 0 &&
                  app_id < static_cast<int>(assignments_.size()));
  return assignments_[static_cast<std::size_t>(app_id)];
}

int Candidate::assigned_count() const {
  int n = 0;
  for (const auto& a : assignments_) n += a.assigned ? 1 : 0;
  return n;
}

std::vector<int> Candidate::unassigned_apps() const {
  std::vector<int> out;
  for (const auto& a : assignments_) {
    if (!a.assigned) out.push_back(a.app_id);
  }
  return out;
}

const DesignChoice& Candidate::choice(int app_id) const {
  DEPSTOR_EXPECTS(is_assigned(app_id));
  return *choices_[static_cast<std::size_t>(app_id)];
}

const DeviceTypeSpec& Candidate::type_by_name(const std::string& name) const {
  for (const auto& t : env_->array_types) {
    if (t.name == name) return t;
  }
  for (const auto& t : env_->tape_types) {
    if (t.name == name) return t;
  }
  for (const auto& t : env_->network_types) {
    if (t.name == name) return t;
  }
  if (env_->compute_type.name == name) return env_->compute_type;
  throw InvalidArgument("device type not in this environment: " + name);
}

int Candidate::find_or_create_device(const DeviceTypeSpec& type, int site,
                                     int site_b) {
  if (type.kind == DeviceKind::NetworkLink) {
    const int existing = pool_.find_link(site, site_b, type.name);
    if (existing >= 0) return existing;
  } else {
    for (int id : pool_.devices_at(site, type.kind)) {
      // Hot-spare reservations keep their device exclusively.
      if (pool_.device(id).type.name == type.name &&
          !pool_.is_spare_device(id)) {
        return id;
      }
    }
  }
  return pool_.add_device(type, site, site_b);
}

void Candidate::place_app(int app_id, const DesignChoice& choice) {
  const ApplicationSpec& app = env_->app(app_id);
  DEPSTOR_EXPECTS_MSG(!is_assigned(app_id),
                      app.name + " is already assigned");
  const TechniqueSpec& tech = choice.technique;
  tech.validate();
  DEPSTOR_EXPECTS(choice.primary_site >= 0 &&
                  choice.primary_site < env_->topology.site_count());
  if (tech.has_mirror()) {
    DEPSTOR_EXPECTS_MSG(choice.secondary_site >= 0 &&
                            choice.secondary_site != choice.primary_site,
                        "mirroring needs a distinct secondary site");
    DEPSTOR_REQUIRE_MSG(
        env_->topology.connected(choice.primary_site, choice.secondary_site),
        "sites " + std::to_string(choice.primary_site) + " and " +
            std::to_string(choice.secondary_site) + " are not connected");
  }
  if (tech.has_backup) choice.backup.validate();

  AppAssignment asg;
  asg.app_id = app_id;
  asg.assigned = true;
  asg.technique = tech;
  asg.backup = choice.backup;
  asg.primary_site = choice.primary_site;
  asg.secondary_site = tech.has_mirror() ? choice.secondary_site : -1;

  // Allocation is transactional: on any failure, roll back everything this
  // app placed so the candidate is unchanged (strong exception guarantee).
  try {
    // Primary copy: dataset capacity plus the application's access stream.
    const auto& primary_type = type_by_name(choice.primary_array_type);
    DEPSTOR_EXPECTS(primary_type.kind == DeviceKind::DiskArray);
    asg.primary_array =
        find_or_create_device(primary_type, choice.primary_site);
    pool_.allocate(asg.primary_array,
                   {app_id, Purpose::Primary, app.data_size_gb,
                    app.avg_access_mbps});

    // Compute slot running the application.
    asg.primary_compute =
        find_or_create_device(env_->compute_type, choice.primary_site);
    pool_.allocate(asg.primary_compute,
                   {app_id, Purpose::ComputePrimary, 1.0, 0.0});

    if (tech.has_mirror()) {
      const auto& mirror_type = type_by_name(choice.mirror_array_type);
      DEPSTOR_EXPECTS(mirror_type.kind == DeviceKind::DiskArray);
      asg.mirror_array =
          find_or_create_device(mirror_type, choice.secondary_site);
      // The mirror array absorbs the sustained update stream.
      pool_.allocate(asg.mirror_array,
                     {app_id, Purpose::Mirror, app.data_size_gb,
                      app.avg_update_mbps});

      // Inter-site links sized for the mirror mode's bandwidth demand:
      // peak update rate for synchronous, average for asynchronous (§2.2).
      const auto& link_type = type_by_name(choice.link_type);
      DEPSTOR_EXPECTS(link_type.kind == DeviceKind::NetworkLink);
      asg.mirror_link = find_or_create_device(
          link_type, choice.primary_site, choice.secondary_site);
      pool_.allocate(asg.mirror_link,
                     {app_id, Purpose::MirrorTraffic, 0.0,
                      tech.mirror_bandwidth_demand(app)});
    }

    if (tech.has_backup) {
      // Space-efficient snapshots on the primary array: each retained
      // snapshot holds one interval's worth of unique updates.
      const double snapshot_gb =
          asg.backup.snapshots_retained *
          units::accumulated_gb(app.unique_update_mbps,
                                asg.backup.snapshot_interval_hours);
      pool_.allocate(asg.primary_array,
                     {app_id, Purpose::Snapshot, snapshot_gb, 0.0});

      // Tape library at the primary site: cartridges for the retained full
      // backups, drive bandwidth to finish a full backup within the window.
      const auto& tape_type = type_by_name(choice.tape_type);
      DEPSTOR_EXPECTS(tape_type.kind == DeviceKind::TapeLibrary);
      asg.tape_library =
          find_or_create_device(tape_type, choice.primary_site);
      const double window = std::min(env_->params.backup_window_target_hours,
                                     asg.backup.backup_interval_hours);
      const double tape_bw =
          app.data_size_gb * units::kMBPerGB /
          (window * units::kSecondsPerHour);
      // Cartridges: the retained fulls plus one cycle's worth of
      // incrementals (older cycles migrate to the vault with their full).
      const double incrementals_gb =
          asg.backup.incrementals_per_cycle() *
          units::accumulated_gb(app.unique_update_mbps,
                                asg.backup.incremental_interval_hours);
      pool_.allocate(asg.tape_library,
                     {app_id, Purpose::Backup,
                      asg.backup.backups_retained * app.data_size_gb +
                          incrementals_gb,
                      tape_bw});
    }

    if (tech.recovery == RecoveryMode::Failover) {
      asg.failover_compute =
          find_or_create_device(env_->compute_type, choice.secondary_site);
      pool_.allocate(asg.failover_compute,
                     {app_id, Purpose::ComputeFailover, 1.0, 0.0});
    }
  } catch (...) {
    pool_.release_app(app_id);
    throw;
  }

  asg.validate();
  assignments_[static_cast<std::size_t>(app_id)] = asg;
  choices_[static_cast<std::size_t>(app_id)] = choice;
}

void Candidate::remove_app(int app_id) {
  DEPSTOR_EXPECTS(app_id >= 0 &&
                  app_id < static_cast<int>(assignments_.size()));
  pool_.release_app(app_id);
  AppAssignment blank;
  blank.app_id = app_id;
  assignments_[static_cast<std::size_t>(app_id)] = blank;
  choices_[static_cast<std::size_t>(app_id)].reset();
}

void Candidate::set_backup_config(int app_id,
                                  const BackupChainConfig& config) {
  DEPSTOR_EXPECTS(is_assigned(app_id));
  DEPSTOR_EXPECTS_MSG(assignment(app_id).technique.has_backup,
                      "technique has no backup chain to configure");
  DesignChoice updated = choice(app_id);
  const DesignChoice previous = updated;
  updated.backup = config;
  remove_app(app_id);
  try {
    place_app(app_id, updated);
  } catch (...) {
    place_app(app_id, previous);  // restore the old, known-feasible state
    throw;
  }
}

void Candidate::set_spare_array(int site, const std::string& type_name,
                                bool enabled) {
  DEPSTOR_EXPECTS(site >= 0 && site < env_->topology.site_count());
  // One owner id per (site, array type): release_app(owner) must only ever
  // drop *this* spare. A per-site owner would silently return a previously
  // bought spare of another type at the same site when a probe rolls back.
  int type_index = -1;
  for (std::size_t i = 0; i < env_->array_types.size(); ++i) {
    if (env_->array_types[i].name == type_name) {
      type_index = static_cast<int>(i);
      break;
    }
  }
  DEPSTOR_EXPECTS_MSG(type_index >= 0, type_name);
  const int owner = kSpareOwnerBase +
                    site * static_cast<int>(env_->array_types.size()) +
                    type_index;
  if (!enabled) {
    // Returning the spare: drop this site's spare allocations. Other sites'
    // spares use different owner ids and are untouched.
    if (pool_.has_spare_array(site, type_name)) {
      for (int id : pool_.devices_at(site, DeviceKind::DiskArray)) {
        if (pool_.device(id).type.name == type_name &&
            pool_.is_spare_device(id)) {
          pool_.release_app(owner);
          return;
        }
      }
    }
    return;
  }
  if (pool_.has_spare_array(site, type_name)) return;  // already there

  // A spare must live on its own (otherwise-idle) device: find an idle
  // device of the type at the site or create one, then reserve it.
  int device_id = -1;
  for (int id : pool_.devices_at(site, DeviceKind::DiskArray)) {
    if (pool_.device(id).type.name == type_name && !pool_.in_use(id)) {
      device_id = id;
      break;
    }
  }
  if (device_id < 0) {
    device_id = pool_.add_device(type_by_name(type_name), site);
  }
  pool_.allocate(device_id, {owner, Purpose::Spare, 0.0, 0.0});
  try {
    pool_.check_feasible();
  } catch (const InfeasibleError&) {
    pool_.release_app(owner);
    throw;
  }
}

int Candidate::set_extra_bandwidth_units(int device_id, int extra) {
  return pool_.set_extra_bandwidth_units(device_id, extra);
}

int Candidate::set_extra_capacity_units(int device_id, int extra) {
  return pool_.set_extra_capacity_units(device_id, extra);
}

CostBreakdown Candidate::evaluate() const {
  return evaluate_cost(env_->apps, assignments_, pool_, env_->failures,
                       env_->params);
}

void Candidate::check_feasible() const {
  pool_.check_feasible();
  for (const auto& asg : assignments_) {
    asg.validate();
  }
}

}  // namespace depstor
