#include "solver/design_solver.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "engine/eval_cache.hpp"
#include "engine/worker_pool.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Node {
  Candidate candidate;
  CostBreakdown cost;
};

/// One greedy+refit solve. The refit stage fans its sibling walks and
/// per-level neighbor evaluations onto a WorkerPool through TaskGroups; a
/// null pool (intra_node_workers == 1) degrades every fan to inline
/// execution in the same slot order, which is what makes the parallel and
/// sequential paths bit-identical under `deterministic`:
///
///  * every search step owns a fresh Rng seeded by derive_seed(seed,
///    {repetition, iteration, sibling, level, slot}) — no shared generator,
///    so the random stream a step sees never depends on scheduling;
///  * every step owns its Reconfigurator and ConfigSolver (both carry
///    mutable state), works on its own Candidate copy (whose incremental
///    evaluator travels with it), and only the slot-indexed result arrays
///    are shared — written before the group's wait() synchronizes;
///  * merges scan results in slot order with strict `<`, so ties resolve to
///    the lowest slot no matter which thread finished first;
///  * stats fold into order-independent sums (atomics + one mutex-guarded
///    accumulator).
class SolveRun {
 public:
  SolveRun(const Environment* env, const DesignSolverOptions& options,
           const ExecutionOptions& exec)
      : env_(env),
        options_(options),
        exec_(exec),
        time_budget_ms_(exec.time_budget_ms > 0.0 ? exec.time_budget_ms
                                                  : options.time_budget_ms) {
    if (exec_.eval_cache != nullptr) {
      env_salt_ = fingerprint_environment(*env_);
    }
    if (exec_.intra_node_workers > 1) {
      if (exec_.intra_pool != nullptr) {
        pool_ = exec_.intra_pool;
      } else {
        // The coordinating thread works too (help-while-wait), so n-way
        // intra parallelism needs n-1 pool threads.
        owned_pool_ =
            std::make_unique<WorkerPool>(exec_.intra_node_workers - 1);
        pool_ = owned_pool_.get();
      }
    }
  }

  SolveResult run();

 private:
  bool cancelled() const {
    return exec_.cancel != nullptr &&
           exec_.cancel->load(std::memory_order_acquire);
  }

  /// Deterministic mode ignores the wall clock: the explored node set must
  /// depend only on (options, seed), not on how fast threads happen to run.
  bool out_of_time() const {
    if (cancelled()) return true;
    if (exec_.deterministic) return false;
    return elapsed_since(start_) >= time_budget_ms_;
  }

  /// Complete a node after the edge changed `changed_app` (§3.2): scoped
  /// re-optimization by default, the literal full sweep when asked.
  CostBreakdown complete_node(const ConfigSolver& solver, Candidate& cand,
                              int changed_app) {
    nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
    if (exec_.progress != nullptr) {
      exec_.progress->fetch_add(1, std::memory_order_relaxed);
    }
    return options_.full_config_solve_every_node
               ? solver.solve(cand)
               : solver.solve_for_app(cand, changed_app);
  }

  /// One reconfiguration edge + node completion, runnable on any thread.
  /// The (rep, iter, sibling, level, slot) coordinates are the node's
  /// identity: they derive its private RNG stream.
  bool reconfig_step(Node& node, std::uint64_t rep, std::uint64_t iter,
                     std::uint64_t sibling, std::uint64_t level,
                     std::uint64_t slot) {
    DEPSTOR_TRACE_SPAN("reconfigure");
    Rng rng(derive_seed(options_.seed, {rep, iter, sibling, level, slot}));
    Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
    const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
    const int app =
        reconfigurator.pick_app_to_reconfigure(node.candidate, node.cost);
    const bool ok = reconfigurator.reconfigure_app(node.candidate, app);
    if (ok) node.cost = complete_node(solver, node.candidate, app);
    merge_stats(solver.stats());
    return ok;
  }

  std::optional<Node> greedy_stage(std::uint64_t rep);
  std::optional<Node> sibling_walk(const Node& initial, std::uint64_t rep,
                                   std::uint64_t iter, std::uint64_t sibling);
  bool refit_iteration(Node& best, std::uint64_t rep, std::uint64_t iter);
  Node refit_stage(Node start_node, std::uint64_t rep);

  void merge_stats(const ConfigSolverStats& stats) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    agg_stats_ += stats;
  }

  void note_group(const TaskGroup& group) {
    parallel_tasks_.fetch_add(group.spawned(), std::memory_order_relaxed);
    steal_count_.fetch_add(group.stolen(), std::memory_order_relaxed);
  }

  /// The pool a fan of `fan_size` independent tasks should use — null
  /// (inline execution in slot order) when the fan is too narrow to repay
  /// the TaskGroup claim/steal overhead (ExecutionOptions::intra_min_fan).
  /// Inline and pooled fans explore identical node sets, so this only
  /// changes where the work runs, never what it computes.
  WorkerPool* fan_pool(int fan_size) {
    if (pool_ == nullptr || fan_size < exec_.intra_min_fan) return nullptr;
    refit_fanned_.store(true, std::memory_order_relaxed);
    return pool_;
  }

  static void rethrow_first(std::vector<std::exception_ptr>& errors) {
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }

  void finish_stats();

  const Environment* env_;
  const DesignSolverOptions& options_;
  const ExecutionOptions& exec_;
  const double time_budget_ms_;
  const Clock::time_point start_ = Clock::now();

  std::uint64_t env_salt_ = 0;
  std::unique_ptr<WorkerPool> owned_pool_;
  WorkerPool* pool_ = nullptr;  ///< null → inline TaskGroups (sequential)

  SolveResult result_;
  std::atomic<std::int64_t> nodes_evaluated_{0};
  std::atomic<std::int64_t> parallel_tasks_{0};
  std::atomic<std::int64_t> steal_count_{0};
  std::atomic<bool> refit_fanned_{false};
  std::mutex stats_mu_;
  ConfigSolverStats agg_stats_;
};

// ---- Stage 1: greedy best-fit (Algorithm 1 lines 3-8) ----
// Inherently sequential (each placement depends on the previous one); runs
// on the coordinating thread with its own master RNG, which the refit stage
// never touches — refit steps derive their streams structurally.
std::optional<Node> SolveRun::greedy_stage(std::uint64_t rep) {
  DEPSTOR_TRACE_SPAN("greedy");
  // The path {rep, ~0} cannot collide with a refit step's path — a refit
  // iteration index never reaches ~0.
  Rng rng(derive_seed(options_.seed, {rep, ~std::uint64_t{0}}));
  Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
  const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
  std::optional<Node> out;
  for (int restart = 0; restart < options_.max_greedy_restarts; ++restart) {
    ++result_.greedy_restarts;
    Candidate cand(env_);
    bool failed = false;
    while (cand.assigned_count() < static_cast<int>(env_->apps.size())) {
      if (cancelled()) {
        failed = true;  // stop mid-greedy; the partial design is dropped
        break;
      }
      const auto unassigned = cand.unassigned_apps();
      int next = -1;
      if (options_.greedy_order == GreedyOrder::MaxPenalty) {
        next = *std::max_element(
            unassigned.begin(), unassigned.end(), [&](int a, int b) {
              return env_->app(a).penalty_rate_sum() <
                     env_->app(b).penalty_rate_sum();
            });
      } else {
        std::vector<double> weights;
        weights.reserve(unassigned.size());
        for (int id : unassigned) {
          weights.push_back(env_->app(id).penalty_rate_sum());
        }
        next = unassigned[rng.weighted_index(weights)];
      }
      if (!reconfigurator.reconfigure_app(cand, next)) {
        failed = true;  // cannot place the remaining apps: restart greedy
        break;
      }
      complete_node(solver, cand, next);
    }
    if (!failed) {
      // Full configuration pass over the completed greedy design.
      nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
      const CostBreakdown cost = solver.solve(cand);
      out = Node{std::move(cand), cost};
      break;
    }
    if (out_of_time()) break;
  }
  merge_stats(solver.stats());
  return out;
}

/// One depth-`d` walk from a sibling of the incumbent (Algorithm 1 lines
/// 20-33). The sibling step is node (rep, iter, sibling, 0, 0); each level
/// then fans `b` neighbor evaluations — slots (rep, iter, sibling, level,
/// 0..b-1) — onto the pool and descends to the slot-ordered best, worse or
/// not. Returns the best node seen on the walk (empty when even the sibling
/// step failed).
std::optional<Node> SolveRun::sibling_walk(const Node& initial,
                                           std::uint64_t rep,
                                           std::uint64_t iter,
                                           std::uint64_t sibling) {
  DEPSTOR_TRACE_SPAN("refit_walk");
  Node cur = initial;  // each sibling walk restarts from the incumbent
  if (!reconfig_step(cur, rep, iter, sibling, 0, 0)) return std::nullopt;
  std::optional<Node> best = cur;
  const int breadth = options_.breadth;
  for (int level = 1; level <= options_.depth; ++level) {
    if (out_of_time()) break;
    std::vector<std::optional<Node>> slots(
        static_cast<std::size_t>(breadth));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(breadth));
    {
      TaskGroup group(fan_pool(breadth));
      for (int k = 0; k < breadth; ++k) {
        group.run([this, &cur, &slots, &errors, rep, iter, sibling, level,
                   k] {
          try {
            Node neighbor = cur;
            if (reconfig_step(neighbor, rep, iter, sibling,
                              static_cast<std::uint64_t>(level),
                              static_cast<std::uint64_t>(k))) {
              slots[static_cast<std::size_t>(k)] = std::move(neighbor);
            }
          } catch (...) {
            errors[static_cast<std::size_t>(k)] = std::current_exception();
          }
        });
      }
      group.wait();
      note_group(group);
    }
    rethrow_first(errors);
    // Level merge: strict `<` in slot order — ties go to the lowest slot,
    // independent of completion order.
    std::optional<Node> level_best;
    for (auto& slot : slots) {
      if (slot &&
          (!level_best || slot->cost.total() < level_best->cost.total())) {
        level_best = std::move(*slot);
      }
    }
    if (!level_best) break;
    cur = std::move(*level_best);  // descend even when worse (escape minima)
    if (cur.cost.total() < best->cost.total()) best = cur;
  }
  return best;
}

/// One refit iteration: fan `b` independent sibling walks from a snapshot of
/// the incumbent, then merge their bests in sibling order. Returns whether
/// the incumbent improved (Algorithm 1's termination signal).
bool SolveRun::refit_iteration(Node& best, std::uint64_t rep,
                               std::uint64_t iter) {
  const Node initial = best;
  const int breadth = options_.breadth;
  std::vector<std::optional<Node>> walk_best(
      static_cast<std::size_t>(breadth));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(breadth));
  {
    TaskGroup group(fan_pool(breadth));
    for (int s = 0; s < breadth; ++s) {
      group.run([this, &initial, &walk_best, &errors, rep, iter, s] {
        try {
          walk_best[static_cast<std::size_t>(s)] =
              sibling_walk(initial, rep, iter, static_cast<std::uint64_t>(s));
        } catch (...) {
          errors[static_cast<std::size_t>(s)] = std::current_exception();
        }
      });
    }
    group.wait();
    note_group(group);
  }
  rethrow_first(errors);
  bool improved = false;
  for (auto& walk : walk_best) {
    if (walk && walk->cost.total() < best.cost.total()) {
      best = std::move(*walk);
      improved = true;
    }
  }
  return improved;
}

// ---- Stage 2: refit (Algorithm 1 lines 14-42) ----
Node SolveRun::refit_stage(Node start_node, std::uint64_t rep) {
  DEPSTOR_TRACE_SPAN("refit");
  Node best = std::move(start_node);
  for (int iter = 0; iter < options_.max_refit_iterations; ++iter) {
    if (out_of_time()) break;
    ++result_.refit_iterations;
    if (!refit_iteration(best, rep, static_cast<std::uint64_t>(iter))) {
      break;  // local optimum (Algorithm 1 termination)
    }
  }
  return best;
}

void SolveRun::finish_stats() {
  result_.cancelled = cancelled();
  result_.nodes_evaluated = nodes_evaluated_.load(std::memory_order_relaxed);
  result_.refit_parallel_tasks =
      parallel_tasks_.load(std::memory_order_relaxed);
  result_.refit_steal_count = steal_count_.load(std::memory_order_relaxed);
  result_.refit_fanned = refit_fanned_.load(std::memory_order_relaxed);
  result_.evaluations = agg_stats_.evaluations;
  result_.cache_hits = agg_stats_.cache_hits;
  result_.cache_misses = agg_stats_.cache_misses;
  result_.scenarios_simulated = agg_stats_.incremental.scenarios_simulated;
  result_.scenarios_reused = agg_stats_.incremental.scenarios_reused;
  result_.eval_ms = agg_stats_.eval_ms;
  result_.sweep_ms = agg_stats_.sweep_ms;
  result_.increment_ms = agg_stats_.increment_ms;

  // Publish the per-solve counters into the central registry (obs/counters)
  // — one end-of-solve batch of adds, never per-node traffic, so the hot
  // loops share no cache line across solver threads.
  auto& reg = obs::counters();
  reg.add("solver.solves", 1);
  reg.add("solver.nodes_evaluated", result_.nodes_evaluated);
  reg.add("solver.greedy_restarts", result_.greedy_restarts);
  reg.add("solver.refit_iterations", result_.refit_iterations);
  reg.add("solver.refit_parallel_tasks", result_.refit_parallel_tasks);
  reg.add("solver.refit_steal_count", result_.refit_steal_count);
  reg.add(result_.refit_fanned ? "solver.refit_fans_pooled"
                               : "solver.refit_fans_inline",
          1);
  reg.add("solver.evaluations", result_.evaluations);
  reg.add("solver.cache_hits", result_.cache_hits);
  reg.add("solver.cache_misses", result_.cache_misses);
  reg.add("solver.scenarios_simulated", result_.scenarios_simulated);
  reg.add("solver.scenarios_reused", result_.scenarios_reused);
  reg.set_gauge("solver.last_eval_ms", result_.eval_ms);
  reg.set_gauge("solver.last_sweep_ms", result_.sweep_ms);
  reg.set_gauge("solver.last_increment_ms", result_.increment_ms);
}

SolveResult SolveRun::run() {
  DEPSTOR_TRACE_SPAN("solve");

  // The two-stage search is repeated (randomized restarts) until the time
  // budget is exhausted; the best design over all repetitions is returned
  // (§3.1: "the search is repeated multiple times..."). Deterministic mode
  // has no clock, so the open-ended default caps at one repetition.
  const int max_repetitions =
      exec_.deterministic && options_.max_repetitions == 0
          ? 1
          : options_.max_repetitions;
  std::optional<Node> global_best;
  int repetitions = 0;
  do {
    const auto rep = static_cast<std::uint64_t>(repetitions);
    ++repetitions;
    std::optional<Node> incumbent = greedy_stage(rep);
    if (!incumbent) continue;  // restart budget burned; retry while time lasts
    Node local = refit_stage(std::move(*incumbent), rep);
    if (!global_best || local.cost.total() < global_best->cost.total()) {
      global_best = std::move(local);
    }
  } while (!out_of_time() &&
           (max_repetitions == 0 || repetitions < max_repetitions));

  if (!global_best) {
    result_.elapsed_ms = elapsed_since(start_);
    finish_stats();
    return std::move(result_);
  }

  // Final polish: one full configuration pass over the winner (scoped
  // per-node passes may have left cross-application interval interactions
  // unexplored).
  {
    DEPSTOR_TRACE_SPAN("polish");
    const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
    global_best->cost = solver.solve(global_best->candidate);
    merge_stats(solver.stats());
  }
  result_.elapsed_ms = elapsed_since(start_);
  finish_stats();

  DEPSTOR_LOG(Info, "design solver: cost " << global_best->cost.total()
                                           << " after "
                                           << result_.nodes_evaluated
                                           << " nodes");
  global_best->candidate.check_feasible();
  if (analysis::debug_audit_enabled()) {
    // Debug post-check: the winning design must satisfy every paper
    // invariant (all apps mapped, mirror isolation, usage within
    // provisioning) and its claimed cost must recompute to the same total.
    analysis::enforce_audit(global_best->candidate, &global_best->cost, {},
                            "SolveRun::run");
  }
  result_.cost = global_best->cost;
  result_.best = std::move(global_best->candidate);
  result_.feasible = true;
  return std::move(result_);
}

void validate(const Environment* env, const DesignSolverOptions& options,
              const ExecutionOptions& exec) {
  DEPSTOR_EXPECTS(env != nullptr);
  DEPSTOR_EXPECTS(options.breadth >= 1);
  DEPSTOR_EXPECTS(options.depth >= 1);
  DEPSTOR_EXPECTS(options.max_refit_iterations >= 0);
  DEPSTOR_EXPECTS(options.max_greedy_restarts >= 1);
  DEPSTOR_EXPECTS_MSG(exec.intra_node_workers >= 1,
                      "intra_node_workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(exec.intra_min_fan >= 1, "intra_min_fan must be >= 1");
  env->validate();
}

}  // namespace

namespace detail {

SolveResult solve_impl(const Environment* env,
                       const DesignSolverOptions& options,
                       const ExecutionOptions& exec) {
  validate(env, options, exec);
  SolveRun run(env, options, exec);
  return run.run();
}

}  // namespace detail

DesignSolver::DesignSolver(const Environment* env, DesignSolverOptions options)
    : env_(env), options_(options) {
  validate(env, options_, ExecutionOptions{});
}

SolveResult DesignSolver::solve() {
  return detail::solve_impl(env_, options_, ExecutionOptions{});
}

}  // namespace depstor
