#include "solver/design_solver.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/audit.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Node {
  Candidate candidate;
  CostBreakdown cost;
};

}  // namespace

DesignSolver::DesignSolver(const Environment* env, DesignSolverOptions options)
    : env_(env), options_(options) {
  DEPSTOR_EXPECTS(env != nullptr);
  DEPSTOR_EXPECTS(options_.breadth >= 1);
  DEPSTOR_EXPECTS(options_.depth >= 1);
  DEPSTOR_EXPECTS(options_.max_refit_iterations >= 0);
  DEPSTOR_EXPECTS(options_.max_greedy_restarts >= 1);
  env_->validate();
}

SolveResult DesignSolver::solve() {
  DEPSTOR_TRACE_SPAN("solve");
  const auto start = Clock::now();
  SolveResult result;
  Rng rng(options_.seed);
  Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
  ConfigSolver config_solver(env_, options_.eval_cache);

  auto cancelled = [&] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_acquire);
  };
  auto out_of_time = [&] {
    return elapsed_ms(start) >= options_.time_budget_ms || cancelled();
  };

  // Complete a node after the edge changed `changed_app` (§3.2): scoped
  // re-optimization by default, the literal full sweep when asked.
  auto complete_node = [&](Candidate& cand, int changed_app) -> CostBreakdown {
    ++result.nodes_evaluated;
    if (options_.progress != nullptr) {
      options_.progress->fetch_add(1, std::memory_order_relaxed);
    }
    return options_.full_config_solve_every_node
               ? config_solver.solve(cand)
               : config_solver.solve_for_app(cand, changed_app);
  };

  auto reconfig_step = [&](Node& node) -> bool {
    DEPSTOR_TRACE_SPAN("reconfigure");
    const int app =
        reconfigurator.pick_app_to_reconfigure(node.candidate, node.cost);
    if (!reconfigurator.reconfigure_app(node.candidate, app)) return false;
    node.cost = complete_node(node.candidate, app);
    return true;
  };

  // ---- Stage 1: greedy best-fit (Algorithm 1 lines 3-8) ----
  auto greedy_stage = [&]() -> std::optional<Node> {
    DEPSTOR_TRACE_SPAN("greedy");
    for (int restart = 0; restart < options_.max_greedy_restarts; ++restart) {
      ++result.greedy_restarts;
      Candidate cand(env_);
      bool failed = false;
      while (cand.assigned_count() < static_cast<int>(env_->apps.size())) {
        if (cancelled()) {
          failed = true;  // stop mid-greedy; the partial design is dropped
          break;
        }
        const auto unassigned = cand.unassigned_apps();
        int next = -1;
        if (options_.greedy_order == GreedyOrder::MaxPenalty) {
          next = *std::max_element(
              unassigned.begin(), unassigned.end(), [&](int a, int b) {
                return env_->app(a).penalty_rate_sum() <
                       env_->app(b).penalty_rate_sum();
              });
        } else {
          std::vector<double> weights;
          weights.reserve(unassigned.size());
          for (int id : unassigned) {
            weights.push_back(env_->app(id).penalty_rate_sum());
          }
          next = unassigned[rng.weighted_index(weights)];
        }
        if (!reconfigurator.reconfigure_app(cand, next)) {
          failed = true;  // cannot place the remaining apps: restart greedy
          break;
        }
        complete_node(cand, next);
      }
      if (!failed) {
        // Full configuration pass over the completed greedy design.
        ++result.nodes_evaluated;
        const CostBreakdown cost = config_solver.solve(cand);
        return Node{std::move(cand), cost};
      }
      if (out_of_time()) break;
    }
    return std::nullopt;
  };

  // ---- Stage 2: refit (Algorithm 1 lines 14-42) ----
  // Walks `breadth` siblings of the incumbent; from each, a depth-`depth`
  // descent evaluates `breadth` random neighbors per level and moves to the
  // level's best even when it is worse than the current node (that is how
  // the search escapes local minima). Returns the best node seen.
  auto refit_stage = [&](Node start_node) -> Node {
    DEPSTOR_TRACE_SPAN("refit");
    Node best = std::move(start_node);
    for (int iter = 0; iter < options_.max_refit_iterations; ++iter) {
      if (out_of_time()) break;
      ++result.refit_iterations;
      bool improved = false;
      const Node initial = best;

      for (int sibling = 0; sibling < options_.breadth; ++sibling) {
        Node cur = initial;  // each sibling walk restarts from the incumbent
        if (!reconfig_step(cur)) continue;
        if (cur.cost.total() < best.cost.total()) {
          best = cur;
          improved = true;
        }
        for (int level = 0; level < options_.depth; ++level) {
          if (out_of_time()) break;
          std::optional<Node> level_best;
          for (int k = 0; k < options_.breadth; ++k) {
            Node neighbor = cur;
            if (!reconfig_step(neighbor)) continue;
            if (!level_best ||
                neighbor.cost.total() < level_best->cost.total()) {
              level_best = std::move(neighbor);
            }
          }
          if (!level_best) break;
          cur = std::move(*level_best);
          if (cur.cost.total() < best.cost.total()) {
            best = cur;
            improved = true;
          }
        }
        if (out_of_time()) break;
      }
      if (!improved) break;  // local optimum (Algorithm 1 termination)
    }
    return best;
  };

  // The two-stage search is repeated (randomized restarts) until the time
  // budget is exhausted; the best design over all repetitions is returned
  // (§3.1: "the search is repeated multiple times...").
  std::optional<Node> global_best;
  int repetitions = 0;
  do {
    ++repetitions;
    std::optional<Node> incumbent = greedy_stage();
    if (!incumbent) continue;  // restart budget burned; retry while time lasts
    Node local = refit_stage(std::move(*incumbent));
    if (!global_best || local.cost.total() < global_best->cost.total()) {
      global_best = std::move(local);
    }
  } while (!out_of_time() &&
           (options_.max_repetitions == 0 ||
            repetitions < options_.max_repetitions));

  auto finish_stats = [&] {
    result.cancelled = cancelled();
    result.evaluations = config_solver.stats().evaluations;
    result.cache_hits = config_solver.stats().cache_hits;
    result.cache_misses = config_solver.stats().cache_misses;
    result.scenarios_simulated =
        config_solver.stats().incremental.scenarios_simulated;
    result.scenarios_reused =
        config_solver.stats().incremental.scenarios_reused;
    result.eval_ms = config_solver.stats().eval_ms;
    result.sweep_ms = config_solver.stats().sweep_ms;
    result.increment_ms = config_solver.stats().increment_ms;

    // Publish the per-solve counters into the central registry (obs/counters)
    // — one end-of-solve batch of adds, never per-node traffic, so the hot
    // loops share no cache line across solver threads.
    auto& reg = obs::counters();
    reg.add("solver.solves", 1);
    reg.add("solver.nodes_evaluated", result.nodes_evaluated);
    reg.add("solver.greedy_restarts", result.greedy_restarts);
    reg.add("solver.refit_iterations", result.refit_iterations);
    reg.add("solver.evaluations", result.evaluations);
    reg.add("solver.cache_hits", result.cache_hits);
    reg.add("solver.cache_misses", result.cache_misses);
    reg.add("solver.scenarios_simulated", result.scenarios_simulated);
    reg.add("solver.scenarios_reused", result.scenarios_reused);
    reg.set_gauge("solver.last_eval_ms", result.eval_ms);
    reg.set_gauge("solver.last_sweep_ms", result.sweep_ms);
    reg.set_gauge("solver.last_increment_ms", result.increment_ms);
  };

  if (!global_best) {
    result.elapsed_ms = elapsed_ms(start);
    finish_stats();
    return result;
  }

  // Final polish: one full configuration pass over the winner (scoped
  // per-node passes may have left cross-application interval interactions
  // unexplored).
  {
    DEPSTOR_TRACE_SPAN("polish");
    global_best->cost = config_solver.solve(global_best->candidate);
  }
  result.elapsed_ms = elapsed_ms(start);
  finish_stats();

  DEPSTOR_LOG(Info, "design solver: cost " << global_best->cost.total()
                                           << " after "
                                           << result.nodes_evaluated
                                           << " nodes");
  global_best->candidate.check_feasible();
  if (analysis::debug_audit_enabled()) {
    // Debug post-check: the winning design must satisfy every paper
    // invariant (all apps mapped, mirror isolation, usage within
    // provisioning) and its claimed cost must recompute to the same total.
    analysis::enforce_audit(global_best->candidate, &global_best->cost, {},
                            "DesignSolver::solve");
  }
  result.cost = global_best->cost;
  result.best = std::move(global_best->candidate);
  result.feasible = true;
  return result;
}

}  // namespace depstor
