#include "solver/design_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "engine/eval_cache.hpp"
#include "engine/worker_pool.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace depstor {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Node {
  Candidate candidate;
  CostBreakdown cost;
};

/// Recycled Node storage shared by every fan of one solve (DESIGN.md §9).
/// Copying the incumbent into a *warm* node — one whose layout vectors and
/// incremental-evaluator scenario tables already hold capacity from an
/// earlier task — is a capacity-reusing copy-assign, roughly 3x cheaper
/// than the cold copy-construction the old fan paid on every task. Leases
/// rather than per-thread slots because a slot's result must outlive the
/// task that produced it: it is written on whichever thread claimed the
/// chunk and consumed at the slot-ordered merge on the coordinating thread.
class NodeArena {
 public:
  explicit NodeArena(const Environment* env) : env_(env) {}

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        arena_ = other.arena_;
        node_ = std::move(other.node_);
        other.arena_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    explicit operator bool() const { return node_ != nullptr; }
    Node& node() { return *node_; }
    const Node& node() const { return *node_; }

    /// Hand the node back to the freelist, buffers intact, for the next
    /// lease to assign into.
    void release() {
      if (node_ != nullptr) arena_->recycle(std::move(node_));
      arena_ = nullptr;
    }

   private:
    friend class NodeArena;
    Lease(NodeArena* arena, std::unique_ptr<Node> node)
        : arena_(arena), node_(std::move(node)) {}
    NodeArena* arena_ = nullptr;
    std::unique_ptr<Node> node_;
  };

  /// Lease a node holding a copy of `src` — assigned into recycled storage
  /// when any is free, freshly constructed only while the arena is cold.
  Lease lease(const Node& src) {
    std::unique_ptr<Node> node = take();
    if (node == nullptr) {
      node = std::make_unique<Node>(Node{Candidate(env_), CostBreakdown{}});
    }
    *node = src;
    return Lease(this, std::move(node));
  }

 private:
  std::unique_ptr<Node> take() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return nullptr;
    std::unique_ptr<Node> node = std::move(free_.back());
    free_.pop_back();
    return node;
  }

  void recycle(std::unique_ptr<Node> node) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(node));
  }

  const Environment* env_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Node>> free_;
};

/// One greedy+refit solve. The refit stage fans its sibling walks and
/// per-level neighbor evaluations onto a WorkerPool through TaskGroup's
/// chunk-claimed run_indexed; a null pool (intra_node_workers == 1)
/// degrades every fan to inline execution in the same slot order, which is
/// what makes the parallel and sequential paths bit-identical under
/// `deterministic`:
///
///  * every search step owns a fresh Rng seeded by derive_seed(seed,
///    {repetition, iteration, sibling, level, slot}) — no shared generator,
///    so the random stream a step sees never depends on scheduling;
///  * every step owns its Reconfigurator and ConfigSolver (both carry
///    mutable state), works on its own Candidate copy (whose incremental
///    evaluator travels with it), and only the slot-indexed result arrays
///    are shared — written before the group's wait() synchronizes;
///  * merges scan results in slot order with strict `<`, so ties resolve to
///    the lowest slot no matter which thread finished first;
///  * stats fold into order-independent sums (atomics + one mutex-guarded
///    accumulator).
class SolveRun {
 public:
  SolveRun(const Environment* env, const DesignSolverOptions& options,
           const ExecutionOptions& exec,
           const detail::WarmStart* warm = nullptr,
           const ScenarioModel* scenarios = nullptr)
      : env_(env),
        options_(options),
        exec_(exec),
        warm_(warm),
        scenarios_(scenarios),
        time_budget_ms_(exec.time_budget_ms > 0.0 ? exec.time_budget_ms
                                                  : options.time_budget_ms) {
    if (exec_.eval_cache != nullptr) {
      env_salt_ = fingerprint_environment(*env_);
      if (scenarios_ != nullptr) {
        // An overridden scenario model prices the same design differently;
        // cache entries must not cross models.
        const std::uint64_t sfp = fingerprint_scenarios(*scenarios_);
        env_salt_ ^= sfp + 0x9e3779b97f4a7c15ULL + (env_salt_ << 6) +
                     (env_salt_ >> 2);
      }
    }
    if (exec_.intra_node_workers > 1) {
      if (exec_.intra_pool != nullptr) {
        pool_ = exec_.intra_pool;
      } else {
        // The coordinating thread works too (help-while-wait), so n-way
        // intra parallelism needs n-1 pool threads.
        owned_pool_ =
            std::make_unique<WorkerPool>(exec_.intra_node_workers - 1);
        pool_ = owned_pool_.get();
      }
    }
    if (exec_.intra_min_fan >= 1) effective_min_fan_ = exec_.intra_min_fan;
    refit_iterations_budget_ = options_.max_refit_iterations;
    refit_walks_ = options_.breadth;
    refit_depth_ = options_.depth;
  }

  SolveResult run();

 private:
  bool cancelled() const {
    return exec_.cancel != nullptr &&
           exec_.cancel->load(std::memory_order_acquire);
  }

  /// Deterministic mode ignores the wall clock: the explored node set must
  /// depend only on (options, seed), not on how fast threads happen to run.
  bool out_of_time() const {
    if (cancelled()) return true;
    if (exec_.deterministic) return false;
    return elapsed_since(start_) >= time_budget_ms_;
  }

  /// Complete a node after the edge changed `changed_app` (§3.2): scoped
  /// re-optimization by default, the literal full sweep when asked.
  CostBreakdown complete_node(const ConfigSolver& solver, Candidate& cand,
                              int changed_app) {
    nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
    if (exec_.progress != nullptr) {
      exec_.progress->fetch_add(1, std::memory_order_relaxed);
    }
    return options_.full_config_solve_every_node
               ? solver.solve(cand)
               : solver.solve_for_app(cand, changed_app);
  }

  /// One reconfiguration edge + node completion, runnable on any thread.
  /// The (rep, iter, sibling, level, slot) coordinates are the node's
  /// identity: they derive its private RNG stream.
  bool reconfig_step(Node& node, std::uint64_t rep, std::uint64_t iter,
                     std::uint64_t sibling, std::uint64_t level,
                     std::uint64_t slot) {
    DEPSTOR_TRACE_SPAN("reconfigure");
    Rng rng(derive_seed(options_.seed, {rep, iter, sibling, level, slot}));
    Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
    if (warm_ != nullptr) reconfigurator.restrict_to(warm_->focus_apps);
    const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
    const int app =
        reconfigurator.pick_app_to_reconfigure(node.candidate, node.cost);
    const bool ok = reconfigurator.reconfigure_app(node.candidate, app);
    if (ok) node.cost = complete_node(solver, node.candidate, app);
    merge_stats(solver.stats());
    return ok;
  }

  std::optional<Node> greedy_stage(std::uint64_t rep);
  std::optional<Node> warm_stage();
  NodeArena::Lease sibling_walk(const Node& initial, std::uint64_t rep,
                                std::uint64_t iter, std::uint64_t sibling);
  bool refit_iteration(Node& best, std::uint64_t rep, std::uint64_t iter);
  Node refit_stage(Node start_node, std::uint64_t rep);
  void calibrate_min_fan();

  void merge_stats(const ConfigSolverStats& stats) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    agg_stats_ += stats;
  }

  void note_group(const TaskGroup& group) {
    parallel_tasks_.fetch_add(group.spawned(), std::memory_order_relaxed);
    steal_count_.fetch_add(group.stolen(), std::memory_order_relaxed);
  }

  /// The pool a fan of `fan_size` independent slots should use — null
  /// (inline execution in slot order) when the fan is too narrow to repay
  /// the dispatch overhead (explicit intra_min_fan, or the calibrated
  /// threshold when the option is 0 = auto). Inline and pooled fans explore
  /// identical node sets, so this only changes where the work runs, never
  /// what it computes.
  WorkerPool* fan_pool(int fan_size) {
    if (pool_ == nullptr || fan_size < effective_min_fan_) return nullptr;
    refit_fanned_.store(true, std::memory_order_relaxed);
    return pool_;
  }

  /// Chunk size for a fan of `fan_size` slots: coarse enough that the fan
  /// presents ~3 claimable chunks per cooperating thread (one fetch_add
  /// amortized across the chunk) while leaving enough chunks for the
  /// help-while-wait path to balance uneven slot costs. Chunking only
  /// groups consecutive slots onto one claim — merge order is unchanged.
  int fan_chunk(int fan_size) const {
    const int target_chunks = 3 * std::max(1, exec_.intra_node_workers);
    return std::max(1, (fan_size + target_chunks - 1) / target_chunks);
  }

  void finish_stats();

  const Environment* env_;
  const DesignSolverOptions& options_;
  const ExecutionOptions& exec_;
  const detail::WarmStart* warm_ = nullptr;
  const ScenarioModel* scenarios_ = nullptr;  ///< request override, or null
  const double time_budget_ms_;
  const Clock::time_point start_ = Clock::now();

  /// Refit budget actually explored. Cold solves use the full options; warm
  /// solves scale each dimension by the focus share before refit (see
  /// run()) — a delta touching a sixth of the environment gets roughly a
  /// sixth the iterations, sibling walks, and walk depth. The per-level
  /// slot fan keeps options_.breadth so node coordinates (and thus their
  /// derived RNG streams) mean the same thing in both modes.
  int refit_iterations_budget_ = 0;
  int refit_walks_ = 0;
  int refit_depth_ = 0;

  std::uint64_t env_salt_ = 0;
  std::unique_ptr<WorkerPool> owned_pool_;
  WorkerPool* pool_ = nullptr;  ///< null → inline TaskGroups (sequential)
  NodeArena arena_{env_};
  /// Threshold fan_pool applies: exec_.intra_min_fan when explicit (>= 1),
  /// otherwise 0 until calibrate_min_fan() measures one at refit entry.
  int effective_min_fan_ = 0;

  SolveResult result_;
  std::atomic<std::int64_t> nodes_evaluated_{0};
  std::atomic<std::int64_t> parallel_tasks_{0};
  std::atomic<std::int64_t> steal_count_{0};
  std::atomic<bool> refit_fanned_{false};
  std::mutex stats_mu_;
  ConfigSolverStats agg_stats_;
};

// ---- Stage 1: greedy best-fit (Algorithm 1 lines 3-8) ----
// Inherently sequential (each placement depends on the previous one); runs
// on the coordinating thread with its own master RNG, which the refit stage
// never touches — refit steps derive their streams structurally.
std::optional<Node> SolveRun::greedy_stage(std::uint64_t rep) {
  DEPSTOR_TRACE_SPAN("greedy");
  // The path {rep, ~0} cannot collide with a refit step's path — a refit
  // iteration index never reaches ~0.
  Rng rng(derive_seed(options_.seed, {rep, ~std::uint64_t{0}}));
  Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
  const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
  std::optional<Node> out;
  for (int restart = 0; restart < options_.max_greedy_restarts; ++restart) {
    ++result_.greedy_restarts;
    Candidate cand(env_);
    // A fresh candidate starts fully dirty, so the override costs nothing
    // extra here.
    if (scenarios_ != nullptr) cand.set_scenario_model(*scenarios_);
    bool failed = false;
    while (cand.assigned_count() < static_cast<int>(env_->apps.size())) {
      if (cancelled()) {
        failed = true;  // stop mid-greedy; the partial design is dropped
        break;
      }
      const auto unassigned = cand.unassigned_apps();
      int next = -1;
      if (options_.greedy_order == GreedyOrder::MaxPenalty) {
        next = *std::max_element(
            unassigned.begin(), unassigned.end(), [&](int a, int b) {
              return env_->app(a).penalty_rate_sum() <
                     env_->app(b).penalty_rate_sum();
            });
      } else {
        std::vector<double> weights;
        weights.reserve(unassigned.size());
        for (int id : unassigned) {
          weights.push_back(env_->app(id).penalty_rate_sum());
        }
        next = unassigned[rng.weighted_index(weights)];
      }
      if (!reconfigurator.reconfigure_app(cand, next)) {
        failed = true;  // cannot place the remaining apps: restart greedy
        break;
      }
      complete_node(solver, cand, next);
    }
    if (!failed) {
      // Full configuration pass over the completed greedy design.
      nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
      const CostBreakdown cost = solver.solve(cand);
      out = Node{std::move(cand), cost};
      break;
    }
    if (out_of_time()) break;
  }
  merge_stats(solver.stats());
  return out;
}

// ---- Warm start (depstor::resolve): the seed replaces greedy ----
// The seed is a prior solution migrated onto this environment; its
// incremental evaluator arrives with every scenario the delta did not touch
// still cached, so pricing it re-simulates only the dirtied scenarios. Apps
// the delta left unassigned (additions, failed re-placements of resized
// apps) are placed penalty-descending with the same operator greedy uses;
// scoped configuration passes then refresh the focus apps' chains. Returns
// nullopt when a placement fails — the caller falls back to a cold solve.
std::optional<Node> SolveRun::warm_stage() {
  DEPSTOR_TRACE_SPAN("warm_seed");
  Node node{*warm_->seed, CostBreakdown{}};
  // Overriding the seed's scenario model marks everything dirty — correct
  // (its cached results embed the old rates) but it forfeits the warm
  // cache, so resolve callers should override only when rates truly differ.
  if (scenarios_ != nullptr) node.candidate.set_scenario_model(*scenarios_);
  // Same non-colliding RNG path as greedy ({rep=0, ~0}): warm runs exactly
  // one repetition, so the stream is unique within the solve.
  Rng rng(derive_seed(options_.seed, {0, ~std::uint64_t{0}}));
  Reconfigurator reconfigurator(env_, &rng, options_.reconfigure);
  const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
  auto unassigned = node.candidate.unassigned_apps();
  std::sort(unassigned.begin(), unassigned.end(), [&](int a, int b) {
    return env_->app(a).penalty_rate_sum() > env_->app(b).penalty_rate_sum();
  });
  bool priced = false;
  bool ok = true;
  for (int id : unassigned) {
    if (cancelled() || !reconfigurator.reconfigure_app(node.candidate, id)) {
      ok = false;
      break;
    }
    node.cost = complete_node(solver, node.candidate, id);
    priced = true;
  }
  if (ok && warm_->focus_apps != nullptr) {
    // Ascending id order: deterministic, and resized apps re-tune their
    // backup chains against the new specs before refit perturbs layouts.
    for (int id : *warm_->focus_apps) {
      if (!node.candidate.is_assigned(id)) continue;
      nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
      node.cost = solver.solve_for_app(node.candidate, id);
      priced = true;
    }
  }
  merge_stats(solver.stats());
  if (!ok) return std::nullopt;
  if (!priced) node.cost = node.candidate.evaluate();
  return node;
}

/// One depth-`d` walk from a sibling of the incumbent (Algorithm 1 lines
/// 20-33). The sibling step is node (rep, iter, sibling, 0, 0); each level
/// then fans `b` neighbor evaluations — slots (rep, iter, sibling, level,
/// 0..b-1) — onto the pool in chunked claims and descends to the
/// slot-ordered best, worse or not. Returns the best node seen on the walk
/// in arena storage (an empty lease when even the sibling step failed).
NodeArena::Lease SolveRun::sibling_walk(const Node& initial,
                                        std::uint64_t rep,
                                        std::uint64_t iter,
                                        std::uint64_t sibling) {
  DEPSTOR_TRACE_SPAN("refit_walk");
  // Each sibling walk restarts from the incumbent; the working copy lives
  // in recycled arena storage.
  NodeArena::Lease cur = arena_.lease(initial);
  if (!reconfig_step(cur.node(), rep, iter, sibling, 0, 0)) return {};
  NodeArena::Lease best = arena_.lease(cur.node());
  const int breadth = options_.breadth;
  for (int level = 1; level <= refit_depth_; ++level) {
    if (out_of_time()) break;
    std::vector<NodeArena::Lease> slots(static_cast<std::size_t>(breadth));
    {
      TaskGroup group(fan_pool(breadth));
      group.run_indexed(breadth, fan_chunk(breadth), [&](int k) {
        NodeArena::Lease neighbor = arena_.lease(cur.node());
        if (reconfig_step(neighbor.node(), rep, iter, sibling,
                          static_cast<std::uint64_t>(level),
                          static_cast<std::uint64_t>(k))) {
          slots[static_cast<std::size_t>(k)] = std::move(neighbor);
        }
      });
      group.wait();  // rethrows the lowest-slot task error, if any
      note_group(group);
    }
    // Level merge: strict `<` in slot order — ties go to the lowest slot,
    // independent of which thread ran which chunk.
    int best_slot = -1;
    for (int k = 0; k < breadth; ++k) {
      auto& slot = slots[static_cast<std::size_t>(k)];
      if (slot && (best_slot < 0 ||
                   slot.node().cost.total() <
                       slots[static_cast<std::size_t>(best_slot)]
                           .node()
                           .cost.total())) {
        best_slot = k;
      }
    }
    if (best_slot < 0) break;
    // Descend even when worse (escape minima). Swapping leases retires the
    // abandoned incumbent's buffers to the freelist still warm.
    std::swap(cur, slots[static_cast<std::size_t>(best_slot)]);
    if (cur.node().cost.total() < best.node().cost.total()) {
      best.node() = cur.node();
    }
  }
  return best;
}

/// One refit iteration: fan `b` independent sibling walks from a snapshot of
/// the incumbent, then merge their bests in sibling order. Returns whether
/// the incumbent improved (Algorithm 1's termination signal).
bool SolveRun::refit_iteration(Node& best, std::uint64_t rep,
                               std::uint64_t iter) {
  // Snapshot the incumbent into arena storage; every walk reads it.
  NodeArena::Lease initial = arena_.lease(best);
  const int walks = refit_walks_;
  std::vector<NodeArena::Lease> walk_best(static_cast<std::size_t>(walks));
  {
    TaskGroup group(fan_pool(walks));
    // Walks are already the coarse grain (a whole depth-d descent each);
    // chunking them coarser would serialize siblings, so each walk is its
    // own claim.
    group.run_indexed(walks, 1, [&](int s) {
      walk_best[static_cast<std::size_t>(s)] = sibling_walk(
          initial.node(), rep, iter, static_cast<std::uint64_t>(s));
    });
    group.wait();  // rethrows the lowest-sibling task error, if any
    note_group(group);
  }
  bool improved = false;
  for (auto& walk : walk_best) {
    if (walk && walk.node().cost.total() < best.cost.total()) {
      best = walk.node();
      improved = true;
    }
  }
  return improved;
}

/// Resolve the fan threshold when ExecutionOptions::intra_min_fan is 0
/// (auto). Runs once per solve, at refit entry, so two measured quantities
/// exist: an empty one-index-per-chunk fan prices the pool's dispatch path
/// (its worst-case grain), and the solve's own greedy stage prices a node.
/// The smallest fan width whose projected latency saving covers twice the
/// dispatch bill becomes the threshold — the 2x margin keeps probe noise
/// from flipping a marginal fan to pooled. The threshold only decides
/// *where* slots run (fan_pool), never what they compute, so measuring
/// wall time here is safe even under `deterministic`.
void SolveRun::calibrate_min_fan() {
  if (effective_min_fan_ >= 1) return;  // explicit, or already calibrated
  constexpr int kFallback = 4;          // the old fixed default
  if (pool_ == nullptr) {
    effective_min_fan_ = kFallback;  // no pool: nothing ever fans anyway
    return;
  }
  constexpr int kProbeTasks = 64;
  const auto probe_start = Clock::now();
  {
    TaskGroup probe(pool_);
    probe.run_indexed(kProbeTasks, 1, [](int) {});
    probe.wait();
  }
  const double dispatch_us =
      elapsed_since(probe_start) * 1000.0 / kProbeTasks;
  const auto nodes = std::max<std::int64_t>(
      1, nodes_evaluated_.load(std::memory_order_relaxed));
  const double node_us =
      elapsed_since(start_) * 1000.0 / static_cast<double>(nodes);
  // A fan of f nodes across w cooperating threads saves about
  // (f - ceil(f/w)) node evaluations of latency and pays about min(f, w)
  // chunk dispatches plus one wake handshake.
  const int w = std::max(2, exec_.intra_node_workers);
  effective_min_fan_ = 2 * w;  // pessimistic cap: no width up to 2w paid off
  for (int f = 2; f <= 2 * w; ++f) {
    const double saved_us =
        node_us * static_cast<double>(f - (f + w - 1) / w);
    const double bill_us =
        dispatch_us * static_cast<double>(std::min(f, w) + 1);
    if (saved_us >= 2.0 * bill_us) {
      effective_min_fan_ = f;
      break;
    }
  }
  obs::counters().set_gauge("solver.intra_min_fan",
                            static_cast<double>(effective_min_fan_));
}

// ---- Stage 2: refit (Algorithm 1 lines 14-42) ----
Node SolveRun::refit_stage(Node start_node, std::uint64_t rep) {
  DEPSTOR_TRACE_SPAN("refit");
  calibrate_min_fan();
  Node best = std::move(start_node);
  for (int iter = 0; iter < refit_iterations_budget_; ++iter) {
    if (out_of_time()) break;
    ++result_.refit_iterations;
    if (!refit_iteration(best, rep, static_cast<std::uint64_t>(iter))) {
      break;  // local optimum (Algorithm 1 termination)
    }
  }
  return best;
}

void SolveRun::finish_stats() {
  result_.cancelled = cancelled();
  result_.nodes_evaluated = nodes_evaluated_.load(std::memory_order_relaxed);
  result_.refit_parallel_tasks =
      parallel_tasks_.load(std::memory_order_relaxed);
  result_.refit_steal_count = steal_count_.load(std::memory_order_relaxed);
  result_.refit_fanned = refit_fanned_.load(std::memory_order_relaxed);
  result_.intra_min_fan_used = effective_min_fan_;
  result_.evaluations = agg_stats_.evaluations;
  result_.cache_hits = agg_stats_.cache_hits;
  result_.cache_misses = agg_stats_.cache_misses;
  result_.scenarios_simulated = agg_stats_.incremental.scenarios_simulated;
  result_.scenarios_reused = agg_stats_.incremental.scenarios_reused;
  result_.eval_ms = agg_stats_.eval_ms;
  result_.sweep_ms = agg_stats_.sweep_ms;
  result_.increment_ms = agg_stats_.increment_ms;

  // Publish the per-solve counters into the central registry (obs/counters)
  // — one end-of-solve batch of adds, never per-node traffic, so the hot
  // loops share no cache line across solver threads.
  auto& reg = obs::counters();
  reg.add("solver.solves", 1);
  reg.add("solver.nodes_evaluated", result_.nodes_evaluated);
  reg.add("solver.greedy_restarts", result_.greedy_restarts);
  reg.add("solver.refit_iterations", result_.refit_iterations);
  reg.add("solver.refit_parallel_tasks", result_.refit_parallel_tasks);
  reg.add("solver.refit_steal_count", result_.refit_steal_count);
  reg.add(result_.refit_fanned ? "solver.refit_fans_pooled"
                               : "solver.refit_fans_inline",
          1);
  reg.add("solver.evaluations", result_.evaluations);
  reg.add("solver.cache_hits", result_.cache_hits);
  reg.add("solver.cache_misses", result_.cache_misses);
  reg.add("solver.scenarios_simulated", result_.scenarios_simulated);
  reg.add("solver.scenarios_reused", result_.scenarios_reused);
  reg.set_gauge("solver.last_eval_ms", result_.eval_ms);
  reg.set_gauge("solver.last_sweep_ms", result_.sweep_ms);
  reg.set_gauge("solver.last_increment_ms", result_.increment_ms);
}

SolveResult SolveRun::run() {
  DEPSTOR_TRACE_SPAN("solve");

  // The two-stage search is repeated (randomized restarts) until the time
  // budget is exhausted; the best design over all repetitions is returned
  // (§3.1: "the search is repeated multiple times..."). Deterministic mode
  // has no clock, so the open-ended default caps at one repetition.
  const int max_repetitions =
      exec_.deterministic && options_.max_repetitions == 0
          ? 1
          : options_.max_repetitions;
  std::optional<Node> global_best;
  if (warm_ != nullptr) {
    // Warm start: exactly one repetition seeded from the prior solution.
    // An empty focus set means the delta touched no app's requirements or
    // footprint — the seed already is the answer, so refit is skipped.
    std::optional<Node> incumbent = warm_stage();
    if (incumbent) {
      const bool skip_refit =
          warm_->focus_apps != nullptr && warm_->focus_apps->empty();
      if (!skip_refit && warm_->focus_apps != nullptr &&
          !env_->apps.empty()) {
        // Warm refit is a local repair: only the focus apps may move, so a
        // walk budget sized for the whole environment would mostly re-draw
        // the same few apps. Scale iterations, sibling walks, and walk
        // depth by the touched share (each at least 1 — the focus always
        // gets a real, if small, neighborhood search).
        const double share =
            static_cast<double>(warm_->focus_apps->size()) /
            static_cast<double>(env_->apps.size());
        const auto scaled = [share](int full) {
          if (full <= 0) return full;
          return std::max(
              1, static_cast<int>(std::ceil(share * static_cast<double>(
                                                        full))));
        };
        refit_iterations_budget_ = scaled(options_.max_refit_iterations);
        refit_walks_ = scaled(options_.breadth);
        refit_depth_ = scaled(options_.depth);
      }
      global_best = skip_refit ? std::move(*incumbent)
                               : refit_stage(std::move(*incumbent), 0);
    }
  } else {
    int repetitions = 0;
    do {
      const auto rep = static_cast<std::uint64_t>(repetitions);
      ++repetitions;
      std::optional<Node> incumbent = greedy_stage(rep);
      if (!incumbent) continue;  // restart budget burned; retry while time lasts
      Node local = refit_stage(std::move(*incumbent), rep);
      if (!global_best || local.cost.total() < global_best->cost.total()) {
        global_best = std::move(local);
      }
    } while (!out_of_time() &&
             (max_repetitions == 0 || repetitions < max_repetitions));
  }

  if (!global_best) {
    result_.elapsed_ms = elapsed_since(start_);
    finish_stats();
    return std::move(result_);
  }

  // Final polish: one full configuration pass over the winner (scoped
  // per-node passes may have left cross-application interval interactions
  // unexplored). Warm solves polish only the focus apps — untouched
  // applications kept their previously polished configurations, and a full
  // pass here would cost what the warm start just saved.
  {
    DEPSTOR_TRACE_SPAN("polish");
    const ConfigSolver solver(env_, exec_.eval_cache, env_salt_);
    if (warm_ != nullptr && warm_->focus_apps != nullptr) {
      for (int id : *warm_->focus_apps) {
        if (!global_best->candidate.is_assigned(id)) continue;
        nodes_evaluated_.fetch_add(1, std::memory_order_relaxed);
        global_best->cost =
            solver.solve_for_app(global_best->candidate, id);
      }
    } else {
      global_best->cost = solver.solve(global_best->candidate);
    }
    merge_stats(solver.stats());
  }
  result_.elapsed_ms = elapsed_since(start_);
  finish_stats();

  DEPSTOR_LOG(Info, "design solver: cost " << global_best->cost.total()
                                           << " after "
                                           << result_.nodes_evaluated
                                           << " nodes");
  global_best->candidate.check_feasible();
  if (analysis::debug_audit_enabled()) {
    // Debug post-check: the winning design must satisfy every paper
    // invariant (all apps mapped, mirror isolation, usage within
    // provisioning) and its claimed cost must recompute to the same total.
    analysis::enforce_audit(global_best->candidate, &global_best->cost, {},
                            "SolveRun::run");
  }
  result_.cost = global_best->cost;
  result_.best = std::move(global_best->candidate);
  result_.feasible = true;
  return std::move(result_);
}

void validate(const Environment* env, const DesignSolverOptions& options,
              const ExecutionOptions& exec) {
  DEPSTOR_EXPECTS(env != nullptr);
  DEPSTOR_EXPECTS(options.breadth >= 1);
  DEPSTOR_EXPECTS(options.depth >= 1);
  DEPSTOR_EXPECTS(options.max_refit_iterations >= 0);
  DEPSTOR_EXPECTS(options.max_greedy_restarts >= 1);
  DEPSTOR_EXPECTS_MSG(exec.intra_node_workers >= 1,
                      "intra_node_workers must be >= 1");
  DEPSTOR_EXPECTS_MSG(exec.intra_min_fan >= 0,
                      "intra_min_fan must be >= 0 (0 = auto-calibrate)");
  env->validate();
}

}  // namespace

namespace detail {

SolveResult solve_impl(const Environment* env,
                       const DesignSolverOptions& options,
                       const ExecutionOptions& exec, const WarmStart* warm,
                       const ScenarioModel* scenarios) {
  validate(env, options, exec);
  if (scenarios != nullptr) scenarios->validate();
  if (warm != nullptr) {
    DEPSTOR_EXPECTS_MSG(warm->seed != nullptr,
                        "warm start needs a seed candidate");
    DEPSTOR_EXPECTS_MSG(&warm->seed->env() == env,
                        "warm seed must already be migrated onto the target "
                        "environment");
    if (warm->focus_apps != nullptr) {
      DEPSTOR_EXPECTS_MSG(
          std::is_sorted(warm->focus_apps->begin(), warm->focus_apps->end()),
          "warm focus_apps must be sorted ascending");
    }
  }
  SolveRun run(env, options, exec, warm, scenarios);
  return run.run();
}

}  // namespace detail

}  // namespace depstor
