#include "solver/config_solver.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/audit.hpp"
#include "engine/eval_cache.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace depstor {

namespace {

/// Devices an assignment touches (for scoped increment loops). Includes the
/// compute devices so scoped rounds see the same device set as the full
/// pass; the increment loop itself then skips them naturally (compute types
/// have no bandwidth units to buy and are not disk arrays), so behavior is
/// identical — tests/test_config_solver.cpp pins this.
std::vector<int> devices_of(const AppAssignment& asg) {
  std::vector<int> out;
  for (int id : {asg.primary_array, asg.mirror_array, asg.tape_library,
                 asg.mirror_link, asg.primary_compute,
                 asg.failover_compute}) {
    if (id >= 0) out.push_back(id);
  }
  return out;
}

/// RAII probe transaction: between construction and destruction the
/// candidate's incremental evaluator treats re-simulations as speculative,
/// so the probe's revert restores the cached scenario results for free
/// instead of re-simulating them at the next evaluation.
class ProbeScope {
 public:
  explicit ProbeScope(Candidate& candidate) : candidate_(candidate) {
    candidate_.begin_probe();
  }
  ~ProbeScope() { candidate_.abort_probe(); }
  ProbeScope(const ProbeScope&) = delete;
  ProbeScope& operator=(const ProbeScope&) = delete;

 private:
  Candidate& candidate_;
  obs::TraceSpan span_{"probe"};
};

/// RAII stage timer: adds the scope's wall time to `sink` on exit.
class StageTimer {
 public:
  explicit StageTimer(double& sink) : sink_(sink) {}
  ~StageTimer() {
    sink_ += std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0_)
                 .count();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  double& sink_;
  std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
};

}  // namespace

ConfigSolver::ConfigSolver(const Environment* env, EvalCache* cache)
    : env_(env), cache_(cache) {
  DEPSTOR_EXPECTS(env != nullptr);
  if (cache_ != nullptr) env_salt_ = fingerprint_environment(*env);
}

ConfigSolver::ConfigSolver(const Environment* env, EvalCache* cache,
                           std::uint64_t env_salt)
    : env_(env), cache_(cache), env_salt_(env_salt) {
  DEPSTOR_EXPECTS(env != nullptr);
}

CostBreakdown ConfigSolver::evaluate(const Candidate& candidate) const {
  DEPSTOR_TRACE_SPAN("eval");
  const StageTimer timer(stats_.eval_ms);
  ++stats_.evaluations;
  if (cache_ == nullptr) return candidate.evaluate(&stats_.incremental);
  const std::uint64_t key = fingerprint_candidate(candidate, env_salt_);
  if (auto cached = cache_->lookup(key)) {
    ++stats_.cache_hits;
    return std::move(*cached);
  }
  ++stats_.cache_misses;
  CostBreakdown cost = candidate.evaluate(&stats_.incremental);
  cache_->insert(key, cost);
  return cost;
}

CostBreakdown ConfigSolver::solve(Candidate& candidate) const {
  // Applications visited in descending priority: their chains share tape
  // drive bandwidth, so the important apps settle their intervals first.
  std::vector<int> order;
  for (const auto& asg : candidate.assignments()) {
    if (asg.assigned && asg.technique.has_backup) order.push_back(asg.app_id);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double pa = env_->app(a).penalty_rate_sum();
    const double pb = env_->app(b).penalty_rate_sum();
    if (pa != pb) return pa > pb;
    return a < b;
  });
  for (int app_id : order) {
    sweep_app(candidate, app_id);
  }
  CostBreakdown cost = increment_resources(candidate);
  if (analysis::debug_audit_enabled()) {
    // Debug post-check: the completed configuration must still obey the
    // design invariants. Partial candidates (greedy stage) are audited
    // without the completeness rule; the cost invariant is checked against
    // the breakdown we are about to return.
    analysis::AuditOptions audit;
    audit.require_complete = false;
    analysis::enforce_audit(candidate, &cost, audit, "ConfigSolver::solve");
  }
  return cost;
}

CostBreakdown ConfigSolver::solve_for_app(Candidate& candidate,
                                          int app_id) const {
  const auto& asg = candidate.assignment(app_id);
  DEPSTOR_EXPECTS(asg.assigned);
  if (asg.technique.has_backup) {
    sweep_app(candidate, app_id);
  }
  return increment_resources(candidate, devices_of(asg));
}

CostBreakdown ConfigSolver::solve_increments_only(Candidate& candidate) const {
  return increment_resources(candidate);
}

void ConfigSolver::sweep_app(Candidate& candidate, int app_id) const {
  DEPSTOR_TRACE_SPAN("sweep", app_id);
  const StageTimer timer(stats_.sweep_ms);
  // The discretized grid: snapshot interval × backup interval × cycle
  // style (full-only, or full+incrementals at each allowed incremental
  // interval).
  struct CyclePoint {
    BackupCycleMode mode;
    double incremental_hours;
  };
  std::vector<CyclePoint> cycles = {{BackupCycleMode::FullOnly, 24.0}};
  if (env_->policies.allow_incremental_backups) {
    for (double incr : env_->policies.incremental_intervals_hours) {
      cycles.push_back({BackupCycleMode::FullPlusIncrementals, incr});
    }
  }

  BackupChainConfig best = candidate.assignment(app_id).backup;
  double best_cost = evaluate(candidate).total();
  for (double snap : env_->policies.snapshot_intervals_hours) {
    for (double backup : env_->policies.backup_intervals_hours) {
      if (backup < snap) continue;
      for (const auto& cycle : cycles) {
        if (cycle.mode == BackupCycleMode::FullPlusIncrementals &&
            (cycle.incremental_hours < snap ||
             cycle.incremental_hours > backup)) {
          continue;
        }
        BackupChainConfig cfg = candidate.assignment(app_id).backup;
        cfg.snapshot_interval_hours = snap;
        cfg.backup_interval_hours = backup;
        cfg.cycle = cycle.mode;
        cfg.incremental_interval_hours = cycle.incremental_hours;
        try {
          candidate.set_backup_config(app_id, cfg);
        } catch (const InfeasibleError&) {
          continue;  // e.g. snapshot space no longer fits; skip this point
        }
        const double cost = evaluate(candidate).total();
        if (cost < best_cost) {
          best_cost = cost;
          best = cfg;
        }
      }
    }
  }
  candidate.set_backup_config(app_id, best);
}

CostBreakdown ConfigSolver::increment_resources(
    Candidate& candidate,
    const std::optional<std::vector<int>>& devices) const {
  DEPSTOR_TRACE_SPAN("increment");
  const StageTimer timer(stats_.increment_ms);
  CostBreakdown current = evaluate(candidate);

  auto in_scope = [&](int device_id) {
    if (!devices) return true;
    return std::find(devices->begin(), devices->end(), device_id) !=
           devices->end();
  };

  // Hot-spare candidates: (site, array type) pairs of in-scope primary
  // arrays. Buying a spare shortens the array repair lead (§3.2.2's "add
  // resources until no cost savings", extended to lead times).
  std::vector<std::pair<int, std::string>> spare_candidates;
  if (env_->policies.allow_spare_arrays) {
    for (const auto& asg : candidate.assignments()) {
      if (!asg.assigned || !in_scope(asg.primary_array)) continue;
      const auto& dev = candidate.pool().device(asg.primary_array);
      std::pair<int, std::string> key{dev.site_id, dev.type.name};
      if (std::find(spare_candidates.begin(), spare_candidates.end(), key) ==
          spare_candidates.end()) {
        spare_candidates.push_back(std::move(key));
      }
    }
  }

  for (int round = 0; round < env_->policies.max_resource_increments;
       ++round) {
    // Try buying one extra unit on every in-scope device — or one hot
    // spare — and keep the single best improvement (steepest-descent over
    // unit purchases).
    int best_device = -1;
    bool best_is_bandwidth = true;
    int best_spare = -1;  // index into spare_candidates
    CostBreakdown best = current;

    for (std::size_t i = 0; i < spare_candidates.size(); ++i) {
      const auto& [site, type_name] = spare_candidates[i];
      if (candidate.has_spare_array(site, type_name)) continue;
      const ProbeScope probe(candidate);
      try {
        candidate.set_spare_array(site, type_name, true);
      } catch (const InfeasibleError&) {
        continue;  // spare limit reached at this site
      }
      const CostBreakdown cost = evaluate(candidate);
      if (cost.total() < best.total()) {
        best = cost;
        best_spare = static_cast<int>(i);
        best_device = -1;
      }
      candidate.set_spare_array(site, type_name, false);  // roll back probe
    }

    for (const auto& dev : candidate.pool().devices()) {
      if (!candidate.pool().in_use(dev.id) || !in_scope(dev.id)) continue;

      const bool try_bandwidth = dev.type.max_bandwidth_units > 0;
      const bool try_capacity = dev.type.kind == DeviceKind::DiskArray;
      for (bool bandwidth : {true, false}) {
        if (bandwidth && !try_bandwidth) continue;
        if (!bandwidth && !try_capacity) continue;
        const ProbeScope probe(candidate);
        const int extra = bandwidth ? dev.extra_bandwidth_units
                                    : dev.extra_capacity_units;
        const int applied =
            bandwidth
                ? candidate.set_extra_bandwidth_units(dev.id, extra + 1)
                : candidate.set_extra_capacity_units(dev.id, extra + 1);
        bool valid = applied == extra + 1;
        if (valid) {
          try {
            // Topology-level limits (e.g. links per site pair) are not
            // visible to the per-device clamp; re-check them here.
            candidate.pool().check_feasible();
          } catch (const InfeasibleError&) {
            valid = false;
          }
        }
        if (!valid) {
          // Device (or topology) is at its maximum; restore and move on.
          if (bandwidth) {
            candidate.set_extra_bandwidth_units(dev.id, extra);
          } else {
            candidate.set_extra_capacity_units(dev.id, extra);
          }
          continue;
        }
        const CostBreakdown cost = evaluate(candidate);
        if (cost.total() < best.total()) {
          best = cost;
          best_device = dev.id;
          best_is_bandwidth = bandwidth;
          best_spare = -1;
        }
        // Roll back the probe.
        if (bandwidth) {
          candidate.set_extra_bandwidth_units(dev.id, extra);
        } else {
          candidate.set_extra_capacity_units(dev.id, extra);
        }
      }
    }

    if (best_device < 0 && best_spare < 0) break;  // nothing pays for itself
    if (best_spare >= 0) {
      const auto& [site, type_name] =
          spare_candidates[static_cast<std::size_t>(best_spare)];
      candidate.set_spare_array(site, type_name, true);
    } else {
      const auto& dev = candidate.pool().device(best_device);
      if (best_is_bandwidth) {
        candidate.set_extra_bandwidth_units(best_device,
                                            dev.extra_bandwidth_units + 1);
      } else {
        candidate.set_extra_capacity_units(best_device,
                                           dev.extra_capacity_units + 1);
      }
    }
    current = best;
    ++stats_.increments_bought;
  }
  return current;
}

}  // namespace depstor
