// Reconfiguration operator (paper §3.1.3) — the edge generator of the design
// solver's search graph.
//
// Reconfiguring an application removes it from the design and gives it a new
// data protection technique and data layout:
//
//  * the application is chosen randomly, biased toward the ones contributing
//    the most penalty to the current design;
//  * eligible techniques (the app's class or better) are each probed in the
//    context of the candidate to get their incremental cost, then one is
//    drawn with probability ∝ (1 − cost/Σcost) — biased toward cheap;
//  * resources are drawn with probability ∝ α·(1−util) + (1−α)·(1−usage),
//    favoring under-utilized devices (load balance) and devices this app has
//    not used before (diversity). In-use devices are preferred; new devices
//    are considered only when no in-use device fits.
#pragma once

#include <map>
#include <string>

#include "solver/config_solver.hpp"
#include "solver/solution.hpp"
#include "util/rng.hpp"

namespace depstor {

struct ReconfigureOptions {
  /// α_util: weight of load-balance vs usage-diversity in resource choice.
  /// The paper sets it "close to one".
  double alpha_util = 0.9;
  /// Placement attempts (fresh random layouts) before giving up.
  int placement_retries = 8;
  /// Run the full configuration solver when probing each technique's
  /// incremental cost (slower, slightly better-informed technique choice).
  bool probe_with_config_solver = false;
};

class Reconfigurator {
 public:
  Reconfigurator(const Environment* env, Rng* rng,
                 ReconfigureOptions options = {});

  /// The application to reconfigure next: random, biased toward the apps
  /// contributing the most penalty in `cost`. Only assigned apps are
  /// eligible. Precondition: at least one app is assigned.
  int pick_app_to_reconfigure(const Candidate& candidate,
                              const CostBreakdown& cost);

  /// Restrict pick_app_to_reconfigure to this id set (the warm-start scoped
  /// refit: only apps the environment delta touched are worth perturbing).
  /// Ids must be sorted ascending; the vector must outlive the operator.
  /// Null (the default) or a set with no assigned member falls back to every
  /// assigned app, so the search never starves.
  void restrict_to(const std::vector<int>* focus_apps) {
    focus_ = focus_apps;
  }

  /// Give `app_id` a (new) technique and layout. Works both for unassigned
  /// apps (greedy stage) and assigned ones (refit stage; the old design is
  /// restored on total failure). Returns true on success.
  bool reconfigure_app(Candidate& candidate, int app_id);

  /// Layouts this operator has chosen for an app (drives the diversity bias).
  int usage_count(int app_id, const std::string& resource_key) const;

 private:
  struct ProbeResult {
    DesignChoice choice;
    double cost = 0.0;
  };

  /// Draw a full layout (sites + device types) for a technique. Returns
  /// false when no feasible-looking layout exists.
  bool draw_layout(const Candidate& candidate, int app_id,
                   const TechniqueSpec& technique, DesignChoice& out);

  /// Weighted pick among resource keys; -1 when `keys` is empty.
  int pick_resource(const Candidate& candidate, int app_id,
                    const std::vector<std::string>& keys,
                    const std::vector<double>& utils);

  void note_usage(int app_id, const std::string& resource_key);
  double usage_fraction(int app_id, const std::string& resource_key) const;

  /// Sites with a free compute slot (and, for arrays, room for the type).
  bool site_has_compute_room(const Candidate& candidate, int site) const;

  const Environment* env_;
  Rng* rng_;
  ReconfigureOptions options_;
  const std::vector<int>* focus_ = nullptr;  ///< see restrict_to
  ConfigSolver config_solver_;
  /// app id → resource key → times chosen.
  std::map<int, std::map<std::string, int>> usage_;
  std::map<int, int> reconfig_count_;
};

}  // namespace depstor
