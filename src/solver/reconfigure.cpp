#include "solver/reconfigure.hpp"

#include <algorithm>

#include "protection/catalog.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

namespace {

std::string device_key(const DeviceInstance& dev) {
  return "dev#" + std::to_string(dev.id);
}

std::string new_device_key(const DeviceTypeSpec& type, int site,
                           int site_b = -1) {
  std::string key = type.name + "@" + std::to_string(site);
  if (site_b >= 0) key += "-" + std::to_string(site_b);
  return key;
}

}  // namespace

Reconfigurator::Reconfigurator(const Environment* env, Rng* rng,
                               ReconfigureOptions options)
    : env_(env), rng_(rng), options_(options), config_solver_(env) {
  DEPSTOR_EXPECTS(env != nullptr && rng != nullptr);
  DEPSTOR_EXPECTS(options_.alpha_util >= 0.0 && options_.alpha_util <= 1.0);
  DEPSTOR_EXPECTS(options_.placement_retries >= 1);
}

int Reconfigurator::pick_app_to_reconfigure(const Candidate& candidate,
                                            const CostBreakdown& cost) {
  const auto in_focus = [&](int app_id) {
    return focus_ == nullptr ||
           std::binary_search(focus_->begin(), focus_->end(), app_id);
  };
  std::vector<int> ids;
  std::vector<double> weights;
  for (int pass = 0; pass < 2 && ids.empty(); ++pass) {
    // Pass 0 honors the focus restriction; pass 1 (reached only when no
    // focus app is assigned) falls back to every assigned app.
    const bool focused = (pass == 0);
    double max_penalty = 0.0;
    for (const auto& d : cost.per_app) {
      if (!candidate.is_assigned(d.app_id)) continue;
      if (focused && !in_focus(d.app_id)) continue;
      max_penalty = std::max(max_penalty, d.outage_penalty + d.loss_penalty);
    }
    for (const auto& d : cost.per_app) {
      if (!candidate.is_assigned(d.app_id)) continue;
      if (focused && !in_focus(d.app_id)) continue;
      ids.push_back(d.app_id);
      // Bias toward the big penalty contributors, but keep a floor so cheap
      // apps can still be perturbed (their layout may block better designs).
      weights.push_back(d.outage_penalty + d.loss_penalty +
                        0.01 * max_penalty + 1.0);
    }
  }
  DEPSTOR_EXPECTS_MSG(!ids.empty(), "no assigned application to reconfigure");
  return ids[rng_->weighted_index(weights)];
}

void Reconfigurator::note_usage(int app_id, const std::string& key) {
  ++usage_[app_id][key];
}

int Reconfigurator::usage_count(int app_id, const std::string& key) const {
  const auto app_it = usage_.find(app_id);
  if (app_it == usage_.end()) return 0;
  const auto it = app_it->second.find(key);
  return it == app_it->second.end() ? 0 : it->second;
}

double Reconfigurator::usage_fraction(int app_id,
                                      const std::string& key) const {
  const auto it = reconfig_count_.find(app_id);
  const int total = it == reconfig_count_.end() ? 0 : it->second;
  if (total == 0) return 0.0;
  return std::min(1.0, static_cast<double>(usage_count(app_id, key)) / total);
}

int Reconfigurator::pick_resource(const Candidate& candidate, int app_id,
                                  const std::vector<std::string>& keys,
                                  const std::vector<double>& utils) {
  (void)candidate;
  if (keys.empty()) return -1;
  DEPSTOR_EXPECTS(keys.size() == utils.size());
  std::vector<double> weights;
  weights.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double w =
        options_.alpha_util * (1.0 - utils[i]) +
        (1.0 - options_.alpha_util) * (1.0 - usage_fraction(app_id, keys[i]));
    weights.push_back(std::max(w, 1e-6));
  }
  return static_cast<int>(rng_->weighted_index(weights));
}

bool Reconfigurator::site_has_compute_room(const Candidate& candidate,
                                           int site) const {
  int slots = 0;
  for (int id : candidate.pool().devices_at(site, DeviceKind::Compute)) {
    if (candidate.pool().in_use(id)) {
      slots += candidate.pool().device(id).capacity_units;
    }
  }
  return slots + 1 <= env_->topology.site(site).max_compute_slots;
}

bool Reconfigurator::draw_layout(const Candidate& candidate, int app_id,
                                 const TechniqueSpec& technique,
                                 DesignChoice& out) {
  const ApplicationSpec& app = env_->app(app_id);
  const ResourcePool& pool = candidate.pool();
  const Topology& topo = env_->topology;

  out = DesignChoice{};
  out.technique = technique;

  // Capacity the primary array must absorb: the dataset plus (when backing
  // up) the retained snapshots under the default configuration.
  double primary_cap = app.data_size_gb;
  if (technique.has_backup) {
    primary_cap += out.backup.snapshots_retained *
                   units::accumulated_gb(app.unique_update_mbps,
                                         out.backup.snapshot_interval_hours);
  }

  // --- primary array (and with it, the primary site) ---
  struct ArrayOption {
    std::string key;
    std::string type_name;
    int site = -1;
    double util = 0.0;
  };
  auto array_options = [&](double cap_gb, double bw_mbps, int exclude_site,
                           bool needs_neighbor,
                           bool needs_compute) -> std::vector<ArrayOption> {
    std::vector<ArrayOption> in_use_opts;
    std::vector<ArrayOption> fresh_opts;
    auto site_ok = [&](int site) {
      if (site == exclude_site) return false;
      if (needs_neighbor && topo.neighbors(site).empty()) return false;
      if (needs_compute && !site_has_compute_room(candidate, site)) {
        return false;
      }
      return true;
    };
    for (const auto& dev : pool.devices()) {
      if (dev.type.kind != DeviceKind::DiskArray) continue;
      if (!site_ok(dev.site_id)) continue;
      const double need_cap = pool.used_capacity_gb(dev.id) + cap_gb;
      const double need_bw = pool.used_bandwidth_mbps(dev.id) + bw_mbps;
      if (dev.type.min_capacity_units(need_cap, need_bw) < 0) continue;
      ArrayOption opt{device_key(dev), dev.type.name, dev.site_id,
                      pool.utilization(dev.id)};
      (pool.in_use(dev.id) ? in_use_opts : fresh_opts).push_back(opt);
    }
    // Unused resources are considered only when no in-use device fits
    // (§3.1.3); brand-new devices extend the fresh list.
    if (!in_use_opts.empty()) return in_use_opts;
    for (int site = 0; site < topo.site_count(); ++site) {
      if (!site_ok(site)) continue;
      int arrays_in_use = 0;
      for (int id : pool.devices_at(site, DeviceKind::DiskArray)) {
        if (pool.in_use(id)) ++arrays_in_use;
      }
      if (arrays_in_use >= topo.site(site).max_disk_arrays) continue;
      for (const auto& type : env_->array_types) {
        // Skip types already present (idle) at the site — covered above.
        bool present = false;
        for (int id : pool.devices_at(site, DeviceKind::DiskArray)) {
          if (pool.device(id).type.name == type.name) present = true;
        }
        if (present) continue;
        if (type.min_capacity_units(cap_gb, bw_mbps) < 0) continue;
        fresh_opts.push_back({new_device_key(type, site), type.name, site, 0.0});
      }
    }
    return fresh_opts;
  };

  const bool needs_failover_compute =
      technique.recovery == RecoveryMode::Failover;
  auto primaries = array_options(primary_cap, app.avg_access_mbps,
                                 /*exclude_site=*/-1,
                                 /*needs_neighbor=*/technique.has_mirror(),
                                 /*needs_compute=*/true);
  std::vector<std::string> keys;
  std::vector<double> utils;
  for (const auto& o : primaries) {
    keys.push_back(o.key);
    utils.push_back(o.util);
  }
  int pick = pick_resource(candidate, app_id, keys, utils);
  if (pick < 0) return false;
  out.primary_array_type = primaries[static_cast<std::size_t>(pick)].type_name;
  out.primary_site = primaries[static_cast<std::size_t>(pick)].site;
  note_usage(app_id, primaries[static_cast<std::size_t>(pick)].key);

  // --- mirror array at a connected secondary site ---
  if (technique.has_mirror()) {
    auto mirror_sites = topo.neighbors(out.primary_site);
    auto mirrors = array_options(app.data_size_gb, app.avg_update_mbps,
                                 /*exclude_site=*/out.primary_site,
                                 /*needs_neighbor=*/false,
                                 needs_failover_compute);
    std::erase_if(mirrors, [&](const ArrayOption& o) {
      return std::find(mirror_sites.begin(), mirror_sites.end(), o.site) ==
             mirror_sites.end();
    });
    if (mirrors.empty()) return false;
    keys.clear();
    utils.clear();
    for (const auto& o : mirrors) {
      keys.push_back(o.key);
      utils.push_back(o.util);
    }
    pick = pick_resource(candidate, app_id, keys, utils);
    out.mirror_array_type = mirrors[static_cast<std::size_t>(pick)].type_name;
    out.secondary_site = mirrors[static_cast<std::size_t>(pick)].site;
    note_usage(app_id, mirrors[static_cast<std::size_t>(pick)].key);

    // --- inter-site links for the mirror stream ---
    const double demand = technique.mirror_bandwidth_demand(app);
    const int pair_limit = topo.max_links(out.primary_site,
                                          out.secondary_site);
    std::vector<std::string> link_keys;
    std::vector<std::string> link_types;
    std::vector<double> link_utils;
    int links_in_use = 0;
    for (int id : pool.links_between(out.primary_site, out.secondary_site)) {
      if (pool.in_use(id)) links_in_use += pool.device(id).bandwidth_units;
    }
    for (const auto& type : env_->network_types) {
      const int existing = pool.find_link(out.primary_site,
                                          out.secondary_site, type.name);
      double util = 0.0;
      std::string key = new_device_key(type, out.primary_site,
                                       out.secondary_site);
      double base_bw = 0.0;
      int base_links = 0;
      if (existing >= 0) {
        util = pool.utilization(existing);
        key = device_key(pool.device(existing));
        base_bw = pool.used_bandwidth_mbps(existing);
        base_links = pool.device(existing).bandwidth_units;
      }
      const int need = type.min_bandwidth_units(base_bw + demand);
      if (need < 0) continue;
      if (links_in_use - base_links + need > pair_limit) continue;
      link_keys.push_back(key);
      link_types.push_back(type.name);
      link_utils.push_back(util);
    }
    pick = pick_resource(candidate, app_id, link_keys, link_utils);
    if (pick < 0) return false;
    out.link_type = link_types[static_cast<std::size_t>(pick)];
    note_usage(app_id, link_keys[static_cast<std::size_t>(pick)]);
  }

  // --- tape library at the primary site ---
  if (technique.has_backup) {
    const double window = std::min(env_->params.backup_window_target_hours,
                                   out.backup.backup_interval_hours);
    const double tape_bw = app.data_size_gb * units::kMBPerGB /
                           (window * units::kSecondsPerHour);
    const double tape_cap = out.backup.backups_retained * app.data_size_gb;

    std::vector<std::string> tape_keys;
    std::vector<std::string> tape_types;
    std::vector<double> tape_utils;
    int libs_in_use = 0;
    for (int id : pool.devices_at(out.primary_site, DeviceKind::TapeLibrary)) {
      if (pool.in_use(id)) ++libs_in_use;
    }
    for (const auto& type : env_->tape_types) {
      int existing = -1;
      for (int id :
           pool.devices_at(out.primary_site, DeviceKind::TapeLibrary)) {
        if (pool.device(id).type.name == type.name) existing = id;
      }
      double base_cap = 0.0;
      double base_bw = 0.0;
      double util = 0.0;
      std::string key = new_device_key(type, out.primary_site);
      bool counts_as_new_lib = true;
      if (existing >= 0) {
        base_cap = pool.used_capacity_gb(existing);
        base_bw = pool.used_bandwidth_mbps(existing);
        util = pool.utilization(existing);
        key = device_key(pool.device(existing));
        counts_as_new_lib = !pool.in_use(existing);
      }
      if (counts_as_new_lib &&
          libs_in_use + 1 >
              env_->topology.site(out.primary_site).max_tape_libraries) {
        continue;
      }
      if (type.min_capacity_units(base_cap + tape_cap, 0.0) < 0) continue;
      if (type.min_bandwidth_units(base_bw + tape_bw) < 0) continue;
      tape_keys.push_back(key);
      tape_types.push_back(type.name);
      tape_utils.push_back(util);
    }
    pick = pick_resource(candidate, app_id, tape_keys, tape_utils);
    if (pick < 0) return false;
    out.tape_type = tape_types[static_cast<std::size_t>(pick)];
    note_usage(app_id, tape_keys[static_cast<std::size_t>(pick)]);
  }
  return true;
}

bool Reconfigurator::reconfigure_app(Candidate& candidate, int app_id) {
  std::optional<DesignChoice> previous;
  if (candidate.is_assigned(app_id)) {
    previous = candidate.choice(app_id);
    candidate.remove_app(app_id);
  }
  ++reconfig_count_[app_id];

  // Probe every eligible technique's incremental cost in context (§3.1.3).
  const auto eligible =
      protection::eligible_techniques(env_->app_category(app_id));
  DEPSTOR_ENSURES(!eligible.empty());
  std::vector<ProbeResult> probes;
  for (const auto& technique : eligible) {
    for (int attempt = 0; attempt < options_.placement_retries; ++attempt) {
      DesignChoice choice;
      if (!draw_layout(candidate, app_id, technique, choice)) continue;
      try {
        candidate.place_app(app_id, choice);
        candidate.check_feasible();
      } catch (const InfeasibleError&) {
        if (candidate.is_assigned(app_id)) candidate.remove_app(app_id);
        continue;
      }
      const double cost = options_.probe_with_config_solver
                              ? config_solver_.solve(candidate).total()
                              : candidate.evaluate().total();
      candidate.remove_app(app_id);
      probes.push_back({std::move(choice), cost});
      break;
    }
  }

  if (probes.empty()) {
    if (previous) candidate.place_app(app_id, *previous);
    return false;
  }

  // p(dpt) ∝ 1 − cost_dpt / Σ cost — biased toward inexpensive techniques.
  // With a single probe the weight degenerates to uniform.
  double total_cost = 0.0;
  for (const auto& p : probes) total_cost += p.cost;
  std::vector<double> weights;
  weights.reserve(probes.size());
  for (const auto& p : probes) {
    weights.push_back(probes.size() == 1 ? 1.0
                                         : std::max(1e-9, 1.0 - p.cost /
                                                              total_cost));
  }
  const auto& chosen = probes[rng_->weighted_index(weights)];
  try {
    candidate.place_app(app_id, chosen.choice);
    candidate.check_feasible();
  } catch (const InfeasibleError&) {
    // The probe placed once already, so this is unexpected; restore.
    if (candidate.is_assigned(app_id)) candidate.remove_app(app_id);
    if (previous) candidate.place_app(app_id, *previous);
    return false;
  }
  return true;
}

}  // namespace depstor
