#include "solver/parallel.hpp"

#include <thread>

#include "util/check.hpp"

namespace depstor {

namespace {

/// Run `workers` jobs on their own threads; job k computes results[k].
template <typename Result, typename Job>
std::vector<Result> run_workers(int workers, const Job& job) {
  DEPSTOR_EXPECTS(workers >= 1);
  std::vector<Result> results(static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(workers));
  for (int k = 0; k < workers; ++k) {
    threads.emplace_back([&, k] {
      try {
        results[static_cast<std::size_t>(k)] = job(k);
      } catch (...) {
        errors[static_cast<std::size_t>(k)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace

SolveResult solve_parallel(const Environment* env,
                           const DesignSolverOptions& options, int workers) {
  DEPSTOR_EXPECTS(env != nullptr);
  auto results = run_workers<SolveResult>(workers, [&](int k) {
    DesignSolverOptions worker_options = options;
    worker_options.seed = options.seed + static_cast<std::uint64_t>(k);
    DesignSolver solver(env, worker_options);
    return solver.solve();
  });

  SolveResult merged;
  for (auto& r : results) {
    merged.nodes_evaluated += r.nodes_evaluated;
    merged.refit_iterations += r.refit_iterations;
    merged.greedy_restarts += r.greedy_restarts;
    merged.elapsed_ms = std::max(merged.elapsed_ms, r.elapsed_ms);
    if (!r.feasible) continue;
    if (!merged.feasible || r.cost.total() < merged.cost.total()) {
      merged.feasible = true;
      merged.cost = r.cost;
      merged.best = std::move(r.best);
    }
  }
  return merged;
}

BaselineResult random_parallel(const Environment* env,
                               const BaselineOptions& options, int workers) {
  DEPSTOR_EXPECTS(env != nullptr);
  auto results = run_workers<BaselineResult>(workers, [&](int k) {
    BaselineOptions worker_options = options;
    worker_options.seed = options.seed + static_cast<std::uint64_t>(k);
    RandomHeuristic heuristic(env, worker_options);
    return heuristic.solve();
  });

  BaselineResult merged;
  for (auto& r : results) {
    merged.designs_tried += r.designs_tried;
    merged.designs_feasible += r.designs_feasible;
    merged.elapsed_ms = std::max(merged.elapsed_ms, r.elapsed_ms);
    if (!r.feasible) continue;
    if (!merged.feasible || r.cost.total() < merged.cost.total()) {
      merged.feasible = true;
      merged.cost = r.cost;
      merged.best = std::move(r.best);
    }
  }
  return merged;
}

SampleStats sample_parallel(const Environment* env, int count,
                            std::uint64_t seed, int workers) {
  DEPSTOR_EXPECTS(env != nullptr);
  DEPSTOR_EXPECTS(count >= 1);
  DEPSTOR_EXPECTS(workers >= 1);
  const int per_worker = (count + workers - 1) / workers;
  auto results = run_workers<SampleStats>(workers, [&](int k) {
    SolutionSpaceSampler sampler(env);
    return sampler.sample(per_worker, seed + static_cast<std::uint64_t>(k));
  });

  SampleStats merged;
  for (const auto& r : results) {
    merged.costs.merge(r.costs);
    merged.samples.insert(merged.samples.end(), r.samples.begin(),
                          r.samples.end());
    merged.attempted += r.attempted;
    merged.feasible += r.feasible;
  }
  return merged;
}

}  // namespace depstor
