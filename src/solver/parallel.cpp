#include "solver/parallel.hpp"

#include <exception>

#include "core/api.hpp"
#include "engine/worker_pool.hpp"
#include "util/check.hpp"

namespace depstor {

namespace {

/// Run `workers` jobs on the engine's worker pool; job k computes
/// results[k]. Errors propagate after every job finished.
template <typename Result, typename Job>
std::vector<Result> run_workers(int workers, const Job& job) {
  DEPSTOR_EXPECTS(workers >= 1);
  std::vector<Result> results(static_cast<std::size_t>(workers));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  WorkerPool pool(workers);
  for (int k = 0; k < workers; ++k) {
    const bool accepted = pool.submit([&results, &errors, &job, k] {
      try {
        results[static_cast<std::size_t>(k)] = job(k);
      } catch (...) {
        errors[static_cast<std::size_t>(k)] = std::current_exception();
      }
    });
    DEPSTOR_ENSURES_MSG(accepted, "worker pool rejected a submit before stop");
  }
  pool.wait_idle();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace

BaselineResult random_parallel(const Environment* env,
                               const BaselineOptions& options, int workers) {
  DEPSTOR_EXPECTS(env != nullptr);
  auto results = run_workers<BaselineResult>(workers, [&](int k) {
    BaselineOptions worker_options = options;
    worker_options.seed = options.seed + static_cast<std::uint64_t>(k);
    RandomHeuristic heuristic(env, worker_options);
    return heuristic.solve();
  });

  BaselineResult merged;
  for (auto& r : results) {
    merged.designs_tried += r.designs_tried;
    merged.designs_feasible += r.designs_feasible;
    merged.elapsed_ms = std::max(merged.elapsed_ms, r.elapsed_ms);
    if (!r.feasible) continue;
    if (!merged.feasible || r.cost.total() < merged.cost.total()) {
      merged.feasible = true;
      merged.cost = r.cost;
      merged.best = std::move(r.best);
    }
  }
  return merged;
}

SampleStats sample_parallel(const Environment* env, int count,
                            std::uint64_t seed, int workers) {
  DEPSTOR_EXPECTS(env != nullptr);
  DEPSTOR_EXPECTS(count >= 1);
  DEPSTOR_EXPECTS(workers >= 1);
  const int per_worker = (count + workers - 1) / workers;
  auto results = run_workers<SampleStats>(workers, [&](int k) {
    SolutionSpaceSampler sampler(env);
    return sampler.sample(per_worker, seed + static_cast<std::uint64_t>(k));
  });

  SampleStats merged;
  for (const auto& r : results) {
    merged.costs.merge(r.costs);
    merged.samples.insert(merged.samples.end(), r.samples.begin(),
                          r.samples.end());
    merged.attempted += r.attempted;
    merged.feasible += r.feasible;
  }
  return merged;
}

}  // namespace depstor
