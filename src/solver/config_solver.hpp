// Configuration solver (paper §3.2).
//
// Given a candidate whose high-level design decisions (techniques, device and
// site choices) are fixed, the configuration solver completes the design:
//
//  1. For each application with a backup chain, it exhaustively searches the
//     discretized policy ranges — snapshot interval × backup interval ×
//     cycle style (full-only / full+incrementals) — and keeps the
//     overall-cost-minimizing combination. Applications are visited in
//     descending penalty-rate order since they share tape bandwidth.
//  2. It then runs the §3.2.2 resource-increment loop: starting from the
//     minimum provisioning implied by the allocations, it repeatedly buys the
//     single extra unit (network link, tape drive, or array capacity unit)
//     with the best cost improvement, until no purchase pays for itself.
//
// Recovery times — including multi-application contention — are evaluated by
// the recovery simulator inside Candidate::evaluate().
//
// `solve()` is the full pass. `solve_for_app()` is the scoped variant the
// design solver uses per search node: the search edge changed exactly one
// application, so only that application's chain parameters and the devices
// it touches need re-optimization — the other applications keep their
// previously optimized configurations. A full pass still runs at greedy
// completion and as an end-of-search polish.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cost/breakdown.hpp"
#include "solver/solution.hpp"

namespace depstor {

class EvalCache;  // engine/eval_cache.hpp

struct ConfigSolverStats {
  /// Cost evaluations requested (cache hits included). 64-bit: long batch
  /// runs overflow 32 bits.
  std::int64_t evaluations = 0;
  std::int64_t cache_hits = 0;    ///< evaluations served from the cache
  std::int64_t cache_misses = 0;  ///< evaluations computed then cached
  int increments_bought = 0;      ///< extra units kept by the increment loop

  /// Scenario-level counters of the candidates' incremental evaluators
  /// (cost/incremental.hpp): how many failure scenarios were actually
  /// re-simulated vs served from the per-candidate footprint cache.
  IncrementalStats incremental;

  /// Per-stage wall-clock timers. `eval_ms` covers every evaluate() call
  /// and therefore overlaps the two stage timers, which cover the whole
  /// stage (probing mutations included).
  double eval_ms = 0.0;
  double sweep_ms = 0.0;
  double increment_ms = 0.0;

  /// Order-independent accumulation — how the parallel refit folds its
  /// per-task solvers' stats into one aggregate.
  ConfigSolverStats& operator+=(const ConfigSolverStats& o) {
    evaluations += o.evaluations;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    increments_bought += o.increments_bought;
    incremental += o.incremental;
    eval_ms += o.eval_ms;
    sweep_ms += o.sweep_ms;
    increment_ms += o.increment_ms;
    return *this;
  }
};

class ConfigSolver {
 public:
  /// With a non-null `cache` (the engine's sharded evaluation cache), cost
  /// evaluations are memoized by candidate fingerprint — the sweep and
  /// increment loop stop re-running the recovery simulator for states the
  /// search has already costed. Results are identical either way.
  explicit ConfigSolver(const Environment* env, EvalCache* cache = nullptr);

  /// Same, with the environment fingerprint precomputed by the caller — the
  /// parallel refit constructs one solver per search step, and hashing the
  /// environment each time would dwarf the step itself.
  ConfigSolver(const Environment* env, EvalCache* cache,
               std::uint64_t env_salt);

  /// Optimize every application's configuration parameters plus the global
  /// resource increments; returns the resulting cost. The candidate must be
  /// structurally feasible.
  CostBreakdown solve(Candidate& candidate) const;

  /// Scoped re-optimization after a single application changed: sweep that
  /// application's chain parameters and run the increment loop over the
  /// devices it touches.
  CostBreakdown solve_for_app(Candidate& candidate, int app_id) const;

  /// Increment loop only (used when probing many technique alternatives
  /// cheaply inside the reconfiguration operator).
  CostBreakdown solve_increments_only(Candidate& candidate) const;

  const ConfigSolverStats& stats() const { return stats_; }

 private:
  /// Cost of the candidate's current state, served from the evaluation
  /// cache when one is attached (counted either way).
  CostBreakdown evaluate(const Candidate& candidate) const;

  /// Exhaustive sweep of one application's backup-chain parameters.
  void sweep_app(Candidate& candidate, int app_id) const;

  /// Resource-increment loop; when `devices` is given, only those devices
  /// are considered for extra units.
  CostBreakdown increment_resources(
      Candidate& candidate,
      const std::optional<std::vector<int>>& devices = std::nullopt) const;

  const Environment* env_;
  EvalCache* cache_;
  std::uint64_t env_salt_ = 0;  ///< environment fingerprint (cache keys)
  mutable ConfigSolverStats stats_;
};

}  // namespace depstor
