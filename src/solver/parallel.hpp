// Parallel drivers for the randomized searches.
//
// The design solver's outer loop repeats independent greedy+refit searches
// and keeps the global best (§3.1: "the search is repeated multiple times");
// the solution-space sampler draws independent designs. Both parallelize
// trivially: each worker gets a derived seed, runs the sequential algorithm,
// and the results merge by minimum (solver) or concatenation (sampler).
//
// The solver fan lives behind depstor::solve (core/api.hpp) with
// `exec.workers`. The baseline/sampler drivers here run on the engine's
// WorkerPool primitive.
//
// Determinism: with a fixed `seed` and `workers`, worker k always receives
// seed `seed + k`, so results are reproducible regardless of thread
// scheduling (the merge is order-independent).
#pragma once

#include "baselines/human_heuristic.hpp"
#include "baselines/random_heuristic.hpp"
#include "core/sampler.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

/// Run `workers` independent random-heuristic searches concurrently and
/// return the best result (design counters summed).
BaselineResult random_parallel(const Environment* env,
                               const BaselineOptions& options, int workers);

/// Draw `count` feasible samples split across `workers` concurrent
/// samplers; statistics and samples are merged.
SampleStats sample_parallel(const Environment* env, int count,
                            std::uint64_t seed, int workers);

}  // namespace depstor
