// Parallel drivers for the randomized searches.
//
// The design solver's outer loop repeats independent greedy+refit searches
// and keeps the global best (§3.1: "the search is repeated multiple times");
// the solution-space sampler draws independent designs. Both parallelize
// trivially: each worker gets a derived seed, runs the sequential algorithm,
// and the results merge by minimum (solver) or concatenation (sampler).
//
// The solver fan now lives behind depstor::solve (core/api.hpp) with
// `exec.workers`; solve_parallel remains as a deprecated wrapper. The
// baseline/sampler drivers run on the engine's WorkerPool primitive.
//
// Determinism: with a fixed `seed` and `workers`, worker k always receives
// seed `seed + k`, so results are reproducible regardless of thread
// scheduling (the merge is order-independent).
#pragma once

#include "baselines/human_heuristic.hpp"
#include "baselines/random_heuristic.hpp"
#include "core/sampler.hpp"
#include "solver/design_solver.hpp"

namespace depstor {

/// Run `workers` independent design solvers (seeds seed+0 … seed+workers-1)
/// concurrently and return the cheapest feasible result. Node/iteration
/// counters are summed across workers.
[[deprecated(
    "use depstor::solve(SolveRequest) with exec.workers from "
    "core/api.hpp")]] SolveResult
solve_parallel(const Environment* env, const DesignSolverOptions& options,
               int workers);

/// Run `workers` independent random-heuristic searches concurrently and
/// return the best result (design counters summed).
BaselineResult random_parallel(const Environment* env,
                               const BaselineOptions& options, int workers);

/// Draw `count` feasible samples split across `workers` concurrent
/// samplers; statistics and samples are merged.
SampleStats sample_parallel(const Environment* env, int count,
                            std::uint64_t seed, int workers);

}  // namespace depstor
