#include "analysis/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace depstor::analysis {

namespace {

using audit_rules::kAppUnassigned;
using audit_rules::kAssignmentInvalid;
using audit_rules::kCostMismatch;
using audit_rules::kDanglingDeviceRef;
using audit_rules::kMirrorSiteCollision;
using audit_rules::kMirrorSitesUnlinked;
using audit_rules::kResourceOvercommit;
using audit_rules::kSiteLimitExceeded;

/// Slack for comparing re-derived usage against provisioned totals: the
/// pool accumulates allocations in a different order than we re-sum them.
constexpr double kUsageEps = 1e-6;

struct DeviceExpectation {
  const char* role;
  int id;
  DeviceKind kind;
  int site;    ///< -1 = don't check
  int site_b;  ///< links only; -1 = don't check
};

void check_device(const Environment& env, const ResourcePool& pool,
                  const AppAssignment& a, const DeviceExpectation& want,
                  DiagnosticReport& rep) {
  const std::string& app = env.app(a.app_id).name;
  if (want.id < 0 || want.id >= pool.device_count()) {
    std::ostringstream os;
    os << app << ": " << want.role << " device id " << want.id
       << " does not exist in the resource pool";
    rep.add(Severity::Error, kDanglingDeviceRef, os.str(),
            "the assignment references a device the design never "
            "provisioned");
    return;
  }
  const DeviceInstance& dev = pool.device(want.id);
  if (dev.type.kind != want.kind) {
    std::ostringstream os;
    os << app << ": " << want.role << " device " << want.id << " is a "
       << to_string(dev.type.kind) << ", expected " << to_string(want.kind);
    rep.add(Severity::Error, kDanglingDeviceRef, os.str());
    return;
  }
  if (want.kind == DeviceKind::NetworkLink) {
    if (want.site >= 0 && want.site_b >= 0 &&
        !dev.is_link_between(want.site, want.site_b)) {
      std::ostringstream os;
      os << app << ": " << want.role << " device " << want.id
         << " does not connect sites " << want.site << " and " << want.site_b;
      rep.add(Severity::Error, kDanglingDeviceRef, os.str());
    }
  } else if (want.site >= 0 && dev.site_id != want.site) {
    std::ostringstream os;
    os << app << ": " << want.role << " device " << want.id << " sits at site "
       << dev.site_id << ", expected site " << want.site;
    rep.add(Severity::Error, kDanglingDeviceRef, os.str());
  }
}

void audit_assignment(const Environment& env, const ResourcePool& pool,
                      const AppAssignment& a, DiagnosticReport& rep) {
  const std::string app =
      a.app_id >= 0 && a.app_id < static_cast<int>(env.apps.size())
          ? env.app(a.app_id).name
          : "<bad app id>";
  // Paper invariant (§2.4): a mirror protects against site disasters only
  // when the secondary copy lives on a *different* site, reachable over a
  // provisioned link group. Checked before validate(): the site fields are
  // plain ints that are safe to read even on a structurally broken
  // assignment, and the dedicated rule ids beat a generic validation error.
  if (a.assigned && a.has_mirror()) {
    if (a.secondary_site == a.primary_site) {
      rep.add(Severity::Error, kMirrorSiteCollision,
              app + ": secondary copy shares the primary's site " +
                  std::to_string(a.primary_site),
              "a same-site mirror gives no disaster isolation");
    } else if (a.secondary_site >= 0 &&
               !env.topology.connected(a.primary_site, a.secondary_site)) {
      std::ostringstream os;
      os << app << ": sites " << a.primary_site << " and " << a.secondary_site
         << " have no link group for the mirror stream";
      rep.add(Severity::Error, kMirrorSitesUnlinked, os.str());
    }
  }

  try {
    a.validate();
  } catch (const std::exception& e) {
    rep.add(Severity::Error, kAssignmentInvalid,
            app + ": assignment fails structural validation: " + e.what());
    return;  // device fields are not trustworthy past this point
  }
  if (!a.assigned) return;

  check_device(env, pool, a,
               {"primary array", a.primary_array, DeviceKind::DiskArray,
                a.primary_site, -1},
               rep);
  check_device(env, pool, a,
               {"primary compute", a.primary_compute, DeviceKind::Compute,
                a.primary_site, -1},
               rep);
  if (a.has_mirror()) {
    check_device(env, pool, a,
                 {"mirror array", a.mirror_array, DeviceKind::DiskArray,
                  a.secondary_site, -1},
                 rep);
    check_device(env, pool, a,
                 {"mirror link", a.mirror_link, DeviceKind::NetworkLink,
                  a.primary_site, a.secondary_site},
                 rep);
  }
  if (a.has_backup()) {
    check_device(env, pool, a,
                 {"tape library", a.tape_library, DeviceKind::TapeLibrary,
                  a.primary_site, -1},
                 rep);
  }
  if (a.assigned && a.technique.recovery == RecoveryMode::Failover &&
      a.failover_compute >= 0) {
    check_device(env, pool, a,
                 {"failover compute", a.failover_compute, DeviceKind::Compute,
                  a.has_mirror() ? a.secondary_site : -1, -1},
                 rep);
  }
}

void audit_pool(const ResourcePool& pool, DiagnosticReport& rep) {
  // Recovery-plan resource usage must fit inside the provisioned units:
  // re-sum every device's allocations and compare against what the device
  // delivers at its current provisioning.
  for (const DeviceInstance& dev : pool.devices()) {
    const double cap = pool.used_capacity_gb(dev.id);
    const double bw = pool.used_bandwidth_mbps(dev.id);
    auto over = [&](const char* dim, double used, double provisioned) {
      std::ostringstream os;
      os << to_string(dev.type.kind) << " " << dev.id << " (" << dev.type.name
         << "): allocated " << dim << " " << used << " exceeds provisioned "
         << provisioned;
      rep.add(Severity::Error, kResourceOvercommit, os.str());
    };
    if (cap > dev.capacity_gb() * (1.0 + 1e-9) + kUsageEps) {
      over("capacity (GB)", cap, dev.capacity_gb());
    }
    if (bw > dev.bandwidth_mbps() * (1.0 + 1e-9) + kUsageEps) {
      over("bandwidth (MB/s)", bw, dev.bandwidth_mbps());
    }
    if ((dev.type.max_capacity_units > 0 &&
         dev.capacity_units > dev.type.max_capacity_units) ||
        (dev.type.max_bandwidth_units > 0 &&
         dev.bandwidth_units > dev.type.max_bandwidth_units)) {
      std::ostringstream os;
      os << to_string(dev.type.kind) << " " << dev.id << " (" << dev.type.name
         << "): provisioned units exceed the model's maxima";
      rep.add(Severity::Error, kResourceOvercommit, os.str());
    }
  }

  try {
    pool.check_feasible();
  } catch (const std::exception& e) {
    rep.add(Severity::Error, kSiteLimitExceeded, e.what());
  }
}

void audit_cost(const Environment& env, const ScenarioModel& model,
                const std::vector<AppAssignment>& assignments,
                const ResourcePool& pool, const CostBreakdown& reported,
                double rel_tol, DiagnosticReport& rep) {
  const CostBreakdown actual =
      evaluate_cost(env.apps, assignments, pool, model, env.params);
  auto mismatch = [&](const char* what, double want, double got) {
    const double scale = std::max({std::fabs(want), std::fabs(got), 1.0});
    if (std::fabs(want - got) <= rel_tol * scale) return;
    std::ostringstream os;
    os << what << ": reported " << got << " but recomputation yields " << want;
    rep.add(Severity::Error, kCostMismatch, os.str(),
            "cost must equal annualized outlays + expected penalties for "
            "the emitted design");
  };
  mismatch("outlay", actual.outlay, reported.outlay);
  mismatch("penalty", actual.penalty(), reported.penalty());
  mismatch("total cost", actual.total(), reported.total());
}

}  // namespace

DiagnosticReport audit_design(const Environment& env,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const CostBreakdown* reported,
                              const AuditOptions& options) {
  DiagnosticReport rep;

  // Every dataset mapped (Algorithm 1 emits complete designs only).
  if (options.require_complete) {
    for (const auto& app : env.apps) {
      const bool assigned = std::any_of(
          assignments.begin(), assignments.end(), [&](const AppAssignment& a) {
            return a.app_id == app.id && a.assigned;
          });
      if (!assigned) {
        rep.add(Severity::Error, kAppUnassigned,
                app.name + " has no assigned design",
                "the design solver must map every application");
      }
    }
  }

  for (const auto& a : assignments) {
    audit_assignment(env, pool, a, rep);
  }
  audit_pool(pool, rep);
  if (reported != nullptr) {
    audit_cost(env, env.scenario_model(), assignments, pool, *reported,
               options.cost_rel_tolerance, rep);
  }
  return rep;
}

DiagnosticReport audit_candidate(const Candidate& candidate,
                                 const CostBreakdown* reported,
                                 const AuditOptions& options) {
  // Same checks as audit_design, but the cost recomputation prices against
  // the candidate's own scenario model — which a SolveRequest may have
  // overridden away from the environment's.
  DiagnosticReport rep = audit_design(candidate.env(),
                                      candidate.assignments(),
                                      candidate.pool(), nullptr, options);
  if (reported != nullptr) {
    audit_cost(candidate.env(), candidate.scenario_model(),
               candidate.assignments(), candidate.pool(), *reported,
               options.cost_rel_tolerance, rep);
  }
  return rep;
}

bool debug_audit_enabled() {
  static const bool enabled = [] {
    if (const char* v = std::getenv("DEPSTOR_AUDIT")) {
      return v[0] != '\0' && v[0] != '0';
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }();
  return enabled;
}

void enforce_audit(const Candidate& candidate, const CostBreakdown* reported,
                   const AuditOptions& options, const char* where) {
  const DiagnosticReport rep = audit_candidate(candidate, reported, options);
  if (!rep.has_errors()) return;
  throw InternalError(std::string("design audit failed in ") + where + ":\n" +
                      rep.render_text());
}

}  // namespace depstor::analysis
