// Design-invariant auditor: post-solve checking of emitted designs.
//
// Every Solution/design the solvers hand back must obey the paper's model
// invariants; a design that violates them prices wrong silently. The auditor
// re-derives each invariant from the assignment/pool state and reports
// violations as structured diagnostics (same Diagnostic type as the linter):
//
//   app-unassigned        (E) an application has no design (complete audits)
//   assignment-invalid    (E) structural validate() fails for an assignment
//   dangling-device-ref   (E) assignment names a device the pool lacks, of
//                             the wrong kind, or at the wrong site
//   mirror-site-collision (E) a mirrored app's secondary copy shares the
//                             primary's site (no disaster isolation)
//   mirror-sites-unlinked (E) primary/secondary pair has no link group
//   resource-overcommit   (E) allocations exceed a device's provisioned
//                             units, or units exceed the model's maxima
//   site-limit-exceeded   (E) per-site device / per-pair link limits broken
//   cost-mismatch         (E) reported cost != outlays + penalties recomputed
//
// Audits run standalone (tests, the depstor_lint CLI) and as a debug-mode
// post-check wired into the depstor::solve path, ConfigSolver::solve and the
// batch engine: enabled by default in !NDEBUG builds, overridable either way
// with DEPSTOR_AUDIT=0/1 in the process environment.
#pragma once

#include "analysis/diagnostics.hpp"
#include "cost/breakdown.hpp"
#include "solver/solution.hpp"

namespace depstor::analysis {

namespace audit_rules {
inline constexpr const char* kAppUnassigned = "app-unassigned";
inline constexpr const char* kAssignmentInvalid = "assignment-invalid";
inline constexpr const char* kDanglingDeviceRef = "dangling-device-ref";
inline constexpr const char* kMirrorSiteCollision = "mirror-site-collision";
inline constexpr const char* kMirrorSitesUnlinked = "mirror-sites-unlinked";
inline constexpr const char* kResourceOvercommit = "resource-overcommit";
inline constexpr const char* kSiteLimitExceeded = "site-limit-exceeded";
inline constexpr const char* kCostMismatch = "cost-mismatch";
}  // namespace audit_rules

struct AuditOptions {
  /// Require every application to be assigned. Off for the configuration
  /// solver's mid-greedy audits of partial candidates.
  bool require_complete = true;
  /// Relative tolerance for the cost recomputation (floating-point noise
  /// only; the recomputation runs the same evaluator).
  double cost_rel_tolerance = 1e-9;
};

/// Audit a design given as its raw parts. `reported` is the cost breakdown
/// the solver claims for this design; pass null to skip the cost invariant.
DiagnosticReport audit_design(const Environment& env,
                              const std::vector<AppAssignment>& assignments,
                              const ResourcePool& pool,
                              const CostBreakdown* reported = nullptr,
                              const AuditOptions& options = {});

/// Convenience overload over a Candidate.
DiagnosticReport audit_candidate(const Candidate& candidate,
                                 const CostBreakdown* reported = nullptr,
                                 const AuditOptions& options = {});

/// True when the wired-in solver/engine post-checks should run: !NDEBUG
/// builds by default, overridden by DEPSTOR_AUDIT=0/1.
bool debug_audit_enabled();

/// Post-check used by the solvers/engine: audit and throw InternalError
/// with the rendered report when the audit finds errors. `where` names the
/// call site in the exception message.
void enforce_audit(const Candidate& candidate, const CostBreakdown* reported,
                   const AuditOptions& options, const char* where);

}  // namespace depstor::analysis
