#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/env_loader.hpp"
#include "resources/catalog.hpp"
#include "util/check.hpp"
#include "util/ini.hpp"
#include "util/units.hpp"

namespace depstor::analysis {

namespace {

using rules::kAllFailureRatesZero;
using rules::kBackupWindowOverrun;
using rules::kBadCategoryThresholds;
using rules::kBadDeviceSpec;
using rules::kBadDomainDecl;
using rules::kBadFailureRate;
using rules::kBadLinkLimit;
using rules::kBadNumber;
using rules::kBadPenaltyRate;
using rules::kBadPolicyRange;
using rules::kBadSiteLimit;
using rules::kBadWorkloadUnits;
using rules::kDanglingSiteRef;
using rules::kDuplicateApplicationName;
using rules::kDuplicateCatalogDevice;
using rules::kDuplicateLink;
using rules::kDuplicateSiteName;
using rules::kEmptyCatalog;
using rules::kEmptyConfigGrid;
using rules::kGlobalFailureFootprint;
using rules::kIniParseError;
using rules::kInfeasibleCatalog;
using rules::kInsufficientCompute;
using rules::kLegacyFlatScenarios;
using rules::kLoadFailed;
using rules::kMirrorBandwidthUnreachable;
using rules::kMissingKey;
using rules::kNoApplications;
using rules::kNoSites;
using rules::kSelfLink;
using rules::kTapeCapacityExceeded;
using rules::kUnknownDevice;
using rules::kUnknownKey;
using rules::kUnknownSection;
using rules::kUnmirrorableTopology;
using rules::kWrongDeviceKind;
using rules::kZeroPenaltySum;

/// Keys the loader understands, per section (analysis/lint.hpp catalog).
const std::map<std::string, std::set<std::string>>& known_keys() {
  static const std::map<std::string, std::set<std::string>> keys = {
      {"site",
       {"name", "region", "max_disk_arrays", "max_spare_arrays",
        "max_tape_libraries", "max_compute_slots", "fixed_cost"}},
      {"link", {"a", "b", "max_links"}},
      {"application",
       {"name", "type", "outage_penalty_rate", "loss_penalty_rate",
        "data_size_gb", "avg_update_mbps", "peak_update_mbps",
        "avg_access_mbps", "unique_update_mbps"}},
      {"failures",
       {"data_object_rate", "disk_array_rate", "site_disaster_rate",
        "regional_disaster_rate"}},
      {"failure_domains", {"version", "data_object_rate", "disk_array_rate"}},
      {"domain",
       {"level", "name", "region", "site", "sites", "rate", "outage_rate",
        "correlation", "repair_hours"}},
      {"catalog", {"arrays", "tapes", "networks"}},
  };
  return keys;
}

std::optional<double> parse_number(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// Section-by-section linter over raw INI text. Collects everything the
/// loader would reject plus the reference/uniqueness checks, each with a
/// file/section/line locus. Never throws.
class IniLinter {
 public:
  IniLinter(DiagnosticReport& report, std::string filename)
      : rep_(report), file_(std::move(filename)) {}

  void run(const std::vector<IniSection>& sections) {
    for (const auto& s : sections) {
      if (s.name == "site") {
        lint_site(s);
      } else if (!known_keys().count(s.name)) {
        rep_.add(Severity::Error, kUnknownSection,
                 "unknown section [" + s.name + "]",
                 "expected site, link, application, failures, "
                 "failure_domains, domain or catalog",
                 at(s));
      }
    }
    if (site_names_.empty()) {
      rep_.add(Severity::Error, kNoSites,
               "environment declares no [site] section",
               "add at least one [site] with a name", {file_, "", 0});
    }
    int app_count = 0;
    for (const auto& s : sections) {
      check_keys(s);
      if (s.name == "link") {
        lint_link(s);
      } else if (s.name == "application") {
        ++app_count;
        lint_application(s);
      } else if (s.name == "failures") {
        lint_failures(s);
      } else if (s.name == "domain") {
        lint_domain(s);
      } else if (s.name == "catalog") {
        lint_catalog(s);
      }
    }
    if (app_count == 0) {
      rep_.add(Severity::Error, kNoApplications,
               "environment declares no [application] section",
               "add at least one [application]", {file_, "", 0});
    }
  }

 private:
  Locus at(const IniSection& s) const { return {file_, s.name, s.line}; }

  void check_keys(const IniSection& s) {
    const auto it = known_keys().find(s.name);
    if (it == known_keys().end()) return;  // unknown-section already emitted
    for (const auto& [key, value] : s.values) {
      (void)value;
      if (!it->second.count(key)) {
        rep_.add(Severity::Warning, kUnknownKey,
                 "unknown key `" + key + "` in [" + s.name + "]",
                 "the loader ignores keys it does not recognize", at(s));
      }
    }
  }

  /// Numeric value of `key`; diagnoses unparseable / non-finite values.
  /// Absent keys return nullopt silently (callers decide requiredness).
  std::optional<double> number(const IniSection& s, const std::string& key) {
    if (!s.has(key)) return std::nullopt;
    const std::string raw = s.get_string(key);
    const auto v = parse_number(raw);
    if (!v) {
      rep_.add(Severity::Error, kBadNumber,
               key + " = `" + raw + "` is not a number", {}, at(s));
      return std::nullopt;
    }
    if (!std::isfinite(*v)) {
      rep_.add(Severity::Error, kBadNumber,
               key + " = " + raw + " is not finite",
               "use a finite value in the unit the key expects", at(s));
      return std::nullopt;
    }
    return v;
  }

  std::optional<double> required_number(const IniSection& s,
                                        const std::string& key) {
    if (!s.has(key)) {
      rep_.add(Severity::Error, kMissingKey,
               "[" + s.name + "] is missing required key `" + key + "`", {},
               at(s));
      return std::nullopt;
    }
    return number(s, key);
  }

  void lint_site(const IniSection& s) {
    std::string name;
    if (!s.has("name")) {
      rep_.add(Severity::Error, kMissingKey,
               "[site] is missing required key `name`", {}, at(s));
    } else {
      name = s.get_string("name");
      if (!site_names_.insert(name).second) {
        rep_.add(Severity::Error, kDuplicateSiteName,
                 "duplicate site name `" + name + "`",
                 "site names must be unique (links reference them)", at(s));
      }
    }
    for (const char* key :
         {"max_disk_arrays", "max_spare_arrays", "max_tape_libraries",
          "max_compute_slots", "fixed_cost"}) {
      if (const auto v = number(s, key); v && *v < 0.0) {
        rep_.add(Severity::Error, kBadSiteLimit,
                 "site `" + name + "`: " + key + " = " +
                     s.get_string(key) + " is negative",
                 {}, at(s));
      }
    }
  }

  /// Site reference semantics of the loader: name first, then numeric index.
  bool site_ref_ok(const std::string& ref) const {
    if (site_names_.count(ref)) return true;
    const auto index = parse_number(ref);
    return index && *index >= 0.0 &&
           *index < static_cast<double>(site_names_.size());
  }

  void lint_link(const IniSection& s) {
    std::string a, b;
    const std::pair<const char*, std::string*> endpoints[] = {{"a", &a},
                                                              {"b", &b}};
    for (const auto& [key, out] : endpoints) {
      if (!s.has(key)) {
        rep_.add(Severity::Error, kMissingKey,
                 "[link] is missing required key `" + std::string(key) + "`",
                 {}, at(s));
      } else {
        *out = s.get_string(key);
        if (!site_ref_ok(*out)) {
          rep_.add(Severity::Error, kDanglingSiteRef,
                   "[link] " + std::string(key) +
                       " references unknown site `" + *out + "`",
                   "declare the site above or fix the name", at(s));
        }
      }
    }
    if (!a.empty() && a == b) {
      rep_.add(Severity::Error, kSelfLink,
               "[link] connects site `" + a + "` to itself", {}, at(s));
    } else if (!a.empty() && !b.empty()) {
      auto pair = std::minmax(a, b);
      if (!link_pairs_.insert(pair).second) {
        rep_.add(Severity::Warning, kDuplicateLink,
                 "duplicate [link] between `" + a + "` and `" + b + "`",
                 "the loader keeps both limits; merge them into one section",
                 at(s));
      }
    }
    if (const auto v = required_number(s, "max_links"); v && *v < 1.0) {
      rep_.add(Severity::Error, kBadLinkLimit,
               "[link] max_links = " + s.get_string("max_links") +
                   " leaves no usable links",
               "use max_links >= 1, or drop the section", at(s));
    }
  }

  void lint_application(const IniSection& s) {
    std::string name = s.has("name") ? s.get_string("name") : "<unnamed>";
    if (!s.has("name")) {
      rep_.add(Severity::Error, kMissingKey,
               "[application] is missing required key `name`", {}, at(s));
    } else if (!app_names_.insert(name).second) {
      rep_.add(Severity::Error, kDuplicateApplicationName,
               "duplicate application name `" + name + "`",
               "application names must be unique (deltas and reports "
               "reference them)",
               at(s));
    }

    const auto outage = required_number(s, "outage_penalty_rate");
    const auto loss = required_number(s, "loss_penalty_rate");
    const std::pair<const char*, const std::optional<double>*> rates[] = {
        {"outage_penalty_rate", &outage}, {"loss_penalty_rate", &loss}};
    for (const auto& [key, v] : rates) {
      if (*v && **v < 0.0) {
        rep_.add(Severity::Error, kBadPenaltyRate,
                 name + ": " + key + " = " + s.get_string(key) +
                     " is negative",
                 "penalty rates are US$/hr and must be >= 0", at(s));
      }
    }

    const auto size = required_number(s, "data_size_gb");
    if (size && *size <= 0.0) {
      rep_.add(Severity::Error, kBadWorkloadUnits,
               name + ": data_size_gb = " + s.get_string("data_size_gb") +
                   " must be positive",
               {}, at(s));
    }
    const auto avg = required_number(s, "avg_update_mbps");
    if (avg && *avg < 0.0) {
      rep_.add(Severity::Error, kBadWorkloadUnits,
               name + ": avg_update_mbps must be >= 0", {}, at(s));
    }
    const auto peak = number(s, "peak_update_mbps");
    if (avg && peak && *peak < *avg) {
      rep_.add(Severity::Error, kBadWorkloadUnits,
               name + ": peak_update_mbps (" + s.get_string(
                   "peak_update_mbps") +
                   ") is below avg_update_mbps (" +
                   s.get_string("avg_update_mbps") + ")",
               "the peak rate bounds the average by definition", at(s));
    }
    const auto access = number(s, "avg_access_mbps");
    if (avg && access && *access < *avg) {
      rep_.add(Severity::Error, kBadWorkloadUnits,
               name + ": avg_access_mbps is below avg_update_mbps",
               "accesses include updates, so access rate >= update rate",
               at(s));
    }
    const auto unique = number(s, "unique_update_mbps");
    if (unique && (*unique < 0.0 || (avg && *unique > *avg))) {
      rep_.add(Severity::Error, kBadWorkloadUnits,
               name + ": unique_update_mbps must lie in [0, avg_update_mbps]",
               "unique updates are a subset of all updates", at(s));
    }
  }

  void lint_failures(const IniSection& s) {
    for (const char* key : {"data_object_rate", "disk_array_rate",
                            "site_disaster_rate", "regional_disaster_rate"}) {
      if (const auto v = number(s, key); v && *v < 0.0) {
        rep_.add(Severity::Error, kBadFailureRate,
                 std::string(key) + " = " + s.get_string(key) +
                     " is negative",
                 "failure likelihoods are events/year and must be >= 0",
                 at(s));
      }
    }
  }

  void lint_domain(const IniSection& s) {
    const std::string level = s.has("level") ? s.get_string("level") : "";
    static const std::map<std::string, std::vector<const char*>> required = {
        {"region", {"region"}},
        {"zone", {"region", "sites", "name"}},
        {"site", {"site"}},
        {"room", {"site", "name"}},
    };
    const auto it = required.find(level);
    if (it == required.end()) {
      rep_.add(Severity::Error, kBadDomainDecl,
               level.empty()
                   ? std::string("[domain] has no level")
                   : "[domain] level `" + level + "` is unknown",
               "level must be region, zone, site or room", at(s));
      return;
    }
    for (const char* key : it->second) {
      if (!s.has(key)) {
        rep_.add(Severity::Error, kBadDomainDecl,
                 "[domain] level " + level + " requires key `" + key + "`",
                 {}, at(s));
      }
    }
    for (const char* key :
         {"rate", "outage_rate", "correlation", "repair_hours"}) {
      if (const auto v = number(s, key); v && *v < 0.0) {
        rep_.add(Severity::Error, kBadDomainDecl,
                 std::string(key) + " = " + s.get_string(key) +
                     " is negative",
                 "domain rates, correlations and repair leads are >= 0",
                 at(s));
      }
    }
  }

  void lint_catalog_list(const IniSection& s, const std::string& key,
                         DeviceKind kind) {
    if (!s.has(key)) return;
    const auto names = split_list(s.get_string(key));
    if (names.empty()) {
      rep_.add(Severity::Error, kEmptyCatalog,
               "[catalog] " + key + " lists no devices",
               "name at least one model, or drop the key to keep Table 3",
               at(s));
      return;
    }
    std::set<std::string> seen;
    for (const auto& device : names) {
      if (!seen.insert(device).second) {
        rep_.add(Severity::Error, kDuplicateCatalogDevice,
                 "[catalog] " + key + " lists `" + device + "` twice",
                 "each model may appear once per catalog key", at(s));
        continue;
      }
      try {
        const DeviceTypeSpec type = resources::by_name(device);
        if (type.kind != kind) {
          rep_.add(Severity::Error, kWrongDeviceKind,
                   "[catalog] " + key + ": `" + device + "` is a " +
                       std::string(to_string(type.kind)) + ", not a " +
                       to_string(kind),
                   {}, at(s));
        }
      } catch (const InvalidArgument&) {
        rep_.add(Severity::Error, kUnknownDevice,
                 "[catalog] " + key + ": unknown device `" + device + "`",
                 "see resources/catalog.hpp for the Table 3 model names",
                 at(s));
      }
    }
  }

  void lint_catalog(const IniSection& s) {
    lint_catalog_list(s, "arrays", DeviceKind::DiskArray);
    lint_catalog_list(s, "tapes", DeviceKind::TapeLibrary);
    lint_catalog_list(s, "networks", DeviceKind::NetworkLink);
  }

  DiagnosticReport& rep_;
  const std::string file_;
  std::set<std::string> site_names_;
  std::set<std::string> app_names_;
  std::set<std::pair<std::string, std::string>> link_pairs_;
};

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

void lint_device_spec(const DeviceTypeSpec& t, const std::string& role,
                      const std::string& file, DiagnosticReport& rep) {
  const Locus at{file, "catalog", 0};
  auto bad = [&](const std::string& what, const std::string& hint = {}) {
    rep.add(Severity::Error, kBadDeviceSpec,
            role + " model `" + t.name + "`: " + what, hint, at);
  };
  if (!finite_nonneg(t.fixed_cost) ||
      !finite_nonneg(t.cost_per_capacity_unit) ||
      !finite_nonneg(t.cost_per_bandwidth_unit)) {
    bad("costs must be finite and >= 0");
  }
  if (t.max_capacity_units < 0 || t.max_bandwidth_units < 0) {
    bad("unit maxima must be >= 0");
  }
  if (t.max_capacity_units > 0 && !(t.capacity_unit_gb > 0.0)) {
    bad("capacity units exist but capacity_unit_gb is not positive",
        "the capacity discretization needs a positive unit size");
  }
  if (t.max_bandwidth_units > 0 && !(t.bandwidth_unit_mbps > 0.0)) {
    bad("bandwidth units exist but bandwidth_unit_mbps is not positive",
        "the bandwidth discretization needs a positive unit rate");
  }
  if (t.kind == DeviceKind::DiskArray &&
      !(t.max_aggregate_bandwidth_mbps > 0.0 ||
        t.bandwidth_unit_mbps > 0.0)) {
    bad("disk array delivers no bandwidth at any provisioning");
  }
}

void lint_policies(const PolicyRanges& p, const std::string& file,
                   DiagnosticReport& rep) {
  const Locus at{file, "policies", 0};
  auto positive = [](const std::vector<double>& values) {
    return std::all_of(values.begin(), values.end(),
                       [](double v) { return std::isfinite(v) && v > 0.0; });
  };
  if (!positive(p.snapshot_intervals_hours) ||
      !positive(p.backup_intervals_hours) ||
      (p.allow_incremental_backups &&
       !positive(p.incremental_intervals_hours))) {
    rep.add(Severity::Error, kBadPolicyRange,
            "policy ranges contain non-positive or non-finite intervals",
            "every interval option must be a positive number of hours", at);
  }
  if (p.max_resource_increments < 0) {
    rep.add(Severity::Error, kBadPolicyRange,
            "max_resource_increments is negative", {}, at);
  }
  if (p.snapshot_intervals_hours.empty() ||
      p.backup_intervals_hours.empty() ||
      (p.allow_incremental_backups &&
       p.incremental_intervals_hours.empty())) {
    rep.add(Severity::Error, kEmptyConfigGrid,
            "a policy range is empty: the configuration solver has no "
            "snapshot x backup grid to search",
            "give every enabled range at least one positive option", at);
    return;
  }
  const double min_snap = *std::min_element(p.snapshot_intervals_hours.begin(),
                                            p.snapshot_intervals_hours.end());
  const double max_snap = *std::max_element(p.snapshot_intervals_hours.begin(),
                                            p.snapshot_intervals_hours.end());
  const double min_backup = *std::min_element(p.backup_intervals_hours.begin(),
                                              p.backup_intervals_hours.end());
  const double max_backup = *std::max_element(p.backup_intervals_hours.begin(),
                                              p.backup_intervals_hours.end());
  if (min_snap > max_backup) {
    rep.add(Severity::Error, kEmptyConfigGrid,
            "every snapshot interval exceeds every backup interval: the "
            "snapshot x backup grid is empty",
            "backups accumulate snapshots, so some snapshot interval must "
            "be <= some backup interval",
            at);
  } else if (max_snap > min_backup) {
    rep.add(Severity::Error, kBadPolicyRange,
            "snapshot and backup ranges overlap: the loader rejects "
            "snapshot intervals above the smallest backup interval",
            "keep max(snapshot intervals) <= min(backup intervals)", at);
  }
}

}  // namespace

DiagnosticReport lint_environment(const Environment& env,
                                  const std::string& filename) {
  DiagnosticReport rep;
  const Locus whole{filename, "", 0};

  if (env.topology.sites.empty()) {
    rep.add(Severity::Error, kNoSites, "environment has no sites", {}, whole);
  }
  if (env.apps.empty()) {
    rep.add(Severity::Error, kNoApplications, "environment has no apps", {},
            whole);
  }

  // Device catalogs: presence plus internal discretization consistency.
  if (env.array_types.empty()) {
    rep.add(Severity::Error, kEmptyCatalog, "no disk array models", {},
            whole);
  }
  if (env.tape_types.empty()) {
    rep.add(Severity::Error, kEmptyCatalog, "no tape library models", {},
            whole);
  }
  if (env.network_types.empty()) {
    rep.add(Severity::Error, kEmptyCatalog, "no network link models", {},
            whole);
  }
  for (const auto& t : env.array_types) {
    lint_device_spec(t, "array", filename, rep);
  }
  for (const auto& t : env.tape_types) {
    lint_device_spec(t, "tape", filename, rep);
  }
  for (const auto& t : env.network_types) {
    lint_device_spec(t, "network", filename, rep);
  }
  lint_device_spec(env.compute_type, "compute", filename, rep);

  // Application values (programmatic callers bypass the loader's validate).
  for (const auto& app : env.apps) {
    const Locus at{filename, "application", 0};
    if (!finite_nonneg(app.outage_penalty_rate) ||
        !finite_nonneg(app.loss_penalty_rate)) {
      rep.add(Severity::Error, kBadPenaltyRate,
              app.name + ": penalty rates must be finite and >= 0", {}, at);
    } else if (app.penalty_rate_sum() == 0.0) {
      rep.add(Severity::Warning, kZeroPenaltySum,
              app.name + ": outage and loss penalty rates are both zero",
              "the solver has no incentive to protect this application; "
              "any design is as good as any other",
              at);
    }
    if (!(app.data_size_gb > 0.0) || app.avg_update_mbps < 0.0 ||
        app.peak_update_mbps < app.avg_update_mbps ||
        app.avg_access_mbps < app.avg_update_mbps ||
        app.unique_update_mbps < 0.0 ||
        app.unique_update_mbps > app.avg_update_mbps) {
      rep.add(Severity::Error, kBadWorkloadUnits,
              app.name + ": workload values violate the unit relations "
                         "(size > 0, unique <= avg <= peak, avg <= access)",
              {}, at);
    }
  }

  // Failure model.
  {
    const FailureModel& f = env.failures;
    const Locus at{filename, "failures", 0};
    if (!finite_nonneg(f.data_object_rate) ||
        !finite_nonneg(f.disk_array_rate) ||
        !finite_nonneg(f.site_disaster_rate) ||
        !finite_nonneg(f.regional_disaster_rate)) {
      rep.add(Severity::Error, kBadFailureRate,
              "failure rates must be finite and >= 0 events/year", {}, at);
    } else if (f.data_object_rate == 0.0 && f.disk_array_rate == 0.0 &&
               f.site_disaster_rate == 0.0 &&
               f.regional_disaster_rate == 0.0) {
      rep.add(Severity::Warning, kAllFailureRatesZero,
              "every failure rate is zero: penalties vanish and the tool "
              "degenerates to minimizing outlays",
              "use FailureModel::baseline() rates unless this is intended",
              at);
    }
    // Compatibility note, not a defect: flat-only environments evaluate
    // through the degenerate two-level tree with bit-identical totals.
    if (env.failure_domains == nullptr ||
        env.failure_domains->degenerate_shape()) {
      rep.add(Severity::Note, kLegacyFlatScenarios,
              "failures are described by flat scopes only (no "
              "[failure_domains] tree)",
              "declare a [failure_domains] section (version = 1) with "
              "[domain] nodes to model zones, rooms, outages and "
              "correlated subtree failures",
              {filename, "failures", 0});
    }
  }

  // Catalog feasibility: for each application, some array model must host
  // the primary copy (capacity for the dataset, bandwidth for the accesses).
  for (const auto& app : env.apps) {
    if (!(app.data_size_gb > 0.0)) continue;  // already diagnosed above
    const bool hostable =
        std::any_of(env.array_types.begin(), env.array_types.end(),
                    [&](const DeviceTypeSpec& t) {
                      return t.min_capacity_units(app.data_size_gb,
                                                  app.avg_access_mbps) >= 0;
                    });
    if (!hostable) {
      std::ostringstream os;
      os << app.name << ": no array model can host " << app.data_size_gb
         << " GB at " << app.avg_access_mbps << " MB/s";
      rep.add(Severity::Error, kInfeasibleCatalog, os.str(),
              "add a larger array model to the catalog or shrink the "
              "dataset / access rate",
              {filename, "catalog", 0});
    }

    // Tape chain sanity for the same dataset (warnings: backup techniques
    // would be skipped or mis-sized, but mirror-only designs remain).
    double best_tape_cap = 0.0, best_tape_bw = 0.0;
    for (const auto& t : env.tape_types) {
      best_tape_cap = std::max(best_tape_cap, t.max_capacity_gb());
      best_tape_bw = std::max(best_tape_bw, t.max_bandwidth_mbps());
    }
    if (!env.tape_types.empty() && app.data_size_gb > best_tape_cap) {
      std::ostringstream os;
      os << app.name << ": one full backup (" << app.data_size_gb
         << " GB) overflows the largest tape library (" << best_tape_cap
         << " GB)";
      rep.add(Severity::Warning, kTapeCapacityExceeded, os.str(),
              "backup techniques will be infeasible for this application",
              {filename, "catalog", 0});
    } else if (!env.tape_types.empty() && best_tape_bw > 0.0) {
      const double hours =
          units::transfer_hours(app.data_size_gb, best_tape_bw);
      if (hours > env.params.backup_window_target_hours) {
        std::ostringstream os;
        os << app.name << ": a full backup needs " << hours
           << " h at full drive provisioning, beyond the "
           << env.params.backup_window_target_hours << " h backup window";
        rep.add(Severity::Warning, kBackupWindowOverrun, os.str(),
                "add tape drives / a faster library, or relax "
                "backup_window_target_hours",
                {filename, "catalog", 0});
      }
    }
  }

  // Perf hint: when every application shares one failure domain, every
  // shared-scope scenario fails all of them at once — the scenario's
  // contention footprint is global, and the solvers' incremental cost
  // evaluation (cost/incremental.hpp) degenerates to a full recompute on
  // those scenarios after any mutation.
  if (env.apps.size() >= 2 && !env.topology.sites.empty()) {
    if (env.topology.site_count() == 1 &&
        env.failures.site_disaster_rate > 0.0) {
      std::ostringstream os;
      os << "single-site topology with " << env.apps.size()
         << " applications: every site disaster fails all of them at once, "
            "so every mutation re-simulates those scenarios in full";
      rep.add(Severity::Warning, kGlobalFailureFootprint, os.str(),
              "split the applications across additional sites to localize "
              "failure footprints (and enable mirroring)",
              {filename, "site", 0});
    } else if (env.topology.site_count() > 1 &&
               env.failures.regional_disaster_rate > 0.0) {
      const int region0 = env.topology.sites.front().region;
      const bool one_region =
          std::all_of(env.topology.sites.begin(), env.topology.sites.end(),
                      [&](const SiteSpec& s) { return s.region == region0; });
      if (one_region) {
        std::ostringstream os;
        os << "all " << env.topology.site_count()
           << " sites share one region while regional disasters are "
              "enabled: every regional scenario fails all applications at "
              "once, so every mutation re-simulates it in full";
        rep.add(Severity::Warning, kGlobalFailureFootprint, os.str(),
                "place sites in different regions, or disable "
                "regional_disaster_rate if regional failures are out of "
                "scope",
                {filename, "site", 0});
      }
    }
  }

  // Topology: mirroring needs a connected pair with enough link bandwidth.
  const auto& topo = env.topology;
  if (topo.site_count() > 1 && topo.pair_limits.empty()) {
    rep.add(Severity::Warning, kUnmirrorableTopology,
            "several sites but no [link] sections: inter-site mirroring "
            "is impossible",
            "connect site pairs with [link] sections to enable mirrors",
            {filename, "link", 0});
  } else if (!topo.pair_limits.empty() && !env.network_types.empty()) {
    double best_pair_bw = 0.0;
    for (const auto& pair : topo.pair_limits) {
      for (const auto& t : env.network_types) {
        const int links = std::min(pair.max_links, t.max_bandwidth_units);
        best_pair_bw =
            std::max(best_pair_bw, links * t.bandwidth_unit_mbps);
      }
    }
    for (const auto& app : env.apps) {
      if (app.peak_update_mbps > best_pair_bw) {
        std::ostringstream os;
        os << app.name << ": peak update rate " << app.peak_update_mbps
           << " MB/s exceeds the best provisionable link group ("
           << best_pair_bw << " MB/s)";
        rep.add(Severity::Warning, kMirrorBandwidthUnreachable, os.str(),
                "synchronous mirroring is infeasible for this application; "
                "raise max_links or add a faster network model",
                {filename, "link", 0});
      }
    }
  }

  // Compute: each application occupies one slot at its primary site.
  {
    long total_slots = 0;
    for (const auto& site : topo.sites) {
      total_slots += std::max(0, site.max_compute_slots);
      if (site.max_disk_arrays < 0 || site.max_spare_arrays < 0 ||
          site.max_tape_libraries < 0 || site.max_compute_slots < 0 ||
          site.fixed_cost < 0.0) {
        rep.add(Severity::Error, kBadSiteLimit,
                "site `" + site.name + "` has a negative limit or cost", {},
                {filename, "site", 0});
      }
    }
    if (!topo.sites.empty() &&
        total_slots < static_cast<long>(env.apps.size())) {
      std::ostringstream os;
      os << "only " << total_slots << " compute slots for "
         << env.apps.size() << " applications";
      rep.add(Severity::Warning, kInsufficientCompute, os.str(),
              "raise max_compute_slots; every application needs a slot at "
              "its primary site",
              {filename, "site", 0});
    }
  }

  // Configuration-solver grid and classification thresholds.
  lint_policies(env.policies, filename, rep);
  if (env.thresholds.silver_min < 0.0 ||
      env.thresholds.gold_min < env.thresholds.silver_min) {
    rep.add(Severity::Error, kBadCategoryThresholds,
            "category thresholds out of order: need 0 <= silver_min <= "
            "gold_min",
            "gold/silver/bronze classification is monotone in the penalty "
            "sum",
            {filename, "", 0});
  }

  return rep;
}

DiagnosticReport lint_environment_text(const std::string& text,
                                       const std::string& filename) {
  DiagnosticReport rep;
  std::vector<IniSection> sections;
  try {
    sections = parse_ini(text);
  } catch (const InvalidArgument& e) {
    rep.add(Severity::Error, kIniParseError, e.what(),
            "expected `[section]` headers and `key = value` lines",
            {filename, "", 0});
    return rep;
  }

  IniLinter(rep, filename).run(sections);
  if (rep.has_errors()) return rep;  // the loader would reject it anyway

  // Syntactically sound: load it and run the semantic rules on the result.
  try {
    const Environment env = environment_from_ini(text);
    rep.merge(lint_environment(env, filename));
  } catch (const std::exception& e) {
    rep.add(Severity::Error, kLoadFailed,
            std::string("environment fails to load: ") + e.what(),
            "this is a gap in the linter's coverage — please report it",
            {filename, "", 0});
  }
  return rep;
}

DiagnosticReport lint_environment_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    DiagnosticReport rep;
    rep.add(Severity::Error, kLoadFailed,
            "cannot open environment file: " + path, {}, {path, "", 0});
    return rep;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_environment_text(buffer.str(), path);
}

}  // namespace depstor::analysis
