#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"

namespace depstor::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::string Locus::render() const {
  std::ostringstream os;
  if (!file.empty()) os << file;
  if (line > 0) os << (file.empty() ? "line " : ":") << line;
  if (!section.empty()) {
    if (os.tellp() > 0) os << " ";
    os << "[" << section << "]";
  }
  return os.str();
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  const std::string at = locus.render();
  if (!at.empty()) os << at << ": ";
  os << to_string(severity) << ": " << message << " [" << rule << "]";
  if (!hint.empty()) os << "\n    hint: " << hint;
  return os.str();
}

void DiagnosticReport::add(Severity severity, std::string rule,
                           std::string message, std::string hint,
                           Locus locus) {
  Diagnostic d;
  d.severity = severity;
  d.rule = std::move(rule);
  d.message = std::move(message);
  d.hint = std::move(hint);
  d.locus = std::move(locus);
  diagnostics_.push_back(std::move(d));
}

int DiagnosticReport::count(Severity s) const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

bool DiagnosticReport::has_rule(const std::string& rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

void DiagnosticReport::merge(DiagnosticReport other) {
  for (auto& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

std::string DiagnosticReport::render_text() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.render() << "\n";
  os << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  return os.str();
}

std::string DiagnosticReport::render_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("diagnostics").begin_array();
  for (const auto& d : diagnostics_) {
    w.begin_object();
    w.field("severity", to_string(d.severity));
    w.field("rule", d.rule);
    w.field("message", d.message);
    if (!d.hint.empty()) w.field("hint", d.hint);
    if (d.locus.known() || !d.locus.file.empty()) {
      w.key("locus").begin_object();
      if (!d.locus.file.empty()) w.field("file", d.locus.file);
      if (!d.locus.section.empty()) w.field("section", d.locus.section);
      if (d.locus.line > 0) w.field("line", d.locus.line);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("errors", error_count());
  w.field("warnings", warning_count());
  w.end_object();
  return w.str();
}

}  // namespace depstor::analysis
