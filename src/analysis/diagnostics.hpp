// Structured diagnostics for the static-analysis layer (depstor_lint and the
// design-invariant auditor).
//
// Every finding carries a severity, a stable rule id (see analysis/lint.hpp
// and analysis/audit.hpp for the catalogs), a human message, an optional fix
// hint, and — for findings rooted in an environment file — an INI locus
// (file, section, 1-based line of the section header). Reports render as
// compiler-style text or as a JSON document (util/json.hpp) for tooling.
#pragma once

#include <string>
#include <vector>

namespace depstor::analysis {

enum class Severity { Note, Warning, Error };

const char* to_string(Severity s);

/// Where a diagnostic points: an INI section of an environment file.
/// Empty file/section means "the environment as a whole".
struct Locus {
  std::string file;     ///< path as given to the linter; may be "<input>"
  std::string section;  ///< INI section name, e.g. "application"
  int line = 0;         ///< 1-based line of the section header; 0 = unknown

  bool known() const { return !section.empty() || line > 0; }
  std::string render() const;  ///< "file:line [section]" (parts optional)
};

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;     ///< stable id, e.g. "dangling-site-ref"
  std::string message;  ///< what is wrong, with the offending values
  std::string hint;     ///< how to fix it; may be empty
  Locus locus;

  std::string render() const;  ///< one text line, compiler style
};

/// An ordered list of diagnostics plus the emitters. Used both by the
/// pre-solve linter and the post-solve auditor.
class DiagnosticReport {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void add(Severity severity, std::string rule, std::string message,
           std::string hint = {}, Locus locus = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  int count(Severity s) const;
  int error_count() const { return count(Severity::Error); }
  int warning_count() const { return count(Severity::Warning); }
  bool has_errors() const { return error_count() > 0; }

  /// True when a diagnostic with the given rule id is present.
  bool has_rule(const std::string& rule) const;

  /// Merge another report's findings (appended in order).
  void merge(DiagnosticReport other);

  /// One line per diagnostic plus a trailing summary line.
  std::string render_text() const;

  /// JSON document: {"diagnostics": [...], "errors": n, "warnings": n}.
  std::string render_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace depstor::analysis
