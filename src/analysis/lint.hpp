// depstor_lint: pre-solve static checking of design-problem inputs.
//
// The solvers assume a well-formed Environment: consistent units, feasible
// device catalogs, penalty rates that make the outage/loss tradeoff
// well-posed, and policy ranges that leave the configuration solver a
// non-empty grid. `environment_from_ini` enforces much of this but throws at
// the *first* violation with a single message; the linter instead walks the
// whole input and reports every finding as a structured diagnostic with a
// stable rule id and an INI locus, so broken environments are fixable in one
// pass and tooling (CI, editors) can consume the results as JSON.
//
// Two entry points:
//   * lint_environment_text — raw INI text. Structural and reference checks
//     run section by section with file/line loci; when the text also loads
//     cleanly, the struct-level rules run on the result.
//   * lint_environment — an already-built Environment (programmatic callers:
//     scenario builders, the batch engine). Covers the semantic rules only.
//
// Rule catalog (stable ids; severity in parentheses; see DESIGN.md §6):
//
//   ini-parse-error          (E) malformed INI text
//   unknown-section          (E) section is not site/link/application/...
//   unknown-key              (W) unrecognized key in a known section
//   missing-key              (E) required key absent
//   bad-number               (E) numeric value unparseable or non-finite
//   no-sites                 (E) no [site] section
//   no-applications          (E) no [application] section
//   duplicate-site-name      (E) two sites share a name
//   duplicate-application-name (E) two applications share a name
//   duplicate-catalog-device (E) a catalog key lists the same model twice
//   bad-site-limit           (E) negative device/compute limit or cost
//   dangling-site-ref        (E) link endpoint names an unknown site
//   self-link                (E) link connects a site to itself
//   duplicate-link           (W) repeated site pair
//   bad-link-limit           (E) max_links < 1
//   bad-penalty-rate         (E) penalty rate negative or NaN
//   zero-penalty-sum         (W) outage + loss penalty is zero
//   bad-workload-units       (E) sizes/rates violate unit relations
//   unknown-device           (E) catalog name not in the Table 3 catalog
//   wrong-device-kind        (E) e.g. a tape model under `arrays`
//   empty-catalog            (E) catalog key lists no devices
//   bad-device-spec          (E) device discretization inconsistent
//   infeasible-catalog       (E) no array model can host an application
//   tape-capacity-exceeded   (W) one full backup overflows the best library
//   backup-window-overrun    (W) full backup cannot finish in the window
//   mirror-bandwidth-unreachable (W) no link group can carry a peak stream
//   unmirrorable-topology    (W) several sites but no links between them
//   insufficient-compute     (W) fewer compute slots than applications
//   bad-failure-rate         (E) failure rate negative or NaN
//   all-failure-rates-zero   (W) the failure model is vacuous
//   bad-domain-decl          (E) [domain] level missing/unknown, or a
//                                required key for that level is absent
//   legacy-flat-scenarios    (N) the environment describes failures with
//                                flat scopes only (no [failure_domains]
//                                tree); it evaluates through the degenerate
//                                compatibility tree
//   global-failure-footprint (W) every shared-failure scenario spans all
//                                applications (one site, or one region with
//                                regional disasters on): incremental cost
//                                evaluation degenerates to full recompute
//   bad-policy-range         (E) non-positive interval in a policy range
//   empty-config-grid        (E) policy ranges leave the solver no grid
//   bad-category-thresholds  (E) gold/silver thresholds out of order
//   load-failed              (E) environment loads/validates despite lint
//   removed-cli-flag         (W) command line uses a removed flag spelling
//                                (emitted by util/cli's shared execution-flag
//                                parser, e.g. --engine-workers → --workers)
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "core/environment.hpp"

namespace depstor::analysis {

namespace rules {
inline constexpr const char* kIniParseError = "ini-parse-error";
inline constexpr const char* kUnknownSection = "unknown-section";
inline constexpr const char* kUnknownKey = "unknown-key";
inline constexpr const char* kMissingKey = "missing-key";
inline constexpr const char* kBadNumber = "bad-number";
inline constexpr const char* kNoSites = "no-sites";
inline constexpr const char* kNoApplications = "no-applications";
inline constexpr const char* kDuplicateSiteName = "duplicate-site-name";
inline constexpr const char* kDuplicateApplicationName =
    "duplicate-application-name";
inline constexpr const char* kDuplicateCatalogDevice =
    "duplicate-catalog-device";
inline constexpr const char* kBadSiteLimit = "bad-site-limit";
inline constexpr const char* kDanglingSiteRef = "dangling-site-ref";
inline constexpr const char* kSelfLink = "self-link";
inline constexpr const char* kDuplicateLink = "duplicate-link";
inline constexpr const char* kBadLinkLimit = "bad-link-limit";
inline constexpr const char* kBadPenaltyRate = "bad-penalty-rate";
inline constexpr const char* kZeroPenaltySum = "zero-penalty-sum";
inline constexpr const char* kBadWorkloadUnits = "bad-workload-units";
inline constexpr const char* kUnknownDevice = "unknown-device";
inline constexpr const char* kWrongDeviceKind = "wrong-device-kind";
inline constexpr const char* kEmptyCatalog = "empty-catalog";
inline constexpr const char* kBadDeviceSpec = "bad-device-spec";
inline constexpr const char* kInfeasibleCatalog = "infeasible-catalog";
inline constexpr const char* kTapeCapacityExceeded = "tape-capacity-exceeded";
inline constexpr const char* kBackupWindowOverrun = "backup-window-overrun";
inline constexpr const char* kMirrorBandwidthUnreachable =
    "mirror-bandwidth-unreachable";
inline constexpr const char* kUnmirrorableTopology = "unmirrorable-topology";
inline constexpr const char* kInsufficientCompute = "insufficient-compute";
inline constexpr const char* kBadFailureRate = "bad-failure-rate";
inline constexpr const char* kAllFailureRatesZero = "all-failure-rates-zero";
inline constexpr const char* kBadDomainDecl = "bad-domain-decl";
inline constexpr const char* kLegacyFlatScenarios = "legacy-flat-scenarios";
inline constexpr const char* kGlobalFailureFootprint =
    "global-failure-footprint";
inline constexpr const char* kBadPolicyRange = "bad-policy-range";
inline constexpr const char* kEmptyConfigGrid = "empty-config-grid";
inline constexpr const char* kBadCategoryThresholds =
    "bad-category-thresholds";
inline constexpr const char* kLoadFailed = "load-failed";
inline constexpr const char* kRemovedCliFlag = "removed-cli-flag";
}  // namespace rules

/// Lint environment-file text. Never throws on bad input — every problem
/// becomes a diagnostic. `filename` seeds the loci (display only).
DiagnosticReport lint_environment_text(const std::string& text,
                                       const std::string& filename = "<input>");

/// Read the file and lint it. A missing/unreadable file yields a single
/// `load-failed` error.
DiagnosticReport lint_environment_file(const std::string& path);

/// Lint an already-built Environment: catalog feasibility, failure rates,
/// policy-range grid, category thresholds, capacity/bandwidth sanity.
DiagnosticReport lint_environment(const Environment& env,
                                  const std::string& filename = {});

}  // namespace depstor::analysis
