#include "protection/technique.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace depstor {

const char* to_string(MirrorMode m) {
  switch (m) {
    case MirrorMode::None:
      return "none";
    case MirrorMode::Sync:
      return "sync";
    case MirrorMode::Async:
      return "async";
  }
  return "?";
}

const char* to_string(RecoveryMode r) {
  switch (r) {
    case RecoveryMode::Reconstruct:
      return "reconstruct";
    case RecoveryMode::Failover:
      return "failover";
  }
  return "?";
}

const char* to_string(BackupCycleMode m) {
  switch (m) {
    case BackupCycleMode::FullOnly:
      return "full-only";
    case BackupCycleMode::FullPlusIncrementals:
      return "full+incrementals";
  }
  return "?";
}

int BackupChainConfig::incrementals_per_cycle() const {
  if (!has_incrementals()) return 0;
  const int cuts = static_cast<int>(backup_interval_hours /
                                    incremental_interval_hours);
  return std::max(0, cuts - 1);  // the boundary cut is the full itself
}

void BackupChainConfig::validate() const {
  DEPSTOR_EXPECTS(snapshot_interval_hours > 0.0);
  DEPSTOR_EXPECTS(snapshots_retained >= 1);
  DEPSTOR_EXPECTS(backup_interval_hours >= snapshot_interval_hours);
  DEPSTOR_EXPECTS(backups_retained >= 1);
  if (has_incrementals()) {
    DEPSTOR_EXPECTS(incremental_interval_hours >= snapshot_interval_hours);
    DEPSTOR_EXPECTS(incremental_interval_hours <= backup_interval_hours);
  }
  DEPSTOR_EXPECTS(vault_interval_hours >= backup_interval_hours);
  DEPSTOR_EXPECTS(vault_shipping_hours >= 0.0);
}

double TechniqueSpec::mirror_bandwidth_demand(
    const ApplicationSpec& app) const {
  switch (mirror) {
    case MirrorMode::None:
      return 0.0;
    case MirrorMode::Sync:
      return app.peak_update_mbps;
    case MirrorMode::Async:
      return app.avg_update_mbps;
  }
  return 0.0;
}

void TechniqueSpec::validate() const {
  DEPSTOR_EXPECTS_MSG(!name.empty(), "technique needs a name");
  DEPSTOR_EXPECTS_MSG(has_mirror() || has_backup,
                      name + ": technique protects nothing");
  if (has_mirror()) {
    DEPSTOR_EXPECTS_MSG(mirror_accumulation_hours > 0.0, name);
  } else {
    DEPSTOR_EXPECTS_MSG(recovery == RecoveryMode::Reconstruct,
                        name + ": failover requires a mirror");
  }
  DEPSTOR_EXPECTS_MSG(category == classify_technique(mirror, recovery,
                                                     has_backup),
                      name + ": category inconsistent with features");
}

AppCategory classify_technique(MirrorMode mirror, RecoveryMode recovery,
                               bool has_backup) {
  (void)has_backup;  // backup presence does not change the §3.1.3 class
  if (mirror != MirrorMode::None && recovery == RecoveryMode::Failover) {
    return AppCategory::Gold;
  }
  if (mirror != MirrorMode::None) return AppCategory::Silver;
  return AppCategory::Bronze;
}

}  // namespace depstor
