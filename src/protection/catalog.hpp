// Table 2: the nine data protection technique alternatives.
//
//   sync  mirror + backup, failover     (Gold)
//   sync  mirror + backup, reconstruct  (Silver)
//   async mirror + backup, failover     (Gold)
//   async mirror + backup, reconstruct  (Silver)
//   sync  mirror, failover              (Gold)
//   sync  mirror, reconstruct           (Silver)
//   async mirror, failover              (Gold)
//   async mirror, reconstruct           (Silver)
//   tape backup only                    (Bronze)
#pragma once

#include <vector>

#include "protection/technique.hpp"

namespace depstor::protection {

/// Mirror accumulation windows from Table 2.
inline constexpr double kSyncAccumulationHours = 0.5 / 60.0;  // 0.5 min
inline constexpr double kAsyncAccumulationHours = 10.0 / 60.0;  // 10 min

TechniqueSpec mirror_technique(MirrorMode mirror, RecoveryMode recovery,
                               bool with_backup);
TechniqueSpec tape_backup_only();

/// All nine techniques, strongest (gold) first.
std::vector<TechniqueSpec> all_techniques();

/// Techniques of exactly the given protection class.
std::vector<TechniqueSpec> techniques_in_class(AppCategory cls);

/// Techniques eligible for an application of class `cls`: the same class or
/// better (§3.1.3).
std::vector<TechniqueSpec> eligible_techniques(AppCategory cls);

/// Catalog lookup by name; throws InvalidArgument when unknown.
TechniqueSpec by_name(const std::string& name);

}  // namespace depstor::protection
