#include "protection/catalog.hpp"

#include "util/check.hpp"

namespace depstor::protection {

TechniqueSpec mirror_technique(MirrorMode mirror, RecoveryMode recovery,
                               bool with_backup) {
  DEPSTOR_EXPECTS(mirror != MirrorMode::None);
  TechniqueSpec t;
  t.mirror = mirror;
  t.recovery = recovery;
  t.has_backup = with_backup;
  t.mirror_accumulation_hours = mirror == MirrorMode::Sync
                                    ? kSyncAccumulationHours
                                    : kAsyncAccumulationHours;
  t.category = classify_technique(mirror, recovery, with_backup);
  t.name = std::string(mirror == MirrorMode::Sync ? "Sync" : "Async") +
           " mirror (" +
           (recovery == RecoveryMode::Failover ? "F" : "R") + ")" +
           (with_backup ? " with backup" : "");
  t.validate();
  return t;
}

TechniqueSpec tape_backup_only() {
  TechniqueSpec t;
  t.mirror = MirrorMode::None;
  t.recovery = RecoveryMode::Reconstruct;
  t.has_backup = true;
  t.category = AppCategory::Bronze;
  t.name = "Tape backup";
  t.validate();
  return t;
}

std::vector<TechniqueSpec> all_techniques() {
  std::vector<TechniqueSpec> out;
  for (bool backup : {true, false}) {
    for (MirrorMode mirror : {MirrorMode::Sync, MirrorMode::Async}) {
      for (RecoveryMode rec : {RecoveryMode::Failover,
                               RecoveryMode::Reconstruct}) {
        out.push_back(mirror_technique(mirror, rec, backup));
      }
    }
  }
  out.push_back(tape_backup_only());
  return out;
}

std::vector<TechniqueSpec> techniques_in_class(AppCategory cls) {
  std::vector<TechniqueSpec> out;
  for (auto& t : all_techniques()) {
    if (t.category == cls) out.push_back(std::move(t));
  }
  return out;
}

std::vector<TechniqueSpec> eligible_techniques(AppCategory cls) {
  std::vector<TechniqueSpec> out;
  for (auto& t : all_techniques()) {
    if (static_cast<int>(t.category) >= static_cast<int>(cls)) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

TechniqueSpec by_name(const std::string& name) {
  for (auto& t : all_techniques()) {
    if (t.name == name) return t;
  }
  throw InvalidArgument("unknown technique: " + name);
}

}  // namespace depstor::protection
