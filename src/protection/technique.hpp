// Data protection and recovery technique model (paper §2.1, Table 2).
//
// Techniques are modeled as a hierarchy of secondary-copy levels above the
// primary copy:
//
//   level 1a  inter-site mirror (sync: 0.5 min accumulation; async: 10 min),
//             propagated over provisioned network links
//   level 1b  local array snapshots (12 hr accumulation, space-efficient)
//   level 2   tape backup at the primary site (weekly full by default),
//             propagated at tape-drive bandwidth
//   level 3   offsite vault (every 28 days, 1 day shipping)
//
// The accumulation window is the time between successive copies at a level;
// the propagation window is the time a copy takes to reach that level. The
// two bound the staleness (recent data loss) of a recovery from that level.
//
// Each technique also fixes the recovery style after failures that leave the
// mirror intact: Failover (resume at the secondary site) or Reconstruct
// (copy data back and restart at the primary site).
#pragma once

#include <string>
#include <vector>

#include "workload/application.hpp"

namespace depstor {

enum class MirrorMode { None, Sync, Async };
enum class RecoveryMode { Reconstruct, Failover };

const char* to_string(MirrorMode m);
const char* to_string(RecoveryMode r);

/// Tape backup cycle styles (level 2). FullOnly cuts a full copy every
/// backup interval. FullPlusIncrementals additionally cuts an incremental
/// (the unique updates since the previous cut) every incremental interval —
/// fresher tape copies for a little extra capacity, paid back at restore
/// time by replaying the incremental chain.
enum class BackupCycleMode { FullOnly, FullPlusIncrementals };

const char* to_string(BackupCycleMode m);

/// Backup-chain configuration (levels 1b/2/3). The intervals are the
/// *configurable* parameters the configuration solver searches over; the
/// Table 2 defaults are the initial values.
struct BackupChainConfig {
  double snapshot_interval_hours = 12.0;  ///< level 1b accumulation window
  int snapshots_retained = 2;
  double backup_interval_hours = 7.0 * 24.0;  ///< level 2 accumulation window
  /// Full copies kept in the library; older fulls migrate offsite on the
  /// level-3 vault cycle, so only the recent ones consume cartridges.
  int backups_retained = 2;
  BackupCycleMode cycle = BackupCycleMode::FullOnly;
  double incremental_interval_hours = 24.0;  ///< within a full cycle
  double vault_interval_hours = 28.0 * 24.0;  ///< level 3 accumulation window
  double vault_shipping_hours = 24.0;         ///< level 3 propagation window

  bool has_incrementals() const {
    return cycle == BackupCycleMode::FullPlusIncrementals;
  }

  /// Incrementals cut per full-backup cycle (0 for FullOnly). The cut at
  /// the cycle boundary is the full itself.
  int incrementals_per_cycle() const;

  void validate() const;
};

struct TechniqueSpec {
  std::string name;  ///< e.g. "Async mirror (F) with backup"
  MirrorMode mirror = MirrorMode::None;
  RecoveryMode recovery = RecoveryMode::Reconstruct;
  bool has_backup = false;  ///< snapshot + tape + vault chain present
  AppCategory category = AppCategory::Bronze;  ///< protection class (§3.1.3)

  /// Mirror accumulation window (hours); 0 when no mirror.
  double mirror_accumulation_hours = 0.0;

  bool has_mirror() const { return mirror != MirrorMode::None; }

  /// Network bandwidth (MB/s) the mirror stream needs for an application:
  /// peak update rate for synchronous, average for asynchronous (§2.2).
  double mirror_bandwidth_demand(const ApplicationSpec& app) const;

  /// Short display code, e.g. "Async mirror (F) + backup".
  std::string display() const { return name; }

  void validate() const;
};

/// Protection category implied by technique features (§3.1.3): mirroring
/// with failover → Gold, mirroring with reconstruction → Silver, backup
/// alone → Bronze.
AppCategory classify_technique(MirrorMode mirror, RecoveryMode recovery,
                               bool has_backup);

}  // namespace depstor
