#include "util/log.hpp"

#include <cstdio>

namespace depstor {

namespace {
LogLevel g_level = LogLevel::Off;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Off:
      break;
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[depstor %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace depstor
