// Logarithmic histogram for the Figure 2 solution-space cost distribution.
//
// Solution costs span more than an order of magnitude (paper §4.3.1), so the
// distribution is binned geometrically. The histogram is streaming: bins are
// fixed at construction.
//
// Out-of-range semantics (one semantic, exactly): a sample below `lo` or at/
// above `hi` is counted *only* by underflow()/overflow() — it lands in no
// bin, so sum(count(i)) is exactly the in-range sample count and
// total() == sum(counts) + underflow() + overflow(). quantile() spans the
// full mass, resolving underflow mass to `lo` and overflow mass to `hi`
// (saturation, not interpolation), so out-of-range samples can never skew a
// quantile into the interior of an edge bin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace depstor {

class LogHistogram {
 public:
  /// Bins span [lo, hi) divided geometrically into `bins` buckets.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Every sample ever added (in-range + underflow + overflow).
  std::size_t total() const { return total_; }
  /// Samples below lo / at-or-above hi. Exclusive with the bin counts.
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// [lower, upper) edges of a bin.
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const { return bin_lower(bin + 1); }

  /// Index of the bin a value falls in (clamped to the range).
  std::size_t bin_of(double x) const;

  /// Count of the fullest bin (for rendering).
  std::size_t max_count() const;

  /// Value below which a fraction `q` of the samples fall, log-interpolated
  /// within the containing bin (so p50/p95 stay meaningful with coarse
  /// bins). Spans the full mass: quantiles falling in the underflow mass
  /// return `lo`, in the overflow mass `hi`. Returns 0 when the histogram
  /// is empty.
  double quantile(double q) const;

  /// Render an ASCII bar chart, one row per bin, bars scaled to `width`.
  /// Empty leading/trailing bins are elided.
  std::string render(std::size_t width = 60) const;

 private:
  double lo_;
  double log_lo_;
  double log_step_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace depstor
