// Minimal JSON *writer* for depstor's machine-readable reports.
//
// Writer only — depstor never parses JSON. The builder keeps an explicit
// stack of open containers, validates the grammar (keys only inside
// objects, values only where a value may appear), and escapes strings per
// RFC 8259. Numbers are emitted with enough digits to round-trip doubles.
#pragma once

#include <string>
#include <vector>

namespace depstor {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value; only valid directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(long long v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Finished document. Throws InternalError when containers remain open.
  std::string str() const;

  /// True when every container has been closed.
  bool complete() const { return stack_.empty() && started_; }

 private:
  enum class Frame { Object, Array };

  void before_value();
  void write_escaped(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  ///< parallel to stack_
  bool pending_key_ = false;
  bool started_ = false;
};

}  // namespace depstor
