// Minimal JSON writer + parser for depstor's machine-readable reports.
//
// The writer is the production path: it keeps an explicit stack of open
// containers, validates the grammar (keys only inside objects, values only
// where a value may appear), and escapes strings per RFC 8259. Numbers are
// emitted with enough digits to round-trip doubles.
//
// The parser (JsonValue / parse_json) exists for depstor's own artifacts —
// round-trip tests over the Chrome trace export and the batch/bench JSON —
// so the emitters are verified against a real reader, not by substring
// matching. It is a strict RFC 8259 recursive-descent parser; errors carry
// a byte-offset locus.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace depstor {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value; only valid directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(long long v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Finished document. Throws InternalError when containers remain open.
  std::string str() const;

  /// True when every container has been closed.
  bool complete() const { return stack_.empty() && started_; }

 private:
  enum class Frame { Object, Array };

  void before_value();
  void write_escaped(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  ///< parallel to stack_
  bool pending_key_ = false;
  bool started_ = false;
};

/// A parsed JSON document node. Accessors throw InvalidArgument on type
/// mismatches or missing members so tests fail with a message instead of UB.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  ///< null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array elements in document order.
  const std::vector<JsonValue>& items() const;
  /// Object members in document order (duplicate keys are rejected at
  /// parse time).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  bool has(const std::string& key) const;
  /// Object member lookup; throws when absent.
  const JsonValue& at(const std::string& key) const;
  /// Array element lookup; throws when out of range.
  const JsonValue& at(std::size_t index) const;
  /// Element/member count of an array/object.
  std::size_t size() const;

 private:
  friend struct JsonValueBuilder;  ///< parser-side access (json.cpp)

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Input-size policy for parse_json. The service wire format (serve/proto)
/// feeds the parser attacker-controlled bytes, so callers can bound the
/// document instead of letting a hostile request allocate without limit.
struct JsonLimits {
  /// Maximum document size in bytes; 0 = unlimited (trusted local artifacts).
  std::size_t max_bytes = 0;
};

/// Parse a complete JSON document (one value plus surrounding whitespace).
/// Throws InvalidArgument with a byte-offset locus on malformed input:
/// truncated documents report the offset where input ran out, oversized
/// documents (per `limits.max_bytes`) report the limit and the actual size
/// without touching the bytes at all.
JsonValue parse_json(const std::string& text, const JsonLimits& limits);
JsonValue parse_json(const std::string& text);

}  // namespace depstor
