#include "util/check.hpp"

#include <sstream>

namespace depstor::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": `" << expr << "` failed at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(format("precondition", expr, file, line, msg));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& msg) {
  throw InternalError(format("invariant", expr, file, line, msg));
}

void throw_infeasible(const char* expr, const char* file, int line,
                      const std::string& msg) {
  throw InfeasibleError(format("feasibility requirement", expr, file, line,
                               msg));
}

}  // namespace depstor::detail
