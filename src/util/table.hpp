// ASCII table / CSV rendering used by the bench harnesses and examples to
// print paper-style tables (Table 4, the Figure 3/4 series, …).
#pragma once

#include <string>
#include <vector>

namespace depstor {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for common cell types.
  static std::string money(double dollars);     ///< "$1.23M" style
  static std::string num(double v, int prec = 2);
  static std::string hours(double h);           ///< "3.2 h" / "12 min"
  static std::string yes_no(bool b);            ///< "yes" / "-"

  std::size_t row_count() const { return rows_.size(); }

  /// Render with aligned columns and a header rule.
  std::string render() const;

  /// Render as CSV (no alignment, comma-escaped).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace depstor
