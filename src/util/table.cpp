#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DEPSTOR_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DEPSTOR_EXPECTS_MSG(cells.size() == headers_.size(),
                      "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::money(double dollars) {
  char buf[64];
  const double mag = std::fabs(dollars);
  if (mag >= 1e9) {
    std::snprintf(buf, sizeof buf, "$%.3gB", dollars / 1e9);
  } else if (mag >= 1e6) {
    std::snprintf(buf, sizeof buf, "$%.3gM", dollars / 1e6);
  } else if (mag >= 1e3) {
    std::snprintf(buf, sizeof buf, "$%.3gK", dollars / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "$%.0f", dollars);
  }
  return buf;
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::hours(double h) {
  char buf[64];
  if (h < 1.0 / 60.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", h * units::kSecondsPerHour);
  } else if (h < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", units::to_minutes(h));
  } else if (h < 2.0 * units::kHoursPerDay) {
    std::snprintf(buf, sizeof buf, "%.2f h", h);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f d", units::to_days(h));
  }
  return buf;
}

std::string Table::yes_no(bool b) { return b ? "yes" : "-"; }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::render_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << escape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace depstor
