#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace depstor {

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), log_lo_(std::log(lo)), counts_(bins, 0) {
  DEPSTOR_EXPECTS(lo > 0.0 && hi > lo);
  DEPSTOR_EXPECTS(bins > 0);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(bins);
}

std::size_t LogHistogram::bin_of(double x) const {
  if (x < lo_) return 0;
  const double raw = (std::log(x) - log_lo_) / log_step_;
  const auto bin = static_cast<std::size_t>(std::max(0.0, raw));
  return std::min(bin, counts_.size() - 1);
}

void LogHistogram::add(double x) {
  DEPSTOR_EXPECTS_MSG(x > 0.0, "log histogram needs positive samples");
  ++total_;
  // Out-of-range samples are tracked only by the under/overflow counters —
  // counting them into the edge bins as well made total() ambiguous and let
  // far-out-of-range mass skew quantile() into the edge bins' interiors.
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= bin_lower(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[bin_of(x)];
}

double LogHistogram::bin_lower(std::size_t bin) const {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(bin));
}

std::size_t LogHistogram::max_count() const {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

double LogHistogram::quantile(double q) const {
  DEPSTOR_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  // Mass order: underflow (resolved to lo), the bins, overflow (resolved to
  // hi after the loop falls through).
  if (underflow_ > 0 && target <= static_cast<double>(underflow_)) return lo_;
  std::size_t cumulative = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::size_t before = cumulative;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      const double frac = std::clamp(
          (target - static_cast<double>(before)) /
              static_cast<double>(counts_[i]),
          0.0, 1.0);
      return std::exp(log_lo_ +
                      log_step_ * (static_cast<double>(i) + frac));
    }
  }
  return bin_upper(counts_.size() - 1);
}

std::string LogHistogram::render(std::size_t width) const {
  std::size_t first = 0;
  std::size_t last = counts_.size();
  while (first < last && counts_[first] == 0) ++first;
  while (last > first && counts_[last - 1] == 0) --last;

  const std::size_t peak = std::max<std::size_t>(max_count(), 1);
  std::ostringstream os;
  for (std::size_t i = first; i < last; ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    os << "[";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%9.3g", bin_lower(i));
    os << buf << ", ";
    std::snprintf(buf, sizeof buf, "%9.3g", bin_upper(i));
    os << buf << ") ";
    os << std::string(bar, '#');
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace depstor
