#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace depstor {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  DEPSTOR_EXPECTS(!values.empty());
  DEPSTOR_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<double> percentiles(std::vector<double> values,
                                const std::vector<double>& qs) {
  DEPSTOR_EXPECTS(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    DEPSTOR_EXPECTS(q >= 0.0 && q <= 1.0);
    const double rank = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    out.push_back(values[lo] + frac * (values[hi] - values[lo]));
  }
  return out;
}

}  // namespace depstor
