#include "util/ini.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace depstor {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

[[noreturn]] void missing(const IniSection& section, const std::string& key) {
  throw InvalidArgument("[" + section.name + "] (line " +
                        std::to_string(section.line) + ") is missing key '" +
                        key + "'");
}

/// Lint-style locus error for a value that does not parse as the requested
/// numeric type: section + declaration line + key + the offending token.
[[noreturn]] void bad_number(const IniSection& section, const std::string& key,
                             const std::string& raw, const char* expected) {
  throw InvalidArgument("[" + section.name + "] (line " +
                        std::to_string(section.line) + ") " + key +
                        " is not " + expected + ": '" + raw + "'");
}

}  // namespace

std::string IniSection::get_string(const std::string& key) const {
  const auto it = values.find(key);
  if (it == values.end()) missing(*this, key);
  return it->second;
}

std::string IniSection::get_string_or(const std::string& key,
                                      const std::string& fallback) const {
  const auto it = values.find(key);
  return it == values.end() ? fallback : it->second;
}

double IniSection::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  // strtod alone is too permissive for config files: it parses a numeric
  // prefix (so `3.5abc` yielded 3.5), turns an empty value into 0.0 (end ==
  // start, *end == '\0'), and accepts inf/nan tokens that poison every
  // downstream cost sum. Require the whole non-empty token to be consumed
  // and the result to be finite.
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    bad_number(*this, key, raw, "a number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    bad_number(*this, key, raw, "a finite number");
  }
  return v;
}

double IniSection::get_double_or(const std::string& key,
                                 double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

int IniSection::get_int(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    bad_number(*this, key, raw, "an integer");
  }
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
    bad_number(*this, key, raw, "an int-range integer");
  }
  return static_cast<int>(v);
}

int IniSection::get_int_or(const std::string& key, int fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::vector<IniSection> parse_ini(const std::string& text) {
  std::vector<IniSection> sections;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string raw =
        text.substr(pos, nl == std::string::npos ? nl : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_number;

    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw InvalidArgument("line " + std::to_string(line_number) +
                              ": malformed section header: " + line);
      }
      IniSection section;
      section.name = trim(line.substr(1, line.size() - 2));
      section.line = line_number;
      sections.push_back(std::move(section));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("line " + std::to_string(line_number) +
                            ": expected 'key = value': " + line);
    }
    if (sections.empty()) {
      throw InvalidArgument("line " + std::to_string(line_number) +
                            ": key/value before any [section]");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      throw InvalidArgument("line " + std::to_string(line_number) +
                            ": empty key");
    }
    sections.back().values[key] = trim(line.substr(eq + 1));
  }
  return sections;
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const auto comma = value.find(',', pos);
    const std::string item = trim(
        value.substr(pos, comma == std::string::npos ? comma : comma - pos));
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace depstor
