// Minimal --key=value flag parsing for the bench harnesses and examples.
//
// Supported forms: --key=value, --key value, --flag (boolean true).
// Unknown flags are an error so typos in experiment sweeps fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace depstor {

class CliFlags {
 public:
  /// Parse argv. Throws InvalidArgument on malformed input.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& default_value) const;
  double get_double(const std::string& key, double default_value) const;
  int get_int(const std::string& key, int default_value) const;
  bool get_bool(const std::string& key, bool default_value = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Call after all get_* calls: throws InvalidArgument when any provided
  /// flag was never consumed (i.e. probably a typo).
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace depstor
