// Minimal --key=value flag parsing for the bench harnesses and examples.
//
// Supported forms: --key=value, --key value, --flag (boolean true).
// Unknown flags are an error so typos in experiment sweeps fail loudly.
//
// Every tool that runs the solver parses the execution knobs through
// parse_execution_flags, so --workers/--intra-workers/--intra-min-fan/--seed/
// --deterministic/--trace-out/--stats mean the same thing in depstor_cli,
// depstor_batch, depstor_serve and the bench harnesses. Removed spellings from the pre-unification tools
// (--engine-workers, --jobs, --intra-node-workers, --trace) still work but
// emit a `removed-cli-flag` warning (analysis/lint.hpp rule catalog).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace depstor {

namespace analysis {
class DiagnosticReport;
}  // namespace analysis

class CliFlags {
 public:
  /// Parse argv. Throws InvalidArgument on malformed input.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& default_value) const;
  double get_double(const std::string& key, double default_value) const;
  int get_int(const std::string& key, int default_value) const;
  bool get_bool(const std::string& key, bool default_value = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Call after all get_* calls: throws InvalidArgument when any provided
  /// flag was never consumed (i.e. probably a typo).
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

/// The execution knobs shared by every solver-running tool, one spelling per
/// knob (see the header comment). Maps 1:1 onto ExecutionOptions
/// (solver/design_solver.hpp) plus the two observability toggles.
struct ExecutionFlags {
  int workers = 1;             ///< --workers: seed fan / engine worker count
  int intra_workers = 1;       ///< --intra-workers: refit threads per solve
  int intra_min_fan = 0;       ///< --intra-min-fan: smallest refit fan worth
                               ///< pooling (narrower fans run inline;
                               ///< 0 = auto-calibrate, see
                               ///< ExecutionOptions::intra_min_fan)
  std::uint64_t seed = 1;      ///< --seed: base of every derived RNG stream
  bool deterministic = false;  ///< --deterministic: fixed work, no wall clock
  std::string trace_out;       ///< --trace-out=<path>: Chrome trace (or
                               ///< DEPSTOR_TRACE=1 → depstor_trace.json)
  bool stats = false;          ///< --stats: counter registry at exit (or
                               ///< DEPSTOR_STATS=1)
};

/// True when the environment variable is set to anything but "" or "0".
bool env_flag_enabled(const char* name);

/// Parse the unified execution flags out of `flags`, starting from
/// `defaults` (tools differ only in defaults: depstor_batch wants
/// workers=0 = hardware, the bench harnesses want seed=42). DEPSTOR_TRACE /
/// DEPSTOR_STATS env toggles are folded in here.
///
/// Removed spellings are consumed too — each use appends a
/// `removed-cli-flag` warning to `report` (when given) and the value is
/// honored unless the current spelling is also present.
ExecutionFlags parse_execution_flags(const CliFlags& flags,
                                     analysis::DiagnosticReport* report,
                                     const ExecutionFlags& defaults = {});

}  // namespace depstor
