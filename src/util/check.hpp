// Runtime contract checking for depstor.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions and invariants
// are checked at runtime and violations reported by throwing. We use
// exceptions rather than abort() so that search heuristics can treat a
// contract violation in a candidate evaluation as "this candidate is broken"
// at a coarse recovery boundary, and so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace depstor {

/// Thrown when a function argument violates its precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a depstor bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a requested design is structurally impossible
/// (e.g. no device can host a dataset). Callers in the search layer catch
/// this and treat the candidate as infeasible.
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& msg);
[[noreturn]] void throw_infeasible(const char* expr, const char* file,
                                   int line, const std::string& msg);
}  // namespace detail

/// Precondition check: throws InvalidArgument when `cond` is false.
inline void expects(bool cond, const char* expr, const char* file, int line,
                    const std::string& msg = {}) {
  if (!cond) detail::throw_invalid_argument(expr, file, line, msg);
}

/// Invariant check: throws InternalError when `cond` is false.
inline void ensures(bool cond, const char* expr, const char* file, int line,
                    const std::string& msg = {}) {
  if (!cond) detail::throw_internal_error(expr, file, line, msg);
}

/// Feasibility requirement: throws InfeasibleError when `cond` is false.
/// Unlike expects/ensures this does not signal a bug — the search layer
/// catches InfeasibleError at its recovery boundaries and discards the
/// candidate instead of failing the run.
inline void require(bool cond, const char* expr, const char* file, int line,
                    const std::string& msg = {}) {
  if (!cond) detail::throw_infeasible(expr, file, line, msg);
}

}  // namespace depstor

#define DEPSTOR_EXPECTS(cond) \
  ::depstor::expects((cond), #cond, __FILE__, __LINE__)
#define DEPSTOR_EXPECTS_MSG(cond, msg) \
  ::depstor::expects((cond), #cond, __FILE__, __LINE__, (msg))
#define DEPSTOR_ENSURES(cond) \
  ::depstor::ensures((cond), #cond, __FILE__, __LINE__)
#define DEPSTOR_ENSURES_MSG(cond, msg) \
  ::depstor::ensures((cond), #cond, __FILE__, __LINE__, (msg))
#define DEPSTOR_REQUIRE(cond) \
  ::depstor::require((cond), #cond, __FILE__, __LINE__)
#define DEPSTOR_REQUIRE_MSG(cond, msg) \
  ::depstor::require((cond), #cond, __FILE__, __LINE__, (msg))
