// Deterministic random number generation for the search heuristics.
//
// Every randomized component in depstor (design solver, reconfiguration,
// human/random heuristics, solution-space sampler) draws from an explicit
// Rng& so that any experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <random>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace depstor {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixing step.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child seed from a base seed and a structural path (e.g. the
/// design solver's (repetition, iteration, sibling, level, slot) refit
/// coordinates). Deterministic and order-sensitive: the same path always
/// yields the same seed, distinct paths yield independent-looking streams,
/// and the result never depends on which thread computes it — this is what
/// makes the intra-solve parallel refit bit-identical to its sequential
/// execution.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::initializer_list<std::uint64_t> path) {
  std::uint64_t h = mix64(base);
  for (std::uint64_t v : path) h = mix64(h ^ mix64(v));
  return h;
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return dist_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    DEPSTOR_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    DEPSTOR_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index into a container of `size` elements.
  std::size_t index(std::size_t size) {
    DEPSTOR_EXPECTS(size > 0);
    return std::uniform_int_distribution<std::size_t>(0, size - 1)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Index drawn with probability proportional to `weights[i]`.
  /// Zero weights are legal as long as the total is positive; if all weights
  /// are zero the pick degenerates to uniform.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive an independent child generator (for parallel restarts).
  Rng split() { return Rng(engine_() ^ 0xd1342543de82ef95ULL); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
};

}  // namespace depstor
