// Minimal INI-style parser for depstor's environment files.
//
// Grammar:
//   # comment or ; comment        (whole-line only)
//   [section-name]                (sections repeat; order preserved)
//   key = value                   (whitespace-trimmed; values keep inner spaces)
//
// Unlike classic INI, repeated sections are kept separate — an environment
// file declares one `[application]` section per application.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace depstor {

struct IniSection {
  std::string name;
  std::map<std::string, std::string> values;
  int line = 0;  ///< 1-based line of the section header (diagnostics)

  bool has(const std::string& key) const { return values.count(key) > 0; }

  /// Typed getters: the *_or forms return the default when absent; the
  /// required forms throw InvalidArgument naming the section and key.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  int get_int(const std::string& key) const;
  int get_int_or(const std::string& key, int fallback) const;
};

/// Parse INI text. Throws InvalidArgument with a line number on malformed
/// input (content before the first section, lines without '=').
std::vector<IniSection> parse_ini(const std::string& text);

/// Split a comma-separated value into trimmed, non-empty items.
std::vector<std::string> split_list(const std::string& value);

}  // namespace depstor
