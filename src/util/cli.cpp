#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace depstor {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& key) const {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::string CliFlags::get_string(const std::string& key,
                                 const std::string& default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double CliFlags::get_double(const std::string& key,
                            double default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DEPSTOR_EXPECTS_MSG(end && *end == '\0',
                      "flag --" + key + " is not a number: " + it->second);
  return v;
}

int CliFlags::get_int(const std::string& key, int default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DEPSTOR_EXPECTS_MSG(end && *end == '\0',
                      "flag --" + key + " is not an integer: " + it->second);
  return static_cast<int>(v);
}

bool CliFlags::get_bool(const std::string& key, bool default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("flag --" + key + " is not a boolean: " + v);
}

void CliFlags::reject_unknown() const {
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) {
      throw InvalidArgument("unknown flag --" + key);
    }
  }
}

}  // namespace depstor
