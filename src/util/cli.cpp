#include "util/cli.hpp"

#include <cstdlib>

#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "util/check.hpp"

namespace depstor {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& key) const {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::string CliFlags::get_string(const std::string& key,
                                 const std::string& default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double CliFlags::get_double(const std::string& key,
                            double default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DEPSTOR_EXPECTS_MSG(end && *end == '\0',
                      "flag --" + key + " is not a number: " + it->second);
  return v;
}

int CliFlags::get_int(const std::string& key, int default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DEPSTOR_EXPECTS_MSG(end && *end == '\0',
                      "flag --" + key + " is not an integer: " + it->second);
  return static_cast<int>(v);
}

bool CliFlags::get_bool(const std::string& key, bool default_value) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("flag --" + key + " is not a boolean: " + v);
}

void CliFlags::reject_unknown() const {
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) {
      throw InvalidArgument("unknown flag --" + key);
    }
  }
}

bool env_flag_enabled(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

namespace {

/// Consume `removed` if present: warn through `report` and report whether
/// the old spelling supplied a value. The caller decides precedence (the
/// current spelling always wins).
bool consume_removed(const CliFlags& flags, const char* removed,
                     const char* current, analysis::DiagnosticReport* report) {
  if (!flags.has(removed)) return false;
  if (report != nullptr) {
    report->add(analysis::Severity::Warning, analysis::rules::kRemovedCliFlag,
                std::string("--") + removed +
                    " was removed from the unified CLI; it still works for "
                    "now but will stop parsing",
                std::string("use --") + current + " instead");
  }
  return true;
}

}  // namespace

ExecutionFlags parse_execution_flags(const CliFlags& flags,
                                     analysis::DiagnosticReport* report,
                                     const ExecutionFlags& defaults) {
  ExecutionFlags out = defaults;

  // --workers (removed: --engine-workers, --jobs). The removed spellings
  // still feed the value so existing sweep scripts degrade to a warning.
  const bool had_engine_workers =
      consume_removed(flags, "engine-workers", "workers", report);
  const bool had_jobs = consume_removed(flags, "jobs", "workers", report);
  if (flags.has("workers")) {
    out.workers = flags.get_int("workers", out.workers);
  } else if (had_engine_workers) {
    out.workers = flags.get_int("engine-workers", out.workers);
  } else if (had_jobs) {
    out.workers = flags.get_int("jobs", out.workers);
  }

  // --intra-workers (removed: --intra-node-workers).
  const bool had_intra_node =
      consume_removed(flags, "intra-node-workers", "intra-workers", report);
  if (flags.has("intra-workers")) {
    out.intra_workers = flags.get_int("intra-workers", out.intra_workers);
  } else if (had_intra_node) {
    out.intra_workers = flags.get_int("intra-node-workers", out.intra_workers);
  }

  out.intra_min_fan = flags.get_int("intra-min-fan", out.intra_min_fan);
  out.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<int>(out.seed)));
  out.deterministic = flags.get_bool("deterministic", out.deterministic);

  // --trace-out (removed: --trace; bare `--trace` picks the default path).
  const bool had_trace = consume_removed(flags, "trace", "trace-out", report);
  out.trace_out = flags.get_string("trace-out", out.trace_out);
  if (out.trace_out.empty() && had_trace) {
    const std::string v = flags.get_string("trace", "");
    out.trace_out = (v.empty() || v == "true") ? "depstor_trace.json" : v;
  }
  // DEPSTOR_TRACE=1 without a path: trace to the default location, matching
  // the pre-unification behavior of both tools.
  if (out.trace_out.empty() && env_flag_enabled("DEPSTOR_TRACE")) {
    out.trace_out = "depstor_trace.json";
  }

  out.stats = flags.get_bool("stats", out.stats) ||
              env_flag_enabled("DEPSTOR_STATS");
  return out;
}

}  // namespace depstor
