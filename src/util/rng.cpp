#include "util/rng.hpp"

#include <numeric>

namespace depstor {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  DEPSTOR_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DEPSTOR_EXPECTS_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double target = uniform() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  // Floating-point slack: target landed on the total; return last nonzero.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace depstor
