// Leveled stderr logging, off by default (solvers evaluate millions of
// candidates; logging in the hot path must cost one branch when disabled).
#pragma once

#include <sstream>
#include <string>

namespace depstor {

enum class LogLevel { Off = 0, Error = 1, Info = 2, Debug = 3 };

/// Process-wide log threshold (default Off). Not thread-safe by design:
/// set it once at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace depstor

#define DEPSTOR_LOG(level, expr)                                       \
  do {                                                                 \
    if (static_cast<int>(::depstor::log_level()) >=                    \
        static_cast<int>(::depstor::LogLevel::level)) {                \
      std::ostringstream depstor_log_os;                               \
      depstor_log_os << expr;                                          \
      ::depstor::detail::log_line(::depstor::LogLevel::level,          \
                                  depstor_log_os.str());               \
    }                                                                  \
  } while (0)
