// Streaming and batch summary statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace depstor {

/// Welford streaming accumulator: mean / variance / extrema in one pass.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-combine).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation between closest ranks).
/// `q` in [0,1]. Sorts a copy; intended for end-of-run reporting.
double percentile(std::vector<double> values, double q);

/// Convenience: several percentiles of the same sample with a single sort.
std::vector<double> percentiles(std::vector<double> values,
                                const std::vector<double>& qs);

}  // namespace depstor
