#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace depstor {

void JsonWriter::before_value() {
  DEPSTOR_ENSURES_MSG(!complete(), "document already complete");
  if (!stack_.empty()) {
    if (stack_.back() == Frame::Object) {
      DEPSTOR_ENSURES_MSG(pending_key_, "object members need a key first");
    } else if (has_items_.back()) {
      out_ += ',';
    }
  }
  if (!stack_.empty() && stack_.back() == Frame::Array && !has_items_.back()) {
    // first array element: nothing to emit
  }
  pending_key_ = false;
  if (!has_items_.empty()) has_items_.back() = true;
  started_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Object,
                      "no open object to end");
  DEPSTOR_ENSURES_MSG(!pending_key_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Array,
                      "no open array to end");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Object,
                      "keys only appear inside objects");
  DEPSTOR_ENSURES_MSG(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = false;  // before_value will set it for the value
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long long>(v)); }

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  DEPSTOR_ENSURES_MSG(complete(), "unclosed containers in JSON document");
  return out_;
}

void JsonWriter::write_escaped(const std::string& s) {
  out_ += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// The one path allowed to mutate a JsonValue: the parser writes fields
/// through these accessors, everything else reads through the public API.
struct JsonValueBuilder {
  static JsonValue::Type& type(JsonValue& v) { return v.type_; }
  static bool& boolean(JsonValue& v) { return v.bool_; }
  static double& number(JsonValue& v) { return v.number_; }
  static std::string& string(JsonValue& v) { return v.string_; }
  static std::vector<JsonValue>& items(JsonValue& v) { return v.items_; }
  static std::vector<std::pair<std::string, JsonValue>>& members(
      JsonValue& v) {
    return v.members_;
  }
};

namespace {

using B = JsonValueBuilder;

[[noreturn]] void bad_type(const char* want, JsonValue::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw InvalidArgument(std::string("JSON value is not ") + want + " (it is " +
                        names[static_cast<int>(got)] + ")");
}

/// Recursive-descent RFC 8259 parser over a string. `pos_` is the byte
/// offset used as the error locus.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input (truncated document)");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{':
        v = parse_object();
        break;
      case '[':
        v = parse_array();
        break;
      case '"':
        B::type(v) = JsonValue::Type::String;
        B::string(v) = parse_string();
        break;
      case 't':
      case 'f':
        B::type(v) = JsonValue::Type::Bool;
        if (consume_literal("true")) {
          B::boolean(v) = true;
        } else if (consume_literal("false")) {
          B::boolean(v) = false;
        } else {
          fail("invalid literal");
        }
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        break;
      default:
        B::type(v) = JsonValue::Type::Number;
        B::number(v) = parse_number();
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    B::type(v) = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      const auto dup = std::find_if(
          B::members(v).begin(), B::members(v).end(),
          [&](const auto& member) { return member.first == key; });
      if (dup != B::members(v).end()) fail("duplicate object key: " + key);
      skip_ws();
      expect(':');
      B::members(v).emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    B::type(v) = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      B::items(v).push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            ++pos_;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are not combined: the writer only
          // emits \u for C0 controls, which is all the tests need).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      fail("invalid number");
    }
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return std::strtod(text_.c_str() + start, nullptr);
  }

  static constexpr int kMaxDepth = 256;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) bad_type("a bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) bad_type("a number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) bad_type("a string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) bad_type("an array", type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::Object) bad_type("an object", type_);
  return members_;
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return value;
  }
  throw InvalidArgument("JSON object has no member '" + key + "'");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& list = items();
  if (index >= list.size()) {
    throw InvalidArgument("JSON array index " + std::to_string(index) +
                          " out of range (size " +
                          std::to_string(list.size()) + ")");
  }
  return list[index];
}

std::size_t JsonValue::size() const {
  return type_ == Type::Array ? items().size() : members().size();
}

JsonValue parse_json(const std::string& text, const JsonLimits& limits) {
  if (limits.max_bytes > 0 && text.size() > limits.max_bytes) {
    // Refuse before parsing a single byte: the point of the limit is that a
    // hostile document never drives allocation, so the size check must not
    // depend on the content.
    throw InvalidArgument(
        "JSON parse error at offset " + std::to_string(limits.max_bytes) +
        ": document of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_bytes) +
        "-byte limit");
  }
  return JsonParser(text).parse_document();
}

JsonValue parse_json(const std::string& text) {
  return parse_json(text, JsonLimits{});
}

}  // namespace depstor
