#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace depstor {

void JsonWriter::before_value() {
  DEPSTOR_ENSURES_MSG(!complete(), "document already complete");
  if (!stack_.empty()) {
    if (stack_.back() == Frame::Object) {
      DEPSTOR_ENSURES_MSG(pending_key_, "object members need a key first");
    } else if (has_items_.back()) {
      out_ += ',';
    }
  }
  if (!stack_.empty() && stack_.back() == Frame::Array && !has_items_.back()) {
    // first array element: nothing to emit
  }
  pending_key_ = false;
  if (!has_items_.empty()) has_items_.back() = true;
  started_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Object,
                      "no open object to end");
  DEPSTOR_ENSURES_MSG(!pending_key_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Array,
                      "no open array to end");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  DEPSTOR_ENSURES_MSG(!stack_.empty() && stack_.back() == Frame::Object,
                      "keys only appear inside objects");
  DEPSTOR_ENSURES_MSG(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = false;  // before_value will set it for the value
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long long>(v)); }

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  DEPSTOR_ENSURES_MSG(complete(), "unclosed containers in JSON document");
  return out_;
}

void JsonWriter::write_escaped(const std::string& s) {
  out_ += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

}  // namespace depstor
