// Time / data / money units used throughout depstor.
//
// All quantities are plain doubles with the canonical unit fixed by
// convention and named conversion helpers, per the model in the paper:
//   time       → hours
//   data size  → gigabytes (GB, decimal)
//   bandwidth  → megabytes per second (MB/s)
//   money      → US dollars
//   rates      → events per year (failure likelihoods), $ per hour (penalties)
#pragma once

namespace depstor::units {

// --- time (canonical: hours) ---
inline constexpr double kMinutesPerHour = 60.0;
inline constexpr double kHoursPerDay = 24.0;
inline constexpr double kHoursPerYear = 8760.0;

constexpr double minutes(double m) { return m / kMinutesPerHour; }
constexpr double hours(double h) { return h; }
constexpr double days(double d) { return d * kHoursPerDay; }
constexpr double years(double y) { return y * kHoursPerYear; }

constexpr double to_minutes(double hours) { return hours * kMinutesPerHour; }
constexpr double to_days(double hours) { return hours / kHoursPerDay; }

// --- data (canonical: GB) / bandwidth (canonical: MB/s) ---
inline constexpr double kMBPerGB = 1000.0;
inline constexpr double kSecondsPerHour = 3600.0;

constexpr double gigabytes(double gb) { return gb; }
constexpr double terabytes(double tb) { return tb * 1000.0; }

/// Time (hours) to move `size_gb` at `bw_mbps`. Infinite bandwidth is not a
/// thing in this model; callers must pass bw > 0.
constexpr double transfer_hours(double size_gb, double bw_mbps) {
  return size_gb * kMBPerGB / (bw_mbps * kSecondsPerHour);
}

/// Data (GB) accumulated over `hours` at `rate_mbps`.
constexpr double accumulated_gb(double rate_mbps, double hours) {
  return rate_mbps * kSecondsPerHour * hours / kMBPerGB;
}

// --- money ---
constexpr double dollars(double d) { return d; }
constexpr double kilodollars(double k) { return k * 1e3; }
constexpr double megadollars(double m) { return m * 1e6; }

// --- failure rates (canonical: events/year) ---
constexpr double once_in_years(double y) { return 1.0 / y; }
constexpr double times_per_year(double n) { return n; }

}  // namespace depstor::units
