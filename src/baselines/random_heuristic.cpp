#include "baselines/random_heuristic.hpp"

#include <chrono>

#include "protection/catalog.hpp"
#include "solver/config_solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace depstor {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

RandomHeuristic::RandomHeuristic(const Environment* env,
                                 BaselineOptions options)
    : env_(env), options_(options) {
  DEPSTOR_EXPECTS(env != nullptr);
  env_->validate();
}

BaselineResult RandomHeuristic::solve() {
  const auto start = Clock::now();
  BaselineResult result;
  Rng rng(options_.seed);
  ConfigSolver config_solver(env_);
  const auto techniques = protection::all_techniques();
  const int n_apps = static_cast<int>(env_->apps.size());
  const int n_sites = env_->topology.site_count();

  while (elapsed_ms(start) < options_.time_budget_ms &&
         (options_.max_designs == 0 ||
          result.designs_tried < options_.max_designs)) {
    ++result.designs_tried;
    Candidate cand(env_);
    bool failed = false;

    for (int app_id = 0; app_id < n_apps && !failed; ++app_id) {
      bool placed = false;
      for (int attempt = 0;
           attempt < options_.placement_retries && !placed; ++attempt) {
        DesignChoice choice;
        choice.technique = techniques[rng.index(techniques.size())];
        choice.primary_site = rng.uniform_int(0, n_sites - 1);
        choice.primary_array_type =
            env_->array_types[rng.index(env_->array_types.size())].name;
        if (choice.technique.has_mirror()) {
          const auto neighbors =
              env_->topology.neighbors(choice.primary_site);
          if (neighbors.empty()) continue;
          choice.secondary_site = neighbors[rng.index(neighbors.size())];
          choice.mirror_array_type =
              env_->array_types[rng.index(env_->array_types.size())].name;
          choice.link_type =
              env_->network_types[rng.index(env_->network_types.size())].name;
        }
        if (choice.technique.has_backup) {
          choice.tape_type =
              env_->tape_types[rng.index(env_->tape_types.size())].name;
        }
        try {
          cand.place_app(app_id, choice);
          cand.check_feasible();
          placed = true;
        } catch (const InfeasibleError&) {
          if (cand.is_assigned(app_id)) cand.remove_app(app_id);
        }
      }
      failed = !placed;
    }
    if (failed) continue;

    const CostBreakdown cost = config_solver.solve(cand);
    ++result.designs_feasible;
    if (!result.best || cost.total() < result.cost.total()) {
      result.best = std::move(cand);
      result.cost = cost;
      result.feasible = true;
    }
  }
  result.elapsed_ms = elapsed_ms(start);
  return result;
}

}  // namespace depstor
