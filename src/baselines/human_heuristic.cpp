#include "baselines/human_heuristic.hpp"

#include <algorithm>
#include <map>
#include <chrono>

#include "protection/catalog.hpp"
#include "solver/config_solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace depstor {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The device of the wanted class, falling back to the nearest class present
/// (environments may stock fewer models than classes).
const DeviceTypeSpec& pick_class(const std::vector<DeviceTypeSpec>& types,
                                 DeviceClass wanted) {
  DEPSTOR_EXPECTS(!types.empty());
  const DeviceTypeSpec* best = &types.front();
  int best_distance = 1000;
  for (const auto& t : types) {
    const int distance =
        std::abs(static_cast<int>(t.cls) - static_cast<int>(wanted));
    if (distance < best_distance) {
      best_distance = distance;
      best = &t;
    }
  }
  return *best;
}

/// Preference-ordered device types for an application class: the
/// class-matched model first, then the remaining models nearest-class-first
/// (architects fall back when the matched model does not fit — e.g. a site
/// already hosts its maximum number of arrays).
std::vector<const DeviceTypeSpec*> preference_order(
    const std::vector<DeviceTypeSpec>& types, DeviceClass wanted) {
  std::vector<const DeviceTypeSpec*> order;
  order.reserve(types.size());
  for (const auto& t : types) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [&](const DeviceTypeSpec* a, const DeviceTypeSpec* b) {
                     return std::abs(static_cast<int>(a->cls) -
                                     static_cast<int>(wanted)) <
                            std::abs(static_cast<int>(b->cls) -
                                     static_cast<int>(wanted));
                   });
  return order;
}

DeviceClass class_for_app(AppCategory cls) {
  switch (cls) {
    case AppCategory::Gold:
      return DeviceClass::High;
    case AppCategory::Silver:
      return DeviceClass::Med;
    case AppCategory::Bronze:
      return DeviceClass::Low;
  }
  return DeviceClass::Low;
}

}  // namespace

HumanHeuristic::HumanHeuristic(const Environment* env, BaselineOptions options)
    : env_(env), options_(options) {
  DEPSTOR_EXPECTS(env != nullptr);
  env_->validate();
}

const DeviceTypeSpec& HumanHeuristic::array_for_class(AppCategory cls) const {
  return pick_class(env_->array_types, class_for_app(cls));
}

const DeviceTypeSpec& HumanHeuristic::tape_for_class(AppCategory cls) const {
  // Tape / network catalogs have no Low class; bronze shares Med.
  return pick_class(env_->tape_types, cls == AppCategory::Gold
                                          ? DeviceClass::High
                                          : DeviceClass::Med);
}

const DeviceTypeSpec& HumanHeuristic::network_for_class(
    AppCategory cls) const {
  return pick_class(env_->network_types, cls == AppCategory::Gold
                                             ? DeviceClass::High
                                             : DeviceClass::Med);
}

BaselineResult HumanHeuristic::solve() {
  const auto start = Clock::now();
  BaselineResult result;
  Rng rng(options_.seed);
  ConfigSolver config_solver(env_);
  const int n_apps = static_cast<int>(env_->apps.size());

  while (elapsed_ms(start) < options_.time_budget_ms &&
         (options_.max_designs == 0 ||
          result.designs_tried < options_.max_designs)) {
    ++result.designs_tried;
    Candidate cand(env_);

    // Randomized priority order: repeatedly draw the next application with
    // probability weighted by its penalty-rate sum.
    std::vector<int> order;
    {
      std::vector<int> remaining(static_cast<std::size_t>(n_apps));
      for (int i = 0; i < n_apps; ++i) remaining[static_cast<std::size_t>(i)] = i;
      while (!remaining.empty()) {
        std::vector<double> weights;
        weights.reserve(remaining.size());
        for (int id : remaining) {
          weights.push_back(env_->app(id).penalty_rate_sum());
        }
        const auto pick = rng.weighted_index(weights);
        order.push_back(remaining[pick]);
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }

    std::vector<int> site_load(
        static_cast<std::size_t>(env_->topology.site_count()), 0);
    bool failed = false;

    // Architects "assign a standard data protection design depending upon
    // the category" (§1) and apply "the data protection techniques ... from
    // a given class to the applications in the corresponding class" (§4.1):
    // one technique is drawn per class — uniformly within that class — and
    // applied to every application of the class in this design.
    std::map<AppCategory, TechniqueSpec> standard;
    for (AppCategory cls :
         {AppCategory::Gold, AppCategory::Silver, AppCategory::Bronze}) {
      const auto class_techs = protection::techniques_in_class(cls);
      DEPSTOR_ENSURES(!class_techs.empty());
      standard.emplace(cls, class_techs[rng.index(class_techs.size())]);
    }

    for (int app_id : order) {
      const AppCategory cls = env_->app_category(app_id);

      const auto array_prefs =
          preference_order(env_->array_types, class_for_app(cls));
      const auto tape_prefs =
          preference_order(env_->tape_types, cls == AppCategory::Gold
                                                 ? DeviceClass::High
                                                 : DeviceClass::Med);
      const auto net_prefs =
          preference_order(env_->network_types, cls == AppCategory::Gold
                                                    ? DeviceClass::High
                                                    : DeviceClass::Med);
      bool placed = false;
      for (int attempt = 0;
           attempt < options_.placement_retries && !placed; ++attempt) {
        // Later attempts walk down the class-preference lists: the matched
        // model first, then the nearest fallback.
        const auto pref = static_cast<std::size_t>(attempt);
        DesignChoice choice;
        choice.technique = standard.at(cls);
        choice.primary_array_type =
            array_prefs[pref % array_prefs.size()]->name;
        choice.mirror_array_type =
            array_prefs[pref % array_prefs.size()]->name;
        choice.tape_type = tape_prefs[pref % tape_prefs.size()]->name;
        choice.link_type = net_prefs[pref % net_prefs.size()]->name;

        // Spread uniformly: least-loaded site first, random tie-break.
        std::vector<int> sites(site_load.size());
        for (std::size_t s = 0; s < sites.size(); ++s) {
          sites[s] = static_cast<int>(s);
        }
        rng.shuffle(sites);
        std::stable_sort(sites.begin(), sites.end(), [&](int a, int b) {
          return site_load[static_cast<std::size_t>(a)] <
                 site_load[static_cast<std::size_t>(b)];
        });
        choice.primary_site = sites[static_cast<std::size_t>(attempt) %
                                    sites.size()];
        if (choice.technique.has_mirror()) {
          const auto neighbors =
              env_->topology.neighbors(choice.primary_site);
          if (neighbors.empty()) continue;
          // Secondary site: the least-loaded connected site.
          choice.secondary_site = *std::min_element(
              neighbors.begin(), neighbors.end(), [&](int a, int b) {
                return site_load[static_cast<std::size_t>(a)] <
                       site_load[static_cast<std::size_t>(b)];
              });
        }
        try {
          cand.place_app(app_id, choice);
          cand.check_feasible();
          placed = true;
          ++site_load[static_cast<std::size_t>(choice.primary_site)];
        } catch (const InfeasibleError&) {
          if (cand.is_assigned(app_id)) cand.remove_app(app_id);
        }
      }
      if (!placed) {
        failed = true;  // restart the whole design (§4.1)
        break;
      }
    }
    if (failed) continue;

    const CostBreakdown cost = config_solver.solve(cand);
    ++result.designs_feasible;
    if (!result.best || cost.total() < result.cost.total()) {
      result.best = std::move(cand);
      result.cost = cost;
      result.feasible = true;
    }
  }
  result.elapsed_ms = elapsed_ms(start);
  return result;
}

}  // namespace depstor
