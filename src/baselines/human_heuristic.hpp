// Human-architect emulation (paper §4.1).
//
// Storage architects categorize applications, techniques and resources into
// gold / silver / bronze and match them up:
//
//  * every application gets a technique drawn uniformly from its own class;
//  * resources come from the matching class (gold app → high-end array, …);
//  * applications are processed in randomized priority order (weighted by
//    penalty-rate sum);
//  * applications are spread uniformly over the sites (least-loaded site
//    first, ties broken randomly);
//  * once every application is placed, the configuration solver optimizes
//    the remaining parameters.
//
// Infeasible assignments restart the design; the minimum-cost design found
// within the time budget is returned.
#pragma once

#include "baselines/baseline.hpp"
#include "core/environment.hpp"

namespace depstor {

class HumanHeuristic {
 public:
  explicit HumanHeuristic(const Environment* env, BaselineOptions options = {});

  BaselineResult solve();

  /// Class-matched device picks (exposed for tests): gold → High array,
  /// silver → Med, bronze → Low; gold apps get High tape/network, others Med
  /// (when those classes exist in the environment).
  const DeviceTypeSpec& array_for_class(AppCategory cls) const;
  const DeviceTypeSpec& tape_for_class(AppCategory cls) const;
  const DeviceTypeSpec& network_for_class(AppCategory cls) const;

 private:
  const Environment* env_;
  BaselineOptions options_;
};

}  // namespace depstor
