// Random design selection (paper §4).
//
// Generates fully random complete designs — uniform technique from the whole
// catalog, uniform sites and device types — prices each with the
// configuration solver, and keeps the cheapest within the time budget.
// Because feasibility of a random design is quick to test, this baseline
// keeps finding feasible designs at scales where the guided searches stall
// (paper §4.4).
#pragma once

#include "baselines/baseline.hpp"
#include "core/environment.hpp"

namespace depstor {

class RandomHeuristic {
 public:
  explicit RandomHeuristic(const Environment* env,
                           BaselineOptions options = {});

  BaselineResult solve();

 private:
  const Environment* env_;
  BaselineOptions options_;
};

}  // namespace depstor
