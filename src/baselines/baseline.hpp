// Shared result/option types for the comparison heuristics (paper §4).
#pragma once

#include <cstdint>
#include <optional>

#include "cost/breakdown.hpp"
#include "solver/solution.hpp"

namespace depstor {

struct BaselineOptions {
  /// Soft wall-clock budget; complete designs are generated and priced until
  /// it runs out (the paper ran each heuristic for thirty minutes).
  double time_budget_ms = 1000.0;
  /// Hard cap on complete designs generated (0 = unlimited within time).
  int max_designs = 0;
  /// Attempts to place a single application before the design is abandoned.
  int placement_retries = 8;
  std::uint64_t seed = 1;
};

struct BaselineResult {
  std::optional<Candidate> best;
  CostBreakdown cost;
  bool feasible = false;
  int designs_tried = 0;
  int designs_feasible = 0;
  double elapsed_ms = 0.0;
};

}  // namespace depstor
