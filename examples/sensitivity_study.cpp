// Failure-likelihood sensitivity analysis (paper §4.5) as an API walkthrough:
// for a fixed environment, sweep one failure rate, REDESIGN at each point,
// and contrast with merely RE-PRICING the original design. The gap between
// the two curves is the value of adapting the design to the threat level.
//
//   ./sensitivity_study [--apps=8] [--time-budget-ms=1000] [--seed=23]
#include <iostream>

#include "core/design_tool.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  try {
    const CliFlags flags(argc, argv);
    const int apps = flags.get_int("apps", 8);
    const double budget = flags.get_double("time-budget-ms", 1000.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 23));
    flags.reject_unknown();

    // Design once at the baseline rates.
    Environment base_env = scenarios::multi_site(apps, 4, 6);
    base_env.failures = FailureModel::sensitivity_baseline();
    DesignTool base_tool(base_env);
    DesignSolverOptions options;
    options.time_budget_ms = budget;
    options.seed = seed;
    const auto baseline = base_tool.design(options);
    if (!baseline.feasible) {
      std::cout << "baseline design infeasible — raise the budget\n";
      return 1;
    }
    std::cout << "Baseline design at object-failure rate 2/yr costs "
              << Table::money(baseline.cost.total()) << "/yr.\n\n";

    Table table({"Object failures", "Re-priced baseline design",
                 "Redesigned at this rate", "Redesign saves"});
    for (double rate : {2.0, 1.0, 0.5, 1.0 / 3.0, 0.2, 0.1}) {
      FailureModel f = FailureModel::sensitivity_baseline();
      f.data_object_rate = rate;

      // (a) keep the baseline design, re-price it under the new rate;
      const auto repriced = base_tool.evaluate_under(*baseline.best, f);

      // (b) redesign from scratch for the new rate.
      Environment env = scenarios::multi_site(apps, 4, 6);
      env.failures = f;
      const auto redesigned = DesignTool(std::move(env)).design(options);

      char label[32];
      std::snprintf(label, sizeof label, "%.2f / yr", rate);
      table.add_row(
          {label, Table::money(repriced.total()),
           redesigned.feasible ? Table::money(redesigned.cost.total())
                               : "infeasible",
           redesigned.feasible
               ? Table::money(repriced.total() - redesigned.cost.total())
               : "-"});
    }
    std::cout << table.render()
              << "\nThe redesigned curve is the paper's Figure 5; the "
                 "re-priced curve shows what a\nstatic design would cost as "
                 "the threat level moves.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
