// Building an environment from scratch with the public API — a three-site
// media company with its own applications, its own failure expectations,
// and a restricted device catalog (no low-end arrays, med tape only).
//
// Demonstrates: ApplicationSpec construction, Topology wiring, catalog
// selection, policy ranges, and interpreting the per-app cost breakdown.
//
//   ./custom_environment [--time-budget-ms=2000] [--seed=19]
#include <iostream>

#include "core/design_tool.hpp"
#include "resources/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

depstor::ApplicationSpec make_app(std::string name, std::string code,
                                  double outage, double loss, double size_gb,
                                  double avg_upd, double peak_upd,
                                  double access) {
  depstor::ApplicationSpec app;
  app.name = std::move(name);
  app.type_code = std::move(code);
  app.outage_penalty_rate = outage;
  app.loss_penalty_rate = loss;
  app.data_size_gb = size_gb;
  app.avg_update_mbps = avg_upd;
  app.peak_update_mbps = peak_upd;
  app.avg_access_mbps = access;
  app.unique_update_mbps = 0.4 * avg_upd;
  app.validate();
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace depstor;
  try {
    const CliFlags flags(argc, argv);
    const double budget = flags.get_double("time-budget-ms", 2000.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 19));
    flags.reject_unknown();

    Environment env;
    // A paid-subscriptions service, an ad-driven video portal, an analytics
    // warehouse, and an internal wiki.
    env.apps = {
        make_app("billing", "BIL", 2e6, 8e6, 900.0, 3.0, 25.0, 30.0),
        make_app("video", "VID", 3e6, 2e4, 8000.0, 8.0, 60.0, 120.0),
        make_app("warehouse", "DWH", 5e4, 5e5, 6000.0, 6.0, 30.0, 40.0),
        make_app("wiki", "WIK", 2e3, 8e3, 200.0, 0.2, 2.0, 2.0),
    };
    workload::assign_ids(env.apps);

    // Three sites: two metro data centers and a smaller DR bunker that can
    // host only one array and has fewer compute slots.
    SiteSpec metro;
    metro.name = "metro";
    metro.max_disk_arrays = 2;
    metro.max_tape_libraries = 1;
    metro.max_compute_slots = 6;
    SiteSpec bunker = metro;
    bunker.name = "bunker";
    bunker.max_disk_arrays = 1;
    bunker.max_compute_slots = 2;

    env.topology.sites = {metro, metro, bunker};
    for (int i = 0; i < 3; ++i) {
      env.topology.sites[static_cast<std::size_t>(i)].id = i;
    }
    env.topology.sites[1].name = "metro-2";
    // Fat pipe between the metros, thin pipes to the bunker.
    env.topology.pair_limits = {{0, 1, 24}, {0, 2, 4}, {1, 2, 4}};

    // Restricted catalog: this shop standardizes on two array models.
    // Both tape models stay available — the video archive alone needs more
    // cartridges than a medium library holds.
    env.array_types = {resources::xp1200(), resources::eva8000()};
    env.tape_types = resources::tape_libraries();
    env.network_types = resources::networks();
    env.compute_type = resources::compute_high();

    // They see user errors weekly(!) on the wiki-class apps and run in a
    // seismically boring region.
    env.failures.data_object_rate = 1.0;
    env.failures.disk_array_rate = 0.25;
    env.failures.site_disaster_rate = 0.02;

    // Tighter snapshot policy options than the defaults.
    env.policies.snapshot_intervals_hours = {1.0, 2.0, 4.0, 8.0, 12.0};
    env.validate();

    DesignTool tool(std::move(env));
    DesignSolverOptions options;
    options.time_budget_ms = budget;
    options.seed = seed;
    const auto result = tool.design(options);
    if (!result.feasible) {
      std::cout << "no feasible design — the bunker may be too small; raise "
                   "the budget or relax limits\n";
      return 1;
    }
    std::cout << "Design for the custom environment:\n\n"
              << DesignTool::describe(tool.env(), *result.best) << "\n"
              << DesignTool::describe_cost(tool.env(), result.cost) << "\n";

    // What would this design cost if disasters were 10x likelier? A cheap
    // what-if via evaluate_under (no redesign).
    FailureModel gloomy = tool.env().failures;
    gloomy.site_disaster_rate *= 10.0;
    const auto gloomy_cost = tool.evaluate_under(*result.best, gloomy);
    std::cout << "Same design under 10x site-disaster likelihood: "
              << Table::money(gloomy_cost.total()) << " (was "
              << Table::money(result.cost.total()) << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
