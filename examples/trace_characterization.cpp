// From raw I/O traces to a dependable storage design.
//
// The paper's workload characteristics come from measuring a real trace
// (cello2002). This example runs that pipeline on synthetic traces: three
// workload profiles are generated, characterized per §2.2 (average / peak /
// unique update rates, access rate), turned into ApplicationSpecs, and
// handed to the design tool.
//
//   ./trace_characterization [--hours=24] [--time-budget-ms=2000] [--seed=37]
#include <iostream>

#include "core/design_tool.hpp"
#include "resources/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::workload;
  try {
    const CliFlags flags(argc, argv);
    const double hours = flags.get_double("hours", 24.0);
    const double budget = flags.get_double("time-budget-ms", 2000.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 37));
    flags.reject_unknown();

    struct Profile {
      const char* name;
      const char* code;
      TraceGeneratorOptions options;
      double outage_rate;
      double loss_rate;
      double size_gb;
    };
    std::vector<Profile> profiles;
    {
      Profile oltp;  // skewed, write-heavy, bursty — like a transaction log
      oltp.name = "orders-db";
      oltp.code = "DB";
      oltp.options.mean_iops = 400.0;
      oltp.options.write_fraction = 0.6;
      oltp.options.zipf_theta = 0.95;
      oltp.options.diurnal_amplitude = 0.7;
      oltp.options.duration_hours = hours;
      oltp.outage_rate = 2e6;
      oltp.loss_rate = 4e6;
      oltp.size_gb = 2000.0;
      profiles.push_back(oltp);

      Profile web;  // read-dominated, strongly diurnal
      web.name = "storefront";
      web.code = "WEB";
      web.options.mean_iops = 900.0;
      web.options.write_fraction = 0.08;
      web.options.zipf_theta = 0.8;
      web.options.diurnal_amplitude = 0.9;
      web.options.duration_hours = hours;
      web.outage_rate = 3e6;
      web.loss_rate = 1e4;
      web.size_gb = 5000.0;
      profiles.push_back(web);

      Profile batch;  // steady sequential-ish churn, low value
      batch.name = "nightly-etl";
      batch.code = "ETL";
      batch.options.mean_iops = 250.0;
      batch.options.write_fraction = 0.5;
      batch.options.zipf_theta = 0.2;
      batch.options.diurnal_amplitude = 0.1;
      batch.options.duration_hours = hours;
      batch.outage_rate = 5e3;
      batch.loss_rate = 2e4;
      batch.size_gb = 3000.0;
      profiles.push_back(batch);
    }

    std::cout << "Step 1 — generating and characterizing " << hours
              << "h of synthetic I/O per workload...\n\n";
    Table measured({"Workload", "I/Os", "Avg upd MB/s", "Peak upd MB/s",
                    "Access MB/s", "Unique upd MB/s", "Category"});
    Environment env;
    Rng rng(seed);
    for (const auto& p : profiles) {
      SyntheticTraceGenerator gen(p.options);
      const auto trace = gen.generate(rng);
      const auto traits = characterize(trace, p.options.block_kb);
      const auto app = app_from_trace(p.name, p.code, p.outage_rate,
                                      p.loss_rate, p.size_gb, traits);
      measured.add_row({p.name, std::to_string(traits.reads + traits.writes),
                        Table::num(app.avg_update_mbps, 2),
                        Table::num(app.peak_update_mbps, 2),
                        Table::num(app.avg_access_mbps, 2),
                        Table::num(app.unique_update_mbps, 3),
                        to_string(app.category())});
      env.apps.push_back(app);
    }
    assign_ids(env.apps);
    std::cout << measured.render() << "\n";

    // Step 2 — a two-site infrastructure for the measured workloads.
    SiteSpec site;
    site.name = "dc";
    site.max_disk_arrays = 2;
    site.max_tape_libraries = 1;
    site.max_compute_slots = 6;
    env.topology = Topology::fully_connected(2, site, 24);
    env.array_types = resources::disk_arrays();
    env.tape_types = resources::tape_libraries();
    env.network_types = resources::networks();
    env.compute_type = resources::compute_high();
    env.validate();

    std::cout << "Step 2 — designing protection for the measured "
                 "workloads...\n\n";
    DesignTool tool(std::move(env));
    DesignSolverOptions options;
    options.time_budget_ms = budget;
    options.seed = seed;
    const auto result = tool.design(options);
    if (!result.feasible) {
      std::cout << "no feasible design — raise the budget\n";
      return 1;
    }
    std::cout << DesignTool::describe(tool.env(), *result.best) << "\n"
              << DesignTool::describe_cost(tool.env(), result.cost);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
