// depstor_lint: pre-solve static checking of environment files.
//
//   depstor_lint [--json] [--strict] <env.ini> [more.ini ...]
//
// Lints each environment file (see analysis/lint.hpp for the rule catalog)
// and prints the findings — compiler-style text by default, one JSON
// document per file with --json. Exit status: 0 when every file is clean of
// errors (warnings allowed unless --strict), 1 when any file has errors
// (or, with --strict, warnings), 2 on usage problems.
//
//   depstor_lint examples/environments/*.ini
//   depstor_lint --json broken.ini | jq '.diagnostics[].rule'
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

int main(int argc, char** argv) {
  using depstor::analysis::DiagnosticReport;

  // Flags are plain switches here, so parse argv directly (CliFlags' generic
  // `--key value` form would swallow the first file as a flag value).
  bool json = false;
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "depstor_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: depstor_lint [--json] [--strict] <env.ini>...\n";
    return 2;
  }

  bool failed = false;
  for (const std::string& path : files) {
    const DiagnosticReport report =
        depstor::analysis::lint_environment_file(path);
    if (json) {
      std::cout << report.render_json() << "\n";
    } else if (report.empty()) {
      std::cout << path << ": clean\n";
    } else {
      std::cout << report.render_text();
    }
    failed = failed || report.has_errors() ||
             (strict && report.warning_count() > 0);
  }
  return failed ? 1 : 0;
}
