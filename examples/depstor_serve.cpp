// depstor_serve — the long-running design service (DESIGN.md §10).
//
// Listens for newline-delimited JSON design requests (serve/proto.hpp),
// admits them through the lint layer and a bounded queue, solves them on one
// shared WorkerPool + evaluation cache, and streams progress/results back.
// "GET /stats" on any connection returns the live obs counter registry.
//
//   depstor_serve [--host=127.0.0.1] [--port=7421]
//                 [--workers=0]              pool threads (0 = hardware)
//                 [--intra-workers=1]        refit threads per job
//                 [--intra-min-fan=4]        smallest refit fan worth pooling
//                 [--max-queue=64]           queued-job cap; beyond = 429
//                 [--max-request-bytes=N]    request size cap (default 1 MiB)
//                 [--deadline-ms=0]          default per-job deadline
//                 [--progress-interval-ms=25]
//                 [--no-cache]               disable the shared eval cache
//                 [--no-lint]                skip lint admission checks
//                 [--stats-out=<path>]       final stats JSON at shutdown
//                 [--trace-out=<path>]       Chrome trace at shutdown (also
//                                            DEPSTOR_TRACE=1)
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued jobs finish and
// their results are delivered; new admissions are rejected with 503. Try it:
//
//   depstor_serve --port=7421 &
//   depstor_request --port=7421 --env=env.ini
#include <csignal>
#include <iostream>
#include <thread>

#include "analysis/diagnostics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

// Async-signal-safe handoff from the handler to the main loop.
volatile std::sig_atomic_t g_signal = 0;
void handle_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  try {
    using depstor::serve::ServeOptions;
    const depstor::CliFlags flags(argc, argv);
    depstor::ExecutionFlags exec_defaults;
    exec_defaults.workers = 0;  // 0 = one pool worker per hardware thread
    depstor::analysis::DiagnosticReport flag_report;
    const depstor::ExecutionFlags ef =
        depstor::parse_execution_flags(flags, &flag_report, exec_defaults);
    for (const auto& d : flag_report.diagnostics()) {
      std::cerr << d.render() << "\n";
    }

    ServeOptions options;
    options.host = flags.get_string("host", options.host);
    options.port = flags.get_int("port", 7421);
    options.workers = ef.workers;
    options.intra_workers = ef.intra_workers;
    options.intra_min_fan = ef.intra_min_fan;
    options.max_queue = flags.get_int("max-queue", options.max_queue);
    options.max_request_bytes = static_cast<std::size_t>(flags.get_int(
        "max-request-bytes", static_cast<int>(options.max_request_bytes)));
    options.default_deadline_ms = flags.get_double("deadline-ms", 0.0);
    options.progress_interval_ms =
        flags.get_double("progress-interval-ms", options.progress_interval_ms);
    options.enable_cache = !flags.get_bool("no-cache", false);
    options.lint_admission = !flags.get_bool("no-lint", false);
    options.final_stats_path = flags.get_string("stats-out", "");
    options.final_trace_path = ef.trace_out;
    flags.reject_unknown();

    if (!options.final_trace_path.empty()) {
      depstor::obs::set_trace_enabled(true);
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    depstor::serve::Server server(options);
    server.start();
    std::cout << "depstor_serve listening on " << options.host << ":"
              << server.port() << " (queue limit " << options.max_queue
              << ")" << std::endl;

    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::cout << "signal " << g_signal
              << ": draining (queued " << server.queue_depth()
              << ", running " << server.active_jobs() << ")" << std::endl;
    server.shutdown();
    std::cout << "depstor_serve drained cleanly" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
