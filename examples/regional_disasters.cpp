// Regional disasters (§2.4): how the design changes when whole regions can
// fail together.
//
// Four sites in two regions (metro pairs on two coasts). The same eight
// applications are designed twice: once with regional disasters disabled
// (the paper's baseline threat model) and once with them enabled. The
// designs are compared on where the mirrors land — under regional threat,
// in-region mirrors stop protecting the loss-critical applications and the
// tool pays for cross-region links instead.
//
//   ./regional_disasters [--apps=8] [--regional-rate=0.05]
//                        [--time-budget-ms=2500] [--seed=41]
#include <iostream>

#include "core/design_tool.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace depstor;

Environment coasts_env(int apps, double regional_rate) {
  Environment env = scenarios::multi_site(apps, 4, 8);
  env.topology.sites[0].name = "east-1";
  env.topology.sites[1].name = "east-2";
  env.topology.sites[2].name = "west-1";
  env.topology.sites[3].name = "west-2";
  env.topology.sites[0].region = 0;
  env.topology.sites[1].region = 0;
  env.topology.sites[2].region = 1;
  env.topology.sites[3].region = 1;
  env.failures.regional_disaster_rate = regional_rate;
  env.validate();
  return env;
}

struct MirrorStats {
  int mirrors = 0;
  int cross_region = 0;
};

MirrorStats mirror_stats(const Environment& env, const Candidate& cand) {
  MirrorStats out;
  for (const auto& asg : cand.assignments()) {
    if (!asg.has_mirror()) continue;
    ++out.mirrors;
    if (env.topology.site(asg.primary_site).region !=
        env.topology.site(asg.secondary_site).region) {
      ++out.cross_region;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const int apps = flags.get_int("apps", 8);
    const double regional_rate = flags.get_double("regional-rate", 0.05);
    const double budget = flags.get_double("time-budget-ms", 2500.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 41));
    flags.reject_unknown();

    DesignSolverOptions options;
    options.time_budget_ms = budget;
    options.seed = seed;

    Table table({"Threat model", "Total/yr", "Mirrors", "Cross-region",
                 "Penalty/yr"});
    for (bool regional : {false, true}) {
      Environment env = coasts_env(apps, regional ? regional_rate : 0.0);
      DesignTool tool(env);
      const auto result = tool.design(options);
      if (!result.feasible) {
        table.add_row({regional ? "with regional disasters" : "sites only",
                       "infeasible", "-", "-", "-"});
        continue;
      }
      const auto stats = mirror_stats(tool.env(), *result.best);
      table.add_row(
          {regional ? "with regional disasters" : "sites only",
           Table::money(result.cost.total()), std::to_string(stats.mirrors),
           std::to_string(stats.cross_region),
           Table::money(result.cost.penalty())});
      if (regional) {
        std::cout << "Design under regional threat (rate "
                  << regional_rate << "/yr):\n"
                  << DesignTool::describe(tool.env(), *result.best) << "\n";
      }
    }
    std::cout << table.render()
              << "\nUnder regional threat the loss-critical applications' "
                 "mirrors should hop\ncoasts — in-region mirrors no longer "
                 "protect them against the new scope.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
