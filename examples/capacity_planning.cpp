// Capacity planning with the design tool: how many applications fit into a
// fixed two-site infrastructure before the cost curve bends or feasibility
// breaks (paper §4.4's question, asked like an operator would).
//
// For each application count the tool designs from scratch; the output
// table tracks total cost, cost per application, and the marginal cost of
// the last four applications — the knee in the marginal column is where the
// infrastructure runs out of cheap capacity.
//
//   ./capacity_planning [--max-apps=16] [--time-budget-ms=1000] [--seed=31]
#include <iostream>

#include "core/design_tool.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  try {
    const CliFlags flags(argc, argv);
    const int max_apps = flags.get_int("max-apps", 16);
    const double budget = flags.get_double("time-budget-ms", 1000.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
    flags.reject_unknown();

    DesignSolverOptions options;
    options.time_budget_ms = budget;
    options.seed = seed;

    Table table({"Apps", "Total/yr", "Per app/yr", "Marginal (last 4)/yr"});
    double previous_total = 0.0;
    bool has_previous = false;
    for (int apps = 4; apps <= max_apps; apps += 4) {
      DesignTool tool(scenarios::peer_sites(apps));
      const auto result = tool.design(options);
      if (!result.feasible) {
        table.add_row({std::to_string(apps), "infeasible", "-", "-"});
        has_previous = false;
        continue;
      }
      const double total = result.cost.total();
      table.add_row({std::to_string(apps), Table::money(total),
                     Table::money(total / apps),
                     has_previous ? Table::money(total - previous_total)
                                  : "-"});
      previous_total = total;
      has_previous = true;
    }
    std::cout << "Capacity planning on the peer-sites infrastructure:\n\n"
              << table.render()
              << "\nA jump in the marginal column means the last batch of "
                 "applications forced\nexpensive provisioning (new arrays, "
                 "more links) or degraded protection.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
