// Quickstart: design dependable storage for the paper's peer-sites case
// study (§4.3) and print the chosen design and its cost breakdown.
//
//   ./quickstart [--apps=8] [--time-budget-ms=2000] [--seed=7]
//                [--intra-workers=N] [--json=<path>] [--recovery-report]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/api.hpp"
#include "core/design_tool.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  try {
    const CliFlags flags(argc, argv);
    const int apps = flags.get_int("apps", 8);
    const double budget = flags.get_double("time-budget-ms", 2000.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    const int intra_workers = flags.get_int("intra-workers", 1);
    const std::string json_path = flags.get_string("json", "");
    const bool show_recovery = flags.get_bool("recovery-report", false);
    flags.reject_unknown();

    DesignTool tool(scenarios::peer_sites(apps));

    // The one entry point: environment + solver options + execution options.
    SolveRequest request;
    request.env = &tool.env();
    request.options.time_budget_ms = budget;
    request.options.seed = seed;
    request.exec.intra_node_workers = intra_workers;
    const SolveResult result = solve(request);

    if (!result.feasible) {
      std::cout << "No feasible design found within the budget.\n";
      return 1;
    }
    std::cout << "Design chosen by the automated design tool ("
              << result.nodes_evaluated << " nodes, "
              << result.refit_iterations << " refit iterations, "
              << Table::num(result.elapsed_ms, 0) << " ms):\n\n"
              << DesignTool::describe(tool.env(), *result.best) << "\n"
              << DesignTool::describe_cost(tool.env(), result.cost);
    if (show_recovery) {
      std::cout << "\nPer-scenario recovery behavior:\n"
                << recovery_report(tool.env(), *result.best);
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << solution_to_json(tool.env(), *result.best, result.cost) << "\n";
      std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
