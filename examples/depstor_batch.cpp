// depstor_batch — batch-mode driver for the design engine.
//
// Consumes a directory of INI environment files (core/env_loader.hpp) or a
// built-in sensitivity-sweep generator, solves every job concurrently on the
// batch engine, emits one JSON report per job, and prints the engine's
// aggregate metrics (jobs/sec, nodes/sec, p50/p95 latency, evaluation-cache
// hit rate).
//
//   depstor_batch --env-dir=<dir>                    # one job per *.ini
//   depstor_batch --sweep=object|disk|site           # Figs. 5-7 style sweep
//                 [--points=16] [--apps=16] [--sites=4] [--links=6]
//   common flags (execution flags shared with depstor_cli and the bench
//   harnesses; parsed by util/cli's parse_execution_flags — removed
//   spellings like --engine-workers/--jobs warn with `removed-cli-flag`):
//                 [--workers=N]          worker threads (0 = hardware)
//                 [--intra-workers=N]    threads inside each job's refit
//                                        search (nested on the same pool)
//                 [--intra-min-fan=N]    smallest refit fan worth pooling;
//                                        narrower fans run inline (default 4)
//                 [--seed=1]             base of the derived per-job seeds
//                 [--deterministic]      fixed work per job; no wall-clock
//                                        cutoffs inside the solves
//                 [--time-budget-ms=0]   wall-clock cap per job (0 = none)
//                 [--repetitions=1]      greedy+refit repetitions per job
//                 [--deadline-ms=0]      per-job deadline from submission
//                 [--out=<dir>]          write <dir>/<job>.json reports
//                 [--no-cache]           disable the shared evaluation cache
//                 [--csv]                results table as CSV
//                 [--trace-out=<path>]   Chrome trace_event JSON of the batch
//                                        (per-job spans, solver phases); also
//                                        enabled by DEPSTOR_TRACE=1, which
//                                        defaults to ./depstor_trace.json
//                 [--stats]              print the counter registry at exit
//                                        (also DEPSTOR_STATS=1)
//
// By default every job does a fixed amount of work (--repetitions bounds the
// search, no wall-clock budget), so the batch is bit-identical for any
// --workers / --intra-workers values — rerun with --workers=1 vs --workers=8
// to see the engine's speedup directly. Passing --time-budget-ms>0 caps each
// job's wall clock instead; under contention that trades the determinism
// guarantee for bounded latency.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/check.hpp"

#include "analysis/diagnostics.hpp"
#include "core/design_tool.hpp"
#include "core/env_loader.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "engine/engine.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace depstor;
namespace fs = std::filesystem;

std::vector<DesignJob> jobs_from_env_dir(const std::string& dir,
                                         const DesignSolverOptions& options) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ini") {
      files.push_back(entry.path());
    }
  }
  if (files.empty()) {
    throw InvalidArgument("no .ini environment files under " + dir);
  }
  std::sort(files.begin(), files.end());  // submission order = job seeds
  std::vector<DesignJob> jobs;
  jobs.reserve(files.size());
  for (const auto& path : files) {
    DesignJob job = DesignJob::make(load_environment(path.string()), options,
                                    path.stem().string());
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<DesignJob> jobs_from_sweep(const std::string& sweep, int points,
                                       int apps, int sites, int links,
                                       const DesignSolverOptions& options) {
  DEPSTOR_EXPECTS_MSG(points >= 2, "--points must be >= 2");
  // Geometric rate ladder around the §4.5 sensitivity baselines, the same
  // shape the Fig. 5-7 harnesses sweep.
  const double lo = 0.05, hi = 8.0;
  std::vector<DesignJob> jobs;
  jobs.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double rate =
        lo * std::pow(hi / lo, static_cast<double>(i) / (points - 1));
    Environment env = scenarios::multi_site(apps, sites, links);
    env.failures = FailureModel::sensitivity_baseline();
    if (sweep == "object") {
      env.failures.data_object_rate = rate;
    } else if (sweep == "disk") {
      env.failures.disk_array_rate = rate;
    } else if (sweep == "site") {
      env.failures.site_disaster_rate = rate;
    } else {
      throw InvalidArgument("unknown --sweep: " + sweep +
                            " (expected object|disk|site)");
    }
    char name[64];
    std::snprintf(name, sizeof name, "%s-%02d-rate-%.3g", sweep.c_str(), i,
                  rate);
    jobs.push_back(DesignJob::make(std::move(env), options, name));
  }
  return jobs;
}

void write_reports(const std::string& out_dir, const BatchReport& report) {
  fs::create_directories(out_dir);
  for (const auto& r : report.results) {
    if (r.status != JobStatus::Completed || !r.solve.feasible) continue;
    std::ofstream file(fs::path(out_dir) / (r.name + ".json"));
    file << solution_to_json(*r.env, *r.solve.best, r.solve.cost) << "\n";
  }
  JsonWriter summary;
  summary.begin_object();
  summary.key("jobs").begin_array();
  for (const auto& r : report.results) {
    summary.begin_object()
        .field("id", r.id)
        .field("name", r.name)
        .field("status", to_string(r.status))
        .field("seed", static_cast<long long>(r.seed))
        .field("feasible", r.solve.feasible)
        .field("total_cost", r.solve.feasible ? r.solve.cost.total() : 0.0)
        .field("nodes_evaluated",
               static_cast<long long>(r.solve.nodes_evaluated))
        .field("cache_hits", static_cast<long long>(r.solve.cache_hits))
        .field("cache_misses", static_cast<long long>(r.solve.cache_misses))
        .field("queue_ms", r.queue_ms)
        .field("run_ms", r.run_ms);
    if (!r.error.empty()) summary.field("error", r.error);
    summary.end_object();
  }
  summary.end_array();
  summary.key("metrics");
  report.metrics.to_json(summary);
  summary.end_object();
  std::ofstream file(fs::path(out_dir) / "batch_summary.json");
  file << summary.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    ExecutionFlags exec_defaults;
    exec_defaults.workers = 0;  // 0 = one engine worker per hardware thread
    analysis::DiagnosticReport flag_report;
    const ExecutionFlags ef =
        parse_execution_flags(flags, &flag_report, exec_defaults);
    for (const auto& d : flag_report.diagnostics()) {
      std::cerr << d.render() << "\n";
    }

    DesignSolverOptions options;
    const double budget_ms = flags.get_double("time-budget-ms", 0.0);
    options.time_budget_ms = budget_ms > 0.0 ? budget_ms : 1e9;
    options.max_repetitions = flags.get_int("repetitions", 1);

    const std::string env_dir = flags.get_string("env-dir", "");
    const std::string sweep = flags.get_string("sweep", "");
    std::vector<DesignJob> jobs;
    if (!env_dir.empty()) {
      jobs = jobs_from_env_dir(env_dir, options);
    } else if (!sweep.empty()) {
      jobs = jobs_from_sweep(sweep, flags.get_int("points", 16),
                             flags.get_int("apps", 16),
                             flags.get_int("sites", 4),
                             flags.get_int("links", 6), options);
    } else {
      std::cerr << "usage: depstor_batch --env-dir=<dir> | "
                   "--sweep=object|disk|site [flags]\n"
                   "(see the header of examples/depstor_batch.cpp)\n";
      return 2;
    }
    const double deadline_ms = flags.get_double("deadline-ms", 0.0);
    for (auto& job : jobs) {
      job.deadline_ms = deadline_ms;
      job.exec.intra_node_workers = ef.intra_workers;
      job.exec.intra_min_fan = ef.intra_min_fan;
      job.exec.deterministic = ef.deterministic;
    }

    EngineOptions engine;
    engine.workers = ef.workers;
    engine.seed = ef.seed;
    engine.enable_cache = !flags.get_bool("no-cache", false);
    const std::string out_dir = flags.get_string("out", "");
    const bool csv = flags.get_bool("csv", false);
    const std::string trace_path = ef.trace_out;
    const bool show_stats = ef.stats;
    flags.reject_unknown();

    if (!trace_path.empty()) obs::set_trace_enabled(true);

    std::cout << "== depstor_batch: " << jobs.size() << " jobs ==\n\n";
    const BatchReport report =
        DesignTool::design_batch(std::move(jobs), engine);

    if (!trace_path.empty()) {
      std::ofstream trace_file(trace_path);
      obs::write_chrome_trace(trace_file);
      const obs::TraceStats ts = obs::trace_stats();
      std::cout << "wrote " << trace_path << " (" << ts.recorded << " spans, "
                << ts.threads << " threads";
      if (ts.dropped > 0) {
        std::cout << ", " << ts.dropped
                  << " dropped — raise DEPSTOR_TRACE_BUFFER";
      }
      std::cout << ")\n\n";
    }
    if (show_stats) {
      std::cout << "Counters after batch:\n"
                << obs::counters().render_text() << "\n";
    }

    Table table({"Job", "Status", "Total/yr", "Nodes", "Cache hits",
                 "Queue ms", "Run ms"});
    int failures = 0;
    for (const auto& r : report.results) {
      const bool ok = r.status == JobStatus::Completed && r.solve.feasible;
      if (!ok) ++failures;
      const std::string status =
          r.status == JobStatus::Completed && !r.solve.feasible
              ? "infeasible"
              : to_string(r.status);
      table.add_row({r.name, status,
                     ok ? Table::money(r.solve.cost.total()) : "-",
                     std::to_string(r.solve.nodes_evaluated),
                     std::to_string(r.solve.cache_hits),
                     Table::num(r.queue_ms), Table::num(r.run_ms)});
    }
    std::cout << (csv ? table.render_csv() : table.render()) << "\n"
              << report.metrics.render();

    if (!out_dir.empty()) {
      write_reports(out_dir, report);
      std::cout << "\nwrote " << report.results.size() - failures
                << " job reports + batch_summary.json to " << out_dir << "\n";
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
