// depstor_request — submit one request to a running depstor_serve.
//
//   depstor_request --port=7421 --env=<path.ini>       design request
//                   [--host=127.0.0.1] [--id=<label>] [--priority=0]
//                   [--deadline-ms=0] [--deterministic] [--seed=1]
//                   [--time-budget-ms=2000] [--repetitions=0]
//                   [--cancel-after-ms=0]   send {"op":"cancel"} after N ms
//                   [--disconnect-after-ms=0]  hard-close instead (the
//                                              server must cancel for us)
//                   [--quiet]               suppress progress lines
//   depstor_request --port=7421 --stats                 stats snapshot only
//
// Every server event is printed as its raw JSON line; machine consumers can
// pipe the output straight into a JSON-lines reader. Exit codes make the
// outcome scriptable (the CI smoke job keys off them):
//
//   0  result status "completed" and a feasible design (or --stats OK)
//   1  terminal status "failed"/"expired", or completed but infeasible
//   2  usage / connection / protocol error
//   3  terminal status "cancelled" (what --cancel-after-ms expects)
//   4  request rejected (queue full, lint, parse, oversized, shutdown)
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "serve/client.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace depstor;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

int exit_code_for_result(const JsonValue& event) {
  const std::string& status = event.at("status").as_string();
  if (status == "completed") {
    return event.at("feasible").as_bool() ? 0 : 1;
  }
  if (status == "cancelled") return 3;
  return 1;  // failed | expired
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const std::string host = flags.get_string("host", "127.0.0.1");
    const int port = flags.get_int("port", 7421);
    const bool stats_only = flags.get_bool("stats", false);
    const std::string env_path = flags.get_string("env", "");

    serve::WireRequest req;
    req.id = flags.get_string("id", "");
    req.priority = flags.get_int("priority", 0);
    req.deadline_ms = flags.get_double("deadline-ms", 0.0);
    req.deterministic = flags.get_bool("deterministic", false);
    req.options.seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1));
    req.options.time_budget_ms = flags.get_double("time-budget-ms", 2000.0);
    req.options.max_repetitions = flags.get_int("repetitions", 0);
    const double cancel_after = flags.get_double("cancel-after-ms", 0.0);
    const double disconnect_after =
        flags.get_double("disconnect-after-ms", 0.0);
    const bool quiet = flags.get_bool("quiet", false);
    flags.reject_unknown();

    serve::Client client(host, port);
    if (stats_only) {
      if (!client.request_stats()) throw InvalidArgument("server gone");
      const auto event = client.next_event(5000.0);
      if (!event.has_value() || event->at("type").as_string() != "stats") {
        std::cerr << "error: no stats response\n";
        return 2;
      }
      // Re-emitting the parsed value would need a serializer; the raw line
      // was already valid JSON, so print the parsed summary fields instead.
      std::cout << "queue_depth="
                << event->at("server").at("queue_depth").as_number()
                << " active_jobs="
                << event->at("server").at("active_jobs").as_number()
                << " jobs_admitted="
                << event->at("server").at("jobs_admitted").as_number()
                << " jobs_completed="
                << event->at("server").at("jobs_completed").as_number()
                << " jobs_rejected="
                << event->at("server").at("jobs_rejected").as_number()
                << " p95_job_ms="
                << event->at("server").at("p95_job_ms").as_number() << "\n";
      return 0;
    }

    if (env_path.empty()) {
      std::cerr << "usage: depstor_request --port=N --env=<path.ini> "
                   "[flags] | --stats\n"
                   "(see the header of examples/depstor_request.cpp)\n";
      return 2;
    }
    req.env_ini = read_file(env_path);
    if (!client.send_design(req)) throw InvalidArgument("server gone");

    const Clock::time_point sent_at = Clock::now();
    bool cancel_sent = false;
    bool disconnected = false;
    for (;;) {
      if (cancel_after > 0.0 && !cancel_sent &&
          ms_since(sent_at) >= cancel_after) {
        client.send_cancel();
        cancel_sent = true;
      }
      if (disconnect_after > 0.0 && !disconnected &&
          ms_since(sent_at) >= disconnect_after) {
        client.disconnect();
        disconnected = true;
        std::cout << "disconnected (server should cancel the job)\n";
        return 3;
      }
      const auto event = client.next_event(25.0);
      if (!event.has_value()) {
        if (client.eof()) {
          std::cerr << "error: server closed the connection\n";
          return 2;
        }
        continue;
      }
      const std::string& type = event->at("type").as_string();
      if (type == "progress") {
        if (!quiet) {
          std::cout << "progress status="
                    << event->at("status").as_string()
                    << " nodes=" << event->at("nodes").as_number() << "\n";
        }
        continue;
      }
      if (type == "accepted") {
        if (!quiet) {
          std::cout << "accepted id=" << event->at("id").as_string()
                    << " queue_depth="
                    << event->at("queue_depth").as_number() << "\n";
        }
        continue;
      }
      if (type == "rejected") {
        std::cerr << "rejected code=" << event->at("code").as_number()
                  << " reason=" << event->at("reason").as_string()
                  << " detail=" << event->at("detail").as_string() << "\n";
        return 4;
      }
      if (type == "result") {
        std::cout << "result status=" << event->at("status").as_string()
                  << " feasible=" << event->at("feasible").as_bool()
                  << " total_cost=" << event->at("total_cost").as_number()
                  << " nodes=" << event->at("nodes").as_number()
                  << " queue_ms=" << event->at("queue_ms").as_number()
                  << " run_ms=" << event->at("run_ms").as_number() << "\n";
        return exit_code_for_result(*event);
      }
      std::cerr << "error: unexpected event type \"" << type << "\"\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
