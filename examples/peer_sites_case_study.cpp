// The §4.3 peer-sites case study, end to end:
//
//  1. build the two-peer-site environment with eight applications,
//  2. sample the design space to see what "typical" solutions cost,
//  3. run the automated design tool and both comparison heuristics,
//  4. print the chosen design (Table 4 style), the cost comparison
//     (Figure 3 style), and where the tool's solution lands within the
//     sampled distribution (Figure 2 style).
//
//   ./peer_sites_case_study [--time-budget-ms=2000] [--samples=5000]
//                           [--seed=7]
#include <iostream>

#include "core/design_tool.hpp"
#include "core/sampler.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  try {
    const CliFlags flags(argc, argv);
    const double budget = flags.get_double("time-budget-ms", 2000.0);
    const int samples = flags.get_int("samples", 5000);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    flags.reject_unknown();

    DesignTool tool(scenarios::peer_sites(8));

    std::cout << "Step 1 — environment: 8 applications (2 of each Table 1 "
                 "class), 2 peer sites,\n≤2 arrays + 1 tape library + 8 "
                 "compute slots per site, ≤32 inter-site links.\n\n";

    std::cout << "Step 2 — sampling " << samples
              << " random feasible designs...\n";
    SolutionSpaceSampler sampler(&tool.env());
    const auto stats = sampler.sample(samples, seed);
    std::cout << "  cheapest sampled: " << Table::money(stats.costs.min())
              << ", mean: " << Table::money(stats.costs.mean())
              << ", costliest: " << Table::money(stats.costs.max()) << "\n\n";

    std::cout << "Step 3 — running the design tool and both baselines ("
              << budget << " ms each)...\n\n";
    DesignSolverOptions solver_options;
    solver_options.time_budget_ms = budget;
    solver_options.seed = seed;
    const auto designed = tool.design(solver_options);
    BaselineOptions baseline_options;
    baseline_options.time_budget_ms = budget;
    baseline_options.seed = seed;
    const auto human = tool.design_human(baseline_options);
    const auto random = tool.design_random(baseline_options);

    if (!designed.feasible) {
      std::cout << "design tool found no feasible design — raise the "
                   "budget\n";
      return 1;
    }

    std::cout << "Chosen design (Table 4 analogue):\n"
              << DesignTool::describe(tool.env(), *designed.best) << "\n";

    Table comparison({"Heuristic", "Outlays/yr", "Loss/yr", "Outage/yr",
                      "Total/yr"});
    auto add = [&](const char* name, bool ok, const CostBreakdown& c) {
      comparison.add_row({name, ok ? Table::money(c.outlay) : "-",
                          ok ? Table::money(c.loss_penalty) : "-",
                          ok ? Table::money(c.outage_penalty) : "-",
                          ok ? Table::money(c.total()) : "infeasible"});
    };
    add("design tool", designed.feasible, designed.cost);
    add("human heuristic", human.feasible, human.cost);
    add("random heuristic", random.feasible, random.cost);
    std::cout << comparison.render() << "\n";

    std::cout << "The design tool's solution sits at percentile "
              << Table::num(100.0 * stats.percentile_of(designed.cost.total()),
                            2)
              << "% of the sampled design space (0% = cheapest).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
