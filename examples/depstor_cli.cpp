// depstor_cli — command-line driver for the design tool.
//
//   depstor_cli design   [scenario flags] [--json=<path>] [--recovery-report]
//                        [--threat-report]
//   depstor_cli compare  [scenario flags]          # tool vs human vs random
//   depstor_cli sample   [scenario flags] [--samples=N]
//   depstor_cli validate [scenario flags] [--years=N]  # Monte Carlo check
//
// Scenario flags (shared):
//   --env=<path>            environment file (see core/env_loader.hpp);
//                           overrides --scenario/--apps/--sites/--links
//   --scenario=peer|multi   (default peer)
//   --apps=N                (default 8)
//   --sites=N --links=N     (multi only; defaults 4 / 6)
//   --object-rate --disk-rate --site-rate --regional-rate   (per year)
//   --time-budget-ms
//
// Execution flags (shared with depstor_batch and the bench harnesses; parsed
// by util/cli's parse_execution_flags — removed spellings warn with
// rule `removed-cli-flag`):
//   --workers=N             independent seed restarts merged by minimum
//   --intra-workers=N       threads inside each solve's refit search
//   --seed=N                base seed of every derived RNG stream
//   --deterministic         fixed work; results bit-identical for any
//                           --workers/--intra-workers values
//   --trace-out=<path>      record spans during the solve and write a Chrome
//                           trace_event JSON file (chrome://tracing, Perfetto)
//   --stats                 print the counter registry after the solve
//   DEPSTOR_TRACE=1         env toggle: record spans into ./depstor_trace.json
//   DEPSTOR_STATS=1         env toggle for --stats
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/diagnostics.hpp"
#include "core/design_tool.hpp"
#include "core/env_loader.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/monte_carlo.hpp"
#include "solver/parallel.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

namespace {

using namespace depstor;

/// Parse the unified execution flags and print any removed-spelling
/// warnings compiler-style on stderr.
ExecutionFlags execution_flags(const CliFlags& flags) {
  ExecutionFlags defaults;
  defaults.seed = 42;
  analysis::DiagnosticReport report;
  const ExecutionFlags ef = parse_execution_flags(flags, &report, defaults);
  for (const auto& d : report.diagnostics()) std::cerr << d.render() << "\n";
  return ef;
}

/// Write the recorded spans + counter snapshot; reports drops so a truncated
/// trace is never mistaken for a complete one.
void write_trace_file(const std::string& path) {
  std::ofstream out(path);
  obs::write_chrome_trace(out);
  const obs::TraceStats stats = obs::trace_stats();
  std::cout << "\nwrote " << path << " (" << stats.recorded << " spans, "
            << stats.threads << " threads";
  if (stats.dropped > 0) {
    std::cout << ", " << stats.dropped
              << " dropped — raise DEPSTOR_TRACE_BUFFER";
  }
  std::cout << ")\n";
}

Environment environment_from_flags(const CliFlags& flags) {
  const std::string env_path = flags.get_string("env", "");
  const std::string scenario = flags.get_string("scenario", "peer");
  const int apps = flags.get_int("apps", 8);
  Environment env;
  if (!env_path.empty()) {
    env = load_environment(env_path);
    // Flag overrides still apply to the failure rates below.
  } else if (scenario == "peer") {
    env = scenarios::peer_sites(apps);
  } else if (scenario == "multi") {
    env = scenarios::multi_site(apps, flags.get_int("sites", 4),
                                flags.get_int("links", 6));
  } else {
    throw InvalidArgument("unknown --scenario: " + scenario +
                          " (expected peer|multi)");
  }
  env.failures.data_object_rate =
      flags.get_double("object-rate", env.failures.data_object_rate);
  env.failures.disk_array_rate =
      flags.get_double("disk-rate", env.failures.disk_array_rate);
  env.failures.site_disaster_rate =
      flags.get_double("site-rate", env.failures.site_disaster_rate);
  env.failures.regional_disaster_rate =
      flags.get_double("regional-rate", env.failures.regional_disaster_rate);
  env.validate();
  return env;
}

int cmd_design(const CliFlags& flags, Environment env) {
  const ExecutionFlags ef = execution_flags(flags);
  DesignSolverOptions options;
  options.time_budget_ms = flags.get_double("time-budget-ms", 2000.0);
  options.seed = ef.seed;
  ExecutionOptions exec;
  exec.workers = ef.workers;
  exec.intra_node_workers = ef.intra_workers;
  exec.intra_min_fan = ef.intra_min_fan;
  exec.deterministic = ef.deterministic;
  const std::string json_path = flags.get_string("json", "");
  const bool show_recovery = flags.get_bool("recovery-report", false);
  const bool show_threats = flags.get_bool("threat-report", false);
  flags.reject_unknown();

  if (!ef.trace_out.empty()) obs::set_trace_enabled(true);

  DesignTool tool(std::move(env));
  const SolveResult result = tool.design(options, exec);
  if (!ef.trace_out.empty()) write_trace_file(ef.trace_out);
  if (ef.stats) {
    std::cout << "\nCounters after solve:\n"
              << obs::counters().render_text();
  }
  if (!result.feasible) {
    std::cout << "no feasible design found within the budget\n";
    return 1;
  }
  std::cout << DesignTool::describe(tool.env(), *result.best) << "\n"
            << DesignTool::describe_cost(tool.env(), result.cost);
  if (show_threats) {
    std::cout << "\nThreat attribution:\n"
              << threat_report(tool.env(), *result.best);
  }
  if (show_recovery) {
    std::cout << "\nPer-scenario recovery behavior:\n"
              << recovery_report(tool.env(), *result.best);
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << solution_to_json(tool.env(), *result.best, result.cost) << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}

int cmd_compare(const CliFlags& flags, Environment env) {
  const double budget = flags.get_double("time-budget-ms", 2000.0);
  const std::uint64_t seed = execution_flags(flags).seed;
  flags.reject_unknown();

  DesignTool tool(std::move(env));
  DesignSolverOptions d;
  d.time_budget_ms = budget;
  d.seed = seed;
  BaselineOptions b;
  b.time_budget_ms = budget;
  b.seed = seed;
  const auto solver = tool.design(d);
  const auto human = tool.design_human(b);
  const auto random = tool.design_random(b);

  Table table({"Heuristic", "Outlays/yr", "Loss/yr", "Outage/yr",
               "Total/yr"});
  auto add = [&](const char* name, bool ok, const CostBreakdown& c) {
    table.add_row({name, ok ? Table::money(c.outlay) : "-",
                   ok ? Table::money(c.loss_penalty) : "-",
                   ok ? Table::money(c.outage_penalty) : "-",
                   ok ? Table::money(c.total()) : "infeasible"});
  };
  add("design tool", solver.feasible, solver.cost);
  add("human heuristic", human.feasible, human.cost);
  add("random heuristic", random.feasible, random.cost);
  std::cout << table.render();
  return solver.feasible ? 0 : 1;
}

int cmd_sample(const CliFlags& flags, Environment env) {
  const int samples = flags.get_int("samples", 10000);
  const ExecutionFlags ef = execution_flags(flags);
  flags.reject_unknown();

  const SampleStats stats =
      ef.workers > 1 ? sample_parallel(&env, samples, ef.seed, ef.workers)
                     : SolutionSpaceSampler(&env).sample(samples, ef.seed);
  std::cout << "feasible samples: " << stats.feasible << " of "
            << stats.attempted << " drawn\n"
            << "min: " << Table::money(stats.costs.min())
            << "  mean: " << Table::money(stats.costs.mean())
            << "  max: " << Table::money(stats.costs.max()) << "\n\n";
  LogHistogram hist(stats.costs.min(), stats.costs.max() * 1.0001, 20);
  for (double s : stats.samples) hist.add(s);
  std::cout << hist.render(48);
  return 0;
}

int cmd_validate(const CliFlags& flags, Environment env) {
  DesignSolverOptions options;
  options.time_budget_ms = flags.get_double("time-budget-ms", 2000.0);
  options.seed = execution_flags(flags).seed;
  const double years = flags.get_double("years", 2000.0);
  flags.reject_unknown();

  DesignTool tool(std::move(env));
  const auto result = tool.design(options);
  if (!result.feasible) {
    std::cout << "no feasible design to validate\n";
    return 1;
  }
  MonteCarloSimulator sim(&tool.env());
  const auto mc = sim.run(*result.best, {.years = years,
                                         .seed = options.seed});
  Table table({"Quantity", "Analytic", "Simulated"});
  table.add_row({"annual outage penalty",
                 Table::money(result.cost.outage_penalty),
                 Table::money(mc.annual_outage_penalty())});
  table.add_row({"annual loss penalty",
                 Table::money(result.cost.loss_penalty),
                 Table::money(mc.annual_loss_penalty())});
  std::cout << table.render() << "(" << mc.events << " failure events over "
            << years << " simulated years)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    if (flags.positional().size() != 1) {
      std::cerr << "usage: depstor_cli design|compare|sample|validate "
                   "[flags]\n(see the header of examples/depstor_cli.cpp)\n";
      return 2;
    }
    const std::string& command = flags.positional()[0];
    Environment env = environment_from_flags(flags);
    if (command == "design") return cmd_design(flags, std::move(env));
    if (command == "compare") return cmd_compare(flags, std::move(env));
    if (command == "sample") return cmd_sample(flags, std::move(env));
    if (command == "validate") return cmd_validate(flags, std::move(env));
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
