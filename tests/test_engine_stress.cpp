// Concurrency stress for the batch engine, built to run under
// ThreadSanitizer: submissions, status/progress/metrics polling, cancels,
// and waits all hammer the engine from separate threads while the worker
// pool is solving. Workloads are kept tiny — TSan slows execution an order
// of magnitude, and the point is interleavings, not solver depth.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::peer_env;

DesignSolverOptions tiny_options(std::uint64_t seed = 3) {
  DesignSolverOptions o;
  o.time_budget_ms = 1e9;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = seed;
  return o;
}

DesignJob tiny_job(int index) {
  Environment env = peer_env(2);
  env.failures.data_object_rate = 0.25 * (index % 7 + 1);
  return DesignJob::make(std::move(env), tiny_options(),
                         "stress-" + std::to_string(index));
}

TEST(EngineStress, ConcurrentSubmittersAndPollers) {
  constexpr int kSubmitters = 4;
  constexpr int kJobsPerSubmitter = 6;

  EngineOptions options;
  options.workers = 4;
  options.cache.shards = 4;  // small shard count → real cross-worker sharing
  BatchEngine engine(options);

  std::atomic<bool> stop{false};

  // Pollers race the workers over every read-side surface the engine has.
  std::vector<std::thread> pollers;
  for (int p = 0; p < 3; ++p) {
    pollers.emplace_back([&engine, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int n = engine.job_count();
        for (int id = 0; id < n; ++id) {
          (void)engine.status(id);
          (void)engine.progress_nodes(id);
        }
        (void)engine.metrics();
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&engine, s] {
      for (int i = 0; i < kJobsPerSubmitter; ++i) {
        engine.submit(tiny_job(s * kJobsPerSubmitter + i));
      }
    });
  }
  for (auto& t : submitters) t.join();

  const std::vector<JobResult> results = engine.wait_all();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : pollers) t.join();

  ASSERT_EQ(results.size(),
            static_cast<std::size_t>(kSubmitters * kJobsPerSubmitter));
  for (const auto& r : results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.name << ": " << r.error;
    EXPECT_TRUE(r.solve.feasible) << r.name;
  }
}

TEST(EngineStress, ConcurrentCancellersAndWaiters) {
  constexpr int kJobs = 24;

  EngineOptions options;
  options.workers = 3;
  BatchEngine engine(options);

  std::vector<int> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) ids.push_back(engine.submit(tiny_job(i)));

  // Two cancellers sweep disjoint-ish strides while workers drain the queue;
  // every third job is left alone so some always complete.
  std::thread canceller_a([&engine, &ids] {
    for (std::size_t i = 0; i < ids.size(); i += 3) engine.cancel(ids[i]);
  });
  std::thread canceller_b([&engine, &ids] {
    for (std::size_t i = 1; i < ids.size(); i += 3) engine.cancel(ids[i]);
  });

  // Waiters block on individual jobs concurrently with the cancels.
  std::vector<JobResult> waited(ids.size());
  std::vector<std::thread> waiters;
  for (int w = 0; w < 2; ++w) {
    waiters.emplace_back([&engine, &ids, &waited, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < ids.size();
           i += 2) {
        waited[i] = engine.wait(ids[i]);
      }
    });
  }

  canceller_a.join();
  canceller_b.join();
  for (auto& t : waiters) t.join();

  int completed = 0;
  for (const auto& r : waited) {
    EXPECT_TRUE(is_terminal(r.status)) << r.name;
    EXPECT_NE(r.status, JobStatus::Failed) << r.name << ": " << r.error;
    if (r.status == JobStatus::Completed) ++completed;
  }
  // The untouched stride (i % 3 == 2) can never be cancelled.
  EXPECT_GE(completed, kJobs / 3);
}

TEST(EngineStress, DestructorRacesInFlightWork) {
  // The destructor must drain cleanly while jobs are queued, running, and
  // being cancelled from another thread.
  for (int round = 0; round < 4; ++round) {
    EngineOptions options;
    options.workers = 2;
    BatchEngine engine(options);
    for (int i = 0; i < 8; ++i) engine.submit(tiny_job(i));
    std::thread canceller([&engine] {
      for (int id = 7; id >= 0; id -= 2) engine.cancel(id);
    });
    canceller.join();
    // ~BatchEngine blocks until all eight reach a terminal status.
  }
}

TEST(EngineStress, SharedCacheHammeredByIdenticalJobs) {
  // Identical environments maximize cache-key collisions: every worker
  // reads and writes the same shards throughout the batch.
  EngineOptions options;
  options.workers = 4;
  options.cache.shards = 2;
  std::vector<DesignJob> jobs;
  for (int i = 0; i < 12; ++i) {
    DesignJob job = DesignJob::make(peer_env(2), tiny_options(), "");
    job.derive_seed = false;  // same seed → truly identical work
    jobs.push_back(std::move(job));
  }
  const BatchReport report = run_batch(std::move(jobs), options);
  ASSERT_EQ(report.results.size(), 12u);
  const SolveResult& first = report.results[0].solve;
  for (const auto& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.name << ": " << r.error;
    // Identical jobs must yield bit-identical costs whatever the
    // interleaving — memoization is result-transparent.
    EXPECT_EQ(r.solve.cost.total(), first.cost.total()) << r.name;
  }
}

}  // namespace
}  // namespace depstor
