// The unified entry point (core/api.hpp): SolveRequest validation, the
// seed-restart fan, and the request-level scenario-model override.
//
// The deprecated `DesignSolver::solve()` / `solve_parallel()` wrappers were
// removed after their deprecation cycle (see README's migration table);
// everything goes through depstor::solve now.
#include <gtest/gtest.h>

#include <atomic>

#include "core/api.hpp"
#include "core/scenarios.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::solve_design;
using testing::solve_fanned;

DesignSolverOptions fixed_work_options(std::uint64_t seed) {
  DesignSolverOptions o;
  o.seed = seed;
  o.max_repetitions = 1;  // fixed work: the wall clock never cuts the search
  o.time_budget_ms = 1e9;
  o.breadth = 2;
  o.depth = 2;
  o.max_refit_iterations = 2;
  return o;
}

TEST(SolveRequest, RejectsNullEnvironment) {
  SolveRequest request;  // env left null
  EXPECT_THROW(solve(request), InvalidArgument);
}

TEST(SolveRequest, RejectsBadWorkerCounts) {
  const Environment env = testing::peer_env(2);
  ExecutionOptions exec;
  exec.workers = 0;
  EXPECT_THROW(solve_design(env, {}, exec), InvalidArgument);
  exec.workers = 1;
  exec.intra_node_workers = 0;
  EXPECT_THROW(solve_design(env, {}, exec), InvalidArgument);
}

TEST(SolveRequest, SeedFanReturnsTheCheapestRestartAndSumsCounters) {
  const Environment env = testing::peer_env(4);
  const std::uint64_t base_seed = 21;

  // The fan gives worker k seed `base + k`; reproduce it by hand.
  SolveResult cheapest;
  std::int64_t nodes_sum = 0;
  for (int k = 0; k < 3; ++k) {
    const SolveResult r = solve_design(
        env, fixed_work_options(base_seed + static_cast<std::uint64_t>(k)));
    ASSERT_TRUE(r.feasible);
    nodes_sum += r.nodes_evaluated;
    if (k == 0 || r.cost.total() < cheapest.cost.total()) cheapest = r;
  }

  const SolveResult fanned =
      solve_fanned(env, fixed_work_options(base_seed), 3);
  ASSERT_TRUE(fanned.feasible);
  EXPECT_EQ(fanned.cost.total(), cheapest.cost.total());
  EXPECT_EQ(fanned.nodes_evaluated, nodes_sum);
}

TEST(SolveRequest, HonorsCancellationHook) {
  const Environment env = testing::peer_env(4);
  std::atomic<bool> cancel{true};  // pre-cancelled: stop at the first node
  ExecutionOptions exec;
  exec.cancel = &cancel;
  const SolveResult result = solve_design(env, fixed_work_options(3), exec);
  EXPECT_TRUE(result.cancelled);
}

// ------------------------------------------------ scenario-model override

TEST(SolveRequest, ScenarioOverrideMatchesEnvironmentWithThoseRates) {
  // Solving env A with env B's scenario model must equal solving an
  // environment that carries B's failure rates natively: the override is a
  // pure re-pricing, not a different search.
  Environment env = testing::peer_env(4);
  Environment shifted = env;
  shifted.failures.site_disaster_rate *= 4.0;
  shifted.failures.disk_array_rate *= 2.0;

  SolveRequest request;
  request.env = &env;
  request.options = fixed_work_options(17);
  request.scenarios = shifted.scenario_model();
  const SolveResult overridden = solve(request);

  const SolveResult native = solve_design(shifted, fixed_work_options(17));
  ASSERT_TRUE(overridden.feasible);
  ASSERT_TRUE(native.feasible);
  EXPECT_EQ(overridden.cost.total(), native.cost.total());
}

TEST(SolveRequest, ScenarioOverrideValidatesRates) {
  const Environment env = testing::peer_env(2);
  SolveRequest request;
  request.env = &env;
  request.options = fixed_work_options(3);
  ScenarioModel bad = env.scenario_model();
  bad.flat.site_disaster_rate = -1.0;
  request.scenarios = bad;
  EXPECT_THROW(solve(request), InvalidArgument);
}

}  // namespace
}  // namespace depstor
