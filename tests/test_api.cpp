// The unified entry point (core/api.hpp): SolveRequest validation, the
// seed-restart fan, and the pinning tests for the deprecated wrappers.
//
// This file is the one place allowed to call `DesignSolver::solve()` and
// `solve_parallel()` — it pins the wrappers to the new API bit-for-bit so
// the deprecation period cannot silently change behavior. Everything else
// in the tree goes through depstor::solve (CI builds with -Werror, which
// turns any stray deprecated call into a build break).
#include <gtest/gtest.h>

#include <atomic>

#include "core/api.hpp"
#include "core/scenarios.hpp"
#include "solver/parallel.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::solve_design;
using testing::solve_fanned;

DesignSolverOptions fixed_work_options(std::uint64_t seed) {
  DesignSolverOptions o;
  o.seed = seed;
  o.max_repetitions = 1;  // fixed work: the wall clock never cuts the search
  o.time_budget_ms = 1e9;
  o.breadth = 2;
  o.depth = 2;
  o.max_refit_iterations = 2;
  return o;
}

TEST(SolveRequest, RejectsNullEnvironment) {
  SolveRequest request;  // env left null
  EXPECT_THROW(solve(request), InvalidArgument);
}

TEST(SolveRequest, RejectsBadWorkerCounts) {
  const Environment env = testing::peer_env(2);
  ExecutionOptions exec;
  exec.workers = 0;
  EXPECT_THROW(solve_design(env, {}, exec), InvalidArgument);
  exec.workers = 1;
  exec.intra_node_workers = 0;
  EXPECT_THROW(solve_design(env, {}, exec), InvalidArgument);
}

TEST(SolveRequest, SeedFanReturnsTheCheapestRestartAndSumsCounters) {
  const Environment env = testing::peer_env(4);
  const std::uint64_t base_seed = 21;

  // The fan gives worker k seed `base + k`; reproduce it by hand.
  SolveResult cheapest;
  std::int64_t nodes_sum = 0;
  for (int k = 0; k < 3; ++k) {
    const SolveResult r = solve_design(
        env, fixed_work_options(base_seed + static_cast<std::uint64_t>(k)));
    ASSERT_TRUE(r.feasible);
    nodes_sum += r.nodes_evaluated;
    if (k == 0 || r.cost.total() < cheapest.cost.total()) cheapest = r;
  }

  const SolveResult fanned =
      solve_fanned(env, fixed_work_options(base_seed), 3);
  ASSERT_TRUE(fanned.feasible);
  EXPECT_EQ(fanned.cost.total(), cheapest.cost.total());
  EXPECT_EQ(fanned.nodes_evaluated, nodes_sum);
}

TEST(SolveRequest, HonorsCancellationHook) {
  const Environment env = testing::peer_env(4);
  std::atomic<bool> cancel{true};  // pre-cancelled: stop at the first node
  ExecutionOptions exec;
  exec.cancel = &cancel;
  const SolveResult result = solve_design(env, fixed_work_options(3), exec);
  EXPECT_TRUE(result.cancelled);
}

// ------------------------------------------------- deprecated-wrapper pins

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedWrappers, DesignSolverSolveMatchesUnifiedApi) {
  const Environment env = testing::peer_env(4);
  const DesignSolverOptions options = fixed_work_options(5);

  DesignSolver solver(&env, options);
  const SolveResult legacy = solver.solve();
  const SolveResult unified = solve_design(env, options);

  ASSERT_TRUE(legacy.feasible);
  ASSERT_TRUE(unified.feasible);
  EXPECT_EQ(legacy.cost.total(), unified.cost.total());
  EXPECT_EQ(legacy.nodes_evaluated, unified.nodes_evaluated);
  EXPECT_EQ(legacy.refit_iterations, unified.refit_iterations);
}

TEST(DeprecatedWrappers, SolveParallelMatchesUnifiedApiFan) {
  const Environment env = testing::peer_env(4);
  const DesignSolverOptions options = fixed_work_options(9);

  const SolveResult legacy = solve_parallel(&env, options, 2);
  const SolveResult unified = solve_fanned(env, options, 2);

  ASSERT_TRUE(legacy.feasible);
  ASSERT_TRUE(unified.feasible);
  EXPECT_EQ(legacy.cost.total(), unified.cost.total());
  EXPECT_EQ(legacy.nodes_evaluated, unified.nodes_evaluated);
}

TEST(DeprecatedWrappers, SolveParallelStillValidatesWorkers) {
  const Environment env = testing::peer_env(2);
  EXPECT_THROW(solve_parallel(&env, {}, 0), InvalidArgument);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace depstor
