#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

CliFlags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const auto flags = parse({"--count=42"});
  EXPECT_EQ(flags.get_int("count", 0), 42);
}

TEST(Cli, SpaceForm) {
  const auto flags = parse({"--count", "42"});
  EXPECT_EQ(flags.get_int("count", 0), 42);
}

TEST(Cli, BareFlagIsTrue) {
  const auto flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("b", true));
}

TEST(Cli, DoubleParsing) {
  const auto flags = parse({"--rate=2.5"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(Cli, MalformedNumberThrows) {
  const auto flags = parse({"--n=abc"});
  EXPECT_THROW(flags.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(flags.get_double("n", 0.0), InvalidArgument);
}

TEST(Cli, BoolForms) {
  EXPECT_TRUE(parse({"--b=true"}).get_bool("b"));
  EXPECT_TRUE(parse({"--b=1"}).get_bool("b"));
  EXPECT_TRUE(parse({"--b=yes"}).get_bool("b"));
  EXPECT_FALSE(parse({"--b=false"}).get_bool("b", true));
  EXPECT_FALSE(parse({"--b=0"}).get_bool("b", true));
  EXPECT_THROW(parse({"--b=maybe"}).get_bool("b"), InvalidArgument);
}

TEST(Cli, PositionalArguments) {
  const auto flags = parse({"one", "--k=v", "two"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(Cli, HasReportsPresence) {
  const auto flags = parse({"--k=v"});
  EXPECT_TRUE(flags.has("k"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Cli, RejectUnknownThrowsOnUnconsumed) {
  const auto flags = parse({"--typo=1"});
  EXPECT_THROW(flags.reject_unknown(), InvalidArgument);
}

TEST(Cli, RejectUnknownPassesAfterConsumption) {
  const auto flags = parse({"--known=1"});
  flags.get_int("known", 0);
  EXPECT_NO_THROW(flags.reject_unknown());
}

TEST(Cli, NegativeNumberAsValue) {
  // "--n -5": -5 does not start with "--", so it binds as the value.
  const auto flags = parse({"--n", "-5"});
  EXPECT_EQ(flags.get_int("n", 0), -5);
}

TEST(Cli, LastDuplicateWins) {
  const auto flags = parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int("n", 0), 2);
}

// ------------------------------------------- unified execution flags (§9)

TEST(ExecutionFlagsTest, ParsesUnifiedSpellings) {
  const auto flags = parse({"--workers=3", "--intra-workers=4", "--seed=17",
                            "--deterministic", "--trace-out=t.json",
                            "--stats"});
  analysis::DiagnosticReport report;
  const ExecutionFlags ef = parse_execution_flags(flags, &report);
  EXPECT_EQ(ef.workers, 3);
  EXPECT_EQ(ef.intra_workers, 4);
  EXPECT_EQ(ef.seed, 17u);
  EXPECT_TRUE(ef.deterministic);
  EXPECT_EQ(ef.trace_out, "t.json");
  EXPECT_TRUE(ef.stats);
  EXPECT_TRUE(report.empty());
  EXPECT_NO_THROW(flags.reject_unknown());
}

TEST(ExecutionFlagsTest, DefaultsPassThrough) {
  const auto flags = parse({});
  ExecutionFlags defaults;
  defaults.workers = 0;
  defaults.seed = 42;
  const ExecutionFlags ef = parse_execution_flags(flags, nullptr, defaults);
  EXPECT_EQ(ef.workers, 0);
  EXPECT_EQ(ef.intra_workers, 1);
  EXPECT_EQ(ef.seed, 42u);
  EXPECT_FALSE(ef.deterministic);
}

TEST(ExecutionFlagsTest, RemovedSpellingsWarnAndStillParse) {
  const auto flags = parse({"--engine-workers=5", "--intra-node-workers=2",
                            "--trace=old.json"});
  analysis::DiagnosticReport report;
  const ExecutionFlags ef = parse_execution_flags(flags, &report);
  EXPECT_EQ(ef.workers, 5);
  EXPECT_EQ(ef.intra_workers, 2);
  EXPECT_EQ(ef.trace_out, "old.json");
  EXPECT_EQ(report.warning_count(), 3);
  EXPECT_TRUE(report.has_rule(analysis::rules::kRemovedCliFlag));
  // Consumed despite being removed: reject_unknown stays quiet.
  EXPECT_NO_THROW(flags.reject_unknown());
}

TEST(ExecutionFlagsTest, CurrentSpellingWinsOverRemoved) {
  const auto flags = parse({"--workers=2", "--jobs=9"});
  analysis::DiagnosticReport report;
  const ExecutionFlags ef = parse_execution_flags(flags, &report);
  EXPECT_EQ(ef.workers, 2);
  EXPECT_EQ(report.warning_count(), 1);
}

TEST(ExecutionFlagsTest, BareTraceFlagPicksDefaultPath) {
  const auto flags = parse({"--trace"});
  analysis::DiagnosticReport report;
  const ExecutionFlags ef = parse_execution_flags(flags, &report);
  EXPECT_EQ(ef.trace_out, "depstor_trace.json");
  EXPECT_EQ(report.warning_count(), 1);
}

}  // namespace
}  // namespace depstor
