#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "cost/penalty.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;

Candidate simple_design(const Environment& env) {
  Candidate cand(&env);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    cand.place_app(i, full_choice(sync_f_backup()));
  }
  return cand;
}

TEST(MonteCarlo, DeterministicUnderSeed) {
  Environment env = peer_env(2);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto a = sim.run(cand, {.years = 50.0, .seed = 9});
  const auto b = sim.run(cand, {.years = 50.0, .seed = 9});
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.annual_penalty(), b.annual_penalty());
}

TEST(MonteCarlo, EventCountMatchesPoissonRates) {
  Environment env = peer_env(2);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const double years = 3000.0;
  const auto result = sim.run(cand, {.years = years, .seed = 5});
  // Scenario streams: 2 object (1/3 each) + 1 array (1/3) + 1 site (1/5).
  const double expected_rate = 2.0 / 3.0 + 1.0 / 3.0 + 0.2;
  const double expected_events = expected_rate * years;
  EXPECT_NEAR(static_cast<double>(result.events), expected_events,
              4.0 * std::sqrt(expected_events));  // 4σ band
}

TEST(MonteCarlo, ZeroRatesProduceNoEvents) {
  Environment env = peer_env(2);
  env.failures.data_object_rate = 0.0;
  env.failures.disk_array_rate = 0.0;
  env.failures.site_disaster_rate = 0.0;
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto result = sim.run(cand, {.years = 100.0, .seed = 1});
  EXPECT_EQ(result.events, 0);
  EXPECT_DOUBLE_EQ(result.annual_penalty(), 0.0);
}

TEST(MonteCarlo, MixedZeroRateClassesStayFiniteAndSkipped) {
  // Regression: a zero-rate scenario sampled through exponential_hours
  // divided by zero, pushing an inf (or NaN) event time into the queue —
  // the stream then either vanished silently or poisoned the heap order.
  // Zero-rate classes must be skipped at stream setup; the remaining
  // classes keep their Poisson statistics.
  Environment env = peer_env(2);
  env.failures.data_object_rate = 0.0;  // zero one class, keep the others
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const double years = 2000.0;
  const auto result = sim.run(cand, {.years = years, .seed = 7});
  // Only the array (1/3) and site (1/5) streams remain.
  const double expected_events = (1.0 / 3.0 + 0.2) * years;
  EXPECT_NEAR(static_cast<double>(result.events), expected_events,
              4.0 * std::sqrt(expected_events));
  EXPECT_TRUE(std::isfinite(result.annual_penalty()));
  EXPECT_GT(result.events, 0);
}

TEST(MonteCarlo, SimulatedLossBoundedByAnalytic) {
  // Analytic loss uses worst-case staleness; sampled losses are uniform in
  // the cycle, so over a long horizon: analytic/2 ≲ simulated ≤ analytic.
  Environment env = peer_env(4);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto mc = sim.run(cand, {.years = 4000.0, .seed = 11});

  const auto analytic = compute_penalties(env.apps, cand.assignments(),
                                          cand.pool(), env.failures,
                                          env.params);
  double analytic_loss = 0.0;
  for (const auto& d : analytic) analytic_loss += d.loss_penalty;

  const double simulated_loss = mc.annual_loss_penalty();
  EXPECT_LE(simulated_loss, analytic_loss * 1.05);
  EXPECT_GE(simulated_loss, analytic_loss * 0.40);
}

TEST(MonteCarlo, SimulatedOutageMatchesAnalytic) {
  // Outage durations are not sampled, and overlaps are rare at these rates,
  // so the simulated annual outage penalty converges to the analytic one.
  Environment env = peer_env(4);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto mc = sim.run(cand, {.years = 4000.0, .seed = 13});

  const auto analytic = compute_penalties(env.apps, cand.assignments(),
                                          cand.pool(), env.failures,
                                          env.params);
  double analytic_outage = 0.0;
  for (const auto& d : analytic) analytic_outage += d.outage_penalty;

  EXPECT_NEAR(mc.annual_outage_penalty(), analytic_outage,
              analytic_outage * 0.15);
}

TEST(MonteCarlo, PerAppEventCountsScaleWithExposure) {
  // Every app gets its own object failures plus shared array/site events;
  // apps sharing everything should see similar event counts.
  Environment env = peer_env(4);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto result = sim.run(cand, {.years = 2000.0, .seed = 17});
  for (const auto& s : result.per_app) {
    EXPECT_GT(s.failure_events, 0);
  }
  const double first = static_cast<double>(result.per_app[0].failure_events);
  for (const auto& s : result.per_app) {
    EXPECT_NEAR(static_cast<double>(s.failure_events), first, first * 0.2);
  }
}

TEST(MonteCarlo, OverlapNeverDoubleCountsOutage) {
  // Crank the failure rates so overlaps are common: total realized outage
  // per app cannot exceed the simulated horizon.
  Environment env = peer_env(2);
  env.failures.data_object_rate = 50.0;
  env.failures.disk_array_rate = 50.0;
  env.failures.site_disaster_rate = 50.0;
  Candidate cand(&env);
  // Reconstruct-style protection → recoveries take hours → heavy overlap.
  for (int i = 0; i < 2; ++i) {
    cand.place_app(i, full_choice(sync_r_backup()));
  }
  MonteCarloSimulator sim(&env);
  const double years = 10.0;
  const auto result = sim.run(cand, {.years = years, .seed = 23});
  for (const auto& s : result.per_app) {
    EXPECT_LE(s.outage_hours, years * 8760.0 * 1.01);
  }
}

TEST(MonteCarlo, LongerHorizonTightensOutageAgreement) {
  Environment env = peer_env(2);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  const auto analytic = compute_penalties(env.apps, cand.assignments(),
                                          cand.pool(), env.failures,
                                          env.params);
  double analytic_outage = 0.0;
  for (const auto& d : analytic) analytic_outage += d.outage_penalty;

  const auto short_run = sim.run(cand, {.years = 100.0, .seed = 3});
  const auto long_run = sim.run(cand, {.years = 8000.0, .seed = 3});
  const double err_short =
      std::fabs(short_run.annual_outage_penalty() - analytic_outage);
  const double err_long =
      std::fabs(long_run.annual_outage_penalty() - analytic_outage);
  EXPECT_LT(err_long, err_short + analytic_outage * 0.02);
}

TEST(MonteCarlo, RejectsBadOptions) {
  Environment env = peer_env(1);
  Candidate cand = simple_design(env);
  MonteCarloSimulator sim(&env);
  EXPECT_THROW(sim.run(cand, {.years = 0.0, .seed = 1}), InvalidArgument);
}

}  // namespace
}  // namespace depstor
