#include <gtest/gtest.h>

#include "model/staleness.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {
namespace {

using testing::async_f_backup;
using testing::backup_only;
using testing::candidate_with;
using testing::sync_f_backup;
using testing::sync_f_only;
using testing::sync_r_backup;
using testing::tiny_env;

// --- survival matrix (§3.2.1, parameterized over scope × level) ---

struct SurvivalCase {
  CopyLevel level;
  FailureScope scope;
  bool survives;
};

class SurvivalMatrix : public ::testing::TestWithParam<SurvivalCase> {};

TEST_P(SurvivalMatrix, MatchesPaperSemantics) {
  const auto& c = GetParam();
  EXPECT_EQ(level_survives(c.level, c.scope), c.survives)
      << to_string(c.level) << " / " << to_string(c.scope);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SurvivalMatrix,
    ::testing::Values(
        // Data object failure: corruption propagates to mirrors; PiT copies
        // survive.
        SurvivalCase{CopyLevel::Mirror, FailureScope::DataObject, false},
        SurvivalCase{CopyLevel::Snapshot, FailureScope::DataObject, true},
        SurvivalCase{CopyLevel::TapeBackup, FailureScope::DataObject, true},
        SurvivalCase{CopyLevel::Vault, FailureScope::DataObject, true},
        // Array failure: snapshots live on the failed array.
        SurvivalCase{CopyLevel::Mirror, FailureScope::DiskArray, true},
        SurvivalCase{CopyLevel::Snapshot, FailureScope::DiskArray, false},
        SurvivalCase{CopyLevel::TapeBackup, FailureScope::DiskArray, true},
        SurvivalCase{CopyLevel::Vault, FailureScope::DiskArray, true},
        // Site disaster: only offsite copies survive.
        SurvivalCase{CopyLevel::Mirror, FailureScope::SiteDisaster, true},
        SurvivalCase{CopyLevel::Snapshot, FailureScope::SiteDisaster, false},
        SurvivalCase{CopyLevel::TapeBackup, FailureScope::SiteDisaster, false},
        SurvivalCase{CopyLevel::Vault, FailureScope::SiteDisaster, true}));

TEST(Survival, NoneNeverSurvives) {
  for (FailureScope s : {FailureScope::DataObject, FailureScope::DiskArray,
                         FailureScope::SiteDisaster}) {
    EXPECT_FALSE(level_survives(CopyLevel::None, s));
  }
}

// --- level maintenance ---

TEST(LevelMaintained, MirrorOnlyHasMirror) {
  const auto t = sync_f_only();
  EXPECT_TRUE(level_maintained(t, CopyLevel::Mirror));
  EXPECT_FALSE(level_maintained(t, CopyLevel::Snapshot));
  EXPECT_FALSE(level_maintained(t, CopyLevel::TapeBackup));
  EXPECT_FALSE(level_maintained(t, CopyLevel::Vault));
}

TEST(LevelMaintained, BackupChainHasThreeLevels) {
  const auto t = backup_only();
  EXPECT_FALSE(level_maintained(t, CopyLevel::Mirror));
  EXPECT_TRUE(level_maintained(t, CopyLevel::Snapshot));
  EXPECT_TRUE(level_maintained(t, CopyLevel::TapeBackup));
  EXPECT_TRUE(level_maintained(t, CopyLevel::Vault));
}

TEST(SurvivingLevels, MirrorOnlyUnderObjectFailureIsEmpty) {
  EXPECT_TRUE(
      surviving_levels(sync_f_only(), FailureScope::DataObject).empty());
}

TEST(SurvivingLevels, FullTechniqueUnderArrayFailure) {
  const auto levels =
      surviving_levels(sync_f_backup(), FailureScope::DiskArray);
  EXPECT_EQ(levels, (std::vector<CopyLevel>{CopyLevel::Mirror,
                                            CopyLevel::TapeBackup,
                                            CopyLevel::Vault}));
}

// --- staleness values ---

class StalenessFixture : public ::testing::Test {
 protected:
  StalenessFixture()
      : env_(tiny_env(workload::central_banking())),
        cand_(candidate_with(env_, sync_f_backup())) {}

  const ApplicationSpec& app() const { return env_.app(0); }
  const AppAssignment& asg() const { return cand_.assignment(0); }

  Environment env_;
  Candidate cand_;
};

TEST_F(StalenessFixture, SnapshotStalenessIsInterval) {
  EXPECT_DOUBLE_EQ(
      staleness_hours(CopyLevel::Snapshot, app(), asg(), cand_.pool()),
      asg().backup.snapshot_interval_hours);
}

TEST_F(StalenessFixture, MirrorStalenessSlightlyAboveAccumulationWindow) {
  const double s =
      staleness_hours(CopyLevel::Mirror, app(), asg(), cand_.pool());
  const double acc = asg().technique.mirror_accumulation_hours;
  EXPECT_GT(s, acc);         // accumulation + drain time
  EXPECT_LT(s, 2.0 * acc + 0.1);  // but the drain is small
}

TEST_F(StalenessFixture, TapeIncludesBackupWindowAndSnapshotAge) {
  const double s =
      staleness_hours(CopyLevel::TapeBackup, app(), asg(), cand_.pool());
  const double floor = asg().backup.backup_interval_hours +
                       asg().backup.snapshot_interval_hours;
  EXPECT_GT(s, floor);
  EXPECT_DOUBLE_EQ(s, floor + backup_window_hours(app(), asg(), cand_.pool()));
}

TEST_F(StalenessFixture, VaultIsTheStalest) {
  const double vault =
      staleness_hours(CopyLevel::Vault, app(), asg(), cand_.pool());
  EXPECT_DOUBLE_EQ(vault, asg().backup.vault_interval_hours +
                              asg().backup.snapshot_interval_hours +
                              asg().backup.vault_shipping_hours);
}

TEST_F(StalenessFixture, FreshnessOrderingHolds) {
  const auto& pool = cand_.pool();
  const double mirror =
      staleness_hours(CopyLevel::Mirror, app(), asg(), pool);
  const double snapshot =
      staleness_hours(CopyLevel::Snapshot, app(), asg(), pool);
  const double tape =
      staleness_hours(CopyLevel::TapeBackup, app(), asg(), pool);
  const double vault = staleness_hours(CopyLevel::Vault, app(), asg(), pool);
  EXPECT_LT(mirror, snapshot);
  EXPECT_LT(snapshot, tape);
  EXPECT_LT(tape, vault);
}

TEST_F(StalenessFixture, RequestingUnmaintainedLevelThrows) {
  Environment env2 = tiny_env(workload::central_banking());
  Candidate c2 = candidate_with(env2, sync_f_only());
  EXPECT_THROW(
      staleness_hours(CopyLevel::Snapshot, env2.app(0), c2.assignment(0),
                      c2.pool()),
      InvalidArgument);
}

TEST_F(StalenessFixture, AsyncMirrorIsStalerThanSync) {
  Environment env2 = tiny_env(workload::central_banking());
  Candidate c2 = candidate_with(env2, async_f_backup());
  const double async_s = staleness_hours(CopyLevel::Mirror, env2.app(0),
                                         c2.assignment(0), c2.pool());
  const double sync_s =
      staleness_hours(CopyLevel::Mirror, app(), asg(), cand_.pool());
  EXPECT_GT(async_s, sync_s);
}

// --- best recovery level ---

TEST_F(StalenessFixture, BestLevelPerScope) {
  double s = 0.0;
  EXPECT_EQ(best_recovery_level(app(), asg(), cand_.pool(),
                                FailureScope::DataObject, &s),
            CopyLevel::Snapshot);
  EXPECT_DOUBLE_EQ(s, asg().backup.snapshot_interval_hours);
  EXPECT_EQ(best_recovery_level(app(), asg(), cand_.pool(),
                                FailureScope::DiskArray),
            CopyLevel::Mirror);
  EXPECT_EQ(best_recovery_level(app(), asg(), cand_.pool(),
                                FailureScope::SiteDisaster),
            CopyLevel::Mirror);
}

TEST(BestLevel, MirrorOnlyObjectFailureIsNone) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_f_only());
  double s = 123.0;
  EXPECT_EQ(best_recovery_level(env.app(0), cand.assignment(0), cand.pool(),
                                FailureScope::DataObject, &s),
            CopyLevel::None);
  EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(BestLevel, BackupOnlySiteDisasterFallsToVault) {
  Environment env = tiny_env(workload::student_accounts());
  Candidate cand = candidate_with(env, backup_only());
  EXPECT_EQ(best_recovery_level(env.app(0), cand.assignment(0), cand.pool(),
                                FailureScope::SiteDisaster),
            CopyLevel::Vault);
}

// --- bandwidth sharing ---

TEST(BandwidthShare, SplitsEquallyAmongSamePurpose) {
  Environment env = testing::peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, testing::full_choice(sync_r_backup()));
  cand.place_app(1, testing::full_choice(sync_r_backup()));
  const auto& asg0 = cand.assignment(0);
  const auto& asg1 = cand.assignment(1);
  ASSERT_EQ(asg0.tape_library, asg1.tape_library);  // same site, same type
  const double share0 = bandwidth_share_mbps(cand.pool(), asg0.tape_library,
                                             0, Purpose::Backup);
  const double share1 = bandwidth_share_mbps(cand.pool(), asg1.tape_library,
                                             1, Purpose::Backup);
  EXPECT_DOUBLE_EQ(share0, share1);
  EXPECT_DOUBLE_EQ(
      share0,
      cand.pool().device(asg0.tape_library).bandwidth_mbps() / 2.0);
}

TEST(BandwidthShare, ZeroWhenAppAbsent) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_f_backup());
  EXPECT_DOUBLE_EQ(bandwidth_share_mbps(cand.pool(),
                                        cand.assignment(0).tape_library,
                                        /*app_id=*/99, Purpose::Backup),
                   0.0);
}

TEST(CopyLevelNames, ToString) {
  EXPECT_STREQ(to_string(CopyLevel::Mirror), "mirror");
  EXPECT_STREQ(to_string(CopyLevel::Vault), "vault");
  EXPECT_STREQ(to_string(CopyLevel::None), "none");
}

}  // namespace
}  // namespace depstor
