// Observability layer: counter registry semantics, span recording on/off,
// and the Chrome trace round-trip — the exported JSON is re-read with the
// util/json parser and checked structurally (span nesting per thread, stable
// thread ids, every SolveResult timer phase represented by a span).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "solver/design_solver.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace depstor {
namespace {

using testing::peer_env;

/// Every test starts and ends with tracing off and the global state empty —
/// both the ring registry and the counter registry are process-wide.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::clear_trace();
    obs::counters().reset();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::clear_trace();
    obs::counters().reset();
  }
};

DesignSolverOptions fixed_work_options() {
  DesignSolverOptions o;
  o.time_budget_ms = 1e9;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = 17;
  return o;
}

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterRegistryBasics) {
  auto& reg = obs::counters();
  EXPECT_EQ(reg.value("a"), 0);  // never registered reads as zero
  reg.add("a", 3);
  reg.add("a", 4);
  reg.add("b", 1);
  EXPECT_EQ(reg.value("a"), 7);
  EXPECT_EQ(reg.value("b"), 1);

  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", 2.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);

  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);  // name-sorted
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
}

TEST_F(ObsTest, CounterReferencesSurviveReset) {
  auto& reg = obs::counters();
  std::atomic<std::int64_t>& cell = reg.counter("sticky");
  cell.fetch_add(5);
  EXPECT_EQ(reg.value("sticky"), 5);
  reg.reset();
  EXPECT_EQ(reg.value("sticky"), 0);
  cell.fetch_add(2);  // the cached reference still points at the live cell
  EXPECT_EQ(reg.value("sticky"), 2);
}

TEST_F(ObsTest, CounterAddMacroAndRenderText) {
  for (int i = 0; i < 3; ++i) {
    DEPSTOR_COUNTER_ADD("macro.hits", 2);
  }
  EXPECT_EQ(obs::counters().value("macro.hits"), 6);
  obs::counters().set_gauge("macro.gauge", 1.25);
  const std::string text = obs::counters().render_text();
  EXPECT_NE(text.find("macro.hits"), std::string::npos) << text;
  EXPECT_NE(text.find("6"), std::string::npos) << text;
  EXPECT_NE(text.find("macro.gauge"), std::string::npos) << text;
}

TEST_F(ObsTest, CounterJsonParsesBack) {
  obs::counters().add("x.count", 9);
  obs::counters().set_gauge("x.ms", 3.5);
  JsonWriter json;
  obs::counters().to_json(json);
  const JsonValue v = parse_json(json.str());
  EXPECT_DOUBLE_EQ(v.at("counters").at("x.count").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("x.ms").as_number(), 3.5);
}

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    DEPSTOR_TRACE_SPAN("never");
    DEPSTOR_TRACE_SPAN("never_either", 42);
  }
  const obs::TraceStats stats = obs::trace_stats();
  EXPECT_EQ(stats.recorded, 0);
  EXPECT_EQ(stats.dropped, 0);
}

TEST_F(ObsTest, EnabledTracingRecordsSpansWithArgs) {
  obs::set_trace_enabled(true);
  {
    DEPSTOR_TRACE_SPAN("outer");
    {
      DEPSTOR_TRACE_SPAN("inner", 7);
    }
    DEPSTOR_TRACE_SPAN_NAMED(late, "late_arg");
    late.set_arg(11);
  }
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_stats().recorded, 3);

  const JsonValue doc = parse_json(obs::chrome_trace_json());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 3u);
  // Destructor order: inner completes first, then late_arg, then outer.
  EXPECT_EQ(events[0].at("name").as_string(), "inner");
  EXPECT_DOUBLE_EQ(events[0].at("args").at("v").as_number(), 7.0);
  EXPECT_EQ(events[1].at("name").as_string(), "late_arg");
  EXPECT_DOUBLE_EQ(events[1].at("args").at("v").as_number(), 11.0);
  EXPECT_EQ(events[2].at("name").as_string(), "outer");
  EXPECT_FALSE(events[2].has("args"));
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "depstor");
    EXPECT_GE(e.at("dur").as_number(), 0.0);
  }
}

TEST_F(ObsTest, SpansReenableAfterClear) {
  obs::set_trace_enabled(true);
  { DEPSTOR_TRACE_SPAN("first"); }
  obs::clear_trace();
  EXPECT_EQ(obs::trace_stats().recorded, 0);
  { DEPSTOR_TRACE_SPAN("second"); }
  obs::set_trace_enabled(false);
  const JsonValue doc = parse_json(obs::chrome_trace_json());
  ASSERT_EQ(doc.at("traceEvents").size(), 1u);
  EXPECT_EQ(doc.at("traceEvents").at(0).at("name").as_string(), "second");
}

// ---------------------------------------------------------------------------
// Full-solve round trip
// ---------------------------------------------------------------------------

struct SpanRec {
  std::string name;
  double start = 0.0;
  double end = 0.0;
};

/// Per-tid spans from a parsed trace document, sorted by start time.
std::vector<std::pair<int, std::vector<SpanRec>>> spans_by_tid(
    const JsonValue& doc) {
  std::vector<std::pair<int, std::vector<SpanRec>>> out;
  for (const auto& e : doc.at("traceEvents").items()) {
    const int tid = static_cast<int>(e.at("tid").as_number());
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const auto& p) { return p.first == tid; });
    if (it == out.end()) {
      out.push_back({tid, {}});
      it = out.end() - 1;
    }
    const double ts = e.at("ts").as_number();
    it->second.push_back(
        {e.at("name").as_string(), ts, ts + e.at("dur").as_number()});
  }
  for (auto& [tid, spans] : out) {
    std::sort(spans.begin(), spans.end(), [](const SpanRec& a,
                                             const SpanRec& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.end > b.end;  // enclosing span first
    });
  }
  return out;
}

/// Spans on one thread must nest: sorted by start (ties: longest first),
/// each span either starts after the open one ends or ends within it.
void expect_proper_nesting(const std::vector<SpanRec>& spans) {
  std::vector<const SpanRec*> stack;
  for (const SpanRec& s : spans) {
    while (!stack.empty() && stack.back()->end <= s.start) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(s.end, stack.back()->end)
          << "span '" << s.name << "' [" << s.start << ", " << s.end
          << ") partially overlaps '" << stack.back()->name << "' ["
          << stack.back()->start << ", " << stack.back()->end << ")";
    }
    stack.push_back(&s);
  }
}

TEST_F(ObsTest, TracedSolveRoundTripsThroughChromeFormat) {
  Environment env = peer_env(4);
  obs::set_trace_enabled(true);
  const SolveResult result = testing::solve_design(env, fixed_work_options());
  obs::set_trace_enabled(false);
  ASSERT_TRUE(result.feasible);

  const std::string text = obs::chrome_trace_json();
  const JsonValue doc = parse_json(text);  // must be valid JSON end to end

  // Envelope sanity.
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_GT(events.size(), 0u);
  EXPECT_DOUBLE_EQ(doc.at("traceStats").at("recorded").as_number(),
                   static_cast<double>(events.size()));
  EXPECT_DOUBLE_EQ(doc.at("traceStats").at("dropped").as_number(), 0.0);

  // Every phase named in the SolveResult timers must appear as a span, plus
  // the solver's own stage spans.
  std::set<std::string> names;
  for (const auto& e : events) names.insert(e.at("name").as_string());
  for (const char* required :
       {"solve", "greedy", "refit", "reconfigure", "polish", "eval", "sweep",
        "increment", "scenario_sim"}) {
    EXPECT_TRUE(names.count(required) == 1)
        << "missing span '" << required << "'";
  }
  EXPECT_GT(result.eval_ms, 0.0);  // the timer the "eval" spans shadow

  // The single-threaded solve lands on one stable tid, and spans nest.
  const auto by_tid = spans_by_tid(doc);
  ASSERT_EQ(by_tid.size(), 1u);
  EXPECT_GE(by_tid[0].first, 0);
  expect_proper_nesting(by_tid[0].second);

  // The outermost span is the solve itself and spans every other event.
  const auto& spans = by_tid[0].second;
  const auto solve_span =
      std::find_if(spans.begin(), spans.end(),
                   [](const SpanRec& s) { return s.name == "solve"; });
  ASSERT_NE(solve_span, spans.end());
  for (const SpanRec& s : spans) {
    EXPECT_GE(s.start, solve_span->start);
    EXPECT_LE(s.end, solve_span->end);
  }

  // The published counters ride along in the same document and agree with
  // the SolveResult the solver returned.
  const JsonValue& counters = doc.at("counters").at("counters");
  EXPECT_DOUBLE_EQ(counters.at("solver.solves").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(counters.at("solver.evaluations").as_number(),
                   static_cast<double>(result.evaluations));
  EXPECT_DOUBLE_EQ(counters.at("solver.nodes_evaluated").as_number(),
                   static_cast<double>(result.nodes_evaluated));
  EXPECT_DOUBLE_EQ(
      counters.at("solver.scenarios_simulated").as_number(),
      static_cast<double>(result.scenarios_simulated));
}

TEST_F(ObsTest, UntracedSolveStillPublishesCounters) {
  Environment env = peer_env(3);
  const SolveResult result = testing::solve_design(env, fixed_work_options());
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(obs::trace_stats().recorded, 0);  // no spans without the toggle
  EXPECT_EQ(obs::counters().value("solver.solves"), 1);
  EXPECT_EQ(obs::counters().value("solver.evaluations"),
            result.evaluations);
  EXPECT_GT(obs::counters().gauge("solver.last_eval_ms"), 0.0);
}

}  // namespace
}  // namespace depstor
