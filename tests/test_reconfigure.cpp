#include <gtest/gtest.h>

#include "solver/reconfigure.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;

TEST(Reconfigure, AssignsUnassignedApp) {
  Environment env = peer_env(2);
  Rng rng(1);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  EXPECT_TRUE(rec.reconfigure_app(cand, 0));
  EXPECT_TRUE(cand.is_assigned(0));
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Reconfigure, RespectsClassEligibility) {
  Environment env = peer_env(8);
  Rng rng(2);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rec.reconfigure_app(cand, i));
  }
  for (const auto& asg : cand.assignments()) {
    const AppCategory app_cls = env.app_category(asg.app_id);
    EXPECT_GE(static_cast<int>(asg.technique.category),
              static_cast<int>(app_cls))
        << env.app(asg.app_id).name << " got " << asg.technique.name;
  }
}

TEST(Reconfigure, ReassignsAssignedApp) {
  Environment env = peer_env(2);
  Rng rng(3);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  EXPECT_TRUE(rec.reconfigure_app(cand, 0));
  EXPECT_TRUE(cand.is_assigned(0));
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Reconfigure, GoldAppsNeverGetBronzeTechniques) {
  Environment env = peer_env(4);
  Rng rng(4);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      if (cand.is_assigned(i)) cand.remove_app(i);
      ASSERT_TRUE(rec.reconfigure_app(cand, i));
    }
    // App 0 is B1 (gold): must always have mirror + failover.
    EXPECT_EQ(cand.assignment(0).technique.category, AppCategory::Gold);
    EXPECT_TRUE(cand.assignment(0).technique.has_mirror());
  }
}

TEST(Reconfigure, UsageHistoryAccumulates) {
  Environment env = peer_env(1);
  Rng rng(5);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  ASSERT_TRUE(rec.reconfigure_app(cand, 0));
  const auto& choice = cand.choice(0);
  // The chosen primary array must appear in the usage history under either
  // its device key or its type@site key.
  const std::string dev_key =
      "dev#" + std::to_string(cand.assignment(0).primary_array);
  const std::string new_key =
      choice.primary_array_type + "@" + std::to_string(choice.primary_site);
  EXPECT_GT(rec.usage_count(0, dev_key) + rec.usage_count(0, new_key), 0);
}

TEST(Reconfigure, PickAppPrefersPenaltyContributors) {
  Environment env = peer_env(8);
  Rng rng(6);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(rec.reconfigure_app(cand, i));
  const CostBreakdown cost = cand.evaluate();

  // Find the app with the largest penalty; over many draws it must be picked
  // far more often than the cheapest app.
  int max_app = 0;
  double max_pen = -1.0;
  for (const auto& d : cost.per_app) {
    if (d.outage_penalty + d.loss_penalty > max_pen) {
      max_pen = d.outage_penalty + d.loss_penalty;
      max_app = d.app_id;
    }
  }
  int hits = 0;
  for (int i = 0; i < 500; ++i) {
    if (rec.pick_app_to_reconfigure(cand, cost) == max_app) ++hits;
  }
  EXPECT_GT(hits, 100);  // ≥20% for the dominant contributor
}

TEST(Reconfigure, PickAppOnlyReturnsAssigned) {
  Environment env = peer_env(4);
  Rng rng(7);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  ASSERT_TRUE(rec.reconfigure_app(cand, 2));
  const CostBreakdown cost = cand.evaluate();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rec.pick_app_to_reconfigure(cand, cost), 2);
  }
}

TEST(Reconfigure, PickAppThrowsWhenNothingAssigned) {
  Environment env = peer_env(2);
  Rng rng(8);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  EXPECT_THROW(rec.pick_app_to_reconfigure(cand, cand.evaluate()),
               InvalidArgument);
}

TEST(Reconfigure, RestoresOldDesignWhenNoLayoutExists) {
  // One site, no neighbors: mirror techniques cannot place, but the app is
  // silver (eligible includes mirrors) — bronze isn't eligible... use a
  // bronze app so backup-only works, then shrink the environment so nothing
  // fits and verify restoration.
  Environment env = scenarios::peer_sites(1);
  env.apps = {workload::central_banking()};
  env.apps[0].id = 0;
  // Gold apps only accept mirror techniques; make mirroring impossible by
  // disconnecting the sites.
  env.topology.pair_limits.clear();
  env.validate();
  Rng rng(9);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  EXPECT_FALSE(rec.reconfigure_app(cand, 0));
  EXPECT_FALSE(cand.is_assigned(0));
}

TEST(Reconfigure, FailedReconfigureKeepsPreviousAssignment) {
  // Assign with a connected topology; the operator must keep the candidate
  // valid even when a reconfiguration attempt fails internally.
  Environment env = peer_env(1);
  Rng rng(10);
  Reconfigurator rec(&env, &rng);
  Candidate cand(&env);
  ASSERT_TRUE(rec.reconfigure_app(cand, 0));
  const std::string technique_before = cand.assignment(0).technique.name;
  for (int i = 0; i < 5; ++i) {
    rec.reconfigure_app(cand, 0);
    EXPECT_TRUE(cand.is_assigned(0));
    EXPECT_NO_THROW(cand.check_feasible());
  }
  (void)technique_before;
}

TEST(Reconfigure, DeterministicUnderSeed) {
  Environment env = peer_env(4);
  Rng rng_a(42);
  Rng rng_b(42);
  Reconfigurator rec_a(&env, &rng_a);
  Reconfigurator rec_b(&env, &rng_b);
  Candidate cand_a(&env);
  Candidate cand_b(&env);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rec_a.reconfigure_app(cand_a, i));
    ASSERT_TRUE(rec_b.reconfigure_app(cand_b, i));
    EXPECT_EQ(cand_a.assignment(i).technique.name,
              cand_b.assignment(i).technique.name);
    EXPECT_EQ(cand_a.assignment(i).primary_site,
              cand_b.assignment(i).primary_site);
  }
}

TEST(Reconfigure, OptionsValidation) {
  Environment env = peer_env(1);
  Rng rng(1);
  ReconfigureOptions bad;
  bad.alpha_util = 1.5;
  EXPECT_THROW(Reconfigurator(&env, &rng, bad), InvalidArgument);
  bad = ReconfigureOptions{};
  bad.placement_retries = 0;
  EXPECT_THROW(Reconfigurator(&env, &rng, bad), InvalidArgument);
}

}  // namespace
}  // namespace depstor
