#include "engine/eval_cache.hpp"

#include <gtest/gtest.h>

#include <set>

#include "solver/config_solver.hpp"
#include "solver/reconfigure.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::candidate_with;
using testing::peer_env;

CostBreakdown cost_with_outlay(double outlay) {
  CostBreakdown cost;
  cost.outlay = outlay;
  return cost;
}

/// Fully place every application of `env` (the Table 4 setup path the
/// benches use too).
Candidate placed_candidate(const Environment& env, std::uint64_t seed = 99) {
  Candidate cand(&env);
  Rng rng(seed);
  Reconfigurator rec(&env, &rng);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    if (!rec.reconfigure_app(cand, i)) {
      throw InfeasibleError("test setup could not place app");
    }
  }
  return cand;
}

TEST(Fnv1a, MixOrderAndValueSensitive) {
  EXPECT_NE(Fnv1a().mix(std::uint64_t{1}).digest(),
            Fnv1a().mix(std::uint64_t{2}).digest());
  EXPECT_NE(Fnv1a().mix(std::uint64_t{1}).mix(std::uint64_t{2}).digest(),
            Fnv1a().mix(std::uint64_t{2}).mix(std::uint64_t{1}).digest());
  EXPECT_NE(Fnv1a().mix(std::string("abc")).digest(),
            Fnv1a().mix(std::string("abd")).digest());
  EXPECT_NE(Fnv1a().mix(0.25).digest(), Fnv1a().mix(0.5).digest());
  EXPECT_EQ(Fnv1a().mix(std::string("abc")).digest(),
            Fnv1a().mix(std::string("abc")).digest());
}

TEST(Fingerprint, DistinctDesignsGetDistinctKeys) {
  // The §4.3 case-study environment; every Table 2 technique family placed
  // for app 0 must fingerprint differently.
  const Environment env = peer_env(8);
  const std::uint64_t salt = fingerprint_environment(env);
  const std::vector<TechniqueSpec> techniques = {
      testing::sync_f_backup(), testing::sync_r_backup(),
      testing::async_f_backup(), testing::async_r_backup(),
      testing::backup_only()};
  std::set<std::uint64_t> keys;
  for (const auto& technique : techniques) {
    const Candidate cand = candidate_with(env, technique);
    keys.insert(fingerprint_candidate(cand, salt));
  }
  EXPECT_EQ(keys.size(), techniques.size());
}

TEST(Fingerprint, StableForIdenticalDesigns) {
  const Environment env = peer_env(8);
  const std::uint64_t salt = fingerprint_environment(env);
  const Candidate a = candidate_with(env, testing::sync_f_backup());
  const Candidate b = candidate_with(env, testing::sync_f_backup());
  EXPECT_EQ(fingerprint_candidate(a, salt), fingerprint_candidate(b, salt));
}

TEST(Fingerprint, EnvironmentSaltSeparatesEnvironments) {
  Environment a = peer_env(4);
  Environment b = peer_env(4);
  b.failures.data_object_rate *= 2.0;  // same structure, different rates
  EXPECT_NE(fingerprint_environment(a), fingerprint_environment(b));

  const Candidate cand = candidate_with(a, testing::sync_f_backup());
  EXPECT_NE(fingerprint_candidate(cand, fingerprint_environment(a)),
            fingerprint_candidate(cand, fingerprint_environment(b)));
}

// Regression: fields once missing from the environment salt. Two
// environments differing only in these must never share cache entries —
// each changes what the solvers compute without changing any numeric
// workload field the salt already covered.
TEST(Fingerprint, EnvironmentCoversAppIdentity) {
  Environment a = peer_env(4);
  Environment b = a;
  b.apps[2].name = "renamed";
  EXPECT_NE(fingerprint_environment(a), fingerprint_environment(b));

  Environment c = a;
  c.apps[1].type_code = "other-class";
  EXPECT_NE(fingerprint_environment(a), fingerprint_environment(c));
}

TEST(Fingerprint, EnvironmentCoversThresholdsAndPolicies) {
  const Environment base = peer_env(4);
  const std::uint64_t ref = fingerprint_environment(base);

  Environment thresholds = base;
  thresholds.thresholds.gold_min *= 2.0;
  EXPECT_NE(fingerprint_environment(thresholds), ref);

  Environment intervals = base;
  intervals.policies.snapshot_intervals_hours.push_back(48.0);
  EXPECT_NE(fingerprint_environment(intervals), ref);

  Environment increments = base;
  increments.policies.max_resource_increments += 1;
  EXPECT_NE(fingerprint_environment(increments), ref);

  Environment spares = base;
  spares.policies.allow_spare_arrays = !spares.policies.allow_spare_arrays;
  EXPECT_NE(fingerprint_environment(spares), ref);
}

TEST(Fingerprint, SensitiveToProvisionedExtras) {
  const Environment env = peer_env(4);
  const std::uint64_t salt = fingerprint_environment(env);
  Candidate a = candidate_with(env, testing::sync_f_backup());
  Candidate b = candidate_with(env, testing::sync_f_backup());
  const auto& asg = b.assignments()[0];
  ASSERT_GE(asg.primary_array, 0);
  ASSERT_EQ(b.set_extra_capacity_units(asg.primary_array, 1), 1);
  EXPECT_NE(fingerprint_candidate(a, salt), fingerprint_candidate(b, salt));
}

TEST(EvalCache, HitAndMissCounters) {
  EvalCache cache({.shards = 2, .capacity_per_shard = 8});
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, cost_with_outlay(10.0));
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->outlay, 10.0);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCache, RoundsShardsUpToAPowerOfTwo) {
  EvalCache cache({.shards = 3, .capacity_per_shard = 4});
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 16u);
}

TEST(EvalCache, LruEvictionRespectsTheBound) {
  EvalCache cache({.shards = 1, .capacity_per_shard = 4});
  for (std::uint64_t key = 0; key < 10; ++key) {
    cache.insert(key, cost_with_outlay(static_cast<double>(key)));
  }
  EXPECT_EQ(cache.size(), 4u);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 10);
  EXPECT_EQ(stats.evictions, 6);
  // Oldest entries are gone, newest survive with their values.
  EXPECT_FALSE(cache.lookup(0).has_value());
  EXPECT_FALSE(cache.lookup(5).has_value());
  ASSERT_TRUE(cache.lookup(9).has_value());
  EXPECT_DOUBLE_EQ(cache.lookup(9)->outlay, 9.0);
}

TEST(EvalCache, LookupRefreshesRecency) {
  EvalCache cache({.shards = 1, .capacity_per_shard = 2});
  cache.insert(1, cost_with_outlay(1.0));
  cache.insert(2, cost_with_outlay(2.0));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, cost_with_outlay(3.0));    // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(EvalCache, ReinsertRefreshesValueWithoutGrowth) {
  EvalCache cache({.shards = 1, .capacity_per_shard = 4});
  cache.insert(7, cost_with_outlay(1.0));
  cache.insert(7, cost_with_outlay(2.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.lookup(7).has_value());
  EXPECT_DOUBLE_EQ(cache.lookup(7)->outlay, 2.0);
}

// The memoization contract: a ConfigSolver with a cache attached produces
// exactly the cost a cache-less solve does, records hits and misses, and a
// standard solve sees a nonzero hit rate (the sweep re-prices its baseline,
// the increment loop re-applies its best probe).
TEST(EvalCache, ConfigSolverMemoizationIsTransparent) {
  const Environment env = peer_env(4);

  Candidate plain_cand = placed_candidate(env);
  ConfigSolver plain(&env);
  const CostBreakdown plain_cost = plain.solve(plain_cand);
  EXPECT_EQ(plain.stats().cache_hits, 0);
  EXPECT_EQ(plain.stats().cache_misses, 0);

  EvalCache cache;
  Candidate cached_cand = placed_candidate(env);
  ConfigSolver cached(&env, &cache);
  const CostBreakdown cached_cost = cached.solve(cached_cand);

  EXPECT_DOUBLE_EQ(cached_cost.total(), plain_cost.total());
  EXPECT_DOUBLE_EQ(cached_cost.outlay, plain_cost.outlay);
  EXPECT_DOUBLE_EQ(cached_cost.loss_penalty, plain_cost.loss_penalty);
  EXPECT_DOUBLE_EQ(cached_cost.outage_penalty, plain_cost.outage_penalty);
  EXPECT_EQ(cached.stats().evaluations, plain.stats().evaluations);

  EXPECT_GT(cached.stats().cache_hits, 0);
  EXPECT_GT(cached.stats().cache_misses, 0);
  EXPECT_EQ(cached.stats().cache_hits + cached.stats().cache_misses,
            cached.stats().evaluations);
  EXPECT_GT(cache.stats().hit_rate(), 0.0);
}

// Warm cache: re-solving the same candidate serves the bulk of evaluations
// from the cache and still returns identical costs.
TEST(EvalCache, WarmCacheServesRepeatSolves) {
  const Environment env = peer_env(4);
  EvalCache cache;

  Candidate first = placed_candidate(env);
  const CostBreakdown cold = ConfigSolver(&env, &cache).solve(first);

  ConfigSolver warm_solver(&env, &cache);
  Candidate second = placed_candidate(env);
  const CostBreakdown warm = warm_solver.solve(second);

  EXPECT_DOUBLE_EQ(warm.total(), cold.total());
  EXPECT_GT(warm_solver.stats().cache_hits,
            warm_solver.stats().cache_misses);
}

}  // namespace
}  // namespace depstor
