#include <gtest/gtest.h>

#include "resources/catalog.hpp"
#include "resources/pool.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

SiteSpec site_proto() {
  SiteSpec s;
  s.name = "s";
  s.max_disk_arrays = 2;
  s.max_tape_libraries = 1;
  s.max_compute_slots = 4;
  return s;
}

ResourcePool make_pool(int sites = 2, int max_links = 8) {
  return ResourcePool(Topology::fully_connected(sites, site_proto(),
                                                max_links));
}

TEST(Pool, AddDeviceAssignsDenseIds) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  const int b = pool.add_device(resources::eva8000(), 1);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(pool.device_count(), 2);
  EXPECT_EQ(pool.device(a).type.name, "XP1200");
  EXPECT_EQ(pool.device(b).site_id, 1);
}

TEST(Pool, LinksNeedTwoConnectedEndpoints) {
  auto pool = make_pool();
  EXPECT_NO_THROW(pool.add_device(resources::network_high(), 0, 1));
  EXPECT_THROW(pool.add_device(resources::network_high(), 0), InvalidArgument);
  EXPECT_THROW(pool.add_device(resources::network_high(), 0, 0),
               InvalidArgument);
  EXPECT_THROW(pool.add_device(resources::xp1200(), 0, 1), InvalidArgument);
}

TEST(Pool, DisconnectedPairRejected) {
  Topology t;
  SiteSpec s = site_proto();
  s.id = 0;
  t.sites.push_back(s);
  s.id = 1;
  s.name = "s2";
  t.sites.push_back(s);
  // no pair_limits: sites not connected
  ResourcePool pool(t);
  EXPECT_THROW(pool.add_device(resources::network_high(), 0, 1),
               InfeasibleError);
}

TEST(Pool, AllocateGrowsUnitsToDemand) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  pool.allocate(a, {0, Purpose::Primary, 1000.0, 50.0});
  // 1000 GB → 7 units; 50 MB/s → 2 units; max = 7.
  EXPECT_EQ(pool.device(a).capacity_units, 7);
  EXPECT_DOUBLE_EQ(pool.used_capacity_gb(a), 1000.0);
  EXPECT_DOUBLE_EQ(pool.used_bandwidth_mbps(a), 50.0);
}

TEST(Pool, AllocateBandwidthBoundGrowsForBandwidth) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  pool.allocate(a, {0, Purpose::Primary, 100.0, 300.0});
  // 100 GB → 1 unit but 300 MB/s → 12 units.
  EXPECT_EQ(pool.device(a).capacity_units, 12);
}

TEST(Pool, AllocateBeyondDeviceThrowsAndRollsBack) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::msa1500(), 0);  // 128×143 GB max
  pool.allocate(a, {0, Purpose::Primary, 1000.0, 8.0});
  const int units_before = pool.device(a).capacity_units;
  EXPECT_THROW(pool.allocate(a, {1, Purpose::Primary, 128 * 143.0, 0.0}),
               InfeasibleError);
  // Strong guarantee: the failed allocation left no trace.
  EXPECT_EQ(pool.device(a).capacity_units, units_before);
  EXPECT_EQ(pool.allocations(a).size(), 1u);
}

TEST(Pool, AllocateBeyondAggregateBandwidthThrows) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::msa1500(), 0);  // 128 MB/s cap
  EXPECT_THROW(pool.allocate(a, {0, Purpose::Primary, 10.0, 200.0}),
               InfeasibleError);
}

TEST(Pool, ReleaseAppRemovesAllAllocationsEverywhere) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  const int b = pool.add_device(resources::eva8000(), 1);
  pool.allocate(a, {0, Purpose::Primary, 500.0, 10.0});
  pool.allocate(b, {0, Purpose::Mirror, 500.0, 5.0});
  pool.allocate(a, {1, Purpose::Primary, 300.0, 10.0});
  pool.release_app(0);
  EXPECT_EQ(pool.allocations(a).size(), 1u);
  EXPECT_TRUE(pool.allocations(b).empty());
  EXPECT_FALSE(pool.in_use(b));
  EXPECT_TRUE(pool.in_use(a));
  EXPECT_DOUBLE_EQ(pool.used_capacity_gb(a), 300.0);
}

TEST(Pool, IdleDeviceKeepsIdAndCostsNothingLater) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  pool.allocate(a, {0, Purpose::Primary, 100.0, 5.0});
  pool.release_app(0);
  EXPECT_EQ(pool.device(a).capacity_units, 0);
  EXPECT_FALSE(pool.in_use(a));
  EXPECT_EQ(pool.device(a).id, a);
}

TEST(Pool, UtilizationIsMaxOfDimensions) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::msa1500(), 0);
  // Capacity: 64 of 128 units = 50%. Bandwidth: 6.4 of 128 MB/s = 5%.
  pool.allocate(a, {0, Purpose::Primary, 64 * 143.0, 6.4});
  EXPECT_NEAR(pool.utilization(a), 0.5, 1e-9);
}

TEST(Pool, UtilizationOfIdleIsZero) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  EXPECT_DOUBLE_EQ(pool.utilization(a), 0.0);
}

TEST(Pool, BandwidthHeadroom) {
  auto pool = make_pool();
  const int a = pool.add_device(resources::xp1200(), 0);
  pool.allocate(a, {0, Purpose::Primary, 143.0 * 4, 60.0});
  // 4 units → 100 MB/s provisioned; 60 used → 40 headroom.
  EXPECT_DOUBLE_EQ(pool.bandwidth_headroom_mbps(a), 40.0);
}

TEST(Pool, ExtraBandwidthUnitsClampToMax) {
  auto pool = make_pool();
  const int link = pool.add_device(resources::network_med(), 0, 1);
  pool.allocate(link, {0, Purpose::MirrorTraffic, 0.0, 10.0});  // 1 link min
  const int applied = pool.set_extra_bandwidth_units(link, 100);
  EXPECT_EQ(applied, 15);  // 16 max - 1 base
  EXPECT_EQ(pool.device(link).bandwidth_units, 16);
}

TEST(Pool, ExtraUnitsSurviveUnrelatedRelease) {
  auto pool = make_pool();
  const int link = pool.add_device(resources::network_med(), 0, 1);
  pool.allocate(link, {0, Purpose::MirrorTraffic, 0.0, 10.0});
  pool.allocate(link, {1, Purpose::MirrorTraffic, 0.0, 10.0});
  pool.set_extra_bandwidth_units(link, 3);
  pool.release_app(1);
  EXPECT_EQ(pool.device(link).extra_bandwidth_units, 3);
  EXPECT_EQ(pool.device(link).bandwidth_units, 1 + 3);
}

TEST(Pool, ExtrasResetWhenDeviceGoesIdle) {
  auto pool = make_pool();
  const int link = pool.add_device(resources::network_med(), 0, 1);
  pool.allocate(link, {0, Purpose::MirrorTraffic, 0.0, 10.0});
  pool.set_extra_bandwidth_units(link, 3);
  pool.release_app(0);
  EXPECT_EQ(pool.device(link).extra_bandwidth_units, 0);
  EXPECT_EQ(pool.device(link).bandwidth_units, 0);
}

TEST(Pool, DevicesAtFiltersBySiteAndKind) {
  auto pool = make_pool();
  pool.add_device(resources::xp1200(), 0);
  pool.add_device(resources::eva8000(), 0);
  pool.add_device(resources::xp1200(), 1);
  pool.add_device(resources::tape_library_high(), 0);
  EXPECT_EQ(pool.devices_at(0, DeviceKind::DiskArray).size(), 2u);
  EXPECT_EQ(pool.devices_at(1, DeviceKind::DiskArray).size(), 1u);
  EXPECT_EQ(pool.devices_at(0, DeviceKind::TapeLibrary).size(), 1u);
}

TEST(Pool, FindLinkByTypeAndPair) {
  auto pool = make_pool(3);
  const int hi = pool.add_device(resources::network_high(), 0, 1);
  EXPECT_EQ(pool.find_link(0, 1, "Net-High"), hi);
  EXPECT_EQ(pool.find_link(1, 0, "Net-High"), hi);
  EXPECT_EQ(pool.find_link(0, 1, "Net-Med"), -1);
  EXPECT_EQ(pool.find_link(0, 2, "Net-High"), -1);
}

TEST(Pool, SitesInUseTracksLinkEndpoints) {
  auto pool = make_pool(3);
  const int link = pool.add_device(resources::network_high(), 0, 2);
  EXPECT_TRUE(pool.sites_in_use().empty());
  pool.allocate(link, {0, Purpose::MirrorTraffic, 0.0, 5.0});
  EXPECT_EQ(pool.sites_in_use(), (std::vector<int>{0, 2}));
}

TEST(Pool, CheckFeasibleArrayLimit) {
  auto pool = make_pool();  // max 2 arrays per site
  for (const auto& type :
       {resources::xp1200(), resources::eva8000(), resources::msa1500()}) {
    const int id = pool.add_device(type, 0);
    pool.allocate(id, {id, Purpose::Primary, 100.0, 1.0});
  }
  EXPECT_THROW(pool.check_feasible(), InfeasibleError);
}

TEST(Pool, CheckFeasibleIgnoresIdleDevices) {
  auto pool = make_pool();
  for (const auto& type :
       {resources::xp1200(), resources::eva8000(), resources::msa1500()}) {
    pool.add_device(type, 0);  // three arrays, all idle
  }
  EXPECT_NO_THROW(pool.check_feasible());
}

TEST(Pool, CheckFeasibleComputeSlots) {
  auto pool = make_pool();  // max 4 compute slots
  const int c = pool.add_device(resources::compute_high(), 0);
  for (int app = 0; app < 4; ++app) {
    pool.allocate(c, {app, Purpose::ComputePrimary, 1.0, 0.0});
  }
  EXPECT_NO_THROW(pool.check_feasible());
  pool.allocate(c, {4, Purpose::ComputePrimary, 1.0, 0.0});
  EXPECT_THROW(pool.check_feasible(), InfeasibleError);
}

TEST(Pool, CheckFeasibleLinkPairLimitAcrossTypes) {
  auto pool = make_pool(2, /*max_links=*/4);
  const int hi = pool.add_device(resources::network_high(), 0, 1);
  const int med = pool.add_device(resources::network_med(), 0, 1);
  pool.allocate(hi, {0, Purpose::MirrorTraffic, 0.0, 60.0});   // 3 links
  pool.allocate(med, {1, Purpose::MirrorTraffic, 0.0, 10.0});  // 1 link
  EXPECT_NO_THROW(pool.check_feasible());
  pool.allocate(med, {2, Purpose::MirrorTraffic, 0.0, 10.0});  // 2 links → 5
  EXPECT_THROW(pool.check_feasible(), InfeasibleError);
}

TEST(Pool, CheckFeasibleTapeLimit) {
  auto pool = make_pool();  // max 1 tape library per site
  const int t1 = pool.add_device(resources::tape_library_high(), 0);
  const int t2 = pool.add_device(resources::tape_library_med(), 0);
  pool.allocate(t1, {0, Purpose::Backup, 60.0, 120.0});
  EXPECT_NO_THROW(pool.check_feasible());
  pool.allocate(t2, {1, Purpose::Backup, 60.0, 120.0});
  EXPECT_THROW(pool.check_feasible(), InfeasibleError);
}

TEST(Pool, PurposeToString) {
  EXPECT_STREQ(to_string(Purpose::Primary), "primary");
  EXPECT_STREQ(to_string(Purpose::Backup), "backup");
  EXPECT_STREQ(to_string(Purpose::ComputeFailover), "compute-failover");
}

}  // namespace
}  // namespace depstor
