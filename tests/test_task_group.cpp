// TaskGroup semantics (engine/worker_pool.hpp).
//
// Under test: the chunk-claimed run_indexed fan (one atomic fetch_add per
// chunk, O(workers) runner closures), the legacy run() path, help-while-wait
// draining that keeps nested fans deadlock-free on a 1-worker pool, and the
// deterministic (lowest-index) exception propagation out of wait().
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/worker_pool.hpp"

namespace depstor {
namespace {

// ------------------------------------------------------------ run() basics

TEST(TaskGroup, NullPoolRunsInline) {
  std::atomic<int> ran{0};
  TaskGroup group(nullptr);
  for (int i = 0; i < 8; ++i) {
    group.run([&ran] { ++ran; });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(group.spawned(), 0);
  EXPECT_EQ(group.stolen(), 8);  // inline execution counts as stolen
}

TEST(TaskGroup, PoolRunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> ran(64);
  TaskGroup group(&pool);
  for (auto& slot : ran) {
    group.run([&slot] { ++slot; });
  }
  group.wait();
  for (const auto& slot : ran) EXPECT_EQ(slot.load(), 1);
  EXPECT_EQ(group.spawned(), 64);
}

TEST(TaskGroup, WaiterStealsWhenPoolIsBusy) {
  // One worker, blocked on a gate: wait() must drain the remaining tasks
  // itself instead of deadlocking behind the busy worker.
  WorkerPool pool(1);
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  const bool accepted = pool.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  ASSERT_TRUE(accepted);
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&ran, &gate] {
      ++ran;
      if (ran.load() == 16) gate.store(true);  // last task frees the worker
    });
  }
  group.wait();
  gate.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
  // The only worker stays blocked until the 16th task flips the gate, so
  // every task was executed by the waiting thread.
  EXPECT_EQ(group.stolen(), 16);
}

TEST(TaskGroup, NestedGroupsOnOneWorkerPoolComplete) {
  WorkerPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&pool, &inner_ran] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.run([&inner_ran] { ++inner_ran; });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_ran.load(), 16);
}

// ------------------------------------------------------- run_indexed fan

TEST(TaskGroup, IndexedFanRunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> ran(1000);
  TaskGroup group(&pool);
  group.run_indexed(1000, 7, [&ran](int i) { ++ran[i]; });
  group.wait();
  for (const auto& slot : ran) EXPECT_EQ(slot.load(), 1);
  // Claim units are chunks: ceil(1000/7) = 143, split between pool runners
  // and the helping caller in race-dependent proportion.
  EXPECT_EQ(group.spawned() + group.stolen(), 143);
}

TEST(TaskGroup, IndexedFanInlineWithoutPool) {
  std::vector<int> ran(32, 0);
  TaskGroup group(nullptr);
  group.run_indexed(32, 5, [&ran](int i) { ++ran[i]; });
  group.wait();
  for (int slot : ran) EXPECT_EQ(slot, 1);
  EXPECT_EQ(group.spawned(), 0);
  EXPECT_EQ(group.stolen(), 7);  // ceil(32/5) chunks, all claimed inline
}

TEST(TaskGroup, ChunkClaimRaceUnderManyClaimants) {
  // Chunk size 1 on a wide pool maximizes claim contention: the fetch_add
  // cursor must still hand every index to exactly one claimant.
  WorkerPool pool(8);
  std::vector<std::atomic<int>> ran(512);
  TaskGroup group(&pool);
  group.run_indexed(512, 1, [&ran](int i) { ++ran[i]; });
  group.wait();
  for (const auto& slot : ran) EXPECT_EQ(slot.load(), 1);
  EXPECT_EQ(group.spawned() + group.stolen(), 512);
}

TEST(TaskGroup, HelpWhileWaitExecutesUnclaimedChunks) {
  // The pool's only worker is parked behind a gate, so no runner ever
  // claims a chunk: run_indexed must finish anyway, with the calling
  // thread claiming all of them.
  WorkerPool pool(1);
  std::atomic<bool> gate{false};
  ASSERT_TRUE(pool.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  }));
  std::vector<int> ran(16, 0);
  TaskGroup group(&pool);
  group.run_indexed(16, 1, [&ran](int i) { ++ran[i]; });
  group.wait();
  gate.store(true);
  pool.wait_idle();
  for (int slot : ran) EXPECT_EQ(slot, 1);
  EXPECT_EQ(group.stolen(), 16);
  EXPECT_EQ(group.spawned(), 0);
}

TEST(TaskGroup, NestedIndexedFansOnOneWorkerPoolComplete) {
  // A pool task fanning run_indexed onto its own 1-worker pool: the outer
  // task occupies the only worker, so the inner fan drains entirely via
  // help-while-wait. Deadlock here would hang the test (gtest timeout is
  // the backstop).
  WorkerPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(&pool);
  outer.run_indexed(4, 1, [&pool, &inner_ran](int) {
    TaskGroup inner(&pool);
    inner.run_indexed(8, 3, [&inner_ran](int) { ++inner_ran; });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_ran.load(), 32);
}

// ------------------------------------------------- exception propagation

TEST(TaskGroup, IndexedFanErrorPropagatesFromWait) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> ran(64);
  TaskGroup group(&pool);
  group.run_indexed(64, 4, [&ran](int i) {
    if (i >= 10) throw std::runtime_error(std::to_string(i));
    ++ran[i];
  });
  EXPECT_THROW(
      {
        try {
          group.wait();
        } catch (const std::runtime_error& e) {
          // Deterministic winner: the lowest throwing index, regardless of
          // which chunk's error landed first.
          EXPECT_STREQ(e.what(), "10");
          throw;
        }
      },
      std::runtime_error);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(TaskGroup, ThrowSkipsRestOfChunkButOtherChunksRun) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> ran(8);
  TaskGroup group(&pool);
  group.run_indexed(8, 4, [&ran](int i) {
    if (i == 1) throw std::runtime_error("chunk0");
    ++ran[i];
  });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Index 1 threw: 2 and 3 share its chunk and are skipped; the second
  // chunk (4..7) is unaffected. Index 0 ran before the throw.
  EXPECT_EQ(ran[0].load(), 1);
  EXPECT_EQ(ran[2].load(), 0);
  EXPECT_EQ(ran[3].load(), 0);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(TaskGroup, RunTaskErrorPropagatesFromWait) {
  WorkerPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i >= 3) throw std::runtime_error(std::to_string(i));
    });
  }
  EXPECT_THROW(
      {
        try {
          group.wait();
        } catch (const std::runtime_error& e) {
          // Submission order breaks the tie between racing task errors.
          EXPECT_STREQ(e.what(), "3");
          throw;
        }
      },
      std::runtime_error);
}

TEST(TaskGroup, ErrorFromInlineFanAlsoPropagates) {
  TaskGroup group(nullptr);
  group.run_indexed(4, 2, [](int i) {
    if (i == 2) throw std::runtime_error("inline");
  });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, WaitClearsTheErrorForReuse) {
  // A group outlives a failed fan: wait() consumes the error, and the next
  // fan on the same group starts clean.
  WorkerPool pool(2);
  TaskGroup group(&pool);
  group.run_indexed(4, 1, [](int i) {
    if (i == 0) throw std::runtime_error("first");
  });
  EXPECT_THROW(group.wait(), std::runtime_error);
  std::atomic<int> ran{0};
  group.run_indexed(4, 1, [&ran](int) { ++ran; });
  group.wait();  // must not rethrow the consumed error
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace depstor
