#include <gtest/gtest.h>

#include "protection/catalog.hpp"
#include "util/check.hpp"
#include "workload/catalog.hpp"

namespace depstor {
namespace {

TEST(TechniqueCatalog, HasExactlyNineTechniques) {
  EXPECT_EQ(protection::all_techniques().size(), 9u);
}

TEST(TechniqueCatalog, Table2CategoryMatrix) {
  // mirroring with failover → Gold; mirroring with reconstruction → Silver;
  // backup alone → Bronze (§3.1.3).
  for (MirrorMode m : {MirrorMode::Sync, MirrorMode::Async}) {
    for (bool backup : {true, false}) {
      EXPECT_EQ(protection::mirror_technique(m, RecoveryMode::Failover,
                                             backup).category,
                AppCategory::Gold);
      EXPECT_EQ(protection::mirror_technique(m, RecoveryMode::Reconstruct,
                                             backup).category,
                AppCategory::Silver);
    }
  }
  EXPECT_EQ(protection::tape_backup_only().category, AppCategory::Bronze);
}

TEST(TechniqueCatalog, AccumulationWindowsMatchTable2) {
  const auto sync = protection::mirror_technique(
      MirrorMode::Sync, RecoveryMode::Failover, true);
  const auto async = protection::mirror_technique(
      MirrorMode::Async, RecoveryMode::Failover, true);
  EXPECT_NEAR(sync.mirror_accumulation_hours, 0.5 / 60.0, 1e-12);
  EXPECT_NEAR(async.mirror_accumulation_hours, 10.0 / 60.0, 1e-12);
}

TEST(TechniqueCatalog, NamesAreUniqueAndRoundTrip) {
  const auto all = protection::all_techniques();
  for (const auto& t : all) {
    EXPECT_EQ(protection::by_name(t.name).name, t.name);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
  EXPECT_THROW(protection::by_name("Carrier pigeon"), InvalidArgument);
}

TEST(TechniqueCatalog, ClassFilters) {
  EXPECT_EQ(protection::techniques_in_class(AppCategory::Gold).size(), 4u);
  EXPECT_EQ(protection::techniques_in_class(AppCategory::Silver).size(), 4u);
  EXPECT_EQ(protection::techniques_in_class(AppCategory::Bronze).size(), 1u);
}

TEST(TechniqueCatalog, EligibilityIsSameOrBetter) {
  EXPECT_EQ(protection::eligible_techniques(AppCategory::Gold).size(), 4u);
  EXPECT_EQ(protection::eligible_techniques(AppCategory::Silver).size(), 8u);
  EXPECT_EQ(protection::eligible_techniques(AppCategory::Bronze).size(), 9u);
  for (const auto& t : protection::eligible_techniques(AppCategory::Silver)) {
    EXPECT_GE(static_cast<int>(t.category),
              static_cast<int>(AppCategory::Silver));
  }
}

TEST(Technique, MirrorBandwidthDemandUsesPeakForSync) {
  const auto app = workload::central_banking();  // avg 5, peak 50
  const auto sync = protection::mirror_technique(
      MirrorMode::Sync, RecoveryMode::Failover, false);
  const auto async = protection::mirror_technique(
      MirrorMode::Async, RecoveryMode::Failover, false);
  EXPECT_DOUBLE_EQ(sync.mirror_bandwidth_demand(app), 50.0);
  EXPECT_DOUBLE_EQ(async.mirror_bandwidth_demand(app), 5.0);
  EXPECT_DOUBLE_EQ(protection::tape_backup_only().mirror_bandwidth_demand(app),
                   0.0);
}

TEST(Technique, ValidateRejectsInconsistencies) {
  TechniqueSpec t;
  t.name = "nothing";
  EXPECT_THROW(t.validate(), InvalidArgument);  // protects nothing

  t = protection::tape_backup_only();
  t.recovery = RecoveryMode::Failover;  // failover without mirror
  EXPECT_THROW(t.validate(), InvalidArgument);

  t = protection::mirror_technique(MirrorMode::Sync, RecoveryMode::Failover,
                                   true);
  t.category = AppCategory::Bronze;  // category/feature mismatch
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(BackupChainConfig, DefaultsMatchTable2) {
  const BackupChainConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.snapshot_interval_hours, 12.0);
  EXPECT_DOUBLE_EQ(cfg.backup_interval_hours, 7.0 * 24.0);
  EXPECT_DOUBLE_EQ(cfg.vault_interval_hours, 28.0 * 24.0);
  EXPECT_DOUBLE_EQ(cfg.vault_shipping_hours, 24.0);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(BackupChainConfig, ValidateOrderingConstraints) {
  BackupChainConfig cfg;
  cfg.backup_interval_hours = cfg.snapshot_interval_hours / 2.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = BackupChainConfig{};
  cfg.vault_interval_hours = cfg.backup_interval_hours / 2.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = BackupChainConfig{};
  cfg.snapshots_retained = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(Technique, ToStringCoverage) {
  EXPECT_STREQ(to_string(MirrorMode::Sync), "sync");
  EXPECT_STREQ(to_string(MirrorMode::Async), "async");
  EXPECT_STREQ(to_string(MirrorMode::None), "none");
  EXPECT_STREQ(to_string(RecoveryMode::Failover), "failover");
  EXPECT_STREQ(to_string(RecoveryMode::Reconstruct), "reconstruct");
}

TEST(Technique, DisplayNames) {
  EXPECT_EQ(protection::mirror_technique(MirrorMode::Async,
                                         RecoveryMode::Failover, true)
                .name,
            "Async mirror (F) with backup");
  EXPECT_EQ(protection::mirror_technique(MirrorMode::Sync,
                                         RecoveryMode::Reconstruct, false)
                .name,
            "Sync mirror (R)");
  EXPECT_EQ(protection::tape_backup_only().name, "Tape backup");
}

}  // namespace
}  // namespace depstor
