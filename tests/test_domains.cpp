// Hierarchical failure domains: flat-vs-degenerate-tree parity oracle,
// subtree-failure survival semantics, correlation-knob monotonicity, the
// [failure_domains] loader section, and the failure-model-drift rejection.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "core/env_delta.hpp"
#include "core/env_loader.hpp"
#include "model/domain.hpp"
#include "model/recovery_sim.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

DesignSolverOptions fast_options(std::uint64_t seed) {
  DesignSolverOptions o;
  o.seed = seed;
  o.max_repetitions = 1;
  o.time_budget_ms = 1e9;
  o.breadth = 2;
  o.depth = 2;
  o.max_refit_iterations = 2;
  return o;
}

ScenarioModel degenerate_model(const Environment& env) {
  return ScenarioModel::tree_model(
      std::make_shared<const FailureDomainTree>(
          FailureDomainTree::degenerate(env.topology, env.failures)),
      env.failures);
}

// ------------------------------------------------------------ parity oracle

TEST(DegenerateTreeParity, EnumerationMatchesFlatBitForBit) {
  const Environment env = testing::peer_env(4);
  const SolveResult result = testing::solve_design(env, fast_options(3));
  ASSERT_TRUE(result.feasible);
  const Candidate& cand = *result.best;

  const auto flat = enumerate_scenarios(env.apps, cand.assignments(),
                                        cand.pool(), env.failures);
  const auto tree = enumerate_scenarios(env.apps, cand.assignments(),
                                        cand.pool(), degenerate_model(env));
  ASSERT_EQ(flat.size(), tree.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].scope, tree[i].scope) << "scenario " << i;
    EXPECT_EQ(flat[i].failed_app, tree[i].failed_app) << "scenario " << i;
    EXPECT_EQ(flat[i].failed_array, tree[i].failed_array) << "scenario " << i;
    EXPECT_EQ(flat[i].failed_site, tree[i].failed_site) << "scenario " << i;
    EXPECT_EQ(flat[i].failed_region, tree[i].failed_region)
        << "scenario " << i;
    // Bitwise: the degenerate tree multiplies by exactly 1.0.
    EXPECT_EQ(flat[i].annual_rate, tree[i].annual_rate) << "scenario " << i;
  }
}

TEST(DegenerateTreeParity, SolveTotalsBitIdenticalAcrossSeeds) {
  const Environment flat_envs[] = {scenarios::peer_sites(4),
                                   scenarios::multi_site(8, 3, 6)};
  for (const Environment& flat_env : flat_envs) {
    Environment tree_env = flat_env;
    tree_env.failure_domains = std::make_shared<const FailureDomainTree>(
        FailureDomainTree::degenerate(flat_env.topology, flat_env.failures));
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const SolveResult a =
          testing::solve_design(flat_env, fast_options(seed));
      const SolveResult b =
          testing::solve_design(tree_env, fast_options(seed));
      ASSERT_TRUE(a.feasible);
      ASSERT_TRUE(b.feasible);
      EXPECT_EQ(a.cost.outlay, b.cost.outlay) << "seed " << seed;
      EXPECT_EQ(a.cost.outage_penalty, b.cost.outage_penalty)
          << "seed " << seed;
      EXPECT_EQ(a.cost.loss_penalty, b.cost.loss_penalty) << "seed " << seed;
      EXPECT_EQ(a.cost.total(), b.cost.total()) << "seed " << seed;
    }
  }
}

TEST(DegenerateTreeParity, ExampleEnvironmentsLoadDegenerateAndMatchFlat) {
  const std::filesystem::path dir =
      std::filesystem::path(DEPSTOR_SOURCE_DIR) / "examples" / "environments";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    const Environment env = load_environment(entry.path().string());
    ASSERT_NE(env.failure_domains, nullptr) << entry.path();
    if (!env.failure_domains->degenerate_shape()) continue;
    const SolveResult result = testing::solve_design(env, fast_options(11));
    ASSERT_TRUE(result.feasible) << entry.path();
    // The solve priced through the loaded degenerate tree; the legacy flat
    // evaluation must reproduce its totals bit for bit.
    const CostBreakdown flat =
        evaluate_cost(env.apps, result.best->assignments(),
                      result.best->pool(), env.failures, env.params);
    EXPECT_EQ(flat.outlay, result.cost.outlay) << entry.path();
    EXPECT_EQ(flat.outage_penalty, result.cost.outage_penalty)
        << entry.path();
    EXPECT_EQ(flat.loss_penalty, result.cost.loss_penalty) << entry.path();
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

// ------------------------------------------------- subtree failure semantics

/// Two-app candidate on a 4-site environment: app 0 mirrors inside the
/// zone {P1, P2}, app 1 mirrors out of it (P1 → P3).
struct ZoneFixture {
  Environment env = scenarios::multi_site(2, 4, 6);
  Candidate cand{&env};

  ZoneFixture() {
    cand.place_app(0, testing::full_choice(testing::sync_f_backup(), 0, 1));
    cand.place_app(1, testing::full_choice(testing::sync_f_backup(), 0, 2));
  }

  ScenarioModel model_with(const DomainDecl& decl) const {
    return ScenarioModel::tree_model(
        std::make_shared<const FailureDomainTree>(
            FailureDomainTree::build(env.topology, env.failures, {decl})),
        env.failures);
  }

  static DomainDecl zone_decl() {
    DomainDecl d;
    d.kind = DomainDecl::Kind::Zone;
    d.name = "campus";
    d.region = 0;
    d.sites = {"P1", "P2"};
    return d;
  }
};

const ScenarioSpec* find_domain_scenario(const std::vector<ScenarioSpec>& all,
                                         bool data_intact) {
  for (const auto& s : all) {
    if (s.scope == FailureScope::Domain && s.data_intact == data_intact) {
      return &s;
    }
  }
  return nullptr;
}

TEST(SubtreeFailures, ZoneDestroyDisqualifiesInZoneMirrors) {
  ZoneFixture fx;
  DomainDecl zone = ZoneFixture::zone_decl();
  zone.rate = 0.05;
  const auto scenarios = enumerate_scenarios(
      fx.env.apps, fx.cand.assignments(), fx.cand.pool(), fx.model_with(zone));

  const ScenarioSpec* destroy = find_domain_scenario(scenarios, false);
  ASSERT_NE(destroy, nullptr);
  EXPECT_EQ(destroy->annual_rate, 0.05);
  EXPECT_EQ(destroy->failed_sites, (std::vector<int>{0, 1}));

  const auto recoveries =
      simulate_recovery(*destroy, fx.env.apps, fx.cand.assignments(),
                        fx.cand.pool(), fx.env.params);
  ASSERT_EQ(recoveries.size(), 2u);
  for (const auto& r : recoveries) {
    if (r.app_id == 0) {
      // Mirror and primary both inside the zone; tape library at the failed
      // primary site. Only the off-site vault survives.
      EXPECT_EQ(r.copy, CopyLevel::Vault);
      EXPECT_NE(r.action, RecoveryAction::Unrecoverable);
    } else {
      // Out-of-zone mirror survives and carries failover.
      EXPECT_EQ(r.copy, CopyLevel::Mirror);
      EXPECT_EQ(r.action, RecoveryAction::Failover);
    }
  }
}

TEST(SubtreeFailures, ZoneOutageKeepsDataIntact) {
  ZoneFixture fx;
  DomainDecl zone = ZoneFixture::zone_decl();
  zone.outage_rate = 0.2;
  zone.repair_hours = 48.0;
  const auto scenarios = enumerate_scenarios(
      fx.env.apps, fx.cand.assignments(), fx.cand.pool(), fx.model_with(zone));

  const ScenarioSpec* outage = find_domain_scenario(scenarios, true);
  ASSERT_NE(outage, nullptr);
  EXPECT_EQ(outage->annual_rate, 0.2);
  EXPECT_EQ(outage->repair_hours, 48.0);

  const auto recoveries =
      simulate_recovery(*outage, fx.env.apps, fx.cand.assignments(),
                        fx.cand.pool(), fx.env.params);
  ASSERT_EQ(recoveries.size(), 2u);
  for (const auto& r : recoveries) {
    EXPECT_EQ(r.loss_hours, 0.0) << "outages never lose data";
    if (r.app_id == 0) {
      // In-zone mirror is unreachable too: wait out the repair.
      EXPECT_EQ(r.action, RecoveryAction::WaitRepair);
      EXPECT_GE(r.outage_hours, 48.0);
    } else {
      EXPECT_EQ(r.action, RecoveryAction::Failover);
      EXPECT_LT(r.outage_hours, 48.0);
    }
  }
}

TEST(SubtreeFailures, RoomDestroysPartitionTheSitesArrays) {
  ZoneFixture fx;
  DomainDecl r1;
  r1.kind = DomainDecl::Kind::Room;
  r1.name = "p1-room-a";
  r1.site = "P1";
  r1.rate = 0.1;
  DomainDecl r2 = r1;
  r2.name = "p1-room-b";
  const ScenarioModel model = ScenarioModel::tree_model(
      std::make_shared<const FailureDomainTree>(
          FailureDomainTree::build(fx.env.topology, fx.env.failures,
                                   {r1, r2})),
      fx.env.failures);
  ASSERT_EQ(model.tree->room_count(0), 2);

  const auto scenarios = enumerate_scenarios(
      fx.env.apps, fx.cand.assignments(), fx.cand.pool(), model);
  std::vector<const ScenarioSpec*> rooms;
  for (const auto& s : scenarios) {
    if (s.scope == FailureScope::Domain && !s.data_intact) {
      rooms.push_back(&s);
    }
  }
  // Only rooms with at least one in-use array emit a scenario.
  ASSERT_FALSE(rooms.empty());
  std::vector<int> site_arrays;
  for (const auto& dev : fx.cand.pool().devices()) {
    if (dev.type.kind == DeviceKind::DiskArray && dev.site_id == 0 &&
        fx.cand.pool().in_use(dev.id)) {
      site_arrays.push_back(dev.id);
    }
  }
  std::vector<int> covered;
  for (const ScenarioSpec* room : rooms) {
    EXPECT_EQ(room->annual_rate, 0.1);
    EXPECT_FALSE(room->failed_arrays.empty());
    for (int a : room->failed_arrays) {
      EXPECT_EQ(std::count(covered.begin(), covered.end(), a), 0)
          << "rooms must partition disjointly";
      covered.push_back(a);
    }
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, site_arrays);

  // An app whose primary array burns with the room fails over to its mirror
  // (different site, untouched by a room event).
  for (const ScenarioSpec* room : rooms) {
    const auto recoveries =
        simulate_recovery(*room, fx.env.apps, fx.cand.assignments(),
                          fx.cand.pool(), fx.env.params);
    for (const auto& r : recoveries) {
      EXPECT_EQ(r.copy, CopyLevel::Mirror);
    }
  }
}

// ----------------------------------------------- correlation monotonicity

TEST(CorrelationKnob, PenaltyNeverDecreasesAsCorrelationGrows) {
  const Environment env = scenarios::regional_correlated(4, 1.0);
  ASSERT_NE(env.failure_domains, nullptr);
  const SolveResult result = testing::solve_design(env, fast_options(7));
  ASSERT_TRUE(result.feasible);
  const Candidate& cand = *result.best;

  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> step(1.0, 4.0);
  for (int trial = 0; trial < 8; ++trial) {
    // Random non-root node, random increasing correlation ladder.
    const int node = 1 + static_cast<int>(rng() %
        (env.failure_domains->nodes().size() - 1));
    double correlation = 1.0;
    double last_penalty = -1.0;
    for (int rung = 0; rung < 5; ++rung) {
      FailureDomainTree tree = *env.failure_domains;
      tree.set_correlation(node, correlation);
      const CostBreakdown cost = evaluate_cost(
          env.apps, cand.assignments(), cand.pool(),
          ScenarioModel::tree_model(
              std::make_shared<const FailureDomainTree>(std::move(tree)),
              env.failures),
          env.params);
      if (last_penalty >= 0.0) {
        EXPECT_GE(cost.penalty(), last_penalty)
            << "node " << node << " correlation " << correlation;
      }
      last_penalty = cost.penalty();
      correlation *= step(rng);
    }
  }
}

// -------------------------------------------------------- loader and lint

constexpr const char* kBaseIni = R"(
[site]
name = downtown
region = 0

[site]
name = riverside
region = 0

[site]
name = hilltop
region = 1

[link]
a = downtown
b = riverside
max_links = 12

[link]
a = downtown
b = hilltop
max_links = 6

[link]
a = riverside
b = hilltop
max_links = 6

[application]
name = transactions
type = TXN
outage_penalty_rate = 3e6
loss_penalty_rate = 5e6
data_size_gb = 1200
avg_update_mbps = 3
peak_update_mbps = 28
avg_access_mbps = 35

[failures]
data_object_rate = 0.333
disk_array_rate = 0.333
site_disaster_rate = 0.2
regional_disaster_rate = 0.05
)";

TEST(DomainLoader, FlatFileLoadsDegenerateTree) {
  const Environment env = environment_from_ini(kBaseIni);
  ASSERT_NE(env.failure_domains, nullptr);
  EXPECT_TRUE(env.failure_domains->degenerate_shape());
  // root + 2 regions + 3 sites
  EXPECT_EQ(env.failure_domains->nodes().size(), 6u);
  EXPECT_TRUE(env.scenario_model().has_tree());
}

TEST(DomainLoader, ParsesDomainSections) {
  const std::string ini = std::string(kBaseIni) + R"(
[failure_domains]
version = 1
disk_array_rate = 0.25

[domain]
level = region
region = 0
correlation = 2.5

[domain]
level = zone
name = metro
region = 0
sites = downtown, riverside
rate = 0.01
outage_rate = 0.3
repair_hours = 12

[domain]
level = room
name = dt-annex
site = downtown
rate = 0.05
)";
  const Environment env = environment_from_ini(ini);
  ASSERT_NE(env.failure_domains, nullptr);
  const FailureDomainTree& tree = *env.failure_domains;
  EXPECT_FALSE(tree.degenerate_shape());
  // The header's rate override keeps the flat model in sync with the tree.
  EXPECT_EQ(env.failures.disk_array_rate, 0.25);
  EXPECT_EQ(tree.disk_array_rate(), 0.25);
  EXPECT_EQ(tree.room_count(0), 1);

  const DomainNode* zone = nullptr;
  for (const auto& n : tree.nodes()) {
    if (n.name == "metro") zone = &n;
  }
  ASSERT_NE(zone, nullptr);
  EXPECT_EQ(zone->level, DomainLevel::Zone);
  EXPECT_EQ(zone->rate, 0.01);
  EXPECT_EQ(zone->outage_rate, 0.3);
  EXPECT_EQ(zone->repair_hours, 12.0);
  EXPECT_EQ(tree.subtree_sites(zone->id), (std::vector<int>{0, 1}));
  // The region's correlation scales the zone's effective rates.
  EXPECT_EQ(tree.effective_rate(zone->id), 0.01 * 2.5);
  EXPECT_EQ(tree.effective_outage_rate(zone->id), 0.3 * 2.5);
}

TEST(DomainLoader, RejectsBadHeaders) {
  EXPECT_THROW(
      environment_from_ini(std::string(kBaseIni) +
                           "\n[failure_domains]\nversion = 2\n"),
      InvalidArgument);
  // [domain] without the versioned header.
  EXPECT_THROW(
      environment_from_ini(std::string(kBaseIni) +
                           "\n[domain]\nlevel = region\nregion = 0\n"),
      InvalidArgument);
  // Zone member site outside its declared region.
  EXPECT_THROW(
      environment_from_ini(
          std::string(kBaseIni) +
          "\n[failure_domains]\nversion = 1\n\n[domain]\nlevel = zone\n"
          "name = bad\nregion = 0\nsites = downtown, hilltop\n"),
      InvalidArgument);
}

TEST(DomainLint, FlagsLegacyFlatScenariosAndBadDecls) {
  using analysis::lint_environment_text;
  const auto flat_report = lint_environment_text(kBaseIni, "flat.ini");
  EXPECT_FALSE(flat_report.has_errors()) << flat_report.render_text();
  bool saw_legacy = false;
  for (const auto& d : flat_report.diagnostics()) {
    if (d.rule == analysis::rules::kLegacyFlatScenarios) saw_legacy = true;
  }
  EXPECT_TRUE(saw_legacy);

  const std::string treed = std::string(kBaseIni) + R"(
[failure_domains]
version = 1

[domain]
level = zone
name = metro
region = 0
sites = downtown, riverside
)";
  const auto tree_report = lint_environment_text(treed, "treed.ini");
  EXPECT_FALSE(tree_report.has_errors()) << tree_report.render_text();
  for (const auto& d : tree_report.diagnostics()) {
    EXPECT_NE(d.rule, analysis::rules::kLegacyFlatScenarios);
  }

  const std::string bad = std::string(kBaseIni) + R"(
[failure_domains]
version = 1

[domain]
level = tower
name = nope

[domain]
level = zone
name = metro
region = 0
sites = downtown
rate = -3
)";
  const auto bad_report = lint_environment_text(bad, "bad.ini");
  int bad_decls = 0;
  for (const auto& d : bad_report.diagnostics()) {
    if (d.rule == analysis::rules::kBadDomainDecl) ++bad_decls;
  }
  EXPECT_GE(bad_decls, 2);  // unknown level + negative rate
}

// ------------------------------------------------- failure-model drift 422

TEST(EnvDelta, FailureModelDriftGetsDedicatedRejection) {
  const Environment prev = testing::peer_env(2);
  Environment next = prev;
  next.failures.site_disaster_rate *= 2.0;
  try {
    diff_environments(prev, next);
    FAIL() << "rate drift must not diff as a delta";
  } catch (const NonDeltaError& e) {
    EXPECT_STREQ(e.reason().c_str(), kReasonFailureModelChanged);
    EXPECT_NE(std::string(e.what()).find("failure model changed"),
              std::string::npos)
        << e.what();
  }
}

TEST(EnvDelta, TreeDriftAlsoRejectsAsFailureModelChange) {
  Environment prev = testing::peer_env(2);
  prev.failure_domains = std::make_shared<const FailureDomainTree>(
      FailureDomainTree::degenerate(prev.topology, prev.failures));
  Environment next = prev;
  FailureDomainTree tree = *prev.failure_domains;
  tree.set_correlation(1, 3.0);
  next.failure_domains =
      std::make_shared<const FailureDomainTree>(std::move(tree));
  try {
    diff_environments(prev, next);
    FAIL() << "tree drift must not diff as a delta";
  } catch (const NonDeltaError& e) {
    EXPECT_STREQ(e.reason().c_str(), kReasonFailureModelChanged);
  }
}

}  // namespace
}  // namespace depstor
