#include <gtest/gtest.h>

#include "core/report.hpp"
#include "cost/penalty.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;

Candidate design(const Environment& env) {
  Candidate cand(&env);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    cand.place_app(i, full_choice(sync_f_backup()));
  }
  return cand;
}

TEST(ScopePenalties, SumMatchesTotalPenalties) {
  Environment env = peer_env(4);
  Candidate cand = design(env);
  const auto scopes = compute_scope_penalties(
      env.apps, cand.assignments(), cand.pool(), env.failures, env.params);
  double scope_total = 0.0;
  for (const auto& sp : scopes) scope_total += sp.total();
  const auto cost = cand.evaluate();
  EXPECT_NEAR(scope_total, cost.penalty(),
              1e-9 * std::max(1.0, cost.penalty()));
}

TEST(ScopePenalties, AllScopesPresent) {
  Environment env = peer_env(2);
  Candidate cand = design(env);
  const auto scopes = compute_scope_penalties(
      env.apps, cand.assignments(), cand.pool(), env.failures, env.params);
  ASSERT_EQ(scopes.size(), static_cast<size_t>(kFailureScopeCount));
  EXPECT_EQ(scopes[0].scope, FailureScope::DataObject);
  EXPECT_EQ(scopes[3].scope, FailureScope::RegionalDisaster);
  EXPECT_EQ(scopes[3].scenarios, 0);  // regional disabled by default
  EXPECT_DOUBLE_EQ(scopes[3].total(), 0.0);
  // A flat model enumerates no Domain-scope scenarios; the row exists so
  // callers can index by scope unconditionally.
  EXPECT_EQ(scopes[4].scope, FailureScope::Domain);
  EXPECT_EQ(scopes[4].scenarios, 0);
  EXPECT_DOUBLE_EQ(scopes[4].total(), 0.0);
}

TEST(ScopePenalties, ScenarioCountsMatchEnumeration) {
  Environment env = peer_env(4);
  Candidate cand = design(env);
  const auto scopes = compute_scope_penalties(
      env.apps, cand.assignments(), cand.pool(), env.failures, env.params);
  EXPECT_EQ(scopes[0].scenarios, 4);  // one object scenario per app
  EXPECT_GE(scopes[1].scenarios, 1);  // at least one primary array
  EXPECT_GE(scopes[2].scenarios, 1);  // at least one primary site
}

TEST(ScopePenalties, DataObjectDominatesForSnapshotFloorDesigns) {
  // With every app on mirror+backup at Table 1 rates, the snapshot-staleness
  // loss on object failures dominates expected penalties (the Figure 5
  // mechanism).
  Environment env = peer_env(4);
  Candidate cand = design(env);
  const auto scopes = compute_scope_penalties(
      env.apps, cand.assignments(), cand.pool(), env.failures, env.params);
  EXPECT_GT(scopes[0].total(), scopes[1].total());
  EXPECT_GT(scopes[0].total(), scopes[2].total());
}

TEST(ScopePenalties, ZeroRateZeroesTheScope) {
  Environment env = peer_env(2);
  env.failures.site_disaster_rate = 0.0;
  Candidate cand = design(env);
  const auto scopes = compute_scope_penalties(
      env.apps, cand.assignments(), cand.pool(), env.failures, env.params);
  EXPECT_DOUBLE_EQ(scopes[2].total(), 0.0);
}

TEST(ThreatReport, RendersPerScopeRows) {
  Environment env = peer_env(2);
  Candidate cand = design(env);
  const std::string report = threat_report(env, cand);
  EXPECT_NE(report.find("data-object"), std::string::npos);
  EXPECT_NE(report.find("disk-array"), std::string::npos);
  EXPECT_NE(report.find("site-disaster"), std::string::npos);
  // Regional is disabled: its row is suppressed.
  EXPECT_EQ(report.find("regional-disaster"), std::string::npos);
}

TEST(ThreatReport, ShowsRegionalWhenEnabled) {
  Environment env = peer_env(2);
  env.failures.regional_disaster_rate = 0.1;
  Candidate cand = design(env);
  const std::string report = threat_report(env, cand);
  EXPECT_NE(report.find("regional-disaster"), std::string::npos);
}

}  // namespace
}  // namespace depstor
