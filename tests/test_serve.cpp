// Lifecycle tests for the design service (serve/server.hpp) over real
// loopback sockets: admission, priority scheduling, explicit rejection at a
// full queue, cancel and disconnect handling, stats, and graceful drain.
//
// Every server binds port 0 (ephemeral), so tests run concurrently without
// port collisions. Solves use the minimal two-app environment and small
// deterministic budgets to stay fast.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"

#include "core/env_delta.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"

namespace depstor::serve {
namespace {

const char* kEnvIni = R"(
[site]
name = east

[site]
name = west
region = 1

[link]
a = east
b = west
max_links = 12

[application]
name = billing
outage_penalty_rate = 2e6
loss_penalty_rate = 8e6
data_size_gb = 900
avg_update_mbps = 3
peak_update_mbps = 25
avg_access_mbps = 30

[application]
name = wiki
outage_penalty_rate = 2e3
loss_penalty_rate = 8e3
data_size_gb = 200
avg_update_mbps = 0.2

[failures]
data_object_rate = 1.0
regional_disaster_rate = 0.02
)";

/// A small deterministic request: fixed work, no wall-clock dependence.
WireRequest small_request(const std::string& id, int priority = 0) {
  WireRequest req;
  req.id = id;
  req.priority = priority;
  req.deterministic = true;
  req.env_ini = kEnvIni;
  req.options.max_repetitions = 1;
  req.options.max_refit_iterations = 2;
  req.options.max_greedy_restarts = 5;
  req.options.breadth = 2;
  req.options.depth = 2;
  return req;
}

ServeOptions test_options() {
  ServeOptions options;
  options.port = 0;       // ephemeral
  options.workers = 2;
  options.progress_interval_ms = 5.0;
  return options;
}

/// Pump events until the terminal result (or a rejection) arrives.
JsonValue await_terminal(Client& client, double timeout_ms = 30000.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto event = client.next_event(50.0);
    if (!event.has_value()) {
      if (client.eof()) break;
      continue;
    }
    const std::string& type = event->at("type").as_string();
    if (type == "result" || type == "rejected") return *event;
  }
  ADD_FAILURE() << "no terminal event within " << timeout_ms << " ms";
  return JsonValue{};
}

TEST(Serve, CompletesOneDesignRequest) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.send_design(small_request("one")));

  bool accepted = false;
  bool saw_progress = false;
  JsonValue result;
  for (int spins = 0; spins < 2000; ++spins) {
    const auto event = client.next_event(50.0);
    if (!event.has_value()) continue;
    const std::string& type = event->at("type").as_string();
    if (type == "accepted") {
      accepted = true;
      EXPECT_EQ(event->at("id").as_string(), "one");
    } else if (type == "progress") {
      saw_progress = true;
    } else if (type == "result") {
      result = *event;
      break;
    }
  }
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(saw_progress);
  ASSERT_EQ(result.at("type").as_string(), "result");
  EXPECT_EQ(result.at("id").as_string(), "one");
  EXPECT_EQ(result.at("status").as_string(), "completed");
  EXPECT_TRUE(result.at("feasible").as_bool());
  EXPECT_GT(result.at("total_cost").as_number(), 0.0);
  EXPECT_GT(result.at("nodes").as_number(), 0.0);
  server.shutdown();
}

TEST(Serve, ServesManyConcurrentClients) {
  // The ISSUE acceptance bar: >= 8 concurrent clients, zero accepted
  // requests dropped.
  constexpr int kClients = 8;
  Server server(test_options());
  server.start();
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      WireRequest req = small_request("client-" + std::to_string(c));
      req.options.seed = static_cast<std::uint64_t>(c + 1);
      if (!client.send_design(req)) return;
      const JsonValue terminal = await_terminal(client);
      if (terminal.is_null()) return;
      if (terminal.at("type").as_string() == "result" &&
          terminal.at("status").as_string() == "completed") {
        completed.fetch_add(1);
      } else {
        rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completed.load(), kClients);
  EXPECT_EQ(rejected.load(), 0);
  server.shutdown();
}

TEST(Serve, PriorityOrdersQueuedJobs) {
  ServeOptions options = test_options();
  options.workers = 1;  // one worker => strictly sequential execution
  Server server(options);
  server.start();
  server.pause_dispatch();  // hold everything queued while we submit

  // Submitted low-priority first; the high-priority job must still run
  // first once dispatch resumes.
  Client low("127.0.0.1", server.port());
  Client high("127.0.0.1", server.port());
  ASSERT_TRUE(low.send_design(small_request("low", 1)));
  // Wait for "low" to be admitted before submitting "high" so the FIFO
  // tiebreak cannot mask a priority bug.
  ASSERT_TRUE(low.next_event(5000.0).has_value());  // accepted
  ASSERT_TRUE(high.send_design(small_request("high", 9)));
  ASSERT_TRUE(high.next_event(5000.0).has_value());
  ASSERT_EQ(server.queue_depth(), 2);
  server.resume_dispatch();

  const JsonValue high_result = await_terminal(high);
  const JsonValue low_result = await_terminal(low);
  ASSERT_EQ(high_result.at("type").as_string(), "result");
  ASSERT_EQ(low_result.at("type").as_string(), "result");
  // One worker claims jobs strictly by priority: "high" must have been
  // picked up first even though "low" was admitted first.
  EXPECT_EQ(high_result.at("run_order").as_number(), 1.0);
  EXPECT_EQ(low_result.at("run_order").as_number(), 2.0);
  server.shutdown();
}

TEST(Serve, RejectsWhenQueueIsFull) {
  ServeOptions options = test_options();
  options.max_queue = 2;
  Server server(options);
  server.start();
  server.pause_dispatch();

  Client a("127.0.0.1", server.port());
  Client b("127.0.0.1", server.port());
  Client c("127.0.0.1", server.port());
  ASSERT_TRUE(a.send_design(small_request("a")));
  ASSERT_TRUE(a.next_event(5000.0).has_value());  // accepted
  ASSERT_TRUE(b.send_design(small_request("b")));
  ASSERT_TRUE(b.next_event(5000.0).has_value());
  ASSERT_TRUE(c.send_design(small_request("c")));
  const auto rejection = c.next_event(5000.0);
  ASSERT_TRUE(rejection.has_value());
  EXPECT_EQ(rejection->at("type").as_string(), "rejected");
  EXPECT_EQ(rejection->at("code").as_number(), kRejectQueueFull);
  EXPECT_EQ(rejection->at("reason").as_string(), "queue_full");

  server.resume_dispatch();
  EXPECT_EQ(await_terminal(a).at("status").as_string(), "completed");
  EXPECT_EQ(await_terminal(b).at("status").as_string(), "completed");
  server.shutdown();
}

TEST(Serve, RejectsLintErrorsBeforeAdmission) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  WireRequest req = small_request("bad");
  req.env_ini = "[application]\nname = orphan\n";  // no sites: lint error
  ASSERT_TRUE(client.send_design(req));
  const auto event = client.next_event(5000.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->at("type").as_string(), "rejected");
  EXPECT_EQ(event->at("code").as_number(), kRejectLint);
  server.shutdown();
}

TEST(Serve, RejectsMalformedAndUnknownFieldRequests) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.send_line("{\"op\":\"design\""));  // truncated JSON
  auto event = client.next_event(5000.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->at("type").as_string(), "rejected");
  EXPECT_EQ(event->at("code").as_number(), kRejectParse);

  ASSERT_TRUE(client.send_line(
      "{\"op\":\"design\",\"env_ini\":\"x\",\"prioritty\":3}"));
  event = client.next_event(5000.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->at("type").as_string(), "rejected");
  const std::string& detail = event->at("detail").as_string();
  EXPECT_NE(detail.find("prioritty"), std::string::npos);
  server.shutdown();
}

TEST(Serve, CancelStopsARunningJob) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  // A long non-deterministic request: big budget, unbounded repetitions.
  WireRequest req = small_request("long");
  req.deterministic = false;
  req.options.max_repetitions = 0;
  req.options.max_refit_iterations = 1000000;
  req.options.max_greedy_restarts = 25;
  req.options.breadth = 3;
  req.options.depth = 5;
  req.options.time_budget_ms = 60000.0;
  ASSERT_TRUE(client.send_design(req));
  // Wait until it is actually running, then cancel.
  bool running = false;
  for (int spins = 0; spins < 2000 && !running; ++spins) {
    const auto event = client.next_event(50.0);
    if (event.has_value() && event->at("type").as_string() == "progress" &&
        event->at("status").as_string() == "running" &&
        event->at("nodes").as_number() > 0.0) {
      running = true;
    }
  }
  ASSERT_TRUE(running);
  ASSERT_TRUE(client.send_cancel());
  const JsonValue result = await_terminal(client);
  ASSERT_EQ(result.at("type").as_string(), "result");
  EXPECT_EQ(result.at("status").as_string(), "cancelled");
  server.shutdown();
}

TEST(Serve, DisconnectCancelsTheJob) {
  Server server(test_options());
  server.start();
  {
    Client client("127.0.0.1", server.port());
    WireRequest req = small_request("goner");
    req.deterministic = false;
    req.options.max_repetitions = 0;
    req.options.max_refit_iterations = 1000000;
    req.options.time_budget_ms = 60000.0;
    ASSERT_TRUE(client.send_design(req));
    bool running = false;
    for (int spins = 0; spins < 2000 && !running; ++spins) {
      const auto event = client.next_event(50.0);
      if (event.has_value() && event->at("type").as_string() == "progress" &&
          event->at("status").as_string() == "running") {
        running = true;
      }
    }
    ASSERT_TRUE(running);
    client.disconnect();  // simulated crash — no cancel line
  }
  // Graceful shutdown waits for every admitted job; if the disconnect did
  // not cancel the 60s-budget job this would hang far past the test
  // timeout, so returning promptly is itself the assertion.
  server.shutdown();
  SUCCEED();
}

TEST(Serve, StatsReflectOutcomes) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.send_design(small_request("stat-job")));
  ASSERT_EQ(await_terminal(client).at("status").as_string(), "completed");

  ASSERT_TRUE(client.request_stats());
  JsonValue stats;
  for (int spins = 0; spins < 200; ++spins) {
    const auto event = client.next_event(50.0);
    if (event.has_value() && event->at("type").as_string() == "stats") {
      stats = *event;
      break;
    }
  }
  ASSERT_EQ(stats.at("type").as_string(), "stats");
  const JsonValue& srv = stats.at("server");
  EXPECT_GE(srv.at("jobs_admitted").as_number(), 1.0);
  EXPECT_GE(srv.at("jobs_completed").as_number(), 1.0);
  EXPECT_EQ(srv.at("queue_depth").as_number(), 0.0);
  EXPECT_GT(srv.at("p50_job_ms").as_number(), 0.0);
  EXPECT_GT(srv.at("uptime_ms").as_number(), 0.0);
  // The obs registry rides along, counters and gauges included.
  const JsonValue& obs = stats.at("obs");
  EXPECT_TRUE(obs.at("counters").has("serve.jobs_admitted"));
  EXPECT_GE(obs.at("counters").at("serve.jobs_admitted").as_number(), 1.0);
  server.shutdown();
}

// A fresh daemon has no latency samples: the quantiles must read 0 with an
// explicit count of 0 — not a saturated histogram maximum — so dashboards
// can tell "no data" from "instant jobs".
TEST(Serve, FreshStatsReportZeroLatencyWithZeroCount) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.request_stats());
  JsonValue stats;
  for (int spins = 0; spins < 200; ++spins) {
    const auto event = client.next_event(50.0);
    if (event.has_value() && event->at("type").as_string() == "stats") {
      stats = *event;
      break;
    }
  }
  ASSERT_EQ(stats.at("type").as_string(), "stats");
  const JsonValue& srv = stats.at("server");
  EXPECT_EQ(srv.at("job_latency_count").as_number(), 0.0);
  EXPECT_EQ(srv.at("p50_job_ms").as_number(), 0.0);
  EXPECT_EQ(srv.at("p95_job_ms").as_number(), 0.0);
  EXPECT_EQ(srv.at("solutions_stored").as_number(), 0.0);
  server.shutdown();
}

// The successor environment for resolve round-trips: kEnvIni plus one added
// application (a pure-addition delta).
std::string env_ini_with_extra_app() {
  return std::string(kEnvIni) +
         R"(
[application]
name = reports
outage_penalty_rate = 5e4
loss_penalty_rate = 1e5
data_size_gb = 300
avg_update_mbps = 1
)";
}

TEST(Serve, ResolveWarmRoundTrip) {
  Server server(test_options());
  server.start();

  Client designer("127.0.0.1", server.port());
  ASSERT_TRUE(designer.send_design(small_request("base")));
  const JsonValue base = await_terminal(designer);
  ASSERT_EQ(base.at("status").as_string(), "completed");
  ASSERT_TRUE(base.at("feasible").as_bool());
  EXPECT_GE(server.solutions_stored(), 1);

  Client resolver("127.0.0.1", server.port());
  WireRequest req = small_request("delta-1");
  req.env_ini = env_ini_with_extra_app();
  req.prev_job = "base";
  ASSERT_TRUE(resolver.send_resolve(req));
  const JsonValue result = await_terminal(resolver);
  ASSERT_EQ(result.at("type").as_string(), "result");
  EXPECT_EQ(result.at("status").as_string(), "completed");
  EXPECT_TRUE(result.at("feasible").as_bool());
  EXPECT_TRUE(result.at("warm").as_bool());
  EXPECT_GE(result.at("touched_apps").as_number(), 1.0);
  EXPECT_GT(result.at("total_cost").as_number(), 0.0);

  // The resolved design is stored in turn: a second delta can chain off it.
  Client chained("127.0.0.1", server.port());
  WireRequest next = small_request("delta-2");
  next.env_ini = kEnvIni;  // remove "reports" again
  next.prev_job = "delta-1";
  ASSERT_TRUE(chained.send_resolve(next));
  const JsonValue chained_result = await_terminal(chained);
  ASSERT_EQ(chained_result.at("type").as_string(), "result");
  EXPECT_EQ(chained_result.at("status").as_string(), "completed");
  server.shutdown();
}

TEST(Serve, ResolveUnknownPrevJobRejected) {
  Server server(test_options());
  server.start();
  Client client("127.0.0.1", server.port());
  WireRequest req = small_request("orphan");
  req.prev_job = "never-ran";
  ASSERT_TRUE(client.send_resolve(req));
  const auto event = await_terminal(client);
  ASSERT_EQ(event.at("type").as_string(), "rejected");
  EXPECT_EQ(event.at("code").as_number(), kRejectLint);
  EXPECT_EQ(event.at("reason").as_string(), "unknown_prev_job");
  server.shutdown();
}

TEST(Serve, ResolveNonDeltaSuccessorRejected) {
  Server server(test_options());
  server.start();
  Client designer("127.0.0.1", server.port());
  ASSERT_TRUE(designer.send_design(small_request("base2")));
  ASSERT_EQ(await_terminal(designer).at("status").as_string(), "completed");

  // A successor whose failure rates changed is beyond what a delta can
  // express; admission must reject it before it takes a queue slot, with
  // the dedicated reason code and an explanation of why.
  Client client("127.0.0.1", server.port());
  WireRequest req = small_request("bad-delta");
  std::string env = req.env_ini;
  const auto pos = env.find("data_object_rate = 1.0");
  ASSERT_NE(pos, std::string::npos);
  env.replace(pos, std::string("data_object_rate = 1.0").size(),
              "data_object_rate = 2.0");
  req.env_ini = env;
  req.prev_job = "base2";
  ASSERT_TRUE(client.send_resolve(req));
  const auto event = await_terminal(client);
  ASSERT_EQ(event.at("type").as_string(), "rejected");
  EXPECT_EQ(event.at("code").as_number(), kRejectLint);
  EXPECT_EQ(event.at("reason").as_string(), kReasonFailureModelChanged);
  EXPECT_NE(event.at("detail").as_string().find("failure model changed"),
            std::string::npos);
  server.shutdown();
}

TEST(Serve, DrainsQueuedJobsOnShutdown) {
  ServeOptions options = test_options();
  options.workers = 1;
  Server server(options);
  server.start();
  server.pause_dispatch();
  Client a("127.0.0.1", server.port());
  Client b("127.0.0.1", server.port());
  ASSERT_TRUE(a.send_design(small_request("drain-a")));
  ASSERT_TRUE(a.next_event(5000.0).has_value());
  ASSERT_TRUE(b.send_design(small_request("drain-b")));
  ASSERT_TRUE(b.next_event(5000.0).has_value());

  // Shut down from another thread while both jobs are still queued: the
  // drain must release the paused claims and deliver both results.
  std::thread closer([&] { server.shutdown(); });
  EXPECT_EQ(await_terminal(a).at("status").as_string(), "completed");
  EXPECT_EQ(await_terminal(b).at("status").as_string(), "completed");
  closer.join();
  EXPECT_TRUE(server.draining());
}

TEST(Serve, RejectsNewAdmissionsWhileDraining) {
  Server server(test_options());
  server.start();
  const int port = server.port();
  server.shutdown();  // no jobs: drains immediately
  // The listener is closed after shutdown; a fresh connection must fail.
  EXPECT_THROW(Client("127.0.0.1", port), InvalidArgument);
}

TEST(Serve, OversizedRequestRejectedExplicitly) {
  ServeOptions options = test_options();
  options.max_request_bytes = 512;
  Server server(options);
  server.start();
  Client client("127.0.0.1", server.port());
  // Far beyond the per-line cap: the server answers 413 and closes.
  ASSERT_TRUE(client.send_design(small_request("big")));
  const auto event = client.next_event(5000.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->at("type").as_string(), "rejected");
  EXPECT_EQ(event->at("code").as_number(), kRejectOversized);
  server.shutdown();
}

TEST(ServeProto, DesignRequestRoundTrips) {
  WireRequest req = small_request("round-trip", 7);
  req.deadline_ms = 1500.0;
  req.options.seed = 99;
  const WireRequest parsed =
      parse_request(build_design_request(req), 1 << 20);
  EXPECT_EQ(parsed.id, "round-trip");
  EXPECT_EQ(parsed.priority, 7);
  EXPECT_EQ(parsed.env_ini, req.env_ini);
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, 1500.0);
  EXPECT_TRUE(parsed.deterministic);
  EXPECT_EQ(parsed.options.seed, 99u);
  EXPECT_EQ(parsed.options.breadth, req.options.breadth);
  EXPECT_EQ(parsed.options.max_refit_iterations,
            req.options.max_refit_iterations);
  EXPECT_EQ(parse_request(build_cancel_request(), 1024).op,
            WireRequest::Op::Cancel);
  EXPECT_EQ(parse_request(build_stats_request(), 1024).op,
            WireRequest::Op::Stats);
  EXPECT_TRUE(is_stats_line(kStatsRequestLine));
}

TEST(ServeProto, ResolveRequestRoundTrips) {
  WireRequest req = small_request("warm", 3);
  req.prev_job = "job-7";
  const WireRequest parsed =
      parse_request(build_resolve_request(req), 1 << 20);
  EXPECT_EQ(parsed.op, WireRequest::Op::Resolve);
  EXPECT_EQ(parsed.id, "warm");
  EXPECT_EQ(parsed.prev_job, "job-7");
  EXPECT_EQ(parsed.env_ini, req.env_ini);
  EXPECT_EQ(parsed.priority, 3);

  // resolve requires prev_job; design must not carry one.
  EXPECT_THROW(
      parse_request(R"({"op":"resolve","env_ini":"x"})", 1024),
      InvalidArgument);
  EXPECT_THROW(
      parse_request(R"({"op":"design","env_ini":"x","prev_job":"j"})", 1024),
      InvalidArgument);
}

TEST(ServeSocket, LineReaderFramesAndOverflows) {
  int port = 0;
  ScopedFd listener = listen_on("127.0.0.1", 0, &port);
  ScopedFd client = connect_to("127.0.0.1", port);
  ScopedFd peer(::accept(listener.get(), nullptr, nullptr));
  ASSERT_TRUE(peer.valid());

  ASSERT_TRUE(send_all(client.get(), "alpha\r\nbeta\n"));
  LineReader reader(peer.get(), 16);
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 1000.0), LineReader::Status::Line);
  EXPECT_EQ(line, "alpha");  // '\r' stripped
  ASSERT_EQ(reader.read_line(&line, 1000.0), LineReader::Status::Line);
  EXPECT_EQ(line, "beta");
  EXPECT_EQ(reader.read_line(&line, 10.0), LineReader::Status::Timeout);

  ASSERT_TRUE(send_all(client.get(),
                       std::string(64, 'x')));  // no newline, > cap
  EXPECT_EQ(reader.read_line(&line, 1000.0), LineReader::Status::Overflow);
  // Overflow is sticky: the stream's framing cannot be trusted again.
  EXPECT_EQ(reader.read_line(&line, 10.0), LineReader::Status::Overflow);

  client.reset();
  LineReader fresh(peer.get(), 1 << 10);
  EXPECT_EQ(fresh.read_line(&line, 1000.0), LineReader::Status::Eof);
}

}  // namespace
}  // namespace depstor::serve
