// depstor_lint rule coverage: every class of seeded defect must fire its
// exact rule id, and the shipped example environments must lint clean.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "core/scenarios.hpp"
#include "test_helpers.hpp"

namespace depstor::analysis {
namespace {

/// A minimal well-formed environment file; the broken cases below are this
/// text with one seeded defect each.
std::string good_env() {
  return R"(
[site]
name = alpha

[site]
name = beta

[link]
a = alpha
b = beta
max_links = 8

[application]
name = app1
outage_penalty_rate = 2e6
loss_penalty_rate = 3e6
data_size_gb = 500
avg_update_mbps = 2
peak_update_mbps = 10
avg_access_mbps = 20
)";
}

DiagnosticReport lint(const std::string& text) {
  return lint_environment_text(text, "test.ini");
}

TEST(Lint, GoodEnvironmentIsClean) {
  const DiagnosticReport rep = lint(good_env());
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  EXPECT_EQ(rep.warning_count(), 0) << rep.render_text();
}

// --- seeded defects: each must fire its exact rule id ---

TEST(Lint, DanglingSiteReference) {
  const auto rep = lint(R"(
[site]
name = alpha

[link]
a = alpha
b = ghost
max_links = 4

[application]
name = a
outage_penalty_rate = 1e6
loss_penalty_rate = 1e6
data_size_gb = 100
avg_update_mbps = 1
)");
  EXPECT_TRUE(rep.has_rule(rules::kDanglingSiteRef)) << rep.render_text();
  EXPECT_TRUE(rep.has_errors());
}

TEST(Lint, UnknownSection) {
  const auto rep = lint(good_env() + "\n[storage-pod]\nname = x\n");
  EXPECT_TRUE(rep.has_rule(rules::kUnknownSection)) << rep.render_text();
}

TEST(Lint, MissingRequiredKey) {
  // Application without a data size.
  const auto rep = lint(R"(
[site]
name = alpha

[application]
name = a
outage_penalty_rate = 1e6
loss_penalty_rate = 1e6
avg_update_mbps = 1
)");
  EXPECT_TRUE(rep.has_rule(rules::kMissingKey)) << rep.render_text();
}

TEST(Lint, NonFiniteNumber) {
  const auto rep =
      lint(good_env() + "\n[failures]\ndata_object_rate = nan\n");
  EXPECT_TRUE(rep.has_rule(rules::kBadNumber)) << rep.render_text();
}

TEST(Lint, NegativePenaltyRate) {
  std::string text = good_env();
  const auto pos = text.find("outage_penalty_rate = 2e6");
  text.replace(pos, std::string("outage_penalty_rate = 2e6").size(),
               "outage_penalty_rate = -5");
  const auto rep = lint(text);
  EXPECT_TRUE(rep.has_rule(rules::kBadPenaltyRate)) << rep.render_text();
}

TEST(Lint, BadWorkloadUnits) {
  // Peak update rate below the average is dimensionally impossible.
  std::string text = good_env();
  const auto pos = text.find("peak_update_mbps = 10");
  text.replace(pos, std::string("peak_update_mbps = 10").size(),
               "peak_update_mbps = 0.5");
  const auto rep = lint(text);
  EXPECT_TRUE(rep.has_rule(rules::kBadWorkloadUnits)) << rep.render_text();
}

TEST(Lint, DuplicateSiteName) {
  const auto rep = lint(good_env() + "\n[site]\nname = alpha\n");
  EXPECT_TRUE(rep.has_rule(rules::kDuplicateSiteName)) << rep.render_text();
}

TEST(Lint, DuplicateApplicationName) {
  const auto rep = lint(good_env() + R"(
[application]
name = app1
outage_penalty_rate = 1
loss_penalty_rate = 1
data_size_gb = 10
avg_update_mbps = 1
)");
  EXPECT_TRUE(rep.has_rule(rules::kDuplicateApplicationName))
      << rep.render_text();
}

TEST(Lint, DuplicateCatalogDevice) {
  const auto rep =
      lint(good_env() + "\n[catalog]\narrays = XP1200, XP1200\n");
  EXPECT_TRUE(rep.has_rule(rules::kDuplicateCatalogDevice))
      << rep.render_text();
}

TEST(Lint, SelfLink) {
  const auto rep =
      lint(good_env() + "\n[link]\na = alpha\nb = alpha\nmax_links = 2\n");
  EXPECT_TRUE(rep.has_rule(rules::kSelfLink)) << rep.render_text();
}

TEST(Lint, BadLinkLimit) {
  std::string text = good_env();
  const auto pos = text.find("max_links = 8");
  text.replace(pos, std::string("max_links = 8").size(), "max_links = 0");
  const auto rep = lint(text);
  EXPECT_TRUE(rep.has_rule(rules::kBadLinkLimit)) << rep.render_text();
}

TEST(Lint, UnknownDevice) {
  const auto rep = lint(good_env() + "\n[catalog]\narrays = WarpDrive9\n");
  EXPECT_TRUE(rep.has_rule(rules::kUnknownDevice)) << rep.render_text();
}

TEST(Lint, WrongDeviceKind) {
  // A tape library model under `arrays`.
  const auto rep = lint(good_env() + "\n[catalog]\narrays = " +
                        resources::tape_library_high().name + "\n");
  EXPECT_TRUE(rep.has_rule(rules::kWrongDeviceKind)) << rep.render_text();
}

TEST(Lint, InfeasibleCatalog) {
  // No Table 3 array holds an exabyte-scale dataset.
  std::string text = good_env();
  const auto pos = text.find("data_size_gb = 500");
  text.replace(pos, std::string("data_size_gb = 500").size(),
               "data_size_gb = 1e9");
  const auto rep = lint(text);
  EXPECT_TRUE(rep.has_rule(rules::kInfeasibleCatalog)) << rep.render_text();
}

TEST(Lint, NegativeFailureRate) {
  const auto rep =
      lint(good_env() + "\n[failures]\nsite_disaster_rate = -1\n");
  EXPECT_TRUE(rep.has_rule(rules::kBadFailureRate)) << rep.render_text();
}

TEST(Lint, NoApplications) {
  const auto rep = lint("[site]\nname = alpha\n");
  EXPECT_TRUE(rep.has_rule(rules::kNoApplications)) << rep.render_text();
}

TEST(Lint, NoSites) {
  const auto rep = lint(
      "[application]\nname = a\noutage_penalty_rate = 1\n"
      "loss_penalty_rate = 1\ndata_size_gb = 10\navg_update_mbps = 1\n");
  EXPECT_TRUE(rep.has_rule(rules::kNoSites)) << rep.render_text();
}

TEST(Lint, IniParseError) {
  const auto rep = lint("key-before-any-section = 1\n");
  EXPECT_TRUE(rep.has_rule(rules::kIniParseError)) << rep.render_text();
}

// --- warnings ---

TEST(Lint, UnknownKeyWarns) {
  const auto rep = lint(good_env() + "\n[failures]\ndisk_arry_rate = 0.5\n");
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  EXPECT_TRUE(rep.has_rule(rules::kUnknownKey)) << rep.render_text();
}

TEST(Lint, ZeroPenaltySumWarns) {
  std::string text = good_env();
  auto pos = text.find("outage_penalty_rate = 2e6");
  text.replace(pos, std::string("outage_penalty_rate = 2e6").size(),
               "outage_penalty_rate = 0");
  pos = text.find("loss_penalty_rate = 3e6");
  text.replace(pos, std::string("loss_penalty_rate = 3e6").size(),
               "loss_penalty_rate = 0");
  const auto rep = lint(text);
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  EXPECT_TRUE(rep.has_rule(rules::kZeroPenaltySum)) << rep.render_text();
}

TEST(Lint, UnmirrorableTopologyWarns) {
  // Two sites, no [link] section: mirrors are unreachable.
  const auto rep = lint(R"(
[site]
name = alpha

[site]
name = beta

[application]
name = a
outage_penalty_rate = 1e6
loss_penalty_rate = 1e6
data_size_gb = 100
avg_update_mbps = 1
)");
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  EXPECT_TRUE(rep.has_rule(rules::kUnmirrorableTopology))
      << rep.render_text();
}

TEST(Lint, DuplicateLinkWarns) {
  const auto rep =
      lint(good_env() + "\n[link]\na = beta\nb = alpha\nmax_links = 2\n");
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  EXPECT_TRUE(rep.has_rule(rules::kDuplicateLink)) << rep.render_text();
}

TEST(Lint, MirrorBandwidthUnreachableWarns) {
  // Peak update stream beyond any provisionable link group.
  std::string text = good_env();
  const auto pos = text.find("peak_update_mbps = 10");
  text.replace(pos, std::string("peak_update_mbps = 10").size(),
               "peak_update_mbps = 90000");
  const auto rep = lint(text);
  EXPECT_TRUE(rep.has_rule(rules::kMirrorBandwidthUnreachable))
      << rep.render_text();
}

// --- struct-level rules (programmatic environments) ---

TEST(Lint, GlobalFailureFootprintSingleSiteWarns) {
  Environment env = testing::peer_env(3);
  env.topology.sites.resize(1);
  env.topology.pair_limits.clear();
  env.failures.site_disaster_rate = 0.5;
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kGlobalFailureFootprint))
      << rep.render_text();
}

TEST(Lint, GlobalFailureFootprintSingleRegionWarns) {
  // Several sites, but one region and regional disasters enabled: the
  // regional scenario still fails every application at once.
  Environment env = scenarios::multi_site(4, 3, 4);
  env.failures.regional_disaster_rate = 0.1;
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kGlobalFailureFootprint))
      << rep.render_text();
}

TEST(Lint, GlobalFailureFootprintQuietAcrossRegions) {
  Environment env = scenarios::multi_site(4, 3, 4);
  env.failures.regional_disaster_rate = 0.1;
  for (std::size_t i = 0; i < env.topology.sites.size(); ++i) {
    env.topology.sites[i].region = static_cast<int>(i);
  }
  EXPECT_FALSE(lint_environment(env).has_rule(rules::kGlobalFailureFootprint));
  // Multi-site without regional disasters is quiet too.
  EXPECT_FALSE(lint_environment(testing::peer_env(3))
                   .has_rule(rules::kGlobalFailureFootprint));
}

TEST(Lint, EmptyConfigGrid) {
  Environment env = testing::peer_env(2);
  env.policies.backup_intervals_hours.clear();
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kEmptyConfigGrid)) << rep.render_text();
}

TEST(Lint, DisjointPolicyRangesMakeGridEmpty) {
  Environment env = testing::peer_env(2);
  env.policies.snapshot_intervals_hours = {500.0};  // above every backup
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kEmptyConfigGrid)) << rep.render_text();
}

TEST(Lint, BadPolicyRange) {
  Environment env = testing::peer_env(2);
  env.policies.snapshot_intervals_hours = {-4.0, 12.0};
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kBadPolicyRange)) << rep.render_text();
}

TEST(Lint, BadCategoryThresholds) {
  Environment env = testing::peer_env(2);
  env.thresholds.gold_min = 1e5;
  env.thresholds.silver_min = 1e6;  // silver above gold: not monotone
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kBadCategoryThresholds))
      << rep.render_text();
}

TEST(Lint, BadDeviceSpec) {
  Environment env = testing::peer_env(2);
  env.array_types[0].capacity_unit_gb = 0.0;  // units with no size
  const auto rep = lint_environment(env);
  EXPECT_TRUE(rep.has_rule(rules::kBadDeviceSpec)) << rep.render_text();
}

TEST(Lint, ScenarioEnvironmentsLintClean) {
  for (int apps : {1, 4, 8}) {
    const auto rep = lint_environment(scenarios::peer_sites(apps));
    EXPECT_FALSE(rep.has_errors()) << rep.render_text();
  }
}

// --- emitters ---

TEST(Lint, TextRenderIncludesRuleAndLocus) {
  const auto rep = lint(good_env() + "\n[site]\nname = alpha\n");
  const std::string text = rep.render_text();
  EXPECT_NE(text.find("duplicate-site-name"), std::string::npos) << text;
  EXPECT_NE(text.find("test.ini"), std::string::npos) << text;
}

TEST(Lint, JsonRenderIsStructured) {
  const auto rep = lint(good_env() + "\n[site]\nname = alpha\n");
  const std::string json = rep.render_json();
  EXPECT_NE(json.find("\"rule\""), std::string::npos) << json;
  EXPECT_NE(json.find("duplicate-site-name"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
}

// --- the shipped example environments must pass with zero errors ---

TEST(Lint, ExampleEnvironmentsAreClean) {
  const std::filesystem::path dir =
      std::filesystem::path(DEPSTOR_SOURCE_DIR) / "examples" / "environments";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int linted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    ++linted;
    const auto rep = lint_environment_file(entry.path().string());
    EXPECT_FALSE(rep.has_errors())
        << entry.path() << ":\n"
        << rep.render_text();
  }
  EXPECT_GE(linted, 3) << "expected several example environments under "
                       << dir;
}

}  // namespace
}  // namespace depstor::analysis
