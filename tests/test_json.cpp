#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(Json, ScalarFields) {
  JsonWriter w;
  w.begin_object()
      .field("s", "text")
      .field("i", 42)
      .field("d", 1.5)
      .field("b", true)
      .key("n")
      .null()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"s":"text","i":42,"d":1.5,"b":true,"n":null})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object()
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .begin_object()
      .field("k", "v")
      .end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2,{"k":"v"}]})");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.begin_object().field("k", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharacterEscaping) {
  JsonWriter w;
  w.begin_object().field("k", std::string("x\x01y")).end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"x\\u0001y\"}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::nan(""))
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, DoublesRoundTrip) {
  JsonWriter w;
  w.begin_array().value(0.1).end_array();
  const std::string out = w.str();
  const double parsed = std::strtod(out.c_str() + 1, nullptr);
  EXPECT_DOUBLE_EQ(parsed, 0.1);
}

TEST(Json, GrammarViolationsThrow) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InternalError);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InternalError);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), InternalError);  // two keys in a row
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.end_object(), InternalError);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InternalError);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), InternalError);  // unclosed document
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), InternalError);  // two root values
  }
}

TEST(Json, CompleteTracksState) {
  JsonWriter w;
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(Json, ArrayOfObjectsCommas) {
  JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 3; ++i) {
    w.begin_object().field("i", i).end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1},{"i":2}])");
}

// ---------------------------------------------------------------------------
// Parser (JsonValue / parse_json)
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ContainersAndLookup) {
  const JsonValue v = parse_json(R"({"a":[1,2,3],"b":{"c":true}})");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("z"));
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").at(1).as_number(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_THROW(v.at("missing"), InvalidArgument);
  EXPECT_THROW(v.at("a").at(3), InvalidArgument);
}

TEST(JsonParse, MembersKeepDocumentOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse_json("\"x\\u0001y\"").as_string(), "x\x01y");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");  // \u00e9 in UTF-8
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  const char* bad[] = {
      "",           "{",        "[1,]",        "{\"a\":}", "tru",
      "01",         "1.",       "+1",          "nan",      "\"unterminated",
      "\"bad\\q\"", "[1] junk", "{\"a\":1,\"a\":2}",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_json(text), InvalidArgument) << text;
  }
  try {
    parse_json("[1, oops]");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(parse_json(deep), InvalidArgument);
}

TEST(JsonParse, AccessorsRejectWrongTypes) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_bool(), InvalidArgument);
  EXPECT_THROW(v.as_number(), InvalidArgument);
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.members(), InvalidArgument);
  EXPECT_THROW(parse_json("1").items(), InvalidArgument);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .field("s", "a\"b\nc")
      .field("i", 42)
      .field("d", 0.1)
      .field("b", true)
      .key("list")
      .begin_array()
      .value(1)
      .value("two")
      .end_array()
      .end_object();
  const JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\nc");
  EXPECT_DOUBLE_EQ(v.at("i").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("d").as_number(), 0.1);
  EXPECT_TRUE(v.at("b").as_bool());
  EXPECT_EQ(v.at("list").at(1).as_string(), "two");
}

// Wire-format hardening (serve/proto feeds the parser network bytes): the
// size limit rejects oversized documents without reading them, and truncated
// documents carry the byte offset where input ran out.

TEST(JsonLimits, OversizedDocumentRejectedWithLimitAndOffset) {
  const std::string doc = R"({"padding":"0123456789012345678901234567890"})";
  JsonLimits limits;
  limits.max_bytes = 16;
  try {
    parse_json(doc, limits);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset 16"), std::string::npos) << what;
    EXPECT_NE(what.find("16-byte limit"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(doc.size())), std::string::npos)
        << what;
  }
}

TEST(JsonLimits, DocumentAtOrUnderLimitParses) {
  const std::string doc = R"({"a":1})";
  JsonLimits at_limit;
  at_limit.max_bytes = doc.size();
  EXPECT_DOUBLE_EQ(parse_json(doc, at_limit).at("a").as_number(), 1.0);
  JsonLimits unlimited;  // 0 = no cap, the trusted-artifact default
  EXPECT_DOUBLE_EQ(parse_json(doc, unlimited).at("a").as_number(), 1.0);
}

TEST(JsonLimits, TruncatedDocumentReportsEndOffset) {
  const std::string doc = R"({"key":"value)";  // string never terminates
  try {
    parse_json(doc);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset " + std::to_string(doc.size())),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(JsonLimits, TruncatedContainerReportsEndOffset) {
  const std::string doc = R"([1, 2, )";
  try {
    parse_json(doc, JsonLimits{1024});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace depstor
