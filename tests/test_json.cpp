#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(Json, ScalarFields) {
  JsonWriter w;
  w.begin_object()
      .field("s", "text")
      .field("i", 42)
      .field("d", 1.5)
      .field("b", true)
      .key("n")
      .null()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"s":"text","i":42,"d":1.5,"b":true,"n":null})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object()
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .begin_object()
      .field("k", "v")
      .end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2,{"k":"v"}]})");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.begin_object().field("k", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharacterEscaping) {
  JsonWriter w;
  w.begin_object().field("k", std::string("x\x01y")).end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"x\\u0001y\"}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::nan(""))
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, DoublesRoundTrip) {
  JsonWriter w;
  w.begin_array().value(0.1).end_array();
  const std::string out = w.str();
  const double parsed = std::strtod(out.c_str() + 1, nullptr);
  EXPECT_DOUBLE_EQ(parsed, 0.1);
}

TEST(Json, GrammarViolationsThrow) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InternalError);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InternalError);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), InternalError);  // two keys in a row
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.end_object(), InternalError);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InternalError);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), InternalError);  // unclosed document
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), InternalError);  // two root values
  }
}

TEST(Json, CompleteTracksState) {
  JsonWriter w;
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(Json, ArrayOfObjectsCommas) {
  JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 3; ++i) {
    w.begin_object().field("i", i).end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1},{"i":2}])");
}

}  // namespace
}  // namespace depstor
