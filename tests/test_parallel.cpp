#include "solver/parallel.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::peer_env;
using testing::solve_design;
using testing::solve_fanned;

TEST(ParallelSolve, FindsFeasibleDesign) {
  Environment env = peer_env(8);
  DesignSolverOptions o;
  o.time_budget_ms = 300.0;
  o.seed = 4;
  const auto result = solve_fanned(env, o, 4);
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
  EXPECT_GT(result.nodes_evaluated, 0);
}

TEST(ParallelSolve, NeverWorseThanAnySingleWorkerSeed) {
  // The merge keeps the minimum over workers; with repetition caps the
  // sequential runs at seeds seed+0..seed+k-1 are exactly the worker runs.
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = 100;
  Environment env = peer_env(4);
  const auto parallel = solve_fanned(env, o, 3);
  ASSERT_TRUE(parallel.feasible);
  for (int k = 0; k < 3; ++k) {
    Environment env_k = peer_env(4);
    DesignSolverOptions ok = o;
    ok.seed = o.seed + static_cast<std::uint64_t>(k);
    const auto single = solve_design(env_k, ok);
    if (single.feasible) {
      EXPECT_LE(parallel.cost.total(), single.cost.total() + 1e-6);
    }
  }
}

TEST(ParallelSolve, DeterministicMergeUnderRepetitionCap) {
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = 7;
  Environment env1 = peer_env(4);
  Environment env2 = peer_env(4);
  const auto a = solve_fanned(env1, o, 3);
  const auto b = solve_fanned(env2, o, 3);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
  EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated);
}

TEST(ParallelSolve, SingleWorkerEqualsSequential) {
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = 13;
  Environment env1 = peer_env(4);
  Environment env2 = peer_env(4);
  const auto par = solve_fanned(env1, o, 1);
  const auto seq = solve_design(env2, o);
  ASSERT_EQ(par.feasible, seq.feasible);
  EXPECT_DOUBLE_EQ(par.cost.total(), seq.cost.total());
}

TEST(ParallelSolve, RejectsBadWorkerCount) {
  Environment env = peer_env(2);
  ExecutionOptions exec;
  exec.workers = 0;
  EXPECT_THROW(solve_design(env, {}, exec), InvalidArgument);
}

TEST(ParallelRandom, MergesBestAndCounters) {
  Environment env = peer_env(4);
  BaselineOptions o;
  o.time_budget_ms = 60000.0;
  o.max_designs = 5;
  o.seed = 21;
  const auto par = random_parallel(&env, o, 3);
  EXPECT_EQ(par.designs_tried, 15);  // 3 workers × 5 designs
  if (par.feasible) {
    EXPECT_NO_THROW(par.best->check_feasible());
  }
}

TEST(ParallelSample, ProducesRequestedCount) {
  Environment env = peer_env(4);
  const auto stats = sample_parallel(&env, 120, 31, 4);
  EXPECT_GE(stats.feasible, 120);
  EXPECT_EQ(stats.samples.size(), static_cast<std::size_t>(stats.feasible));
  EXPECT_GT(stats.costs.min(), 0.0);
}

TEST(ParallelSample, MergedStatsMatchSamples) {
  Environment env = peer_env(4);
  const auto stats = sample_parallel(&env, 60, 37, 3);
  double min = stats.samples.front();
  double max = stats.samples.front();
  double sum = 0.0;
  for (double s : stats.samples) {
    min = std::min(min, s);
    max = std::max(max, s);
    sum += s;
  }
  EXPECT_DOUBLE_EQ(stats.costs.min(), min);
  EXPECT_DOUBLE_EQ(stats.costs.max(), max);
  EXPECT_NEAR(stats.costs.mean(), sum / stats.samples.size(),
              std::fabs(sum) * 1e-12);
}

TEST(ParallelSample, DeterministicUnderSeedAndWorkers) {
  Environment env = peer_env(4);
  const auto a = sample_parallel(&env, 50, 41, 2);
  const auto b = sample_parallel(&env, 50, 41, 2);
  EXPECT_EQ(a.samples.size(), b.samples.size());
  EXPECT_DOUBLE_EQ(a.costs.mean(), b.costs.mean());
}

}  // namespace
}  // namespace depstor
