#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace depstor {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(5.0, -3.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::array<int, 4> seen{};
  for (int i = 0; i < 400; ++i) {
    const int v = rng.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexZeroWeightNeverPickedAmongPositives) {
  Rng rng(7);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    const auto pick = rng.weighted_index(weights);
    EXPECT_TRUE(pick == 1 || pick == 3) << pick;
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 3.0};
  int second = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++second;
  }
  // Expect ~75%; allow generous tolerance (binomial stddev ≈ 0.3%).
  EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(7);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::array<int, 3> seen{};
  for (int i = 0; i < 300; ++i) {
    ++seen[rng.weighted_index(weights)];
  }
  for (int count : seen) EXPECT_GT(count, 50);
}

TEST(Rng, WeightedIndexRejectsEmptyAndNegative) {
  Rng rng(7);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{}), InvalidArgument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), InvalidArgument);
}

TEST(Rng, WeightedIndexSingleElement) {
  Rng rng(7);
  const std::vector<double> weights = {42.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(7);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child should not replay the parent's stream.
  Rng b(5);
  b.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace depstor
