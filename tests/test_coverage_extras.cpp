// Odds and ends: human-heuristic fallbacks, sampler configure mode,
// describe output, config-solver statistics.
#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "core/sampler.hpp"
#include "solver/config_solver.hpp"
#include "util/units.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;

TEST(HumanFallback, SucceedsWhenClassMatchedArraysCannotAllFit) {
  // One array per site: gold (XP1200), silver (EVA8000) and bronze (MSA1500)
  // class-matched choices cannot coexist — the architect's fallback order
  // must still find a feasible design.
  Environment env = peer_env(4);
  for (auto& site : env.topology.sites) {
    site.max_disk_arrays = 1;
    site.max_compute_slots = 8;
  }
  env.validate();
  BaselineOptions o;
  o.time_budget_ms = 1500.0;
  o.seed = 12;
  const auto result = HumanHeuristic(&env, o).solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
}

TEST(Sampler, ConfigureModeRunsTheConfigSolver) {
  Environment env = peer_env(2);
  SolutionSpaceSampler sampler(&env);
  const auto raw = sampler.sample(10, 5, /*configure=*/false);
  const auto configured = sampler.sample(10, 5, /*configure=*/true);
  ASSERT_EQ(raw.feasible, 10);
  ASSERT_EQ(configured.feasible, 10);
  // Same seed → same raw designs; configuration can only keep or lower each
  // design's cost, so the configured mean is no higher.
  EXPECT_LE(configured.costs.mean(), raw.costs.mean() + 1e-6);
}

TEST(DescribeCost, ListsEveryAppAndTotals) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(sync_r_backup()));
  const std::string out = DesignTool::describe_cost(env, cand.evaluate());
  EXPECT_NE(out.find("B1"), std::string::npos);
  EXPECT_NE(out.find("C1"), std::string::npos);
  EXPECT_NE(out.find("outlays/yr"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

TEST(ConfigSolverStats, CountIncrementPurchases) {
  // The web-service reconstruct design profits from extra resources, so the
  // increment loop must buy at least one (links, drives, or a spare).
  Environment env = testing::tiny_env(workload::web_service());
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_GT(solver.stats().increments_bought, 0);
  EXPECT_GT(solver.stats().evaluations, 10);
}

TEST(GreedyOrderMax, DeterministicFirstPlacement) {
  // MaxPenalty ordering always places the highest-penalty app first; with
  // 4 apps that is B1 (penalty sum $10M/hr).
  Environment env = peer_env(4);
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;
  o.max_repetitions = 1;
  o.max_refit_iterations = 0;
  o.greedy_order = GreedyOrder::MaxPenalty;
  o.seed = 31;
  const auto result = testing::solve_design(env, o);
  ASSERT_TRUE(result.feasible);
  // All assigned; B1's technique must be gold class (eligibility).
  EXPECT_EQ(result.best->assignment(0).technique.category, AppCategory::Gold);
}

TEST(Units, TransferOfNothingIsInstant) {
  EXPECT_DOUBLE_EQ(units::transfer_hours(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(units::accumulated_gb(0.0, 3.0), 0.0);
}

}  // namespace
}  // namespace depstor
