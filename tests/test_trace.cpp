#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace depstor::workload {
namespace {

TraceGeneratorOptions small_options() {
  TraceGeneratorOptions o;
  o.duration_hours = 6.0;
  o.mean_iops = 30.0;
  o.working_set_blocks = 4096;
  return o;
}

TEST(TraceGenerator, DeterministicUnderSeed) {
  SyntheticTraceGenerator gen(small_options());
  Rng a(5);
  Rng b(5);
  const auto ta = gen.generate(a);
  const auto tb = gen.generate(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].time_hours, tb[i].time_hours);
    EXPECT_EQ(ta[i].block, tb[i].block);
    EXPECT_EQ(ta[i].is_write, tb[i].is_write);
  }
}

TEST(TraceGenerator, RecordsAreTimeOrderedAndInRange) {
  SyntheticTraceGenerator gen(small_options());
  Rng rng(7);
  const auto trace = gen.generate(rng);
  ASSERT_GT(trace.size(), 100u);
  double prev = 0.0;
  for (const auto& rec : trace) {
    EXPECT_GE(rec.time_hours, prev);
    EXPECT_LT(rec.time_hours, 6.0);
    EXPECT_LT(rec.block, 4096u);
    prev = rec.time_hours;
  }
}

TEST(TraceGenerator, MeanIopsApproximatelyRespected) {
  TraceGeneratorOptions o = small_options();
  o.duration_hours = 24.0;  // full diurnal cycle → modulation averages out
  o.mean_iops = 50.0;
  SyntheticTraceGenerator gen(o);
  Rng rng(11);
  const auto trace = gen.generate(rng);
  const double expected = o.mean_iops * 24.0 * 3600.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.05);
}

TEST(TraceGenerator, WriteFractionApproximatelyRespected) {
  TraceGeneratorOptions o = small_options();
  o.write_fraction = 0.25;
  SyntheticTraceGenerator gen(o);
  Rng rng(13);
  const auto trace = gen.generate(rng);
  long long writes = 0;
  for (const auto& rec : trace) writes += rec.is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / trace.size(), 0.25, 0.03);
}

TEST(TraceGenerator, ZipfSkewsBlockPopularity) {
  TraceGeneratorOptions o = small_options();
  o.zipf_theta = 0.9;
  SyntheticTraceGenerator skewed(o);
  o.zipf_theta = 0.0;
  SyntheticTraceGenerator uniform(o);
  Rng ra(17);
  Rng rb(17);
  auto hot_share = [](const std::vector<TraceRecord>& t) {
    long long hot = 0;
    for (const auto& rec : t) hot += rec.block < 10 ? 1 : 0;
    return static_cast<double>(hot) / static_cast<double>(t.size());
  };
  // 10 of 4096 blocks carry ~0.24% of uniform traffic but the lion's share
  // of Zipf(0.9) traffic.
  EXPECT_LT(hot_share(uniform.generate(rb)), 0.01);
  EXPECT_GT(hot_share(skewed.generate(ra)), 0.15);
}

TEST(TraceGenerator, OptionValidation) {
  TraceGeneratorOptions o = small_options();
  o.zipf_theta = 1.0;  // θ must be < 1 for the approximation
  EXPECT_THROW(SyntheticTraceGenerator{o}, InvalidArgument);
  o = small_options();
  o.working_set_blocks = 1;
  EXPECT_THROW(SyntheticTraceGenerator{o}, InvalidArgument);
  o = small_options();
  o.write_fraction = 1.5;
  EXPECT_THROW(SyntheticTraceGenerator{o}, InvalidArgument);
}

// --- characterization ---

std::vector<TraceRecord> constant_rate_trace(double hours, double iops,
                                             double write_fraction,
                                             std::uint64_t blocks) {
  std::vector<TraceRecord> trace;
  const double step = 1.0 / (iops * 3600.0);
  std::uint64_t i = 0;
  for (double t = 0.0; t < hours; t += step, ++i) {
    TraceRecord rec;
    rec.time_hours = t;
    rec.is_write = (static_cast<double>(i % 100) / 100.0) < write_fraction;
    rec.block = i % blocks;
    trace.push_back(rec);
  }
  return trace;
}

TEST(Characterize, RecoversConstantRates) {
  // 100 IOPS of 8 KB blocks, 40% writes → avg update = 0.32 MB/s,
  // access = 0.8 MB/s.
  const auto trace = constant_rate_trace(2.0, 100.0, 0.4, 1 << 20);
  const auto c = characterize(trace, 8);
  EXPECT_NEAR(c.avg_update_mbps, 0.32, 0.01);
  EXPECT_NEAR(c.avg_access_mbps, 0.80, 0.01);
  // Constant rate → peak ≈ avg.
  EXPECT_NEAR(c.peak_update_mbps, c.avg_update_mbps,
              c.avg_update_mbps * 0.1);
}

TEST(Characterize, UniqueRateBelowAvgWhenBlocksRepeat) {
  // Only 64 distinct blocks: unique update rate must collapse.
  const auto trace = constant_rate_trace(1.0, 200.0, 1.0, 64);
  const auto c = characterize(trace, 8);
  EXPECT_GT(c.avg_update_mbps, 0.0);
  EXPECT_LT(c.unique_update_mbps, c.avg_update_mbps / 100.0);
  EXPECT_NEAR(c.footprint_gb, 64.0 * 8.0 / 1000.0 / 1000.0, 1e-6);
}

TEST(Characterize, DiurnalTraceHasPeakAboveAverage) {
  TraceGeneratorOptions o;
  o.duration_hours = 24.0;
  o.mean_iops = 40.0;
  o.diurnal_amplitude = 0.8;
  o.write_fraction = 0.5;
  o.working_set_blocks = 1 << 16;
  SyntheticTraceGenerator gen(o);
  Rng rng(23);
  const auto c = characterize(gen.generate(rng), o.block_kb);
  EXPECT_GT(c.peak_update_mbps, c.avg_update_mbps * 1.4);
}

TEST(Characterize, CountsReadsAndWrites) {
  std::vector<TraceRecord> trace = {{0.1, 1, true},
                                    {0.2, 2, false},
                                    {0.3, 3, false},
                                    {0.4, 1, true}};
  const auto c = characterize(trace, 8);
  EXPECT_EQ(c.writes, 2);
  EXPECT_EQ(c.reads, 2);
}

TEST(Characterize, RejectsUnorderedTrace) {
  std::vector<TraceRecord> trace = {{0.5, 1, true}, {0.1, 2, true}};
  EXPECT_THROW(characterize(trace, 8), InvalidArgument);
}

TEST(Characterize, EmptyTraceIsZero) {
  const auto c = characterize({}, 8);
  EXPECT_EQ(c.reads, 0);
  EXPECT_DOUBLE_EQ(c.avg_update_mbps, 0.0);
}

// --- app_from_trace ---

TEST(AppFromTrace, BuildsValidSpec) {
  TraceGeneratorOptions o = small_options();
  o.duration_hours = 12.0;
  SyntheticTraceGenerator gen(o);
  Rng rng(29);
  const auto traits = characterize(gen.generate(rng), o.block_kb);
  const auto app = app_from_trace("measured", "M", 1e6, 2e6, 500.0, traits);
  EXPECT_NO_THROW(app.validate());
  EXPECT_DOUBLE_EQ(app.data_size_gb, 500.0);
  EXPECT_GE(app.peak_update_mbps, app.avg_update_mbps);
  EXPECT_LE(app.unique_update_mbps, app.avg_update_mbps);
  EXPECT_EQ(app.category(), AppCategory::Silver);  // sum $3M/hr
}

TEST(AppFromTrace, ClampsDegenerateTraits) {
  TraceCharacteristics traits;
  traits.avg_update_mbps = 2.0;
  traits.peak_update_mbps = 3.0;
  traits.avg_access_mbps = 1.0;     // below update: must be clamped up
  traits.unique_update_mbps = 5.0;  // above update: must be clamped down
  const auto app = app_from_trace("x", "X", 1e3, 1e3, 100.0, traits);
  EXPECT_NO_THROW(app.validate());
  EXPECT_DOUBLE_EQ(app.avg_access_mbps, 2.0);
  EXPECT_DOUBLE_EQ(app.unique_update_mbps, 2.0);
}

}  // namespace
}  // namespace depstor::workload
