#include "util/ini.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(Ini, ParsesSectionsAndValues) {
  const auto sections = parse_ini(
      "# header comment\n"
      "[alpha]\n"
      "key = value\n"
      "num=42\n"
      "\n"
      "[beta]\n"
      "spaced key = spaced value here\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].get_string("key"), "value");
  EXPECT_EQ(sections[0].get_int("num"), 42);
  EXPECT_EQ(sections[1].get_string("spaced key"), "spaced value here");
}

TEST(Ini, RepeatedSectionsStaySeparate) {
  const auto sections = parse_ini("[s]\na=1\n[s]\na=2\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].get_int("a"), 1);
  EXPECT_EQ(sections[1].get_int("a"), 2);
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const auto sections = parse_ini(
      "[s]\n"
      "; semicolon comment\n"
      "# hash comment\n"
      "\n"
      "  \t \n"
      "k = v\n");
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].get_string("k"), "v");
}

TEST(Ini, TracksSectionLineNumbers) {
  const auto sections = parse_ini("# one\n# two\n[s]\nk=v\n");
  EXPECT_EQ(sections[0].line, 3);
}

TEST(Ini, MalformedInputThrowsWithLineNumbers) {
  try {
    parse_ini("[s]\nvalue-without-equals\n");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_ini("key=before-section\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[unclosed\nk=v\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[]\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[s]\n= novalue-key\n"), InvalidArgument);
}

TEST(Ini, TypedGettersValidate) {
  const auto sections = parse_ini("[s]\nnum=7\nreal=2.5\ntext=abc\n");
  const auto& s = sections[0];
  EXPECT_EQ(s.get_int("num"), 7);
  EXPECT_DOUBLE_EQ(s.get_double("real"), 2.5);
  EXPECT_THROW(s.get_int("text"), InvalidArgument);
  EXPECT_THROW(s.get_double("text"), InvalidArgument);
  EXPECT_THROW(s.get_string("missing"), InvalidArgument);
  EXPECT_EQ(s.get_int_or("missing", 9), 9);
  EXPECT_DOUBLE_EQ(s.get_double_or("missing", 1.5), 1.5);
  EXPECT_EQ(s.get_string_or("missing", "d"), "d");
}

TEST(Ini, SplitList) {
  EXPECT_EQ(split_list("a, b ,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("single"), (std::vector<std::string>{"single"}));
  EXPECT_EQ(split_list(" , ,"), (std::vector<std::string>{}));
  EXPECT_TRUE(split_list("").empty());
}

}  // namespace
}  // namespace depstor
