#include "util/ini.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(Ini, ParsesSectionsAndValues) {
  const auto sections = parse_ini(
      "# header comment\n"
      "[alpha]\n"
      "key = value\n"
      "num=42\n"
      "\n"
      "[beta]\n"
      "spaced key = spaced value here\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].get_string("key"), "value");
  EXPECT_EQ(sections[0].get_int("num"), 42);
  EXPECT_EQ(sections[1].get_string("spaced key"), "spaced value here");
}

TEST(Ini, RepeatedSectionsStaySeparate) {
  const auto sections = parse_ini("[s]\na=1\n[s]\na=2\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].get_int("a"), 1);
  EXPECT_EQ(sections[1].get_int("a"), 2);
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const auto sections = parse_ini(
      "[s]\n"
      "; semicolon comment\n"
      "# hash comment\n"
      "\n"
      "  \t \n"
      "k = v\n");
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].get_string("k"), "v");
}

TEST(Ini, TracksSectionLineNumbers) {
  const auto sections = parse_ini("# one\n# two\n[s]\nk=v\n");
  EXPECT_EQ(sections[0].line, 3);
}

TEST(Ini, MalformedInputThrowsWithLineNumbers) {
  try {
    parse_ini("[s]\nvalue-without-equals\n");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_ini("key=before-section\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[unclosed\nk=v\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[]\n"), InvalidArgument);
  EXPECT_THROW(parse_ini("[s]\n= novalue-key\n"), InvalidArgument);
}

TEST(Ini, TypedGettersValidate) {
  const auto sections = parse_ini("[s]\nnum=7\nreal=2.5\ntext=abc\n");
  const auto& s = sections[0];
  EXPECT_EQ(s.get_int("num"), 7);
  EXPECT_DOUBLE_EQ(s.get_double("real"), 2.5);
  EXPECT_THROW(s.get_int("text"), InvalidArgument);
  EXPECT_THROW(s.get_double("text"), InvalidArgument);
  EXPECT_THROW(s.get_string("missing"), InvalidArgument);
  EXPECT_EQ(s.get_int_or("missing", 9), 9);
  EXPECT_DOUBLE_EQ(s.get_double_or("missing", 1.5), 1.5);
  EXPECT_EQ(s.get_string_or("missing", "d"), "d");
}

TEST(Ini, NumericGettersRequireFullTokenConsumption) {
  // strtod/strtol happily parse a numeric *prefix*; the getters must reject
  // anything short of the whole token.
  const auto sections = parse_ini(
      "[s]\n"
      "trailing = 3.5abc\n"
      "int_trailing = 12x\n"
      "float_as_int = 2.5\n"
      "hexish = 0x10\n");
  const auto& s = sections[0];
  EXPECT_THROW(s.get_double("trailing"), InvalidArgument);
  EXPECT_THROW(s.get_int("int_trailing"), InvalidArgument);
  EXPECT_THROW(s.get_int("float_as_int"), InvalidArgument);
  EXPECT_THROW(s.get_int("hexish"), InvalidArgument);  // base 10 only
}

TEST(Ini, NumericGettersRejectEmptyAndNonFinite) {
  // An empty value used to slip through as 0.0 (strtod consumes nothing and
  // *end == '\0'); inf/nan tokens parsed fine and poisoned cost sums.
  const auto sections = parse_ini(
      "[s]\n"
      "empty =\n"
      "inf_val = inf\n"
      "nan_val = nan\n"
      "huge = 1e400000\n"
      "huge_int = 99999999999999999999\n");
  const auto& s = sections[0];
  EXPECT_THROW(s.get_double("empty"), InvalidArgument);
  EXPECT_THROW(s.get_int("empty"), InvalidArgument);
  EXPECT_THROW(s.get_double("inf_val"), InvalidArgument);
  EXPECT_THROW(s.get_double("nan_val"), InvalidArgument);
  EXPECT_THROW(s.get_double("huge"), InvalidArgument);
  EXPECT_THROW(s.get_int("huge_int"), InvalidArgument);
}

TEST(Ini, NumericErrorsCarrySectionAndLineLocus) {
  const auto sections = parse_ini("# pad\n# pad\n[storage]\nrate = oops\n");
  try {
    sections[0].get_double("rate");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[storage]"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("rate"), std::string::npos) << what;
    EXPECT_NE(what.find("'oops'"), std::string::npos) << what;
  }
}

TEST(Ini, NumericGettersStillAcceptValidForms) {
  const auto sections = parse_ini(
      "[s]\n"
      "neg = -42\n"
      "sci = 1.25e2\n"
      "plus = +7\n");
  const auto& s = sections[0];
  EXPECT_EQ(s.get_int("neg"), -42);
  EXPECT_DOUBLE_EQ(s.get_double("sci"), 125.0);
  EXPECT_EQ(s.get_int("plus"), 7);
}

TEST(Ini, SplitList) {
  EXPECT_EQ(split_list("a, b ,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("single"), (std::vector<std::string>{"single"}));
  EXPECT_EQ(split_list(" , ,"), (std::vector<std::string>{}));
  EXPECT_TRUE(split_list("").empty());
}

}  // namespace
}  // namespace depstor
