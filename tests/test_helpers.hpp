// Shared builders for the depstor test suite.
#pragma once

#include "core/api.hpp"
#include "core/environment.hpp"
#include "core/scenarios.hpp"
#include "protection/catalog.hpp"
#include "resources/catalog.hpp"
#include "solver/solution.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace depstor::testing {

/// Two-site peer environment with `apps` applications (default: the §4.3
/// case-study size).
inline Environment peer_env(int apps = 8) {
  return scenarios::peer_sites(apps);
}

/// Run the design solver through the unified API — the tests' standard
/// entry point.
inline SolveResult solve_design(const Environment& env,
                                const DesignSolverOptions& options = {},
                                const ExecutionOptions& exec = {}) {
  SolveRequest request;
  request.env = &env;
  request.options = options;
  request.exec = exec;
  return solve(request);
}

/// Seed-restart fan (the old solve_parallel shape) through the unified API.
inline SolveResult solve_fanned(const Environment& env,
                                const DesignSolverOptions& options,
                                int workers) {
  ExecutionOptions exec;
  exec.workers = workers;
  return solve_design(env, options, exec);
}

/// Tiny environment — one app, two sites — for focused model tests.
inline Environment tiny_env(const ApplicationSpec& app) {
  Environment env = scenarios::peer_sites(1);
  env.apps = {app};
  env.apps[0].id = 0;
  env.validate();
  return env;
}

/// A standard full-protection design choice: technique + array/tape/link
/// types resolved to the Table 3 high-end models, sites 0 → 1.
inline DesignChoice full_choice(const TechniqueSpec& technique,
                                int primary_site = 0, int secondary_site = 1) {
  DesignChoice c;
  c.technique = technique;
  c.primary_site = primary_site;
  c.secondary_site = technique.has_mirror() ? secondary_site : -1;
  c.primary_array_type = resources::xp1200().name;
  c.mirror_array_type = resources::xp1200().name;
  c.tape_type = resources::tape_library_high().name;
  c.link_type = resources::network_high().name;
  return c;
}

/// Place one app with the given technique into a fresh candidate.
inline Candidate candidate_with(const Environment& env,
                                const TechniqueSpec& technique) {
  Candidate cand(&env);
  cand.place_app(0, full_choice(technique));
  return cand;
}

/// Shorthands for the Table 2 techniques used throughout the tests.
inline TechniqueSpec sync_f_backup() {
  return protection::mirror_technique(MirrorMode::Sync, RecoveryMode::Failover,
                                      true);
}
inline TechniqueSpec sync_r_backup() {
  return protection::mirror_technique(MirrorMode::Sync,
                                      RecoveryMode::Reconstruct, true);
}
inline TechniqueSpec async_f_backup() {
  return protection::mirror_technique(MirrorMode::Async,
                                      RecoveryMode::Failover, true);
}
inline TechniqueSpec async_r_backup() {
  return protection::mirror_technique(MirrorMode::Async,
                                      RecoveryMode::Reconstruct, true);
}
inline TechniqueSpec sync_f_only() {
  return protection::mirror_technique(MirrorMode::Sync, RecoveryMode::Failover,
                                      false);
}
inline TechniqueSpec sync_r_only() {
  return protection::mirror_technique(MirrorMode::Sync,
                                      RecoveryMode::Reconstruct, false);
}
inline TechniqueSpec backup_only() { return protection::tape_backup_only(); }

}  // namespace depstor::testing
