#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(LogHistogram, BinEdgesAreGeometric) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_lower(1), 10.0, 1e-6);
  EXPECT_NEAR(h.bin_lower(2), 100.0, 1e-4);
  EXPECT_NEAR(h.bin_upper(2), 1000.0, 1e-3);
}

TEST(LogHistogram, CountsLandInRightBins) {
  LogHistogram h(1.0, 1000.0, 3);
  h.add(2.0);    // bin 0
  h.add(50.0);   // bin 1
  h.add(500.0);  // bin 2
  h.add(999.0);  // bin 2
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogram, UnderOverflowClampedAndTracked) {
  // Out-of-range samples land *only* in the under/overflow counters — they
  // used to be double-counted into the edge bins as well, which broke
  // total() == sum(counts) + underflow() + overflow() and skewed quantile().
  LogHistogram h(10.0, 100.0, 2);
  h.add(1.0);     // below range → underflow only
  h.add(5000.0);  // above range → overflow only
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LogHistogram, TotalIsSumOfBinsAndOutOfRangeCounters) {
  LogHistogram h(10.0, 100.0, 2);
  h.add(1.0);     // underflow
  h.add(20.0);    // bin 0
  h.add(50.0);    // bin 1
  h.add(150.0);   // past hi → overflow
  h.add(5000.0);  // overflow
  EXPECT_EQ(h.count(0) + h.count(1) + h.underflow() + h.overflow(),
            h.total());
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(LogHistogram, QuantileSaturatesOnOutOfRangeMass) {
  LogHistogram h(10.0, 100.0, 4);
  // 4 underflow, 2 in-range, 4 overflow.
  for (int i = 0; i < 4; ++i) h.add(1.0);
  h.add(30.0);
  h.add(40.0);
  for (int i = 0; i < 4; ++i) h.add(900.0);
  // Quantiles inside the underflow mass resolve to lo, inside the overflow
  // mass to hi — never interpolated into an edge bin's interior.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.3), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // The in-range band still interpolates within its bins.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 100.0);
}

TEST(LogHistogram, QuantileAllOverflowReturnsHi) {
  LogHistogram h(10.0, 100.0, 2);
  h.add(5000.0);
  h.add(6000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
}

TEST(LogHistogram, RejectsNonPositiveSamplesAndBadRange) {
  LogHistogram h(1.0, 10.0, 2);
  EXPECT_THROW(h.add(0.0), InvalidArgument);
  EXPECT_THROW(h.add(-1.0), InvalidArgument);
  EXPECT_THROW(LogHistogram(0.0, 10.0, 2), InvalidArgument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 2), InvalidArgument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), InvalidArgument);
}

TEST(LogHistogram, MaxCount) {
  LogHistogram h(1.0, 100.0, 2);
  EXPECT_EQ(h.max_count(), 0u);
  h.add(2.0);
  h.add(3.0);
  h.add(50.0);
  EXPECT_EQ(h.max_count(), 2u);
}

TEST(LogHistogram, RenderShowsBarsAndCounts) {
  LogHistogram h(1.0, 100.0, 2);
  h.add(2.0);
  h.add(2.5);
  h.add(50.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // fullest bin
  EXPECT_NE(out.find(" 2\n"), std::string::npos);
  EXPECT_NE(out.find(" 1\n"), std::string::npos);
}

TEST(LogHistogram, RenderElidesEmptyEdges) {
  LogHistogram h(1.0, 1e6, 6);
  h.add(150.0);  // only one populated bin in the middle
  const std::string out = h.render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(LogHistogram, BinOfIsConsistentWithEdges) {
  LogHistogram h(1.0, 1024.0, 10);
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    const double mid = (h.bin_lower(b) + h.bin_upper(b)) / 2.0;
    EXPECT_EQ(h.bin_of(mid), b);
  }
}

}  // namespace
}  // namespace depstor
